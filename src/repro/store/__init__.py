"""Disk-persistent result store: the second cache tier behind the engine.

* :class:`ResultStore` — one SQLite file (WAL mode) of pickled verdicts and
  schema TBox encodings, content-addressed by the same canonical
  fingerprints as the in-memory caches, stamped with the store format and
  library versions so stale files invalidate instead of poisoning answers;
* :class:`StoreStats` — disk hit/miss/write/error accounting;
* :data:`STORE_FORMAT_VERSION` — the on-disk layout version in the stamp.

Wired in through ``ContainmentEngine(persist=path)`` (memory → disk →
solver, write-back on miss), read-only worker warm-start in
``repro.engine.parallel``, and the ``python -m repro cache`` subcommand.
See docs/ARCHITECTURE.md, "The two-tier cache hierarchy".
"""

from .store import STORE_FORMAT_VERSION, ResultStore, StoreStats

__all__ = ["STORE_FORMAT_VERSION", "ResultStore", "StoreStats"]
