"""The disk-persistent result store: SQLite-backed second cache tier.

One :class:`ResultStore` is one SQLite file (WAL mode) holding pickled,
content-addressed artefacts keyed by the same canonical fingerprints the
in-memory engine caches use.  Two tiers are persisted:

* ``results`` — full :class:`~repro.containment.solver.ContainmentResult`
  verdicts, lightened for storage exactly like the process backend lightens
  them for transport (the completed TBox travels as a
  :class:`~repro.engine.parallel.TBoxDigest`), so a verdict replayed from
  disk fingerprints bit-identically to one replayed from memory;
* ``schema-tboxes`` — the Horn encodings ``T̂_S`` per extended schema;
* ``schemas`` — the extended schemas themselves, keyed by canonical
  fingerprint.  Written by the parent before a process batch so workers can
  resolve the transport layer's schema *references*
  (:mod:`repro.engine.transport`) from disk even when the object never
  crossed their queue.

Completions (chase engines with live memos) and compiled automata are *not*
persisted: a result-tier hit skips both entirely, and an automaton's pickle
is just its ``(regex, context)`` recipe — recompiling from disk would cost
the same as recompiling from scratch (see docs/ARCHITECTURE.md, "The
two-tier cache hierarchy").

Safety over speed, always:

* **Version stamps.**  The file carries the store format version and the
  library version; a mismatch on a writable open wipes and re-initialises
  the file, and on a read-only open disables the store — stale pickles from
  an older library can never poison verdicts.
* **Graceful degradation.**  Corrupt files, locked databases, unwritable
  directories, unpicklable payloads: every failure path counts an error,
  disables the affected side (reads, writes, or both) and falls back to
  in-memory behaviour.  The store changes where answers come from, never
  what they are — and never whether they arrive.
* **Single-writer discipline.**  Parent engines open read-write; worker
  processes open ``mode="ro"`` so a pool warm-starts from disk without ever
  contending for the write lock.
"""

from __future__ import annotations

import dataclasses
import pickle
import sqlite3
import threading
import time
import weakref
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Union

__all__ = ["STORE_FORMAT_VERSION", "ResultStore", "StoreStats"]

#: Bump when the on-disk layout or the pickled payload shapes change; every
#: open compares it (together with the library version) against the file's
#: stamp and treats any mismatch as "this file holds nothing for me".
STORE_FORMAT_VERSION = 1

#: The tiers :meth:`ResultStore.put` accepts (anything else is a bug).
TIERS = ("results", "schema-tboxes", "schemas")


def _library_version() -> str:
    from .. import __version__

    return __version__


@dataclass
class StoreStats:
    """Counters of one store: disk lookups, write-backs and swallowed errors."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    errors: int = 0

    def snapshot(self) -> "StoreStats":
        """An independent copy (the live object keeps counting)."""
        return StoreStats(self.hits, self.misses, self.writes, self.errors)

    def merge(self, other: "StoreStats") -> None:
        """Fold *other*'s counters into this one (pool-wide aggregation)."""
        self.hits += other.hits
        self.misses += other.misses
        self.writes += other.writes
        self.errors += other.errors

    def as_dict(self) -> Dict[str, Any]:
        """Plain-dict form for logging and benchmark reports."""
        lookups = self.hits + self.misses
        return {
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "errors": self.errors,
            "hit_rate": self.hits / lookups if lookups else 0.0,
        }

    def __str__(self) -> str:
        return (
            f"store: {self.hits} hits / {self.misses} misses, "
            f"{self.writes} writes, {self.errors} errors"
        )




class ResultStore:
    """A content-addressed persistent cache in one SQLite file.

    ``mode`` is ``"rw"`` (create/open for read and write) or ``"ro"`` (open
    existing for read only — the worker warm-start mode).  A store that
    cannot be opened, or whose version stamp does not match, degrades to a
    disabled store: :meth:`get` always misses, :meth:`put` is a no-op, and
    ``disabled_reason`` says why.  All access is serialised by an internal
    lock so one store may back a threaded batch.
    """

    def __init__(self, path: Union[str, Path], *, mode: str = "rw") -> None:
        if mode not in ("rw", "ro"):
            raise ValueError(f"ResultStore mode must be 'rw' or 'ro', got {mode!r}")
        self.path = Path(path)
        self.mode = mode
        self.stats = StoreStats()
        self._lock = threading.Lock()
        self._connection: Optional[sqlite3.Connection] = None
        self.disabled_reason: Optional[str] = None
        # completed-TBox → digest, weakly keyed: the engine's completion
        # cache hands the same (large) TBox to every result of a
        # ``(schema, right)`` pair and canonicalising it costs tens of
        # milliseconds, so it must be fingerprinted once per object, not
        # once per write-back.  Weak keys make id-reuse after GC impossible.
        self._digest_memo: "weakref.WeakKeyDictionary[Any, Any]" = weakref.WeakKeyDictionary()
        try:
            self._connection = self._open()
        except _NoStoreYet as reason:
            # a read-only open of a file nobody has created yet — the normal
            # state of a worker warm-starting before the parent's first
            # write-back.  Disabled, but *clean*: no error is counted, so
            # merged pool stats stay noise-free.
            self.disabled_reason = str(reason)
        except (sqlite3.Error, OSError) as error:
            self._disable(f"{type(error).__name__}: {error}")

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def _open(self) -> sqlite3.Connection:
        if self.mode == "ro":
            if not self.path.exists():
                # distinguish "nothing persisted yet" from a real open
                # failure: sqlite would report the unhelpful "unable to open
                # database file" and we would count an error for what is a
                # perfectly ordinary cold start
                raise _NoStoreYet(f"no store file yet at {self.path}")
            # URI mode=ro refuses to create a file and rejects writes at the
            # sqlite level, so a worker can never corrupt the parent's store
            uri = f"file:{self.path.as_posix()}?mode=ro"
            connection = sqlite3.connect(uri, uri=True, check_same_thread=False)
        else:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            connection = sqlite3.connect(self.path, check_same_thread=False)
        connection.execute("PRAGMA busy_timeout = 5000")
        if self.mode == "rw":
            # WAL + NORMAL: commits skip the per-write fsync but the file can
            # still never be corrupted by a crash — at worst the last few
            # write-backs are lost, which a cache re-derives by construction
            connection.execute("PRAGMA synchronous = NORMAL")
        try:
            self._validate(connection)
        except _Restamp:
            # writable open of a foreign/stale/older-format file: wipe it —
            # entries pickled by another library version must not be served
            connection.executescript(
                "DROP TABLE IF EXISTS entries; DROP TABLE IF EXISTS meta;"
            )
            self._initialise(connection)
        return connection

    def _validate(self, connection: sqlite3.Connection) -> None:
        expected = self._expected_stamp()
        tables = {
            row[0]
            for row in connection.execute(
                "SELECT name FROM sqlite_master WHERE type = 'table'"
            )
        }
        if "meta" not in tables or "entries" not in tables:
            if self.mode == "ro":
                raise sqlite3.DatabaseError("not a repro result store (no meta/entries tables)")
            self._initialise(connection)
            return
        stamp = dict(connection.execute("SELECT key, value FROM meta"))
        mismatched = {
            key: (stamp.get(key), value)
            for key, value in expected.items()
            if stamp.get(key) != value
        }
        if mismatched:
            if self.mode == "ro":
                raise sqlite3.DatabaseError(
                    "version stamp mismatch: "
                    + ", ".join(
                        f"{key} is {found!r}, expected {want!r}"
                        for key, (found, want) in mismatched.items()
                    )
                )
            raise _Restamp()

    def _initialise(self, connection: sqlite3.Connection) -> None:
        connection.execute("PRAGMA journal_mode = WAL")
        connection.executescript(
            """
            CREATE TABLE IF NOT EXISTS meta (
                key TEXT PRIMARY KEY,
                value TEXT NOT NULL
            );
            CREATE TABLE IF NOT EXISTS entries (
                tier TEXT NOT NULL,
                key TEXT NOT NULL,
                payload BLOB NOT NULL,
                created_at REAL NOT NULL,
                PRIMARY KEY (tier, key)
            );
            """
        )
        connection.executemany(
            "INSERT OR REPLACE INTO meta (key, value) VALUES (?, ?)",
            list(self._expected_stamp().items()),
        )
        connection.commit()

    @staticmethod
    def _expected_stamp() -> Dict[str, str]:
        return {
            "store_format_version": str(STORE_FORMAT_VERSION),
            "library_version": _library_version(),
        }

    def _disable(self, reason: str) -> None:
        self.stats.errors += 1
        self.disabled_reason = reason
        if self._connection is not None:
            try:
                self._connection.close()
            except sqlite3.Error:  # pragma: no cover - double fault on close
                pass
            self._connection = None

    @property
    def disabled(self) -> bool:
        return self._connection is None

    def close(self) -> None:
        """Release the connection (the store stays usable as a disabled one)."""
        with self._lock:
            if self._connection is not None:
                try:
                    self._connection.close()
                except sqlite3.Error:  # pragma: no cover - close of a dead handle
                    pass
                self._connection = None
                if self.disabled_reason is None:
                    self.disabled_reason = "closed"

    # ------------------------------------------------------------------ #
    # the cache protocol
    # ------------------------------------------------------------------ #
    def get(self, tier: str, key: str) -> Optional[Any]:
        """The stored value under ``(tier, key)``, or ``None`` on any miss.

        Failures (corrupt rows, locked file, stale unpicklable payloads)
        count as errors *and* misses — a degraded store behaves exactly like
        a cold one.
        """
        with self._lock:
            if self._connection is None:
                self.stats.misses += 1
                return None
            try:
                row = self._connection.execute(
                    "SELECT payload FROM entries WHERE tier = ? AND key = ?", (tier, key)
                ).fetchone()
            except sqlite3.Error as error:
                self._disable(f"read failed: {type(error).__name__}: {error}")
                self.stats.misses += 1
                return None
            if row is None:
                self.stats.misses += 1
                return None
            try:
                value = pickle.loads(row[0])
            except Exception:  # noqa: BLE001 - any stale/corrupt payload is a miss
                self.stats.errors += 1
                self.stats.misses += 1
                return None
            self.stats.hits += 1
            return value

    def put(self, tier: str, key: str, value: Any) -> bool:
        """Persist *value* under ``(tier, key)``; returns ``True`` on a write.

        No-op (``False``) on read-only or disabled stores and on values that
        refuse to pickle; a locked database skips the write rather than
        blocking the solve path beyond the busy timeout.
        """
        if tier not in TIERS:
            raise ValueError(f"unknown store tier {tier!r} (expected one of {TIERS})")
        with self._lock:
            if self._connection is None or self.mode == "ro":
                return False
            try:
                payload = pickle.dumps(
                    self._lighten_for_storage(tier, value), protocol=pickle.HIGHEST_PROTOCOL
                )
            except Exception:  # noqa: BLE001 - unpicklable artefacts stay memory-only
                self.stats.errors += 1
                return False
            try:
                self._connection.execute(
                    "INSERT OR REPLACE INTO entries (tier, key, payload, created_at) "
                    "VALUES (?, ?, ?, ?)",
                    (tier, key, payload, time.time()),
                )
                self._connection.commit()
            except sqlite3.Error:
                # a concurrent writer holding the lock past the busy timeout
                # (or a disk that filled up) loses us one write-back, nothing
                # else; reads may still be fine, so the store stays enabled
                self.stats.errors += 1
                return False
            self.stats.writes += 1
            return True

    def put_many(self, tier: str, items: List[tuple]) -> int:
        """Persist many ``(key, value)`` pairs in one transaction; returns the
        number written.

        The batch write-back path (a process-backend merge of hundreds of
        worker verdicts, possibly mostly replayed from this very store):
        keys already on disk are detected with one query and skipped without
        even pickling — content-addressed entries never need rewriting —
        and the rest land under a single commit instead of one per row.
        """
        if tier not in TIERS:
            raise ValueError(f"unknown store tier {tier!r} (expected one of {TIERS})")
        with self._lock:
            if self._connection is None or self.mode == "ro" or not items:
                return 0
            try:
                existing = set()
                keys = [key for key, _ in items]
                for start in range(0, len(keys), 500):  # stay under the variable limit
                    chunk = keys[start : start + 500]
                    placeholders = ",".join("?" * len(chunk))
                    existing.update(
                        row[0]
                        for row in self._connection.execute(
                            f"SELECT key FROM entries WHERE tier = ? AND key IN ({placeholders})",
                            (tier, *chunk),
                        )
                    )
            except sqlite3.Error as error:
                self._disable(f"read failed: {type(error).__name__}: {error}")
                return 0
            rows = []
            now = time.time()
            for key, value in items:
                if key in existing:
                    continue
                try:
                    payload = pickle.dumps(
                        self._lighten_for_storage(tier, value), protocol=pickle.HIGHEST_PROTOCOL
                    )
                except Exception:  # noqa: BLE001 - unpicklable artefacts stay memory-only
                    self.stats.errors += 1
                    continue
                rows.append((tier, key, payload, now))
            if not rows:
                return 0
            try:
                self._connection.executemany(
                    "INSERT OR REPLACE INTO entries (tier, key, payload, created_at) "
                    "VALUES (?, ?, ?, ?)",
                    rows,
                )
                self._connection.commit()
            except sqlite3.Error:
                self.stats.errors += 1
                return 0
            self.stats.writes += len(rows)
            return len(rows)

    def _lighten_for_storage(self, tier: str, value: Any) -> Any:
        """Shrink *value* to its storable form (fingerprint-preserving).

        Results get the process backend's transport treatment — the completed
        TBox becomes its :class:`~repro.engine.parallel.TBoxDigest` — so what
        comes back from disk is indistinguishable (by ``result_fingerprint``)
        from what comes back from a worker.  Imported lazily:
        ``repro.engine.parallel`` imports the engine, which imports this
        module.
        """
        if tier != "results":
            return value
        from ..engine.parallel import TBoxDigest

        completion = value.completion
        if completion is None or isinstance(completion.tbox, TBoxDigest):
            return value
        digest = self._digest_memo.get(completion.tbox)
        if digest is None:
            digest = TBoxDigest(completion.tbox.canonical_fingerprint(), completion.tbox.size())
            self._digest_memo[completion.tbox] = digest
        return dataclasses.replace(
            value, completion=dataclasses.replace(completion, tbox=digest)
        )

    # ------------------------------------------------------------------ #
    # inspection and management (the CLI `cache` subcommand's backend)
    # ------------------------------------------------------------------ #
    def counts(self) -> Dict[str, int]:
        """Entry counts per tier (empty when disabled)."""
        with self._lock:
            if self._connection is None:
                return {}
            try:
                rows = self._connection.execute(
                    "SELECT tier, COUNT(*) FROM entries GROUP BY tier ORDER BY tier"
                ).fetchall()
            except sqlite3.Error as error:
                self._disable(f"read failed: {type(error).__name__}: {error}")
                return {}
            return dict(rows)

    def meta(self) -> Dict[str, str]:
        """The version stamp recorded in the file (empty when disabled)."""
        with self._lock:
            if self._connection is None:
                return {}
            try:
                return dict(self._connection.execute("SELECT key, value FROM meta"))
            except sqlite3.Error as error:
                self._disable(f"read failed: {type(error).__name__}: {error}")
                return {}

    def file_size(self) -> int:
        """The store file's size in bytes (0 when it does not exist)."""
        try:
            return self.path.stat().st_size
        except OSError:
            return 0

    def entries(self) -> List[Dict[str, Any]]:
        """Metadata for every entry — tier, key, payload size, creation time.

        Payloads themselves are deliberately not exported: they are pickles,
        meaningful only to the exact library version that wrote them.
        """
        with self._lock:
            if self._connection is None:
                return []
            try:
                rows = self._connection.execute(
                    "SELECT tier, key, LENGTH(payload), created_at FROM entries "
                    "ORDER BY tier, key"
                ).fetchall()
            except sqlite3.Error as error:
                self._disable(f"read failed: {type(error).__name__}: {error}")
                return []
            return [
                {"tier": tier, "key": key, "payload_bytes": size, "created_at": created}
                for tier, key, size, created in rows
            ]

    def clear(self, tier: Optional[str] = None) -> int:
        """Drop every entry (of *tier*, when given); returns the count."""
        with self._lock:
            if self._connection is None or self.mode == "ro":
                return 0
            try:
                if tier is None:
                    cursor = self._connection.execute("DELETE FROM entries")
                else:
                    cursor = self._connection.execute(
                        "DELETE FROM entries WHERE tier = ?", (tier,)
                    )
                self._connection.commit()
            except sqlite3.Error:
                self.stats.errors += 1
                return 0
            return cursor.rowcount

    def delete(self, tier: str, keys: Iterable[str]) -> int:
        """Drop the given keys from *tier*; returns the number of rows removed.

        The schema-evolution / invalidation path uses this to reclaim rows
        superseded by a schema edit.  Best-effort like every store write: a
        read-only or disabled store deletes nothing (returns 0), and rows the
        caller does not know about simply stay — content-addressed keys mean
        leftover rows are dead weight, never stale answers.
        """
        key_list = [key for key in keys if key]
        if not key_list:
            return 0
        removed = 0
        with self._lock:
            if self._connection is None or self.mode == "ro":
                return 0
            try:
                for start in range(0, len(key_list), 500):
                    chunk = key_list[start : start + 500]
                    placeholders = ",".join("?" for _ in chunk)
                    cursor = self._connection.execute(
                        f"DELETE FROM entries WHERE tier = ? AND key IN ({placeholders})",
                        (tier, *chunk),
                    )
                    removed += cursor.rowcount
                self._connection.commit()
            except sqlite3.Error:
                self.stats.errors += 1
                return removed
            return removed

    def describe(self) -> Dict[str, Any]:
        """One JSON-ready block: path, mode, health, stamp, sizes, counters."""
        return {
            "path": str(self.path),
            "mode": self.mode,
            "disabled": self.disabled,
            "disabled_reason": self.disabled_reason,
            "file_bytes": self.file_size(),
            "meta": self.meta(),
            "tiers": self.counts(),
            "stats": self.stats.as_dict(),
        }


class _Restamp(Exception):
    """Internal: a writable open found a stale stamp and must wipe the file."""


class _NoStoreYet(Exception):
    """Internal: a read-only open found no file — a clean "nothing persisted
    yet" state, not an error (no error counter, no stats noise)."""
