"""Serialisation of graphs: JSON documents, edge lists and GraphViz DOT.

The on-disk JSON format is intentionally simple and stable::

    {
      "nodes": [{"id": "v1", "labels": ["Vaccine"]}, ...],
      "edges": [{"source": "v1", "label": "designTarget", "target": "a1"}, ...]
    }

Node identifiers are serialised with ``str`` unless they already are strings
or integers; deserialisation therefore round-trips graphs whose identifiers
are strings or integers exactly, which covers all graphs produced by this
library's generators and transformations (constructed nodes expose a stable
string form).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Union

from ..exceptions import GraphError
from .graph import Graph

__all__ = ["graph_to_dict", "graph_from_dict", "dump_json", "load_json", "to_dot"]


def _serialise_node(node: Any) -> Union[str, int]:
    if isinstance(node, (str, int)):
        return node
    return str(node)


def graph_to_dict(graph: Graph) -> Dict[str, Any]:
    """Convert a graph to a JSON-serialisable dictionary."""
    nodes = [
        {"id": _serialise_node(node), "labels": sorted(graph.labels(node))}
        for node in sorted(graph.nodes(), key=repr)
    ]
    edges = [
        {
            "source": _serialise_node(source),
            "label": label,
            "target": _serialise_node(target),
        }
        for source, label, target in sorted(graph.edges(), key=repr)
    ]
    return {"nodes": nodes, "edges": edges}


def graph_from_dict(data: Dict[str, Any]) -> Graph:
    """Rebuild a graph from the dictionary produced by :func:`graph_to_dict`."""
    if not isinstance(data, dict) or "nodes" not in data or "edges" not in data:
        raise GraphError("graph document must contain 'nodes' and 'edges'")
    graph = Graph()
    for entry in data["nodes"]:
        graph.add_node(entry["id"], entry.get("labels", ()))
    for entry in data["edges"]:
        graph.add_edge(entry["source"], entry["label"], entry["target"])
    return graph


def dump_json(graph: Graph, path: Union[str, Path]) -> None:
    """Write a graph to *path* as JSON."""
    payload = graph_to_dict(graph)
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True))


def load_json(path: Union[str, Path]) -> Graph:
    """Read a graph previously written by :func:`dump_json`."""
    return graph_from_dict(json.loads(Path(path).read_text()))


def to_dot(graph: Graph, name: str = "G") -> str:
    """Render a graph as a GraphViz DOT document (for documentation)."""
    lines = [f"digraph {name} {{"]
    ids = {node: f"n{index}" for index, node in enumerate(sorted(graph.nodes(), key=repr))}
    for node, dot_id in ids.items():
        labels = ",".join(sorted(graph.labels(node)))
        display = f"{node}" if not labels else f"{node}\\n[{labels}]"
        lines.append(f'  {dot_id} [label="{display}"];')
    for source, label, target in sorted(graph.edges(), key=repr):
        lines.append(f'  {ids[source]} -> {ids[target]} [label="{label}"];')
    lines.append("}")
    return "\n".join(lines)
