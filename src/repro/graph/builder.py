"""A small fluent builder for graphs, convenient in examples and tests."""

from __future__ import annotations

from typing import Iterable

from .graph import Graph, NodeId

__all__ = ["GraphBuilder"]


class GraphBuilder:
    """Fluent construction of :class:`~repro.graph.graph.Graph` instances.

    Example
    -------
    >>> g = (GraphBuilder()
    ...      .node("v1", "Vaccine")
    ...      .node("a1", "Antigen")
    ...      .edge("v1", "designTarget", "a1")
    ...      .build())
    >>> sorted(g.labels("v1"))
    ['Vaccine']
    """

    def __init__(self) -> None:
        self._graph = Graph()

    def node(self, node: NodeId, *labels: str) -> "GraphBuilder":
        """Add a node with the given labels."""
        self._graph.add_node(node, labels)
        return self

    def nodes(self, nodes: Iterable[NodeId], *labels: str) -> "GraphBuilder":
        """Add several nodes, all carrying the same labels."""
        for node in nodes:
            self._graph.add_node(node, labels)
        return self

    def edge(self, source: NodeId, label: str, target: NodeId) -> "GraphBuilder":
        """Add an edge; endpoints are created when missing."""
        self._graph.add_edge(source, label, target)
        return self

    def edges(self, triples: Iterable[tuple]) -> "GraphBuilder":
        """Add several ``(source, label, target)`` edges."""
        for source, label, target in triples:
            self._graph.add_edge(source, label, target)
        return self

    def path(self, nodes: Iterable[NodeId], label: str) -> "GraphBuilder":
        """Add a path of *label*-edges through *nodes* in order."""
        previous = None
        for node in nodes:
            self._graph.add_node(node)
            if previous is not None:
                self._graph.add_edge(previous, label, node)
            previous = node
        return self

    def cycle(self, nodes: Iterable[NodeId], label: str) -> "GraphBuilder":
        """Add a cycle of *label*-edges through *nodes* in order."""
        nodes = list(nodes)
        self.path(nodes, label)
        if len(nodes) >= 1:
            self._graph.add_edge(nodes[-1], label, nodes[0])
        return self

    def build(self) -> Graph:
        """Return the constructed graph."""
        return self._graph
