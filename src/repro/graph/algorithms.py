"""Graph-theoretic notions used by the paper's model constructions.

* homomorphisms between labeled graphs (used in the proof of Theorem 6.3 and
  by the test suite to validate witnesses);
* *c*-sparsity in the sense of Lee and Streinu as used in Section 6: a finite
  connected graph with ``n`` nodes and ``m`` edges is *c*-sparse when
  ``m ≤ n + c``;
* (k, l)-skeletons: the core obtained by iteratively removing degree-1 nodes
  (Lemma E.1), consisting of at most ``k`` distinguished nodes connected by at
  most ``l`` internally disjoint simple paths;
* isomorphism testing for small graphs (used by tests and by the
  "equivalence up to isomorphism" discussion of Section 7).
"""

from __future__ import annotations

from itertools import permutations
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from .graph import Graph, NodeId

__all__ = [
    "is_homomorphism",
    "find_homomorphism",
    "is_c_sparse",
    "sparsity_constant",
    "skeleton",
    "Skeleton",
    "isomorphic",
]


def is_homomorphism(mapping: Dict[NodeId, NodeId], source: Graph, target: Graph) -> bool:
    """Check that *mapping* is a homomorphism from *source* to *target*.

    A homomorphism preserves node labels and the existence of labeled edges
    (Section 6 of the paper).
    """
    for node in source.nodes():
        if node not in mapping or not target.has_node(mapping[node]):
            return False
        if not source.labels(node) <= target.labels(mapping[node]):
            return False
    for u, label, v in source.edges():
        if not target.has_edge(mapping[u], label, mapping[v]):
            return False
    return True


def find_homomorphism(source: Graph, target: Graph) -> Optional[Dict[NodeId, NodeId]]:
    """Search for a homomorphism from *source* to *target* by backtracking.

    Exponential in the worst case; intended for the small graphs occurring in
    tests and examples.
    """
    source_nodes = sorted(source.nodes(), key=repr)
    target_nodes = sorted(target.nodes(), key=repr)

    def candidates(node: NodeId) -> List[NodeId]:
        required = source.labels(node)
        return [t for t in target_nodes if required <= target.labels(t)]

    assignment: Dict[NodeId, NodeId] = {}

    def consistent(node: NodeId, image: NodeId) -> bool:
        for u, label, v in source.edges():
            if u == node and v in assignment:
                if not target.has_edge(image, label, assignment[v]):
                    return False
            if v == node and u in assignment:
                if not target.has_edge(assignment[u], label, image):
                    return False
            if u == node and v == node:
                if not target.has_edge(image, label, image):
                    return False
        return True

    def backtrack(index: int) -> bool:
        if index == len(source_nodes):
            return True
        node = source_nodes[index]
        for image in candidates(node):
            if consistent(node, image):
                assignment[node] = image
                if backtrack(index + 1):
                    return True
                del assignment[node]
        return False

    if backtrack(0):
        return dict(assignment)
    return None


def sparsity_constant(graph: Graph) -> int:
    """Return ``m - n`` for a graph: the smallest ``c`` such that it is c-sparse.

    For a connected graph this is the paper's measure; the query multigraph of
    a connected C2RPQ with ``a`` atoms and ``v`` variables has constant
    ``a - v ≥ -1``.
    """
    return graph.edge_count() - graph.node_count()


def is_c_sparse(graph: Graph, c: int) -> bool:
    """``True`` when the (finite, connected) graph has ``m ≤ n + c``."""
    return graph.edge_count() <= graph.node_count() + c


class Skeleton:
    """The (k, l)-skeleton of a finite connected graph (Lemma E.1).

    Attributes
    ----------
    distinguished:
        the nodes of degree ≥ 3 (or the whole cycle collapsed to one node);
    paths:
        the maximal simple paths of degree-2 nodes connecting distinguished
        nodes, each recorded as the full node sequence in the original graph;
    removed_trees:
        nodes that were pruned because they belonged to attached trees
        (iteratively removed degree-≤1 nodes).
    """

    def __init__(
        self,
        distinguished: Set[NodeId],
        paths: List[List[NodeId]],
        removed_trees: Set[NodeId],
    ) -> None:
        self.distinguished = set(distinguished)
        self.paths = [list(p) for p in paths]
        self.removed_trees = set(removed_trees)

    @property
    def k(self) -> int:
        """Number of distinguished nodes."""
        return len(self.distinguished)

    @property
    def l(self) -> int:
        """Number of connecting paths."""
        return len(self.paths)

    def is_within(self, k: int, l: int) -> bool:
        """``True`` when this is a (k, l)-skeleton with the given bounds."""
        return self.k <= k and self.l <= l


def _undirected_adjacency(graph: Graph) -> Dict[NodeId, Set[Tuple[str, NodeId, bool]]]:
    """Adjacency ignoring direction; each entry is (label, neighbour, is_outgoing)."""
    adjacency: Dict[NodeId, Set[Tuple[str, NodeId, bool]]] = {n: set() for n in graph.nodes()}
    for u, label, v in graph.edges():
        adjacency[u].add((label, v, True))
        adjacency[v].add((label, u, False))
    return adjacency


def skeleton(graph: Graph) -> Skeleton:
    """Compute the skeleton of a finite connected graph.

    Degree-1 nodes are removed exhaustively (they belong to attached trees);
    the remainder is decomposed into distinguished nodes (degree ≥ 3) and the
    simple paths of degree-2 nodes between them, matching Lemma E.1.
    """
    adjacency = _undirected_adjacency(graph)
    degree = {node: len(edges) for node, edges in adjacency.items()}
    removed: Set[NodeId] = set()

    # exhaustively prune degree-<=1 nodes (attached trees)
    frontier = [node for node, d in degree.items() if d <= 1]
    while frontier:
        node = frontier.pop()
        if node in removed or degree.get(node, 0) > 1:
            continue
        removed.add(node)
        for _, neighbour, _ in adjacency[node]:
            if neighbour in removed:
                continue
            degree[neighbour] -= 1
            if degree[neighbour] <= 1:
                frontier.append(neighbour)

    core = [node for node in graph.nodes() if node not in removed]
    if not core:
        return Skeleton(set(), [], removed)

    core_set = set(core)
    core_degree = {
        node: sum(1 for _, nb, _ in adjacency[node] if nb in core_set) for node in core
    }
    distinguished = {node for node in core if core_degree[node] >= 3}
    if not distinguished:
        # the core is a single cycle (or a single node); pick one representative
        distinguished = {sorted(core, key=repr)[0]}

    # walk the degree-2 chains between distinguished nodes
    paths: List[List[NodeId]] = []
    visited_edges: Set[FrozenSet] = set()

    def edge_key(a: NodeId, b: NodeId, label: str, outgoing: bool) -> Tuple:
        return (a, b, label, outgoing) if repr(a) <= repr(b) else (b, a, label, not outgoing)

    for start in sorted(distinguished, key=repr):
        for label, neighbour, outgoing in sorted(adjacency[start], key=repr):
            if neighbour not in core_set:
                continue
            key = frozenset([edge_key(start, neighbour, label, outgoing)])
            if key in visited_edges:
                continue
            path = [start]
            previous, current = start, neighbour
            visited_edges.add(key)
            while current not in distinguished:
                path.append(current)
                next_candidates = [
                    (lab, nb, out)
                    for lab, nb, out in adjacency[current]
                    if nb in core_set and nb != previous
                ]
                if not next_candidates:
                    break
                lab, nb, out = sorted(next_candidates, key=repr)[0]
                visited_edges.add(frozenset([edge_key(current, nb, lab, out)]))
                previous, current = current, nb
            path.append(current)
            paths.append(path)

    return Skeleton(distinguished, paths, removed)


def isomorphic(left: Graph, right: Graph) -> bool:
    """Exact isomorphism test by label-aware brute force (small graphs only)."""
    if left.node_count() != right.node_count() or left.edge_count() != right.edge_count():
        return False
    left_nodes = sorted(left.nodes(), key=repr)
    right_nodes = sorted(right.nodes(), key=repr)
    left_profile = sorted((sorted(left.labels(n)), left.degree(n)) for n in left_nodes)
    right_profile = sorted((sorted(right.labels(n)), right.degree(n)) for n in right_nodes)
    if left_profile != right_profile:
        return False
    if len(left_nodes) > 8:
        # fall back to a (sound but incomplete) refinement comparison for big graphs
        return _signature(left) == _signature(right)
    for perm in permutations(right_nodes):
        mapping = dict(zip(left_nodes, perm))
        if all(left.labels(n) == right.labels(mapping[n]) for n in left_nodes) and all(
            right.has_edge(mapping[u], label, mapping[v]) for u, label, v in left.edges()
        ):
            return True
    return False


def _signature(graph: Graph) -> FrozenSet:
    """1-round colour-refinement signature (used as an isomorphism heuristic)."""
    colours = {node: frozenset(graph.labels(node)) for node in graph.nodes()}
    for _ in range(3):
        new_colours = {}
        for node in graph.nodes():
            outgoing = frozenset((label, colours[t]) for label, t in graph.out_neighbours(node))
            incoming = frozenset((label, colours[s]) for label, s in graph.in_neighbours(node))
            new_colours[node] = (colours[node], outgoing, incoming)
        colours = new_colours
    counts: Dict = {}
    for value in colours.values():
        counts[value] = counts.get(value, 0) + 1
    return frozenset(counts.items())
