"""Node labels, edge labels and signed edge labels (Σ±).

The paper works with an enumerable set of node labels Γ and edge labels Σ and
uses *inverse* edge labels ``r⁻`` to navigate edges backwards; the set of edge
labels together with their inverses is written Σ±.  In this library both node
and edge labels are plain strings; inverse edge labels are represented by the
:class:`Direction`-aware :class:`SignedLabel` wrapper, which the rest of the
code base uses whenever a label may be traversed in either direction.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterable, Iterator

__all__ = [
    "Direction",
    "SignedLabel",
    "forward",
    "inverse",
    "signed_closure",
    "is_valid_label",
]


def is_valid_label(label: str) -> bool:
    """Return ``True`` when *label* is usable as a node or edge label.

    Labels are non-empty strings that do not contain whitespace and do not
    end with the inverse marker ``-`` (which is reserved for the textual
    syntax of inverse edge labels, e.g. ``knows-``).
    """
    if not isinstance(label, str) or not label:
        return False
    if any(ch.isspace() for ch in label):
        return False
    return not label.endswith("-")


class Direction(Enum):
    """Traversal direction of an edge label."""

    FORWARD = "+"
    INVERSE = "-"

    def flip(self) -> "Direction":
        """Return the opposite direction."""
        if self is Direction.FORWARD:
            return Direction.INVERSE
        return Direction.FORWARD

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Direction.{self.name}"


@dataclass(frozen=True)
class SignedLabel:
    """An edge label from Σ± — a base label plus a traversal direction.

    ``SignedLabel("knows")`` matches an edge ``u -knows-> v`` from ``u`` to
    ``v``; ``SignedLabel("knows", Direction.INVERSE)`` matches the same edge
    traversed from ``v`` to ``u``.
    """

    label: str
    direction: Direction = Direction.FORWARD

    def __post_init__(self) -> None:
        if not is_valid_label(self.label):
            raise ValueError(f"invalid edge label: {self.label!r}")

    def __lt__(self, other: "SignedLabel") -> bool:
        if not isinstance(other, SignedLabel):
            return NotImplemented
        return (self.label, self.direction.value) < (other.label, other.direction.value)

    @property
    def is_inverse(self) -> bool:
        """``True`` when the label is traversed backwards."""
        return self.direction is Direction.INVERSE

    def inverse(self) -> "SignedLabel":
        """Return the same base label traversed in the opposite direction."""
        return SignedLabel(self.label, self.direction.flip())

    @classmethod
    def parse(cls, text: str) -> "SignedLabel":
        """Parse the textual form ``r`` / ``r-`` used across the DSLs."""
        text = text.strip()
        if text.endswith("-"):
            return cls(text[:-1], Direction.INVERSE)
        return cls(text)

    def __str__(self) -> str:
        suffix = "-" if self.is_inverse else ""
        return f"{self.label}{suffix}"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SignedLabel({str(self)!r})"


def forward(label: str) -> SignedLabel:
    """Shorthand for the forward-directed signed label of *label*."""
    return SignedLabel(label, Direction.FORWARD)


def inverse(label: str) -> SignedLabel:
    """Shorthand for the inverse-directed signed label of *label*."""
    return SignedLabel(label, Direction.INVERSE)


def signed_closure(labels: Iterable[str]) -> Iterator[SignedLabel]:
    """Yield Σ± for the given Σ: every label in both directions."""
    for label in labels:
        yield forward(label)
        yield inverse(label)
