"""Random and structured graph generators used by tests and benchmarks.

Schema-aware generation (producing graphs that conform to a given schema with
participation constraints) lives in :mod:`repro.workloads.synthetic`; this
module only provides schema-agnostic building blocks.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from .graph import Graph

__all__ = [
    "random_graph",
    "path_graph",
    "cycle_graph",
    "star_graph",
    "random_tree",
    "grid_graph",
]


def random_graph(
    node_count: int,
    node_labels: Sequence[str],
    edge_labels: Sequence[str],
    edge_probability: float = 0.1,
    labels_per_node: int = 1,
    seed: Optional[int] = None,
) -> Graph:
    """Generate an Erdős–Rényi-style labeled graph.

    Each ordered pair of distinct nodes receives each edge label independently
    with probability *edge_probability*; each node receives *labels_per_node*
    labels drawn uniformly from *node_labels*.
    """
    rng = random.Random(seed)
    graph = Graph()
    nodes: List[int] = list(range(node_count))
    for node in nodes:
        labels = rng.sample(list(node_labels), k=min(labels_per_node, len(node_labels)))
        graph.add_node(node, labels)
    for source in nodes:
        for target in nodes:
            if source == target:
                continue
            for label in edge_labels:
                if rng.random() < edge_probability:
                    graph.add_edge(source, label, target)
    return graph


def path_graph(length: int, node_label: str, edge_label: str) -> Graph:
    """A simple directed path of *length* edges, all nodes labeled alike."""
    graph = Graph()
    for index in range(length + 1):
        graph.add_node(index, [node_label])
    for index in range(length):
        graph.add_edge(index, edge_label, index + 1)
    return graph


def cycle_graph(length: int, node_label: str, edge_label: str) -> Graph:
    """A directed cycle of *length* nodes."""
    graph = Graph()
    for index in range(length):
        graph.add_node(index, [node_label])
    for index in range(length):
        graph.add_edge(index, edge_label, (index + 1) % length)
    return graph


def star_graph(leaf_count: int, centre_label: str, leaf_label: str, edge_label: str) -> Graph:
    """A star: one centre node with edges to *leaf_count* leaves."""
    graph = Graph()
    graph.add_node("centre", [centre_label])
    for index in range(leaf_count):
        leaf = f"leaf{index}"
        graph.add_node(leaf, [leaf_label])
        graph.add_edge("centre", edge_label, leaf)
    return graph


def random_tree(
    node_count: int,
    node_labels: Sequence[str],
    edge_labels: Sequence[str],
    seed: Optional[int] = None,
) -> Graph:
    """A uniformly random rooted tree with random labels (edges point to children)."""
    rng = random.Random(seed)
    graph = Graph()
    for node in range(node_count):
        graph.add_node(node, [rng.choice(list(node_labels))])
    for node in range(1, node_count):
        parent = rng.randrange(node)
        graph.add_edge(parent, rng.choice(list(edge_labels)), node)
    return graph


def grid_graph(rows: int, cols: int, node_label: str, right_label: str, down_label: str) -> Graph:
    """A rows×cols grid with 'right' and 'down' edges; useful for evaluation benchmarks."""
    graph = Graph()
    for row in range(rows):
        for col in range(cols):
            graph.add_node((row, col), [node_label])
    for row in range(rows):
        for col in range(cols):
            if col + 1 < cols:
                graph.add_edge((row, col), right_label, (row, col + 1))
            if row + 1 < rows:
                graph.add_edge((row, col), down_label, (row + 1, col))
    return graph
