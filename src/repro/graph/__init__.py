"""Labeled directed graphs — the data model of the paper (Section 3).

Re-exports:

* :class:`Graph` / :data:`NodeId` / :class:`GraphBuilder` — the multigraph
  with node-label sets and its fluent builder;
* :class:`SignedLabel` / :class:`Direction` with :func:`forward` /
  :func:`inverse` / :func:`signed_closure` — edge labels read forwards or
  backwards (the alphabet Σ±);
* :func:`find_homomorphism` / :func:`is_homomorphism` / :func:`isomorphic` —
  structure-preserving maps between graphs;
* :func:`skeleton` / :class:`Skeleton` / :func:`is_c_sparse` /
  :func:`sparsity_constant` — the sparsity notions of Theorem 6.3;
* :func:`load_json` / :func:`dump_json` / :func:`graph_from_dict` /
  :func:`graph_to_dict` / :func:`to_dot` — (de)serialisation and Graphviz
  export.
"""

from .graph import Graph, NodeId
from .labels import Direction, SignedLabel, forward, inverse, signed_closure
from .builder import GraphBuilder
from .algorithms import (
    Skeleton,
    find_homomorphism,
    is_c_sparse,
    is_homomorphism,
    isomorphic,
    skeleton,
    sparsity_constant,
)
from .io import dump_json, graph_from_dict, graph_to_dict, load_json, to_dot

__all__ = [
    "Graph",
    "NodeId",
    "Direction",
    "SignedLabel",
    "forward",
    "inverse",
    "signed_closure",
    "GraphBuilder",
    "Skeleton",
    "find_homomorphism",
    "is_c_sparse",
    "is_homomorphism",
    "isomorphic",
    "skeleton",
    "sparsity_constant",
    "dump_json",
    "graph_from_dict",
    "graph_to_dict",
    "load_json",
    "to_dot",
]
