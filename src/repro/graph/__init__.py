"""Labeled directed graphs — the data model of the paper (Section 3)."""

from .graph import Graph, NodeId
from .labels import Direction, SignedLabel, forward, inverse, signed_closure
from .builder import GraphBuilder
from .algorithms import (
    Skeleton,
    find_homomorphism,
    is_c_sparse,
    is_homomorphism,
    isomorphic,
    skeleton,
    sparsity_constant,
)
from .io import dump_json, graph_from_dict, graph_to_dict, load_json, to_dot

__all__ = [
    "Graph",
    "NodeId",
    "Direction",
    "SignedLabel",
    "forward",
    "inverse",
    "signed_closure",
    "GraphBuilder",
    "Skeleton",
    "find_homomorphism",
    "is_c_sparse",
    "is_homomorphism",
    "isomorphic",
    "skeleton",
    "sparsity_constant",
    "dump_json",
    "graph_from_dict",
    "graph_to_dict",
    "load_json",
    "to_dot",
]
