"""The labeled directed graph data model of the paper (Section 3).

A graph is a relational structure over unary relation symbols (node labels Γ)
and binary relation symbols (edge labels Σ): a set of nodes, a set of labels
per node (possibly several, possibly none), and for every edge label a binary
relation over the nodes.  Multiple edges between the same pair of nodes are
allowed as long as they carry different labels, which is exactly what the
relational representation gives us for free.

Node identifiers can be arbitrary hashable Python values; the library uses
strings, integers and :class:`repro.transform.constructors.ConstructedNode`
instances (the Skolem terms created by transformations).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, Iterable, Iterator, Mapping, Optional, Set, Tuple

from ..exceptions import GraphError
from .labels import Direction, SignedLabel, forward, inverse

NodeId = Hashable
Edge = Tuple[NodeId, str, NodeId]

__all__ = ["Graph", "NodeId", "Edge"]


class Graph:
    """A finite labeled directed graph.

    The class maintains forward and backward adjacency indices so that both
    directions of Σ± can be traversed in O(1) per neighbour, which the query
    evaluator and the chase engine rely on.
    """

    __slots__ = ("_labels", "_out", "_in", "_edge_labels")

    def __init__(self) -> None:
        # node -> set of node labels
        self._labels: Dict[NodeId, Set[str]] = {}
        # node -> edge label -> set of successor nodes
        self._out: Dict[NodeId, Dict[str, Set[NodeId]]] = {}
        # node -> edge label -> set of predecessor nodes
        self._in: Dict[NodeId, Dict[str, Set[NodeId]]] = {}
        # all edge labels that occur in the graph
        self._edge_labels: Set[str] = set()

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def add_node(self, node: NodeId, labels: Iterable[str] = ()) -> NodeId:
        """Add *node* (if not present) and attach the given labels to it."""
        if node not in self._labels:
            self._labels[node] = set()
            self._out[node] = {}
            self._in[node] = {}
        for label in labels:
            self.add_label(node, label)
        return node

    def add_label(self, node: NodeId, label: str) -> None:
        """Attach a node label to an existing or new node."""
        if not isinstance(label, str) or not label:
            raise GraphError(f"invalid node label: {label!r}")
        self.add_node(node)
        self._labels[node].add(label)

    def remove_label(self, node: NodeId, label: str) -> None:
        """Remove a node label; silently ignores missing labels."""
        if node in self._labels:
            self._labels[node].discard(label)

    def add_edge(self, source: NodeId, label: str, target: NodeId) -> None:
        """Add an edge ``source -label-> target``; endpoints are created."""
        if not isinstance(label, str) or not label:
            raise GraphError(f"invalid edge label: {label!r}")
        self.add_node(source)
        self.add_node(target)
        self._out[source].setdefault(label, set()).add(target)
        self._in[target].setdefault(label, set()).add(source)
        self._edge_labels.add(label)

    def remove_edge(self, source: NodeId, label: str, target: NodeId) -> None:
        """Remove an edge if present."""
        out = self._out.get(source, {}).get(label)
        if out is not None:
            out.discard(target)
        inc = self._in.get(target, {}).get(label)
        if inc is not None:
            inc.discard(source)

    def remove_node(self, node: NodeId) -> None:
        """Remove a node and every edge incident to it."""
        if node not in self._labels:
            return
        for label, targets in list(self._out[node].items()):
            for target in list(targets):
                self.remove_edge(node, label, target)
        for label, sources in list(self._in[node].items()):
            for source in list(sources):
                self.remove_edge(source, label, node)
        del self._labels[node]
        del self._out[node]
        del self._in[node]

    # ------------------------------------------------------------------ #
    # inspection
    # ------------------------------------------------------------------ #
    def nodes(self) -> Iterator[NodeId]:
        """Iterate over all node identifiers."""
        return iter(self._labels)

    def node_count(self) -> int:
        """Number of nodes."""
        return len(self._labels)

    def edge_count(self) -> int:
        """Number of labeled edges."""
        return sum(len(ts) for adj in self._out.values() for ts in adj.values())

    def edges(self) -> Iterator[Edge]:
        """Iterate over all edges as ``(source, label, target)`` triples."""
        for source, adjacency in self._out.items():
            for label, targets in adjacency.items():
                for target in targets:
                    yield (source, label, target)

    def has_node(self, node: NodeId) -> bool:
        """``True`` when the node exists."""
        return node in self._labels

    def has_edge(self, source: NodeId, label: str, target: NodeId) -> bool:
        """``True`` when the edge ``source -label-> target`` exists."""
        return target in self._out.get(source, {}).get(label, ())

    def labels(self, node: NodeId) -> FrozenSet[str]:
        """Return the set of labels of *node* (empty if unlabeled)."""
        if node not in self._labels:
            raise GraphError(f"unknown node: {node!r}")
        return frozenset(self._labels[node])

    def has_label(self, node: NodeId, label: str) -> bool:
        """``True`` when *node* carries *label*."""
        return label in self._labels.get(node, ())

    def nodes_with_label(self, label: str) -> Iterator[NodeId]:
        """Iterate over all nodes carrying *label*."""
        for node, labels in self._labels.items():
            if label in labels:
                yield node

    def node_labels(self) -> FrozenSet[str]:
        """Return the set of node labels occurring in the graph."""
        result: Set[str] = set()
        for labels in self._labels.values():
            result |= labels
        return frozenset(result)

    def edge_labels(self) -> FrozenSet[str]:
        """Return the set of edge labels occurring in the graph."""
        return frozenset(
            label
            for adjacency in self._out.values()
            for label, targets in adjacency.items()
            if targets
        )

    def successors(self, node: NodeId, label: SignedLabel | str) -> FrozenSet[NodeId]:
        """R-successors of *node* for a signed edge label R ∈ Σ±.

        A plain string is interpreted as the forward direction.
        """
        if isinstance(label, str):
            label = forward(label)
        if label.direction is Direction.FORWARD:
            return frozenset(self._out.get(node, {}).get(label.label, ()))
        return frozenset(self._in.get(node, {}).get(label.label, ()))

    def out_neighbours(self, node: NodeId) -> Iterator[Tuple[str, NodeId]]:
        """Iterate over ``(edge label, target)`` pairs of outgoing edges."""
        for label, targets in self._out.get(node, {}).items():
            for target in targets:
                yield label, target

    def in_neighbours(self, node: NodeId) -> Iterator[Tuple[str, NodeId]]:
        """Iterate over ``(edge label, source)`` pairs of incoming edges."""
        for label, sources in self._in.get(node, {}).items():
            for source in sources:
                yield label, source

    def neighbours(self, node: NodeId) -> Iterator[Tuple[SignedLabel, NodeId]]:
        """Iterate over ``(signed label, neighbour)`` pairs in both directions."""
        for label, target in self.out_neighbours(node):
            yield forward(label), target
        for label, source in self.in_neighbours(node):
            yield inverse(label), source

    def degree(self, node: NodeId) -> int:
        """Total degree (in + out, counting labels separately)."""
        out_deg = sum(len(ts) for ts in self._out.get(node, {}).values())
        in_deg = sum(len(ss) for ss in self._in.get(node, {}).values())
        return out_deg + in_deg

    def is_empty(self) -> bool:
        """``True`` when the graph has no nodes."""
        return not self._labels

    # ------------------------------------------------------------------ #
    # derived graphs
    # ------------------------------------------------------------------ #
    def copy(self) -> "Graph":
        """Return a deep copy of the graph."""
        clone = Graph()
        for node, labels in self._labels.items():
            clone.add_node(node, labels)
        for source, label, target in self.edges():
            clone.add_edge(source, label, target)
        return clone

    def subgraph(self, nodes: Iterable[NodeId]) -> "Graph":
        """Return the subgraph induced by *nodes*."""
        keep = set(nodes)
        result = Graph()
        for node in keep:
            if node in self._labels:
                result.add_node(node, self._labels[node])
        for source, label, target in self.edges():
            if source in keep and target in keep:
                result.add_edge(source, label, target)
        return result

    def merge_nodes(self, keep: NodeId, drop: NodeId) -> None:
        """Merge node *drop* into node *keep* (labels and edges are unioned).

        This is the operation used when building simple models (Theorem 6.3)
        and by the chase when a functionality constraint forces two
        successors to coincide.
        """
        if keep == drop:
            return
        if keep not in self._labels or drop not in self._labels:
            raise GraphError("both nodes must exist to be merged")
        for label in self._labels[drop]:
            self._labels[keep].add(label)
        for label, target in list(self.out_neighbours(drop)):
            actual_target = keep if target == drop else target
            self.add_edge(keep, label, actual_target)
        for label, source in list(self.in_neighbours(drop)):
            actual_source = keep if source == drop else source
            self.add_edge(actual_source, label, keep)
        self.remove_node(drop)

    def relabel_nodes(self, mapping: Mapping[NodeId, NodeId]) -> "Graph":
        """Return a copy with node identifiers renamed according to *mapping*.

        Identifiers not present in *mapping* are kept.  If the mapping is not
        injective the image nodes are merged.
        """
        result = Graph()
        for node, labels in self._labels.items():
            result.add_node(mapping.get(node, node), labels)
        for source, label, target in self.edges():
            result.add_edge(mapping.get(source, source), label, mapping.get(target, target))
        return result

    def union(self, other: "Graph") -> "Graph":
        """Return the union of two graphs (shared node identifiers coincide)."""
        result = self.copy()
        for node in other.nodes():
            result.add_node(node, other.labels(node))
        for source, label, target in other.edges():
            result.add_edge(source, label, target)
        return result

    def connected_components(self) -> Iterator[Set[NodeId]]:
        """Yield the sets of nodes of the (weakly) connected components."""
        seen: Set[NodeId] = set()
        for start in self._labels:
            if start in seen:
                continue
            component = {start}
            frontier = [start]
            while frontier:
                node = frontier.pop()
                for _, neighbour in self.neighbours(node):
                    if neighbour not in component:
                        component.add(neighbour)
                        frontier.append(neighbour)
            seen |= component
            yield component

    def is_connected(self) -> bool:
        """``True`` when the graph has at most one weakly connected component."""
        components = list(self.connected_components())
        return len(components) <= 1

    # ------------------------------------------------------------------ #
    # comparison
    # ------------------------------------------------------------------ #
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        if set(self._labels) != set(other._labels):
            return False
        for node, labels in self._labels.items():
            if labels != other._labels[node]:
                return False
        return set(self.edges()) == set(other.edges())

    def __hash__(self) -> int:  # graphs are mutable; identity hashing
        return id(self)

    def __len__(self) -> int:
        return len(self._labels)

    def __contains__(self, node: NodeId) -> bool:
        return node in self._labels

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Graph(nodes={self.node_count()}, edges={self.edge_count()})"

    # ------------------------------------------------------------------ #
    # pretty printing
    # ------------------------------------------------------------------ #
    def describe(self, max_nodes: Optional[int] = None) -> str:
        """Return a human-readable multi-line description of the graph."""
        lines = [f"graph with {self.node_count()} nodes and {self.edge_count()} edges"]
        for index, node in enumerate(sorted(self._labels, key=repr)):
            if max_nodes is not None and index >= max_nodes:
                lines.append("  ...")
                break
            labels = ",".join(sorted(self._labels[node])) or "-"
            lines.append(f"  {node!r} [{labels}]")
            for label, target in sorted(self.out_neighbours(node), key=repr):
                lines.append(f"    -{label}-> {target!r}")
        return "\n".join(lines)
