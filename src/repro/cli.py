"""The ``python -m repro`` command line.

Four subcommands over the library's hot paths:

* ``contain`` — one containment test ``P ⊆_S Q``, schema from a spec file
  (the :mod:`repro.schema.parser` DSL) or a built-in workload;
* ``typecheck`` — the Theorem 4.2 analysis for a built-in workload's
  migration (or a transformation/schema file triple);
* ``batch`` — a containment batch through
  :meth:`~repro.engine.ContainmentEngine.check_many` on a chosen backend
  (``serial``/``thread``/``process``), with JSON timing + cache-stats
  reports;
* ``bench`` — the same batch across *all* requested backends, asserting
  fingerprint-identical verdicts and reporting per-backend speedups; with
  ``--suite automata`` it instead reports the compiled-automaton-core
  timings (cold vs memoized compilation, enumeration reuse, prefix
  sharing — harness in :mod:`repro.core.benchmarks`).

Every subcommand accepts ``--json`` (``-`` for stdout, otherwise a path) and
prints a human summary otherwise.  :func:`main` takes an ``argv`` list and
returns an exit code — it never calls ``sys.exit`` itself, so it is directly
callable from tests and executable documentation blocks.

Spec files for ``batch``/``bench`` are JSON documents::

    {
      "schema": "schema S { nodes A; edge A -r-> A [*, *]; }",
      "pairs": [{"left": "p(x) := (r)(x, y)", "right": "q(x) := A(x)"}]
    }
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from .engine import ContainmentEngine, result_fingerprint
from .engine.parallel import default_worker_count
from .rpq.parser import parse_c2rpq
from .schema.parser import parse_schema
from .schema.schema import Schema
from .workloads.batches import BUILTIN_WORKLOADS, containment_batch, workload_schemas

__all__ = ["main"]

BACKENDS = ("serial", "thread", "process")


# --------------------------------------------------------------------------- #
# input loading
# --------------------------------------------------------------------------- #
def _load_spec(path: str) -> Tuple[Schema, List[Tuple[Any, Any]]]:
    document = json.loads(Path(path).read_text(encoding="utf-8"))
    try:
        schema = parse_schema(document["schema"])
        pairs = [
            (parse_c2rpq(entry["left"]), parse_c2rpq(entry["right"]))
            for entry in document["pairs"]
        ]
    except (KeyError, TypeError) as error:
        raise SystemExit(f"spec file {path}: expected {{'schema': ..., 'pairs': [...]}} ({error})")
    return schema, pairs


def _resolve_batch(args: argparse.Namespace) -> Tuple[str, Schema, List[Tuple[Any, Any]]]:
    if args.spec:
        schema, pairs = _load_spec(args.spec)
        return f"spec:{args.spec}", schema, pairs
    schema, pairs = containment_batch(args.workload, length=args.length)
    label = args.workload if args.workload != "synthetic" else f"synthetic(length={args.length})"
    return label, schema, pairs


def _emit(report: Dict[str, Any], destination: Optional[str], summary: str) -> None:
    """Write the JSON *report* (stdout via ``-``) or print the summary."""
    if destination is None:
        print(summary)
        return
    payload = json.dumps(report, indent=2, sort_keys=True)
    if destination == "-":
        print(payload)
    else:
        Path(destination).write_text(payload + "\n", encoding="utf-8")
        print(f"wrote {destination}", file=sys.stderr)


def _batch_fingerprint(results) -> str:
    """One digest summarising every verdict of a batch, order included."""
    import hashlib

    return hashlib.sha256(
        "\x1f".join(result_fingerprint(result) for result in results).encode("utf-8")
    ).hexdigest()


def _run_backend(
    engine: ContainmentEngine,
    backend: str,
    schema: Schema,
    pairs,
    workers: Optional[int],
) -> Tuple[List[Any], float]:
    if backend == "process":
        engine.process_pool(workers).start()  # exclude spawn cost from timings
    started = time.perf_counter()
    results = engine.check_many(pairs, schema=schema, parallel=backend, max_workers=workers)
    return results, time.perf_counter() - started


def _stats_block(engine: ContainmentEngine, backend: str) -> Dict[str, Any]:
    block = {"engine": engine.stats.as_dict()}
    if backend == "process":
        process_stats = engine.process_stats()
        if process_stats is not None:
            block["workers"] = process_stats.as_dict()
    return block


# --------------------------------------------------------------------------- #
# subcommands
# --------------------------------------------------------------------------- #
def _cmd_contain(args: argparse.Namespace) -> int:
    if args.schema_file:
        schema = parse_schema(Path(args.schema_file).read_text(encoding="utf-8"))
    else:
        schema = workload_schemas(args.workload, length=args.length)["source"]
    left = parse_c2rpq(args.left)
    right = parse_c2rpq(args.right)
    engine = ContainmentEngine()
    result = engine.contains(left, right, schema)
    report = {
        "contained": result.contained,
        "regime": result.regime,
        "schema": result.schema_name,
        "left": result.left_name,
        "right": result.right_name,
        "patterns_checked": result.patterns_checked,
        "tbox_size": result.tbox_size,
        "elapsed_seconds": result.elapsed_seconds,
        "fingerprint": result_fingerprint(result),
    }
    _emit(report, args.json, result.summary())
    return 0


def _cmd_typecheck(args: argparse.Namespace) -> int:
    from .analysis import type_check
    from .transform.parser import parse_transformation
    from .workloads import fhir, medical, social

    if args.transformation:
        if not (args.source and args.target):
            raise SystemExit("typecheck: --transformation needs --source and --target")
        transformation = parse_transformation(Path(args.transformation).read_text(encoding="utf-8"))
        source = parse_schema(Path(args.source).read_text(encoding="utf-8"))
        target = parse_schema(Path(args.target).read_text(encoding="utf-8"))
    else:
        migrations = {
            "medical": medical.broken_migration if args.variant == "broken" else medical.migration,
            "fhir": (
                fhir.broken_migration_v3_to_v4
                if args.variant == "broken"
                else fhir.migration_v3_to_v4
            ),
            "social": social.broken_reification if args.variant == "broken" else social.reification,
        }
        if args.workload not in migrations:
            raise SystemExit(
                f"typecheck: workload {args.workload!r} has no packaged migration "
                "(choose medical, fhir or social, or pass --transformation)"
            )
        schemas = workload_schemas(args.workload)
        transformation = migrations[args.workload]()
        source, target = schemas["source"], schemas["target"]

    result = type_check(transformation, source, target)
    report = {
        "well_typed": result.well_typed,
        "transformation": result.transformation_name,
        "source_schema": result.source_schema,
        "target_schema": result.target_schema,
        "signature_errors": result.signature_errors,
        "failed_statements": [str(e.statement) for e in result.failed_statements()],
        "containment_calls": result.containment_calls,
        "elapsed_seconds": result.elapsed_seconds,
    }
    _emit(report, args.json, result.summary())
    return 0 if result.well_typed else 1


def _cmd_batch(args: argparse.Namespace) -> int:
    label, schema, pairs = _resolve_batch(args)
    engine = ContainmentEngine()
    try:
        results, elapsed = _run_backend(engine, args.backend, schema, pairs, args.workers)
        for _ in range(args.repeat - 1):
            results, elapsed = _run_backend(engine, args.backend, schema, pairs, args.workers)
        contained = sum(1 for result in results if result.contained)
        report = {
            "workload": label,
            "backend": args.backend,
            "workers": args.workers or default_worker_count(),
            "tasks": len(pairs),
            "repeat": args.repeat,
            "elapsed_seconds": elapsed,
            "throughput_per_second": len(pairs) / elapsed if elapsed else None,
            "verdicts": {"contained": contained, "not_contained": len(pairs) - contained},
            "fingerprint": _batch_fingerprint(results),
            "stats": _stats_block(engine, args.backend),
        }
        summary = (
            f"{label}: {len(pairs)} containment tests on the {args.backend} backend in "
            f"{elapsed * 1000:.1f} ms ({contained} contained / {len(pairs) - contained} not)"
        )
        _emit(report, args.json, summary)
    finally:
        engine.shutdown()
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    if args.suite == "automata":
        return _cmd_bench_automata(args)
    if args.repeats is not None or args.requests is not None:
        print(
            "bench: --repeats/--requests only apply to --suite automata; ignoring",
            file=sys.stderr,
        )
    label, schema, pairs = _resolve_batch(args)
    backends = [backend.strip() for backend in args.backends.split(",") if backend.strip()]
    unknown = [backend for backend in backends if backend not in BACKENDS]
    if unknown:
        raise SystemExit(f"bench: unknown backend(s) {', '.join(unknown)}")

    runs: Dict[str, Dict[str, Any]] = {}
    fingerprints = {}
    for backend in backends:
        engine = ContainmentEngine()
        try:
            results, elapsed = _run_backend(engine, backend, schema, pairs, args.workers)
            fingerprints[backend] = _batch_fingerprint(results)
            runs[backend] = {
                "elapsed_seconds": elapsed,
                "throughput_per_second": len(pairs) / elapsed if elapsed else None,
                "stats": _stats_block(engine, backend),
            }
        finally:
            engine.shutdown()

    identical = len(set(fingerprints.values())) == 1
    baseline = runs.get("serial") or runs[backends[0]]
    for backend, run in runs.items():
        run["speedup_vs_serial"] = (
            baseline["elapsed_seconds"] / run["elapsed_seconds"] if run["elapsed_seconds"] else None
        )
    report = {
        "workload": label,
        "tasks": len(pairs),
        "workers": args.workers or default_worker_count(),
        "backends": runs,
        "fingerprints": fingerprints,
        "verdicts_identical": identical,
    }
    lines = [f"{label}: {len(pairs)} containment tests"]
    for backend in backends:
        run = runs[backend]
        lines.append(
            f"  {backend:8s} {run['elapsed_seconds'] * 1000:9.1f} ms  "
            f"{run['speedup_vs_serial']:.2f}x vs serial"
        )
    lines.append(f"  verdicts identical across backends: {identical}")
    _emit(report, args.json, "\n".join(lines))
    return 0 if identical else 1


def _cmd_bench_automata(args: argparse.Namespace) -> int:
    """``bench --suite automata`` — the compiled-automaton-core report."""
    from .core import benchmarks

    ignored = []
    if args.workload != "medical":
        ignored.append("--workload")
    if args.length != 8:
        ignored.append("--length")
    if args.spec:
        ignored.append("--spec")
    if args.backends != "serial,thread,process":
        ignored.append("--backends")
    if args.workers is not None:
        ignored.append("--workers")
    if ignored:
        print(
            f"bench: {', '.join(ignored)} do(es) not apply to --suite automata "
            "(it runs a fixed built-in corpus); ignoring",
            file=sys.stderr,
        )
    report = benchmarks.run_report(
        repeats=args.repeats if args.repeats is not None else 5,
        requests=args.requests if args.requests is not None else 50,
    )
    _emit(report, args.json, benchmarks.summary(report))
    return 0


# --------------------------------------------------------------------------- #
# the parser
# --------------------------------------------------------------------------- #
def _add_workload_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workload",
        choices=BUILTIN_WORKLOADS,
        default="medical",
        help="built-in workload (default: medical)",
    )
    parser.add_argument(
        "--length",
        type=int,
        default=8,
        help="chain length for the synthetic workload (default: 8)",
    )


def _add_report_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="write a JSON report to PATH ('-' for stdout) instead of the text summary",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Static analysis of graph database transformations (PODS 2023).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    contain = subparsers.add_parser("contain", help="decide one containment test P ⊆_S Q")
    _add_workload_arguments(contain)
    contain.add_argument("--schema-file", help="schema DSL file (overrides --workload)")
    contain.add_argument("--left", required=True, help='left query, e.g. "p(x) := (r)(x, y)"')
    contain.add_argument("--right", required=True, help='right (acyclic) query, e.g. "q(x) := A(x)"')
    _add_report_argument(contain)
    contain.set_defaults(handler=_cmd_contain)

    typecheck = subparsers.add_parser(
        "typecheck", help="type check a workload migration (Theorem 4.2)"
    )
    _add_workload_arguments(typecheck)
    typecheck.add_argument(
        "--variant",
        choices=("default", "broken"),
        default="default",
        help="use the workload's deliberately broken migration variant",
    )
    typecheck.add_argument("--transformation", help="transformation DSL file")
    typecheck.add_argument("--source", help="source schema DSL file (with --transformation)")
    typecheck.add_argument("--target", help="target schema DSL file (with --transformation)")
    _add_report_argument(typecheck)
    typecheck.set_defaults(handler=_cmd_typecheck)

    batch = subparsers.add_parser("batch", help="run a containment batch on one backend")
    _add_workload_arguments(batch)
    batch.add_argument("--spec", help="JSON spec file (overrides --workload)")
    batch.add_argument(
        "--backend", choices=BACKENDS, default="serial", help="execution backend (default: serial)"
    )
    batch.add_argument("--workers", type=int, default=None, help="worker count for thread/process")
    batch.add_argument(
        "--repeat", type=int, default=1, help="repeat the batch N times, report the last (warm) run"
    )
    _add_report_argument(batch)
    batch.set_defaults(handler=_cmd_batch)

    bench = subparsers.add_parser(
        "bench", help="compare backends on one workload, assert identical verdicts"
    )
    _add_workload_arguments(bench)
    bench.add_argument(
        "--suite",
        choices=("backends", "automata"),
        default="backends",
        help=(
            "benchmark suite: 'backends' compares execution backends on a workload, "
            "'automata' reports the compiled-automaton-core timings (default: backends)"
        ),
    )
    bench.add_argument("--spec", help="JSON spec file (overrides --workload)")
    bench.add_argument(
        "--backends",
        default="serial,thread,process",
        help="comma-separated backends to compare (default: serial,thread,process)",
    )
    bench.add_argument("--workers", type=int, default=None, help="worker count for thread/process")
    bench.add_argument(
        "--repeats",
        type=int,
        default=None,
        help="automata suite: timing repetitions per measurement (default: 5)",
    )
    bench.add_argument(
        "--requests",
        type=int,
        default=None,
        help="automata suite: word-list requests per regex in the enumeration timing (default: 50)",
    )
    _add_report_argument(bench)
    bench.set_defaults(handler=_cmd_bench)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Parse *argv* (default ``sys.argv[1:]``) and run the chosen subcommand."""
    args = build_parser().parse_args(argv)
    return args.handler(args)
