"""The ``python -m repro`` command line.

Seven subcommands over the library's hot paths:

* ``contain`` — one containment test ``P ⊆_S Q``, schema from a spec file
  (the :mod:`repro.schema.parser` DSL) or a built-in workload;
* ``typecheck`` — the Theorem 4.2 analysis for a built-in workload's
  migration (or a transformation/schema file triple);
* ``batch`` — a containment batch through
  :meth:`~repro.engine.ContainmentEngine.check_many` on a chosen backend
  (``serial``/``thread``/``process``), with JSON timing + cache-stats
  reports;
* ``bench`` — the same batch across *all* requested backends, asserting
  fingerprint-identical verdicts and reporting per-backend speedups; with
  ``--suite automata`` it instead reports the compiled-automaton-core
  timings (cold vs memoized compilation, enumeration reuse, prefix
  sharing — harness in :mod:`repro.core.benchmarks`), with
  ``--suite store`` the cold-vs-warm contrast of the disk-persistent
  result store on a mixed workload, and with ``--suite zoo`` the workload
  zoo (:mod:`repro.workloads.zoo`: the seeded property-based corpus plus
  the hardness-derived adversarial families) across backends with
  fingerprint identity as the exit code.  Every bench report embeds a
  ``context`` block (CPU count, Python version, platform, the fixed RNG
  seed) so trend comparisons across runners are interpretable;
* ``cache`` — manage a persistent store file: ``stats``, ``clear``,
  ``export`` (entry metadata as JSON) and ``warm`` (pre-populate from a
  workload or spec file);
* ``serve`` — the long-running containment service (:mod:`repro.service`):
  one warm engine behind a request coalescer, over HTTP
  (``--port``/``--host``, endpoints ``/contain``, ``/batch``, ``/healthz``,
  ``/stats``) or newline-delimited JSON on stdio (``--stdio``), with
  ``--parallel``/``--workers`` for the batch backend, ``--persist`` for the
  disk store and ``--coalesce-window``/``--max-batch`` for the
  micro-batching shape.  ``bench --suite service`` measures it: coalesced
  versus per-request throughput under closed-loop client threads with
  p50/p95/p99 latency percentiles per mode, verdict fingerprints asserted
  identical to a serial baseline;
* ``replay`` — record and replay NDJSON traffic traces
  (:mod:`repro.workloads.replay`): ``replay --record trace.ndjson``
  generates a seeded multi-tenant trace (hot/cold mixes, bursts,
  duplicate storms) stamped with expected ``result_fingerprint``s, and
  ``replay trace.ndjson`` re-runs it through a fresh service, asserting
  every verdict bit-identical to the recording (the exit code) and
  reporting latency percentiles plus the coalescer's dedup counters.

``contain``, ``typecheck`` and ``batch`` accept ``--persist PATH`` to put
the disk store behind the engine (see :mod:`repro.store`); ``bench`` uses
``--persist`` for the store suite's file.

Every subcommand accepts ``--json`` (``-`` for stdout, otherwise a path) and
prints a human summary otherwise.  :func:`main` takes an ``argv`` list and
returns an exit code — it never calls ``sys.exit`` itself, so it is directly
callable from tests and executable documentation blocks.

Spec files for ``batch``/``bench``/``cache warm`` are JSON documents::

    {
      "schema": "schema S { nodes A; edge A -r-> A [*, *]; }",
      "pairs": [{"left": "p(x) := (r)(x, y)", "right": "q(x) := A(x)"}]
    }
"""

from __future__ import annotations

import argparse
import contextlib
import json
import os
import platform
import random
import sys
import tempfile
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from .engine import ContainmentEngine, result_fingerprint
from .engine.parallel import default_worker_count
from .rpq.parser import parse_c2rpq
from .schema.parser import parse_schema
from .schema.schema import Schema
from .store import ResultStore
from .workloads.batches import (
    BUILTIN_WORKLOADS,
    containment_batch,
    mixed_batch,
    workload_schemas,
)

__all__ = ["main"]

BACKENDS = ("serial", "thread", "process", "auto")

#: The RNG seed recorded in (and applied before) every bench report, so any
#: randomised corpus or tie-breaking is reproducible run to run.
BENCH_SEED = 1729


def _context_block() -> Dict[str, Any]:
    """Machine/runtime metadata embedded in every bench JSON report.

    Timings from different runners are only comparable with this block in
    hand; the trend tracker (tools/bench_trend.py) prints it alongside any
    regression warning.  Seeding is a side effect on purpose: every bench
    run starts from the same RNG state.
    """
    random.seed(BENCH_SEED)
    return {
        "cpu_count": os.cpu_count(),
        "python_version": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "rng_seed": BENCH_SEED,
    }


# --------------------------------------------------------------------------- #
# input loading
# --------------------------------------------------------------------------- #
def _load_spec(path: str) -> Tuple[Schema, List[Tuple[Any, Any]]]:
    document = json.loads(Path(path).read_text(encoding="utf-8"))
    try:
        schema = parse_schema(document["schema"])
        pairs = [
            (parse_c2rpq(entry["left"]), parse_c2rpq(entry["right"]))
            for entry in document["pairs"]
        ]
    except (KeyError, TypeError) as error:
        raise SystemExit(f"spec file {path}: expected {{'schema': ..., 'pairs': [...]}} ({error})")
    return schema, pairs


def _resolve_batch(args: argparse.Namespace) -> Tuple[str, Schema, List[Tuple[Any, Any]]]:
    if args.spec:
        schema, pairs = _load_spec(args.spec)
        return f"spec:{args.spec}", schema, pairs
    schema, pairs = containment_batch(args.workload, length=args.length)
    label = args.workload if args.workload != "synthetic" else f"synthetic(length={args.length})"
    return label, schema, pairs


def _emit(report: Dict[str, Any], destination: Optional[str], summary: str) -> None:
    """Write the JSON *report* (stdout via ``-``) or print the summary."""
    if destination is None:
        print(summary)
        return
    payload = json.dumps(report, indent=2, sort_keys=True)
    if destination == "-":
        print(payload)
    else:
        Path(destination).write_text(payload + "\n", encoding="utf-8")
        print(f"wrote {destination}", file=sys.stderr)


def _batch_fingerprint(results) -> str:
    """One digest summarising every verdict of a batch, order included."""
    import hashlib

    return hashlib.sha256(
        "\x1f".join(result_fingerprint(result) for result in results).encode("utf-8")
    ).hexdigest()


def _run_backend(
    engine: ContainmentEngine,
    backend: str,
    schema: Schema,
    pairs,
    workers: Optional[int],
) -> Tuple[List[Any], float]:
    if backend == "process":
        engine.process_pool(workers).start()  # exclude spawn cost from timings
    started = time.perf_counter()
    results = engine.check_many(pairs, schema=schema, parallel=backend, max_workers=workers)
    return results, time.perf_counter() - started


def _stats_block(engine: ContainmentEngine, backend: str) -> Dict[str, Any]:
    block = {"engine": engine.stats.as_dict()}
    if backend in ("process", "auto"):
        process_stats = engine.process_stats()
        if process_stats is not None:
            block["workers"] = process_stats.as_dict()
        transport = engine.transport_report()
        if transport is not None:
            block["transport"] = transport
    if backend == "auto":
        block["adaptive"] = engine.adaptive_report()
    return block


# --------------------------------------------------------------------------- #
# subcommands
# --------------------------------------------------------------------------- #
def _cmd_contain(args: argparse.Namespace) -> int:
    if args.schema_file:
        schema = parse_schema(Path(args.schema_file).read_text(encoding="utf-8"))
    else:
        schema = workload_schemas(args.workload, length=args.length)["source"]
    left = parse_c2rpq(args.left)
    right = parse_c2rpq(args.right)
    with ContainmentEngine(persist=args.persist) as engine:
        result = engine.contains(left, right, schema)
        report = {
            "contained": result.contained,
            "regime": result.regime,
            "schema": result.schema_name,
            "left": result.left_name,
            "right": result.right_name,
            "patterns_checked": result.patterns_checked,
            "tbox_size": result.tbox_size,
            "elapsed_seconds": result.elapsed_seconds,
            "fingerprint": result_fingerprint(result),
        }
        if engine.store is not None:
            report["store"] = engine.store.describe()
        _emit(report, args.json, result.summary())
    return 0


def _cmd_typecheck(args: argparse.Namespace) -> int:
    from .analysis import type_check
    from .transform.parser import parse_transformation
    from .workloads import fhir, medical, social

    if args.transformation:
        if not (args.source and args.target):
            raise SystemExit("typecheck: --transformation needs --source and --target")
        transformation = parse_transformation(Path(args.transformation).read_text(encoding="utf-8"))
        source = parse_schema(Path(args.source).read_text(encoding="utf-8"))
        target = parse_schema(Path(args.target).read_text(encoding="utf-8"))
    else:
        migrations = {
            "medical": medical.broken_migration if args.variant == "broken" else medical.migration,
            "fhir": (
                fhir.broken_migration_v3_to_v4
                if args.variant == "broken"
                else fhir.migration_v3_to_v4
            ),
            "social": social.broken_reification if args.variant == "broken" else social.reification,
        }
        if args.workload not in migrations:
            raise SystemExit(
                f"typecheck: workload {args.workload!r} has no packaged migration "
                "(choose medical, fhir or social, or pass --transformation)"
            )
        schemas = workload_schemas(args.workload)
        transformation = migrations[args.workload]()
        source, target = schemas["source"], schemas["target"]

    engine = ContainmentEngine(persist=args.persist) if args.persist else None
    with engine if engine is not None else contextlib.nullcontext():
        result = type_check(transformation, source, target, engine=engine)
        report = {
            "well_typed": result.well_typed,
            "transformation": result.transformation_name,
            "source_schema": result.source_schema,
            "target_schema": result.target_schema,
            "signature_errors": result.signature_errors,
            "failed_statements": [str(e.statement) for e in result.failed_statements()],
            "containment_calls": result.containment_calls,
            "elapsed_seconds": result.elapsed_seconds,
        }
        if engine is not None and engine.store is not None:
            report["store"] = engine.store.describe()
        _emit(report, args.json, result.summary())
    return 0 if result.well_typed else 1


def _cmd_batch(args: argparse.Namespace) -> int:
    label, schema, pairs = _resolve_batch(args)
    with ContainmentEngine(persist=args.persist) as engine:
        results, elapsed = _run_backend(engine, args.backend, schema, pairs, args.workers)
        for _ in range(args.repeat - 1):
            results, elapsed = _run_backend(engine, args.backend, schema, pairs, args.workers)
        contained = sum(1 for result in results if result.contained)
        report = {
            "workload": label,
            "backend": args.backend,
            "workers": args.workers or default_worker_count(),
            "tasks": len(pairs),
            "repeat": args.repeat,
            "elapsed_seconds": elapsed,
            "throughput_per_second": len(pairs) / elapsed if elapsed else None,
            "verdicts": {"contained": contained, "not_contained": len(pairs) - contained},
            "fingerprint": _batch_fingerprint(results),
            "stats": _stats_block(engine, args.backend),
        }
        if engine.store is not None:
            report["store"] = engine.store.describe()
        summary = (
            f"{label}: {len(pairs)} containment tests on the {args.backend} backend in "
            f"{elapsed * 1000:.1f} ms ({contained} contained / {len(pairs) - contained} not)"
        )
        _emit(report, args.json, summary)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """``serve`` — run the containment service over HTTP or stdio."""
    from .service import ContainmentService, make_server, serve_stdio

    service = ContainmentService(
        parallel=args.parallel,
        workers=args.workers,
        persist=args.persist,
        coalesce_window=args.coalesce_window / 1000.0,
        max_batch=args.max_batch,
    )
    with service:
        if args.stdio:
            try:
                counts = serve_stdio(service)
            except KeyboardInterrupt:
                # the same clean Ctrl-C contract as the HTTP transport: the
                # with-block drains the coalescer and closes the engine
                print("serve: interrupted, shutting down", file=sys.stderr)
                return 0
            print(
                f"serve: handled {counts['requests']} requests "
                f"({counts['errors']} errors) on stdio",
                file=sys.stderr,
            )
            return 0
        server = make_server(service, args.host, args.port, verbose=args.verbose)
        # the bound port on its own line, machine-readable: smoke tests pass
        # --port 0 and parse this to find the ephemeral port
        print(f"repro service listening on {server.url}", flush=True)
        print(
            f"  backend={service.backend} window={args.coalesce_window:g}ms "
            f"max-batch={args.max_batch} persist={args.persist or 'off'}",
            file=sys.stderr,
        )
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            print("serve: interrupted, shutting down", file=sys.stderr)
        finally:
            # serve_forever has already returned, so no cross-thread
            # shutdown() is needed; release the socket, then the `with`
            # closes the service (coalescer → engine → pool → store)
            server.server_close()
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    if args.suite == "automata":
        return _cmd_bench_automata(args)
    if args.suite == "store":
        return _cmd_bench_store(args)
    if args.suite == "service":
        return _cmd_bench_service(args)
    if args.suite == "zoo":
        return _cmd_bench_zoo(args)
    if args.suite == "evolve":
        return _cmd_bench_evolve(args)
    if args.repeats is not None or args.requests is not None:
        print(
            "bench: --repeats/--requests only apply to --suite "
            "automata/service/zoo/evolve; ignoring",
            file=sys.stderr,
        )
    if args.persist:
        print(
            "bench: --persist only applies to --suite store (a shared store would "
            "warm later backends and skew the comparison); ignoring",
            file=sys.stderr,
        )
    label, schema, pairs = _resolve_batch(args)
    backends = [backend.strip() for backend in args.backends.split(",") if backend.strip()]
    unknown = [backend for backend in backends if backend not in BACKENDS]
    if unknown:
        raise SystemExit(f"bench: unknown backend(s) {', '.join(unknown)}")

    context = _context_block()  # seeds the RNG before any backend runs
    runs: Dict[str, Dict[str, Any]] = {}
    fingerprints = {}
    for backend in backends:
        with ContainmentEngine() as engine:
            results, elapsed = _run_backend(engine, backend, schema, pairs, args.workers)
            fingerprints[backend] = _batch_fingerprint(results)
            runs[backend] = {
                "elapsed_seconds": elapsed,
                "throughput_per_second": len(pairs) / elapsed if elapsed else None,
                "stats": _stats_block(engine, backend),
            }

    identical = len(set(fingerprints.values())) == 1
    baseline = runs.get("serial") or runs[backends[0]]
    for backend, run in runs.items():
        run["speedup_vs_serial"] = (
            baseline["elapsed_seconds"] / run["elapsed_seconds"] if run["elapsed_seconds"] else None
        )
    report = {
        "suite": "backends",
        "workload": label,
        "tasks": len(pairs),
        "workers": args.workers or default_worker_count(),
        "backends": runs,
        "fingerprints": fingerprints,
        "verdicts_identical": identical,
        "context": context,
    }
    lines = [f"{label}: {len(pairs)} containment tests"]
    for backend in backends:
        run = runs[backend]
        speedup = run["speedup_vs_serial"]
        lines.append(
            f"  {backend:8s} {run['elapsed_seconds'] * 1000:9.1f} ms  "
            f"{f'{speedup:.2f}x' if speedup is not None else 'inf'} vs serial"
        )
    lines.append(f"  verdicts identical across backends: {identical}")
    _emit(report, args.json, "\n".join(lines))
    return 0 if identical else 1


def _cmd_bench_automata(args: argparse.Namespace) -> int:
    """``bench --suite automata`` — the compiled-automaton-core report."""
    from .core import benchmarks

    ignored = []
    if args.workload != "medical":
        ignored.append("--workload")
    if args.length != 8:
        ignored.append("--length")
    if args.spec:
        ignored.append("--spec")
    if args.backends != "serial,thread,process":
        ignored.append("--backends")
    if args.workers is not None:
        ignored.append("--workers")
    if args.persist:
        ignored.append("--persist")
    if ignored:
        print(
            f"bench: {', '.join(ignored)} do(es) not apply to --suite automata "
            "(it runs a fixed built-in corpus); ignoring",
            file=sys.stderr,
        )
    context = _context_block()
    report = benchmarks.run_report(
        repeats=args.repeats if args.repeats is not None else 5,
        requests=args.requests if args.requests is not None else 50,
    )
    report["context"] = context
    _emit(report, args.json, benchmarks.summary(report))
    return 0


def _cmd_bench_store(args: argparse.Namespace) -> int:
    """``bench --suite store`` — cold vs persistent-warm on a mixed workload.

    Three passes over the same mixed-workload batch, rebuilt from scratch
    each time (fresh query/schema objects, fresh engine, cleared compile
    memo — everything a new process would not have):

    1. a **baseline** run with no store at all;
    2. a **cold** run against an empty store file (solves + writes back);
    3. a **warm** run against that now-populated file (disk replays).

    The headline number is ``speedup`` (cold / warm); the suite also asserts
    the three passes fingerprint-identical, which is the exit code.
    """
    from .core import clear_compile_memo

    ignored = []
    if args.backends != "serial,thread,process":
        ignored.append("--backends")
    if args.workers is not None:
        ignored.append("--workers")
    if args.repeats is not None or args.requests is not None:
        ignored.append("--repeats/--requests")
    if args.spec:
        ignored.append("--spec")
    if args.workload != "medical":
        ignored.append("--workload")
    if ignored:
        print(
            f"bench: {', '.join(ignored)} do(es) not apply to --suite store "
            "(it runs the mixed workload serially); ignoring",
            file=sys.stderr,
        )
    context = _context_block()

    temp_dir: Optional[tempfile.TemporaryDirectory] = None
    if args.persist:
        store_path = Path(args.persist)
        scratch = ResultStore(store_path)
        dropped = scratch.clear()
        scratch.close()
        if dropped:
            print(
                f"bench: cleared {dropped} entries from {store_path} for a cold start",
                file=sys.stderr,
            )
    else:
        temp_dir = tempfile.TemporaryDirectory(prefix="repro-bench-store-")
        store_path = Path(temp_dir.name) / "store.db"

    def run(persist: Optional[Path]) -> Tuple[str, float, Dict[str, Any]]:
        requests = mixed_batch(length=args.length)
        clear_compile_memo()
        with ContainmentEngine(persist=persist) as engine:
            if engine.store is not None and engine.store.disabled:
                # measuring "cold vs warm" against a store that never opened
                # would report a plausible ~1x number that measured nothing
                raise SystemExit(
                    f"bench: cannot open store {persist}: {engine.store.disabled_reason}"
                )
            started = time.perf_counter()
            results = engine.check_many(requests)
            elapsed = time.perf_counter() - started
            block: Dict[str, Any] = {"elapsed_seconds": elapsed}
            if engine.store is not None:
                block["store"] = engine.store.stats.as_dict()
            return _batch_fingerprint(results), elapsed, block

    try:
        tasks = len(mixed_batch(length=args.length))
        baseline_fp, baseline_seconds, baseline_block = run(None)
        cold_fp, cold_seconds, cold_block = run(store_path)
        warm_fp, warm_seconds, warm_block = run(store_path)
        identical = baseline_fp == cold_fp == warm_fp
        store_view = ResultStore(store_path, mode="ro")
        report = {
            "suite": "store",
            "workload": f"mixed(length={args.length})",
            "tasks": tasks,
            "baseline": baseline_block,
            "cold": cold_block,
            "warm": warm_block,
            "speedup": cold_seconds / warm_seconds if warm_seconds else None,
            "store": {
                "path": str(store_path),
                "file_bytes": store_view.file_size(),
                "tiers": store_view.counts(),
            },
            "fingerprints_identical": identical,
            "context": context,
        }
        store_view.close()
        speedup_text = f"{report['speedup']:.1f}x" if report["speedup"] is not None else "inf"
        summary = (
            f"persistent store: {tasks} mixed containment tests — "
            f"baseline {baseline_seconds * 1000:.1f} ms, "
            f"cold {cold_seconds * 1000:.1f} ms, warm {warm_seconds * 1000:.1f} ms "
            f"({speedup_text} warm speedup)\n"
            f"  verdicts identical across baseline/cold/warm: {identical}"
        )
        _emit(report, args.json, summary)
    finally:
        if temp_dir is not None:
            temp_dir.cleanup()
    return 0 if identical else 1


def _cmd_bench_zoo(args: argparse.Namespace) -> int:
    """``bench --suite zoo`` — the workload zoo across execution backends.

    Runs the full zoo corpus (:func:`repro.workloads.zoo.zoo_corpus`: the
    seeded property-based pairs plus the tree-device and ATM-fragment
    adversarial families) through every requested backend on a fresh
    engine, and asserts the flattened verdict fingerprint identical across
    backends — the differential check of ``tests/test_differential.py`` as
    a runnable benchmark.  ``--requests`` scales the property corpus
    (pairs ≈ requests; the adversarial families ride along at fixed size).
    """
    from .workloads.zoo import zoo_corpus

    ignored = []
    if args.spec:
        ignored.append("--spec")
    if args.workload != "medical":
        ignored.append("--workload")
    if args.length != 8:
        ignored.append("--length")
    if args.repeats is not None:
        ignored.append("--repeats")
    if args.persist:
        ignored.append("--persist")
    if ignored:
        print(
            f"bench: {', '.join(ignored)} do(es) not apply to --suite zoo "
            "(it runs the seeded zoo corpus); ignoring",
            file=sys.stderr,
        )
    backends = [backend.strip() for backend in args.backends.split(",") if backend.strip()]
    unknown = [backend for backend in backends if backend not in BACKENDS]
    if unknown:
        raise SystemExit(f"bench: unknown backend(s) {', '.join(unknown)}")

    context = _context_block()
    property_pairs = args.requests if args.requests is not None else 72
    queries_per_schema = 12
    schemas = max(1, property_pairs // queries_per_schema)
    corpus = zoo_corpus(schemas=schemas, queries_per_schema=queries_per_schema)
    requests = [
        (left, right, schema) for family in corpus.values() for left, right, schema in family
    ]

    runs: Dict[str, Dict[str, Any]] = {}
    fingerprints: Dict[str, str] = {}
    for backend in backends:
        with ContainmentEngine() as engine:
            results, elapsed = _run_backend(engine, backend, None, requests, args.workers)
            fingerprints[backend] = _batch_fingerprint(results)
            runs[backend] = {
                "elapsed_seconds": elapsed,
                "throughput_per_second": len(requests) / elapsed if elapsed else None,
                "stats": _stats_block(engine, backend),
            }
    identical = len(set(fingerprints.values())) == 1
    baseline = runs.get("serial") or runs[backends[0]]
    for run in runs.values():
        run["speedup_vs_serial"] = (
            baseline["elapsed_seconds"] / run["elapsed_seconds"] if run["elapsed_seconds"] else None
        )
    report = {
        "suite": "zoo",
        "families": {name: {"tasks": len(family)} for name, family in corpus.items()},
        "tasks": len(requests),
        "workers": args.workers or default_worker_count(),
        "backends": runs,
        "fingerprints": fingerprints,
        "verdicts_identical": identical,
        "context": context,
    }
    family_text = ", ".join(f"{name}: {len(family)}" for name, family in corpus.items())
    lines = [f"zoo: {len(requests)} containment tests ({family_text})"]
    for backend in backends:
        run = runs[backend]
        speedup = run["speedup_vs_serial"]
        lines.append(
            f"  {backend:8s} {run['elapsed_seconds'] * 1000:9.1f} ms  "
            f"{f'{speedup:.2f}x' if speedup is not None else 'inf'} vs serial"
        )
    lines.append(f"  verdicts identical across backends: {identical}")
    _emit(report, args.json, "\n".join(lines))
    return 0 if identical else 1


def _cmd_bench_evolve(args: argparse.Namespace) -> int:
    """``bench --suite evolve`` — warm ``evolve()`` versus a cold re-run.

    One schema edit, measured twice: run the heavy evolution corpus
    (:func:`repro.workloads.zoo.heavy_evolution_corpus` — wide balanced-union
    regexes where automaton compilation dominates) against the old schema,
    call :meth:`~repro.engine.ContainmentEngine.evolve` to the single-axiom
    edit, and re-run against the new schema on (a) the evolved engine and
    (b) a fresh engine with the process-wide compile memo cleared.  Verdict
    fingerprints are asserted identical between the two before any timing
    claim; the exit code reports that identity, the speedup is data for the
    trend tracker (the hard ≥2x gate lives in
    ``benchmarks/bench_schema_evolution.py``).
    """
    from .chase.solver import SatisfiabilityConfig
    from .containment.solver import ContainmentConfig
    from .core import clear_compile_memo
    from .workloads.zoo import HEAVY_EVOLUTION_WORD_CAP, heavy_evolution_corpus

    ignored = []
    if args.spec:
        ignored.append("--spec")
    if args.workload != "medical":
        ignored.append("--workload")
    if args.length != 8:
        ignored.append("--length")
    if args.persist:
        ignored.append("--persist")
    if args.backends != "serial,thread,process":
        ignored.append("--backends")
    if ignored:
        print(
            f"bench: {', '.join(ignored)} do(es) not apply to --suite evolve "
            "(it runs the seeded heavy evolution corpus serially); ignoring",
            file=sys.stderr,
        )

    context = _context_block()
    queries = args.requests if args.requests is not None else 8
    old_schema, new_schema, pairs = heavy_evolution_corpus(queries=queries)
    config = ContainmentConfig(
        satisfiability=SatisfiabilityConfig(max_words_per_atom=HEAVY_EVOLUTION_WORD_CAP)
    )

    def run(engine: ContainmentEngine, schema: Schema) -> Tuple[List[Any], float]:
        started = time.perf_counter()
        results = [engine.contains(left, right, schema, config) for left, right in pairs]
        return results, time.perf_counter() - started

    clear_compile_memo()
    engine = ContainmentEngine()
    try:
        _, warm_old_seconds = run(engine, old_schema)
        evolve_report = engine.evolve(old_schema, new_schema)
        warm_results, warm_seconds = run(engine, new_schema)
    finally:
        engine.close()
    clear_compile_memo()
    cold_engine = ContainmentEngine()
    try:
        cold_results, cold_seconds = run(cold_engine, new_schema)
    finally:
        cold_engine.close()

    identical = _batch_fingerprint(warm_results) == _batch_fingerprint(cold_results)
    speedup = cold_seconds / warm_seconds if warm_seconds else None
    report = {
        "suite": "evolve",
        "tasks": len(pairs),
        "evolve": evolve_report.as_dict(),
        "warm_old_seconds": warm_old_seconds,
        "warm_seconds": warm_seconds,
        "cold_seconds": cold_seconds,
        "speedup": speedup,
        "verdicts_identical": identical,
        "context": context,
    }
    speedup_text = f"{speedup:.1f}x" if speedup is not None else "inf"
    summary = (
        f"evolve: {len(pairs)} containment tests across one schema edit — "
        f"old-schema warm-up {warm_old_seconds * 1000:.1f} ms, "
        f"post-evolve {warm_seconds * 1000:.1f} ms, "
        f"cold re-run {cold_seconds * 1000:.1f} ms ({speedup_text} warm speedup)\n"
        + "\n".join("  " + line for line in evolve_report.summary().splitlines())
        + f"\n  verdicts identical warm/cold: {identical}"
    )
    _emit(report, args.json, summary)
    return 0 if identical else 1


def _cmd_bench_service(args: argparse.Namespace) -> int:
    """``bench --suite service`` — coalesced versus per-request throughput.

    Closed-loop client threads replay the same deterministic mixed-schema
    request stream (:func:`repro.workloads.streams.request_stream`) through
    two freshly started services:

    1. **per-request** — coalescing disabled (zero window, batch size 1),
       serial backend: every request is one engine call, the single-shot
       shape a caller pays today;
    2. **coalesced** — the coalescing window and the service's default
       ``auto`` backend: the service micro-batches the concurrent clients
       into ``check_many`` waves, and the adaptive selector fans each wave
       out to the worker pool only when its measured per-item solve cost
       beats the transport cost (on a small box it simply stays serial —
       the honest choice the old pinned-``process`` mode got wrong).

    Both modes start cold (fresh engine, cleared compile memo).  The
    headline is ``speedup`` (per-request / coalesced elapsed); the exit
    code is fingerprint identity of *both* modes against a serial
    ``check_many`` baseline — the ≥ 2× gate itself lives in
    ``benchmarks/bench_service_throughput.py``, which skips on < 4 cores.
    """
    from .core import clear_compile_memo
    from .service import ContainmentService
    from .workloads.replay import latency_percentiles
    from .workloads.streams import closed_loop, request_stream

    ignored = []
    if args.backends != "serial,thread,process":
        ignored.append("--backends")
    if args.repeats is not None:
        ignored.append("--repeats")
    if args.spec:
        ignored.append("--spec")
    if args.workload != "medical":
        ignored.append("--workload")
    if args.persist:
        ignored.append("--persist")
    if ignored:
        print(
            f"bench: {', '.join(ignored)} do(es) not apply to --suite service "
            "(it replays the fixed mixed-schema request stream); ignoring",
            file=sys.stderr,
        )
    context = _context_block()
    request_count = args.requests if args.requests is not None else 96
    clients = args.clients
    workers = args.workers or min(os.cpu_count() or 1, 8)

    baseline_stream = request_stream(request_count, length=args.length)
    with ContainmentEngine() as engine:
        baseline = engine.check_many([(left, right, schema) for left, right, schema in baseline_stream])
    baseline_fps = [result_fingerprint(result) for result in baseline]

    def run_mode(window_seconds: float, max_batch: int, parallel: str) -> Tuple[List[str], float, Dict[str, Any]]:
        stream = request_stream(request_count, length=args.length)
        clear_compile_memo()
        latencies = [0.0] * len(stream)
        with ContainmentService(
            parallel=parallel,
            workers=workers,
            coalesce_window=window_seconds,
            max_batch=max_batch,
        ) as service:

            def call(indexed):
                index, (left, right, schema) = indexed
                begun = time.perf_counter()
                result = service.coalescer.check(left, right, schema)
                latencies[index] = time.perf_counter() - begun
                return result

            started = time.perf_counter()
            results = closed_loop(list(enumerate(stream)), call, clients=clients)
            elapsed = time.perf_counter() - started
            block = {
                "elapsed_seconds": elapsed,
                "throughput_per_second": len(stream) / elapsed if elapsed else None,
                "latency": latency_percentiles(latencies),
                "coalescer": service.coalescer.stats.as_dict(),
            }
            return [result_fingerprint(result) for result in results], elapsed, block

    per_request_fps, per_request_seconds, per_request_block = run_mode(0.0, 1, "serial")
    coalesced_fps, coalesced_seconds, coalesced_block = run_mode(
        args.coalesce_window / 1000.0, args.max_batch, "auto"
    )
    identical = per_request_fps == baseline_fps and coalesced_fps == baseline_fps
    report = {
        "suite": "service",
        "workload": f"stream(requests={request_count}, length={args.length})",
        "requests": request_count,
        "clients": clients,
        "workers": workers,
        "coalesce_window_ms": args.coalesce_window,
        "max_batch": args.max_batch,
        "per_request": per_request_block,
        "coalesced": coalesced_block,
        "speedup": per_request_seconds / coalesced_seconds if coalesced_seconds else None,
        "fingerprints_identical": identical,
        "context": context,
    }
    speedup_text = f"{report['speedup']:.2f}x" if report["speedup"] is not None else "inf"
    summary = (
        f"service: {request_count} streamed requests from {clients} closed-loop clients — "
        f"per-request {per_request_seconds * 1000:.1f} ms, "
        f"coalesced {coalesced_seconds * 1000:.1f} ms ({speedup_text} coalesced speedup, "
        f"{coalesced_block['coalescer']['batches']} batches, "
        f"{coalesced_block['coalescer']['deduplicated']} deduplicated)\n"
        f"  coalesced latency p50/p95/p99: "
        f"{coalesced_block['latency']['p50_seconds'] * 1000:.1f} / "
        f"{coalesced_block['latency']['p95_seconds'] * 1000:.1f} / "
        f"{coalesced_block['latency']['p99_seconds'] * 1000:.1f} ms\n"
        f"  verdicts identical to the serial baseline: {identical}"
    )
    _emit(report, args.json, summary)
    return 0 if identical else 1


def _cmd_replay(args: argparse.Namespace) -> int:
    """``replay`` — record or replay an NDJSON traffic trace.

    ``--record`` generates a seeded multi-tenant trace, stamps every line
    with its expected ``result_fingerprint`` from a serial baseline (unless
    ``--no-stamp``) and writes it to the trace path.  Without ``--record``,
    the trace is replayed through a fresh in-process service and every
    stamped line's fingerprint is compared bit-for-bit; any mismatch is a
    determinism violation and the exit code is 1.
    """
    from .service import ContainmentService
    from .workloads.replay import (
        generate_trace,
        read_trace,
        replay_trace,
        stamp_expected,
        write_trace,
    )

    path = Path(args.trace)
    if args.record:
        trace = generate_trace(args.requests, seed=args.seed, tenants=args.tenants)
        if not args.no_stamp:
            trace = stamp_expected(trace)
        write_trace(trace, path)
        stamped = sum(1 for request in trace.requests if request.expected is not None)
        report = {"trace": str(path), "meta": trace.meta,
                  "unique_payloads": trace.unique_payloads(), "stamped": stamped}
        _emit(report, args.json,
              f"{path}: recorded {len(trace)} requests "
              f"({trace.unique_payloads()} unique payloads, {stamped} stamped, "
              f"seed {args.seed})")
        return 0

    trace = read_trace(path)
    if not trace.requests:
        raise SystemExit(f"replay: {path} holds no requests")
    if args.stamp:
        trace = stamp_expected(trace)
    with ContainmentService(
        parallel=args.parallel,
        workers=args.workers,
        persist=args.persist,
        coalesce_window=args.coalesce_window / 1000.0,
        max_batch=args.max_batch,
    ) as service:
        outcome = replay_trace(service, trace, clients=args.clients, pace=args.pace)
        stats = service.stats_report()
    report = {
        "trace": str(path),
        "meta": trace.meta,
        "backend": service.backend,
        **outcome.as_dict(),
        "coalescer": stats["coalescer"],
    }
    latency = report["latency"]
    verdict_text = (
        f"all {report['stamped']} stamped fingerprints replayed bit-identically"
        if outcome.matches
        else f"{len(outcome.mismatches)} fingerprint MISMATCH(ES) at lines {outcome.mismatches}"
    )
    summary = (
        f"{path}: replayed {len(trace)} requests from {args.clients} clients on the "
        f"{service.backend} backend in {outcome.elapsed_seconds * 1000:.1f} ms "
        f"({stats['coalescer']['deduplicated']} deduplicated)\n"
        f"  latency p50/p95/p99: {latency['p50_seconds'] * 1000:.1f} / "
        f"{latency['p95_seconds'] * 1000:.1f} / {latency['p99_seconds'] * 1000:.1f} ms\n"
        f"  {verdict_text}"
    )
    _emit(report, args.json, summary)
    return 0 if outcome.matches else 1


def _cmd_cache(args: argparse.Namespace) -> int:
    """``cache stats|clear|export|warm|invalidate|evolve`` — manage a store file.

    ``invalidate`` renders the structured
    :class:`~repro.engine.InvalidationReport` and ``evolve`` the
    :class:`~repro.engine.EvolveReport` for a store-backed engine; both run
    against a fresh engine, so their in-memory tiers are empty and the
    interesting numbers are the store rows dropped/written.
    """
    path = Path(args.persist)

    if args.cache_command == "stats":
        store = ResultStore(path, mode="ro")
        report = store.describe()
        tiers = report["tiers"]
        if store.disabled:
            summary = f"{path}: store unavailable ({store.disabled_reason})"
        else:
            entries = sum(tiers.values())
            tier_text = ", ".join(f"{tier}: {count}" for tier, count in tiers.items()) or "empty"
            summary = (
                f"{path}: {entries} entries ({tier_text}), "
                f"{report['file_bytes'] / 1024:.1f} KiB, "
                f"format v{report['meta'].get('store_format_version', '?')} / "
                f"library {report['meta'].get('library_version', '?')}"
            )
        store.close()
        _emit(report, args.json, summary)
        return 0

    if args.cache_command == "clear":
        store = ResultStore(path)
        if store.disabled:
            print(f"cache clear: {path}: {store.disabled_reason}", file=sys.stderr)
            store.close()
            return 1
        dropped = store.clear(args.tier)
        store.close()
        scope = f"tier {args.tier!r}" if args.tier else "all tiers"
        _emit({"path": str(path), "dropped": dropped, "tier": args.tier},
              args.json, f"{path}: dropped {dropped} entries ({scope})")
        return 0

    if args.cache_command == "export":
        store = ResultStore(path, mode="ro")
        report = {"store": store.describe(), "entries": store.entries()}
        disabled = store.disabled
        store.close()
        if disabled:
            print(f"cache export: {path}: {report['store']['disabled_reason']}", file=sys.stderr)
            return 1
        _emit(report, args.json or "-",
              f"{path}: {len(report['entries'])} entries")  # export defaults to stdout JSON
        return 0

    if args.cache_command == "warm":
        label, schema, pairs = _resolve_batch(args)
        with ContainmentEngine(persist=path) as engine:
            started = time.perf_counter()
            engine.check_many(pairs, schema=schema)
            elapsed = time.perf_counter() - started
            store_block = engine.store.describe()
            report = {
                "path": str(path),
                "workload": label,
                "tasks": len(pairs),
                "elapsed_seconds": elapsed,
                "store": store_block,
            }
            entries = sum(store_block["tiers"].values())
            _emit(report, args.json,
                  f"{path}: warmed with {label} ({len(pairs)} tests, "
                  f"{store_block['stats']['writes']} writes, {entries} entries total)")
        return 0

    if args.cache_command == "invalidate":
        if args.schema_file:
            schema = parse_schema(Path(args.schema_file).read_text(encoding="utf-8"))
        else:
            schema, _ = containment_batch(args.workload, length=args.length)
        with ContainmentEngine(persist=path) as engine:
            report = engine.invalidate_schema(schema)
        _emit(
            {"path": str(path), **report.as_dict()},
            args.json,
            f"{path}:\n" + "\n".join("  " + line for line in report.summary().splitlines()),
        )
        return 0

    if args.cache_command == "evolve":
        old_schema = parse_schema(Path(args.old).read_text(encoding="utf-8"))
        new_schema = parse_schema(Path(args.new).read_text(encoding="utf-8"))
        with ContainmentEngine(persist=path) as engine:
            report = engine.evolve(old_schema, new_schema)
        _emit(
            {"path": str(path), **report.as_dict()},
            args.json,
            f"{path}:\n" + "\n".join("  " + line for line in report.summary().splitlines()),
        )
        return 0

    raise SystemExit(f"cache: unknown subcommand {args.cache_command!r}")


# --------------------------------------------------------------------------- #
# the parser
# --------------------------------------------------------------------------- #
def _add_workload_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workload",
        choices=BUILTIN_WORKLOADS,
        default="medical",
        help="built-in workload (default: medical)",
    )
    parser.add_argument(
        "--length",
        type=int,
        default=8,
        help="chain length for the synthetic workload (default: 8)",
    )


def _add_report_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="write a JSON report to PATH ('-' for stdout) instead of the text summary",
    )


def _add_persist_argument(
    parser: argparse.ArgumentParser, help_text: str, required: bool = False
) -> None:
    parser.add_argument(
        "--persist", metavar="PATH", default=None, required=required, help=help_text
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Static analysis of graph database transformations (PODS 2023).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    contain = subparsers.add_parser("contain", help="decide one containment test P ⊆_S Q")
    _add_workload_arguments(contain)
    contain.add_argument("--schema-file", help="schema DSL file (overrides --workload)")
    contain.add_argument("--left", required=True, help='left query, e.g. "p(x) := (r)(x, y)"')
    contain.add_argument("--right", required=True, help='right (acyclic) query, e.g. "q(x) := A(x)"')
    _add_persist_argument(contain, "disk-persistent result store file (read/write)")
    _add_report_argument(contain)
    contain.set_defaults(handler=_cmd_contain)

    typecheck = subparsers.add_parser(
        "typecheck", help="type check a workload migration (Theorem 4.2)"
    )
    _add_workload_arguments(typecheck)
    typecheck.add_argument(
        "--variant",
        choices=("default", "broken"),
        default="default",
        help="use the workload's deliberately broken migration variant",
    )
    typecheck.add_argument("--transformation", help="transformation DSL file")
    typecheck.add_argument("--source", help="source schema DSL file (with --transformation)")
    typecheck.add_argument("--target", help="target schema DSL file (with --transformation)")
    _add_persist_argument(typecheck, "disk-persistent result store file (read/write)")
    _add_report_argument(typecheck)
    typecheck.set_defaults(handler=_cmd_typecheck)

    batch = subparsers.add_parser("batch", help="run a containment batch on one backend")
    _add_workload_arguments(batch)
    batch.add_argument("--spec", help="JSON spec file (overrides --workload)")
    batch.add_argument(
        "--backend", choices=BACKENDS, default="serial", help="execution backend (default: serial)"
    )
    batch.add_argument("--workers", type=int, default=None, help="worker count for thread/process")
    batch.add_argument(
        "--repeat", type=int, default=1, help="repeat the batch N times, report the last (warm) run"
    )
    _add_persist_argument(
        batch,
        "disk-persistent result store file; process-backend workers warm-start from it",
    )
    _add_report_argument(batch)
    batch.set_defaults(handler=_cmd_batch)

    bench = subparsers.add_parser(
        "bench", help="compare backends on one workload, assert identical verdicts"
    )
    _add_workload_arguments(bench)
    bench.add_argument(
        "--suite",
        choices=("backends", "automata", "store", "service", "zoo", "evolve"),
        default="backends",
        help=(
            "benchmark suite: 'backends' compares execution backends on a workload, "
            "'automata' reports the compiled-automaton-core timings, 'store' the "
            "cold-vs-warm contrast of the persistent result store, 'service' the "
            "coalesced-vs-per-request throughput of the serving layer with "
            "p50/p95/p99 latency percentiles, 'zoo' the property-based plus "
            "adversarial workload zoo across backends, 'evolve' the warm "
            "engine.evolve() versus cold re-run contrast across a schema edit "
            "(default: backends)"
        ),
    )
    bench.add_argument("--spec", help="JSON spec file (overrides --workload)")
    bench.add_argument(
        "--backends",
        default="serial,thread,process",
        help="comma-separated backends to compare (default: serial,thread,process)",
    )
    bench.add_argument("--workers", type=int, default=None, help="worker count for thread/process")
    bench.add_argument(
        "--repeats",
        type=int,
        default=None,
        help="automata suite: timing repetitions per measurement (default: 5)",
    )
    bench.add_argument(
        "--requests",
        type=int,
        default=None,
        help=(
            "automata suite: word-list requests per regex in the enumeration timing "
            "(default: 50); service suite: streamed request count (default: 96); "
            "zoo suite: property-based pair count (default: 72); evolve suite: "
            "heavy corpus pair count (default: 8)"
        ),
    )
    bench.add_argument(
        "--clients",
        type=int,
        default=8,
        help="service suite: closed-loop client threads (default: 8)",
    )
    bench.add_argument(
        "--coalesce-window",
        type=float,
        default=5.0,
        help="service suite: coalescing window in milliseconds (default: 5)",
    )
    bench.add_argument(
        "--max-batch",
        type=int,
        default=32,
        help="service suite: max coalesced batch size (default: 32)",
    )
    _add_persist_argument(
        bench,
        "store suite: the store file to measure (cleared for a cold start; "
        "default: a temporary file)",
    )
    _add_report_argument(bench)
    bench.set_defaults(handler=_cmd_bench)

    serve = subparsers.add_parser(
        "serve",
        help="run the long-running containment service (HTTP or --stdio NDJSON)",
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address (default: 127.0.0.1)")
    serve.add_argument(
        "--port", type=int, default=8080, help="TCP port; 0 picks an ephemeral one (default: 8080)"
    )
    serve.add_argument(
        "--stdio",
        action="store_true",
        help="serve newline-delimited JSON on stdin/stdout instead of HTTP",
    )
    serve.add_argument(
        "--parallel",
        choices=BACKENDS,
        default="auto",
        help=(
            "backend coalesced batches run on; 'auto' measures per-item solve "
            "and serialization cost and picks serial/thread/process per batch "
            "(default: auto)"
        ),
    )
    serve.add_argument("--workers", type=int, default=None, help="worker count for thread/process")
    serve.add_argument(
        "--coalesce-window",
        type=float,
        default=5.0,
        help="coalescing window in milliseconds; 0 disables waiting (default: 5)",
    )
    serve.add_argument(
        "--max-batch", type=int, default=64, help="max coalesced batch size (default: 64)"
    )
    _add_persist_argument(
        serve, "disk-persistent result store file behind the service's engine"
    )
    serve.add_argument(
        "--verbose", action="store_true", help="log one line per HTTP request to stderr"
    )
    serve.set_defaults(handler=_cmd_serve)

    replay = subparsers.add_parser(
        "replay",
        help="record or replay an NDJSON traffic trace through the service",
    )
    replay.add_argument(
        "trace", help="the NDJSON trace file (replayed, or written with --record)"
    )
    replay.add_argument(
        "--record",
        action="store_true",
        help="generate a seeded trace and write it to the trace path instead of replaying",
    )
    replay.add_argument(
        "--requests", type=int, default=120, help="record: trace length (default: 120)"
    )
    replay.add_argument(
        "--seed", type=int, default=20230808, help="record: trace RNG seed (default: 20230808)"
    )
    replay.add_argument(
        "--tenants", type=int, default=6, help="record: tenant count (default: 6)"
    )
    replay.add_argument(
        "--no-stamp",
        action="store_true",
        help="record: skip stamping expected result fingerprints",
    )
    replay.add_argument(
        "--stamp",
        action="store_true",
        help="replay: re-stamp expected fingerprints serially before replaying",
    )
    replay.add_argument(
        "--clients", type=int, default=8, help="replay: closed-loop client threads (default: 8)"
    )
    replay.add_argument(
        "--pace",
        type=float,
        default=None,
        help=(
            "replay: honour recorded arrival offsets at this speed factor "
            "(1.0 = real time; default: as fast as possible)"
        ),
    )
    replay.add_argument(
        "--parallel",
        choices=BACKENDS,
        default="serial",
        help=(
            "replay: backend coalesced batches run on; 'auto' lets the engine "
            "pick from measured cost (default: serial)"
        ),
    )
    replay.add_argument("--workers", type=int, default=None, help="worker count for thread/process")
    replay.add_argument(
        "--coalesce-window",
        type=float,
        default=5.0,
        help="replay: coalescing window in milliseconds (default: 5)",
    )
    replay.add_argument(
        "--max-batch", type=int, default=64, help="replay: max coalesced batch size (default: 64)"
    )
    _add_persist_argument(
        replay, "replay: disk-persistent result store file behind the service's engine"
    )
    _add_report_argument(replay)
    replay.set_defaults(handler=_cmd_replay)

    cache = subparsers.add_parser(
        "cache", help="inspect and manage a disk-persistent result store"
    )
    cache_commands = cache.add_subparsers(dest="cache_command", required=True)

    cache_stats = cache_commands.add_parser("stats", help="entry counts, size and version stamp")
    _add_persist_argument(cache_stats, "the store file to inspect", required=True)
    _add_report_argument(cache_stats)

    cache_clear = cache_commands.add_parser("clear", help="drop persisted entries")
    _add_persist_argument(cache_clear, "the store file to clear", required=True)
    cache_clear.add_argument(
        "--tier",
        choices=("results", "schema-tboxes", "schemas"),
        default=None,
        help="clear only one tier (default: everything)",
    )
    _add_report_argument(cache_clear)

    cache_export = cache_commands.add_parser(
        "export", help="dump entry metadata (tier, key, size, age) as JSON"
    )
    _add_persist_argument(cache_export, "the store file to export", required=True)
    _add_report_argument(cache_export)

    cache_warm = cache_commands.add_parser(
        "warm", help="pre-populate a store from a workload or spec file"
    )
    _add_workload_arguments(cache_warm)
    cache_warm.add_argument("--spec", help="JSON spec file (overrides --workload)")
    _add_persist_argument(cache_warm, "the store file to warm", required=True)
    _add_report_argument(cache_warm)

    cache_invalidate = cache_commands.add_parser(
        "invalidate",
        help="drop one schema's persisted rows, reported per tier",
    )
    _add_workload_arguments(cache_invalidate)
    cache_invalidate.add_argument(
        "--schema-file", help="schema DSL file (overrides --workload)"
    )
    _add_persist_argument(cache_invalidate, "the store file to invalidate in", required=True)
    _add_report_argument(cache_invalidate)

    cache_evolve = cache_commands.add_parser(
        "evolve",
        help="migrate a store across a schema edit (drops the old namespace)",
    )
    cache_evolve.add_argument("--old", required=True, help="old schema DSL file")
    cache_evolve.add_argument("--new", required=True, help="new schema DSL file")
    _add_persist_argument(cache_evolve, "the store file to migrate", required=True)
    _add_report_argument(cache_evolve)

    cache.set_defaults(handler=_cmd_cache)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Parse *argv* (default ``sys.argv[1:]``) and run the chosen subcommand."""
    args = build_parser().parse_args(argv)
    return args.handler(args)
