"""Two-way regular expressions over node labels Γ and signed edge labels Σ±.

The grammar is the one from Section 3 / Appendix A of the paper::

    φ ::= ∅ | ε | A | R | φ·φ | φ+φ | φ*

where ``A ∈ Γ`` matches a node (the path stays in place and checks the node
label) and ``R ∈ Σ±`` matches an edge traversed forwards or backwards.  The
one-or-more operator ``φ⁺`` is provided as syntactic sugar for ``φ·φ*``.

Expressions are immutable and hashable; the module also implements the
*reversal* operation ``φ⁻`` used by the paper's nesting device (Appendix F).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import FrozenSet, Iterator, Tuple, Union

from ..exceptions import QueryError
from ..graph.labels import SignedLabel

__all__ = [
    "Regex",
    "EmptyLanguage",
    "Epsilon",
    "NodeTest",
    "EdgeStep",
    "Concat",
    "Union",
    "Star",
    "EMPTY",
    "EPSILON",
    "node",
    "edge",
    "concat",
    "union",
    "star",
    "plus",
    "optional",
    "word",
    "Symbol",
    "canonical_token",
]

# A symbol of the underlying alphabet: either a node-label test or an edge step.
Symbol = Union["NodeTest", "EdgeStep"]


class Regex:
    """Base class of two-way regular expressions."""

    # -- structural helpers -------------------------------------------------
    def children(self) -> Tuple["Regex", ...]:
        """Direct sub-expressions."""
        return ()

    def node_labels(self) -> FrozenSet[str]:
        """Node labels from Γ mentioned in the expression."""
        result = set()
        for symbol in self.symbols():
            if isinstance(symbol, NodeTest):
                result.add(symbol.label)
        return frozenset(result)

    def edge_labels(self) -> FrozenSet[str]:
        """Base edge labels from Σ mentioned in the expression."""
        result = set()
        for symbol in self.symbols():
            if isinstance(symbol, EdgeStep):
                result.add(symbol.signed.label)
        return frozenset(result)

    def symbols(self) -> Iterator[Symbol]:
        """Iterate over the alphabet symbols occurring in the expression."""
        for child in self.children():
            yield from child.symbols()

    def size(self) -> int:
        """Number of AST nodes (used by complexity-oriented benchmarks)."""
        return 1 + sum(child.size() for child in self.children())

    def reverse(self) -> "Regex":
        """The reversed expression φ⁻ (Appendix F): words read right-to-left
        with every edge step inverted."""
        raise NotImplementedError

    def nullable(self) -> bool:
        """``True`` when ε belongs to the language."""
        raise NotImplementedError

    def is_empty_language(self) -> bool:
        """``True`` when the language is syntactically guaranteed to be empty."""
        return False

    # -- operator sugar ------------------------------------------------------
    def __mul__(self, other: "Regex") -> "Regex":
        return concat(self, other)

    def __add__(self, other: "Regex") -> "Regex":
        return union(self, other)

    # -- hashing and serialisation -------------------------------------------
    # Expressions are used as cache keys throughout (the engine's automaton
    # cache, the compile memo of repro.core, symbol interning), so hashing a
    # deep tree must not recurse on every lookup.  The structural hash and the
    # canonical token are each computed once per node and cached on the
    # (frozen) instance; sub-expressions reuse their own cached values, so the
    # cost is O(size) on first use and O(1) afterwards.  Equality stays the
    # dataclass-generated structural comparison.
    def __hash__(self) -> int:
        cached = self.__dict__.get("_structural_hash")
        if cached is None:
            values = tuple(getattr(self, field.name) for field in dataclasses.fields(self))
            cached = hash((type(self).__name__, values))
            object.__setattr__(self, "_structural_hash", cached)
        return cached

    def __getstate__(self):
        # the cached hash mixes per-process values (str hashing is seeded);
        # drop both caches in transit so unpickled copies recompute locally
        state = dict(self.__dict__)
        state.pop("_structural_hash", None)
        state.pop("_canonical_token", None)
        return state


@dataclass(frozen=True)
class EmptyLanguage(Regex):
    """``∅`` — matches no path at all."""

    __hash__ = Regex.__hash__

    def reverse(self) -> Regex:
        return self

    def nullable(self) -> bool:
        return False

    def is_empty_language(self) -> bool:
        return True

    def __str__(self) -> str:
        return "<empty>"


@dataclass(frozen=True)
class Epsilon(Regex):
    """``ε`` — matches the empty path (any node to itself)."""

    __hash__ = Regex.__hash__

    def reverse(self) -> Regex:
        return self

    def nullable(self) -> bool:
        return True

    def __str__(self) -> str:
        return "<eps>"


@dataclass(frozen=True)
class NodeTest(Regex):
    """``A`` — matches an empty path whose (single) node carries label ``A``."""

    __hash__ = Regex.__hash__

    label: str

    def __post_init__(self) -> None:
        if not isinstance(self.label, str) or not self.label:
            raise QueryError(f"invalid node label in regex: {self.label!r}")

    def symbols(self) -> Iterator[Symbol]:
        yield self

    def reverse(self) -> Regex:
        return self

    def nullable(self) -> bool:
        return False

    def __str__(self) -> str:
        return self.label


@dataclass(frozen=True)
class EdgeStep(Regex):
    """``R`` for ``R ∈ Σ±`` — traverses one edge, forwards or backwards."""

    __hash__ = Regex.__hash__

    signed: SignedLabel

    def __post_init__(self) -> None:
        if not isinstance(self.signed, SignedLabel):
            raise QueryError(f"EdgeStep expects a SignedLabel, got {self.signed!r}")

    def symbols(self) -> Iterator[Symbol]:
        yield self

    def reverse(self) -> Regex:
        return EdgeStep(self.signed.inverse())

    def nullable(self) -> bool:
        return False

    def __str__(self) -> str:
        return str(self.signed)


@dataclass(frozen=True)
class Concat(Regex):
    """``φ·ψ`` — concatenation of paths."""

    __hash__ = Regex.__hash__

    left: Regex
    right: Regex

    def children(self) -> Tuple[Regex, ...]:
        return (self.left, self.right)

    def reverse(self) -> Regex:
        return Concat(self.right.reverse(), self.left.reverse())

    def nullable(self) -> bool:
        return self.left.nullable() and self.right.nullable()

    def is_empty_language(self) -> bool:
        return self.left.is_empty_language() or self.right.is_empty_language()

    def __str__(self) -> str:
        return f"{_wrap(self.left, Union)} . {_wrap(self.right, Union)}"


@dataclass(frozen=True)
class Union(Regex):
    """``φ+ψ`` — union of languages."""

    __hash__ = Regex.__hash__

    left: Regex
    right: Regex

    def children(self) -> Tuple[Regex, ...]:
        return (self.left, self.right)

    def reverse(self) -> Regex:
        return Union(self.left.reverse(), self.right.reverse())

    def nullable(self) -> bool:
        return self.left.nullable() or self.right.nullable()

    def is_empty_language(self) -> bool:
        return self.left.is_empty_language() and self.right.is_empty_language()

    def __str__(self) -> str:
        return f"{self.left} + {self.right}"


@dataclass(frozen=True)
class Star(Regex):
    """``φ*`` — zero or more repetitions."""

    __hash__ = Regex.__hash__

    inner: Regex

    def children(self) -> Tuple[Regex, ...]:
        return (self.inner,)

    def reverse(self) -> Regex:
        return Star(self.inner.reverse())

    def nullable(self) -> bool:
        return True

    def __str__(self) -> str:
        return f"{_wrap(self.inner, (Union, Concat))}*"


def canonical_token(expr: Regex) -> str:
    """An injective textual serialisation of the expression's structure.

    Used as the regex component of the canonical fingerprints that key the
    :mod:`repro.engine` caches (see docs/ARCHITECTURE.md, "Cache keys").
    Labels are length-prefixed, so the encoding stays injective whatever
    characters a label contains.  The token is computed once per node and
    cached on the (frozen) instance, like the structural hash.
    """
    cached = expr.__dict__.get("_canonical_token")
    if cached is None:
        cached = _canonical_token_uncached(expr)
        object.__setattr__(expr, "_canonical_token", cached)
    return cached


def _canonical_token_uncached(expr: Regex) -> str:
    if isinstance(expr, EmptyLanguage):
        return "0"
    if isinstance(expr, Epsilon):
        return "e"
    if isinstance(expr, NodeTest):
        return f"n{len(expr.label)}:{expr.label}"
    if isinstance(expr, EdgeStep):
        text = str(expr.signed)
        return f"r{len(text)}:{text}"
    if isinstance(expr, Concat):
        return f"(.{canonical_token(expr.left)} {canonical_token(expr.right)})"
    if isinstance(expr, Union):
        return f"(+{canonical_token(expr.left)} {canonical_token(expr.right)})"
    if isinstance(expr, Star):
        return f"(*{canonical_token(expr.inner)})"
    raise TypeError(f"unknown regex node: {expr!r}")  # pragma: no cover


def _wrap(expr: Regex, kinds) -> str:
    """Parenthesise sub-expressions of looser precedence when printing."""
    if isinstance(expr, kinds):
        return f"({expr})"
    return str(expr)


# --------------------------------------------------------------------------- #
# convenience constructors
# --------------------------------------------------------------------------- #
EMPTY = EmptyLanguage()
EPSILON = Epsilon()


def node(label: str) -> NodeTest:
    """Node-label test ``A``."""
    return NodeTest(label)


def edge(label: Union[str, SignedLabel]) -> EdgeStep:
    """Edge step ``r`` / ``r⁻`` (``"r-"`` in textual form)."""
    if isinstance(label, str):
        label = SignedLabel.parse(label)
    return EdgeStep(label)


def concat(*parts: Regex) -> Regex:
    """Concatenation of any number of expressions (ε for the empty product)."""
    result: Regex = EPSILON
    first = True
    for part in parts:
        result = part if first else Concat(result, part)
        first = False
    return result


def union(*parts: Regex) -> Regex:
    """Union of any number of expressions (∅ for the empty sum)."""
    result: Regex = EMPTY
    first = True
    for part in parts:
        result = part if first else Union(result, part)
        first = False
    return result


def star(inner: Regex) -> Regex:
    """Kleene star ``φ*``."""
    return Star(inner)


def plus(inner: Regex) -> Regex:
    """One-or-more ``φ⁺``, desugared to ``φ·φ*``."""
    return Concat(inner, Star(inner))


def optional(inner: Regex) -> Regex:
    """Zero-or-one ``φ?``, desugared to ``φ+ε``."""
    return Union(inner, EPSILON)


def word(*steps: Union[str, SignedLabel, Regex]) -> Regex:
    """Build the concatenation of atomic steps given in compact textual form.

    Strings starting with an upper-case letter are treated as node labels;
    anything else as (possibly inverse) edge labels — which matches the
    notational convention of the paper.  ``Regex`` arguments pass through.
    """
    parts = []
    for step in steps:
        if isinstance(step, Regex):
            parts.append(step)
        elif isinstance(step, SignedLabel):
            parts.append(EdgeStep(step))
        elif isinstance(step, str) and step[:1].isupper():
            parts.append(NodeTest(step))
        else:
            parts.append(edge(step))
    return concat(*parts)
