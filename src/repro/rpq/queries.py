"""Conjunctive two-way regular path queries (C2RPQs) and their unions.

A C2RPQ is a conjunction of atoms ``φ(z, z')`` where ``φ`` is a two-way
regular expression; variables not listed among the free variables are
existentially quantified (Section 3, Appendix A of the paper).

The module implements the paper's notions around queries:

* *trivial* atoms ``∅(x,x)``, ``ε(x,x)``, ``A(x,x)`` written as unary atoms;
* the *query multigraph* (variables as nodes, one edge per non-trivial atom)
  and the acyclicity criterion used throughout the paper — note this is more
  restrictive than Gaifman-graph acyclicity: parallel atoms between the same
  pair of variables and non-trivial self-loop atoms already create cycles;
* Boolean queries and unions of C2RPQs (UC2RPQs).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from ..exceptions import AcyclicityError, QueryError
from .regex import (
    EPSILON,
    EmptyLanguage,
    Epsilon,
    NodeTest,
    Regex,
    canonical_token,
    node,
)

__all__ = ["Atom", "C2RPQ", "UC2RPQ", "Variable", "label_atom", "equality_atom"]

Variable = str


@dataclass(frozen=True)
class Atom:
    """An atom ``φ(source, target)`` of a C2RPQ."""

    regex: Regex
    source: Variable
    target: Variable

    def __post_init__(self) -> None:
        if not isinstance(self.regex, Regex):
            raise QueryError(f"atom expects a Regex, got {self.regex!r}")
        for variable in (self.source, self.target):
            if not isinstance(variable, str) or not variable:
                raise QueryError(f"invalid variable name: {variable!r}")

    @property
    def variables(self) -> Tuple[Variable, ...]:
        """The variables of the atom (one or two)."""
        if self.source == self.target:
            return (self.source,)
        return (self.source, self.target)

    def is_trivial(self) -> bool:
        """Trivial atoms are ``∅(x,x)``, ``ε(x,x)`` and ``A(x,x)`` (same variable,
        regex that matches only empty paths or nothing)."""
        if self.source != self.target:
            return False
        return isinstance(self.regex, (EmptyLanguage, Epsilon, NodeTest))

    def is_self_loop(self) -> bool:
        """``True`` for non-trivial atoms over a single variable."""
        return self.source == self.target and not self.is_trivial()

    def reversed(self) -> "Atom":
        """The same atom read in the other direction: ``φ⁻(target, source)``."""
        return Atom(self.regex.reverse(), self.target, self.source)

    def rename(self, mapping: Dict[Variable, Variable]) -> "Atom":
        """Rename variables according to *mapping*."""
        return Atom(
            self.regex,
            mapping.get(self.source, self.source),
            mapping.get(self.target, self.target),
        )

    def canonical_token(self) -> str:
        """An injective serialisation of the atom (regex structure + variables)."""
        return (
            f"({canonical_token(self.regex)} "
            f"{len(self.source)}:{self.source} {len(self.target)}:{self.target})"
        )

    def __str__(self) -> str:
        if self.is_trivial():
            return f"{self.regex}({self.source})"
        return f"({self.regex})({self.source}, {self.target})"


def label_atom(label: str, variable: Variable) -> Atom:
    """The unary atom ``A(x)``, i.e. ``A(x, x)``."""
    return Atom(node(label), variable, variable)


def equality_atom(left: Variable, right: Variable) -> Atom:
    """The equality ``x = y`` expressed as ``ε(x, y)`` (Section 4)."""
    return Atom(EPSILON, left, right)


class C2RPQ:
    """A conjunctive two-way regular path query."""

    def __init__(
        self,
        atoms: Iterable[Atom],
        free_variables: Optional[Sequence[Variable]] = None,
        name: str = "q",
    ) -> None:
        self.name = name
        self.atoms: Tuple[Atom, ...] = tuple(atoms)
        mentioned = self.variables()
        if free_variables is None:
            self.free_variables: Tuple[Variable, ...] = tuple(sorted(mentioned))
        else:
            self.free_variables = tuple(free_variables)
            unknown = [v for v in self.free_variables if v not in mentioned]
            if unknown and self.atoms:
                raise QueryError(f"free variables {unknown} do not occur in any atom")

    # ------------------------------------------------------------------ #
    # structure
    # ------------------------------------------------------------------ #
    def variables(self) -> FrozenSet[Variable]:
        """All variables occurring in the query."""
        result: Set[Variable] = set()
        for atom in self.atoms:
            result.update(atom.variables)
        return frozenset(result)

    def existential_variables(self) -> FrozenSet[Variable]:
        """Variables that are existentially quantified."""
        return self.variables() - frozenset(self.free_variables)

    def is_boolean(self) -> bool:
        """``True`` when all variables are existentially quantified."""
        return not self.free_variables

    def arity(self) -> int:
        """Number of free variables."""
        return len(self.free_variables)

    def node_labels(self) -> FrozenSet[str]:
        """Node labels from Γ mentioned anywhere in the query."""
        result: Set[str] = set()
        for atom in self.atoms:
            result |= atom.regex.node_labels()
        return frozenset(result)

    def edge_labels(self) -> FrozenSet[str]:
        """Edge labels from Σ mentioned anywhere in the query."""
        result: Set[str] = set()
        for atom in self.atoms:
            result |= atom.regex.edge_labels()
        return frozenset(result)

    def size(self) -> int:
        """Total size of the regular expressions (complexity parameter |q|)."""
        return sum(atom.regex.size() for atom in self.atoms)

    def multigraph_edges(self) -> List[Tuple[Variable, Variable]]:
        """Edges of the query multigraph: one per non-trivial atom."""
        return [(a.source, a.target) for a in self.atoms if not a.is_trivial()]

    def is_acyclic(self) -> bool:
        """Acyclicity in the paper's sense.

        The multigraph of the query must not contain a path of *distinct*
        edges visiting a node twice: no non-trivial self-loop atoms, no two
        parallel non-trivial atoms between the same pair of variables and no
        undirected cycle through distinct variables.
        """
        edges = self.multigraph_edges()
        seen_pairs: Set[FrozenSet[Variable]] = set()
        for source, target in edges:
            if source == target:
                return False
            pair = frozenset((source, target))
            if pair in seen_pairs:
                return False
            seen_pairs.add(pair)
        # union-find over variables to detect undirected cycles
        parent: Dict[Variable, Variable] = {v: v for v in self.variables()}

        def find(v: Variable) -> Variable:
            while parent[v] != v:
                parent[v] = parent[parent[v]]
                v = parent[v]
            return v

        for source, target in edges:
            root_s, root_t = find(source), find(target)
            if root_s == root_t:
                return False
            parent[root_s] = root_t
        return True

    def require_acyclic(self) -> "C2RPQ":
        """Return ``self`` or raise :class:`AcyclicityError`."""
        if not self.is_acyclic():
            raise AcyclicityError(f"query {self.name} is not acyclic")
        return self

    def is_connected(self) -> bool:
        """``True`` when the query multigraph (plus isolated variables) is connected."""
        return len(self.connected_components()) <= 1

    def connected_components(self) -> List["C2RPQ"]:
        """Split the query into its connected components (Boolean sub-queries
        keep their free variables)."""
        variables = sorted(self.variables())
        if not variables:
            return [self]
        parent: Dict[Variable, Variable] = {v: v for v in variables}

        def find(v: Variable) -> Variable:
            while parent[v] != v:
                parent[v] = parent[parent[v]]
                v = parent[v]
            return v

        def union(a: Variable, b: Variable) -> None:
            parent[find(a)] = find(b)

        for atom in self.atoms:
            union(atom.source, atom.target)
        groups: Dict[Variable, List[Atom]] = {}
        for atom in self.atoms:
            groups.setdefault(find(atom.source), []).append(atom)
        components = []
        for index, (root, atoms) in enumerate(sorted(groups.items())):
            component_vars = {v for a in atoms for v in a.variables}
            free = [v for v in self.free_variables if v in component_vars]
            components.append(C2RPQ(atoms, free, name=f"{self.name}#{index}"))
        return components

    # ------------------------------------------------------------------ #
    # transformations of the query
    # ------------------------------------------------------------------ #
    def rename(self, mapping: Dict[Variable, Variable]) -> "C2RPQ":
        """Rename variables according to *mapping* (free variables included)."""
        return C2RPQ(
            [atom.rename(mapping) for atom in self.atoms],
            [mapping.get(v, v) for v in self.free_variables],
            name=self.name,
        )

    def with_fresh_variables(self, suffix: str) -> "C2RPQ":
        """Append *suffix* to every variable name (used when conjoining copies)."""
        mapping = {v: f"{v}{suffix}" for v in self.variables()}
        return self.rename(mapping)

    def boolean(self) -> "C2RPQ":
        """The Boolean query obtained by quantifying all free variables."""
        return C2RPQ(self.atoms, [], name=self.name)

    def conjoin(self, other: "C2RPQ", name: Optional[str] = None) -> "C2RPQ":
        """Conjunction of two queries; shared variable names are shared variables."""
        return C2RPQ(
            list(self.atoms) + list(other.atoms),
            list(self.free_variables) + [v for v in other.free_variables if v not in self.free_variables],
            name=name or f"{self.name}&{other.name}",
        )

    def project(self, free_variables: Sequence[Variable]) -> "C2RPQ":
        """Existentially quantify everything except *free_variables*."""
        return C2RPQ(self.atoms, free_variables, name=self.name)

    # ------------------------------------------------------------------ #
    def canonical_token(self) -> str:
        """A serialisation capturing exactly the equality semantics of the
        query: the *set* of atoms plus the ordered free-variable tuple.  The
        query name is deliberately excluded, so renamed-but-identical queries
        share a fingerprint."""
        atoms = ",".join(sorted(atom.canonical_token() for atom in self.atoms))
        free = ",".join(f"{len(v)}:{v}" for v in self.free_variables)
        return f"c2rpq[{atoms}][{free}]"

    def canonical_fingerprint(self) -> str:
        """SHA-256 digest of :meth:`canonical_token` (cache-key material)."""
        return hashlib.sha256(self.canonical_token().encode("utf-8")).hexdigest()

    # ------------------------------------------------------------------ #
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, C2RPQ):
            return NotImplemented
        return (
            set(self.atoms) == set(other.atoms) and self.free_variables == other.free_variables
        )

    def __hash__(self) -> int:
        return hash((frozenset(self.atoms), self.free_variables))

    def __str__(self) -> str:
        body = ", ".join(str(atom) for atom in self.atoms) or "<true>"
        head = ", ".join(self.free_variables)
        return f"{self.name}({head}) := {body}"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"C2RPQ({str(self)!r})"


class UC2RPQ:
    """A union of C2RPQs, all of the same arity."""

    def __init__(self, disjuncts: Iterable[C2RPQ], name: str = "Q") -> None:
        self.name = name
        self.disjuncts: Tuple[C2RPQ, ...] = tuple(disjuncts)
        arities = {d.arity() for d in self.disjuncts}
        if len(arities) > 1:
            raise QueryError(f"all disjuncts of a UC2RPQ must share their arity, got {arities}")

    @classmethod
    def from_query(cls, query: C2RPQ, name: Optional[str] = None) -> "UC2RPQ":
        """Wrap a single C2RPQ as a union."""
        return cls([query], name=name or query.name)

    def arity(self) -> int:
        """Arity of the union (0 when there is no disjunct)."""
        return self.disjuncts[0].arity() if self.disjuncts else 0

    def is_boolean(self) -> bool:
        """``True`` when the union is Boolean."""
        return self.arity() == 0

    def is_acyclic(self) -> bool:
        """``True`` when every disjunct is acyclic."""
        return all(d.is_acyclic() for d in self.disjuncts)

    def is_empty(self) -> bool:
        """``True`` when the union has no disjunct (unsatisfiable query)."""
        return not self.disjuncts

    def node_labels(self) -> FrozenSet[str]:
        """Node labels mentioned in any disjunct."""
        result: Set[str] = set()
        for disjunct in self.disjuncts:
            result |= disjunct.node_labels()
        return frozenset(result)

    def edge_labels(self) -> FrozenSet[str]:
        """Edge labels mentioned in any disjunct."""
        result: Set[str] = set()
        for disjunct in self.disjuncts:
            result |= disjunct.edge_labels()
        return frozenset(result)

    def size(self) -> int:
        """Total size of the union."""
        return sum(d.size() for d in self.disjuncts)

    def boolean(self) -> "UC2RPQ":
        """Quantify away all free variables in every disjunct."""
        return UC2RPQ([d.boolean() for d in self.disjuncts], name=self.name)

    def map(self, function) -> "UC2RPQ":
        """Apply *function* to every disjunct and collect the results."""
        return UC2RPQ([function(d) for d in self.disjuncts], name=self.name)

    def canonical_token(self) -> str:
        """Order- and name-insensitive serialisation (the set of disjuncts)."""
        disjuncts = ";".join(sorted(d.canonical_token() for d in self.disjuncts))
        return f"uc2rpq[{disjuncts}]"

    def canonical_fingerprint(self) -> str:
        """SHA-256 digest of :meth:`canonical_token` (cache-key material)."""
        return hashlib.sha256(self.canonical_token().encode("utf-8")).hexdigest()

    def __iter__(self) -> Iterator[C2RPQ]:
        return iter(self.disjuncts)

    def __len__(self) -> int:
        return len(self.disjuncts)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, UC2RPQ):
            return NotImplemented
        return set(self.disjuncts) == set(other.disjuncts)

    def __hash__(self) -> int:
        return hash(frozenset(self.disjuncts))

    def __str__(self) -> str:
        return " ∪ ".join(str(d) for d in self.disjuncts) or f"{self.name} := <false>"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"UC2RPQ({self.name!r}, {len(self.disjuncts)} disjuncts)"
