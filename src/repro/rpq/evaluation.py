"""Evaluation of 2RPQs, C2RPQs and UC2RPQs over finite graphs.

The semantics follows Appendix A of the paper: a witnessing path alternates
nodes and letters from Γ ∪ Σ±, where a node-label letter keeps the position
(and checks the label) and a signed edge letter moves along an edge in the
indicated direction.  Evaluation of a single regular expression is standard
product-graph reachability between graph nodes and NFA states; a C2RPQ is
evaluated by joining its atom relations with a straightforward backtracking
join (adequate for the graph sizes used in static analysis and tests).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..graph.graph import Graph, NodeId
from .automaton import NFA
from .queries import Atom, C2RPQ, UC2RPQ, Variable
from .regex import EdgeStep, NodeTest, Regex, Symbol


def _compiled_nfa(regex: Regex) -> NFA:
    """The memoized NFA for *regex* via the compiled automaton core.

    Imported lazily: :mod:`repro.core` builds on this package, so a
    module-level import would be circular.
    """
    from ..core import compile_regex

    return compile_regex(regex).nfa

__all__ = [
    "eval_regex",
    "eval_regex_from",
    "eval_atom",
    "eval_c2rpq",
    "eval_uc2rpq",
    "satisfies",
    "witnessing_path",
]


def _product_reachable(
    graph: Graph, nfa: NFA, start_nodes: Iterable[NodeId]
) -> Dict[NodeId, Set[Tuple[NodeId, int]]]:
    """For each start node, the set of reachable (node, state) configurations."""
    result: Dict[NodeId, Set[Tuple[NodeId, int]]] = {}
    for start in start_nodes:
        visited: Set[Tuple[NodeId, int]] = {(start, state) for state in nfa.initial}
        frontier = list(visited)
        while frontier:
            current_node, state = frontier.pop()
            for symbol, next_state in nfa.transitions_from(state):
                targets: Iterable[NodeId]
                if isinstance(symbol, NodeTest):
                    targets = (current_node,) if graph.has_label(current_node, symbol.label) else ()
                elif isinstance(symbol, EdgeStep):
                    targets = graph.successors(current_node, symbol.signed)
                else:  # pragma: no cover - defensive
                    targets = ()
                for target in targets:
                    configuration = (target, next_state)
                    if configuration not in visited:
                        visited.add(configuration)
                        frontier.append(configuration)
        result[start] = visited
    return result


def eval_regex_from(
    regex: Regex, graph: Graph, sources: Iterable[NodeId], nfa: Optional[NFA] = None
) -> Set[Tuple[NodeId, NodeId]]:
    """Evaluate ``[regex]^G`` restricted to the given source nodes."""
    nfa = nfa or _compiled_nfa(regex)
    reachable = _product_reachable(graph, nfa, sources)
    answers: Set[Tuple[NodeId, NodeId]] = set()
    for source, configurations in reachable.items():
        for target, state in configurations:
            if state in nfa.final:
                answers.add((source, target))
    return answers


def eval_regex(regex: Regex, graph: Graph) -> Set[Tuple[NodeId, NodeId]]:
    """Evaluate ``[regex]^G`` as a binary relation over the nodes of *graph*."""
    return eval_regex_from(regex, graph, graph.nodes())


def eval_atom(atom: Atom, graph: Graph) -> Set[Tuple[NodeId, NodeId]]:
    """Evaluate a single atom as a relation over (source value, target value)."""
    return eval_regex(atom.regex, graph)


def eval_c2rpq(query: C2RPQ, graph: Graph) -> Set[Tuple[NodeId, ...]]:
    """Evaluate a C2RPQ; answers are tuples over the query's free variables.

    For a Boolean query the result is ``{()}`` when satisfied and ``set()``
    otherwise, matching the paper's convention.
    """
    if not query.atoms:
        return {()} if not query.free_variables else set()

    # pre-compute atom relations, cheapest (smallest) first for the join order
    relations: List[Tuple[Atom, Set[Tuple[NodeId, NodeId]]]] = []
    for atom in query.atoms:
        relations.append((atom, eval_atom(atom, graph)))
    relations.sort(key=lambda pair: len(pair[1]))

    answers: Set[Tuple[NodeId, ...]] = set()
    assignment: Dict[Variable, NodeId] = {}

    def backtrack(index: int) -> None:
        if index == len(relations):
            answers.add(tuple(assignment[v] for v in query.free_variables))
            return
        atom, relation = relations[index]
        for source_value, target_value in relation:
            bound_source = assignment.get(atom.source)
            bound_target = assignment.get(atom.target)
            if bound_source is not None and bound_source != source_value:
                continue
            if bound_target is not None and bound_target != target_value:
                continue
            if atom.source == atom.target and source_value != target_value:
                continue
            added = []
            if bound_source is None:
                assignment[atom.source] = source_value
                added.append(atom.source)
            if assignment.get(atom.target) is None:
                assignment[atom.target] = target_value
                added.append(atom.target)
            backtrack(index + 1)
            for variable in added:
                del assignment[variable]

    backtrack(0)
    return answers


def eval_uc2rpq(query: UC2RPQ, graph: Graph) -> Set[Tuple[NodeId, ...]]:
    """Evaluate a union of C2RPQs (union of the disjuncts' answer sets)."""
    answers: Set[Tuple[NodeId, ...]] = set()
    for disjunct in query:
        answers |= eval_c2rpq(disjunct, graph)
    return answers


def satisfies(graph: Graph, query) -> bool:
    """``G ⊨ q`` for a Boolean C2RPQ or UC2RPQ (or the Boolean closure of one)."""
    if isinstance(query, UC2RPQ):
        return any(satisfies(graph, disjunct) for disjunct in query)
    boolean = query.boolean() if query.free_variables else query
    return bool(eval_c2rpq(boolean, graph))


def witnessing_path(
    regex: Regex, graph: Graph, source: NodeId, target: NodeId
) -> Optional[List[Tuple[Symbol, NodeId]]]:
    """Return one witnessing path for ``(source, target) ∈ [regex]^G``.

    The path is returned as the list of ``(symbol, node reached)`` steps
    (empty for an ε-match); ``None`` when no witnessing path exists.  Used by
    the simple-model construction of Theorem 6.3 and by tests.
    """
    nfa = _compiled_nfa(regex)
    start_configurations = {(source, state) for state in nfa.initial}
    parents: Dict[Tuple[NodeId, int], Tuple[Tuple[NodeId, int], Symbol]] = {}
    visited = set(start_configurations)
    frontier = list(start_configurations)
    goal: Optional[Tuple[NodeId, int]] = None
    for node_id, state in start_configurations:
        if node_id == target and state in nfa.final:
            return []
    while frontier and goal is None:
        current = frontier.pop(0)
        current_node, state = current
        for symbol, next_state in nfa.transitions_from(state):
            if isinstance(symbol, NodeTest):
                next_nodes: Iterable[NodeId] = (
                    (current_node,) if graph.has_label(current_node, symbol.label) else ()
                )
            else:
                next_nodes = graph.successors(current_node, symbol.signed)
            for next_node in next_nodes:
                configuration = (next_node, next_state)
                if configuration in visited:
                    continue
                visited.add(configuration)
                parents[configuration] = (current, symbol)
                if next_node == target and next_state in nfa.final:
                    goal = configuration
                    break
                frontier.append(configuration)
            if goal is not None:
                break
    if goal is None:
        return None
    steps: List[Tuple[Symbol, NodeId]] = []
    configuration = goal
    while configuration in parents:
        previous, symbol = parents[configuration]
        steps.append((symbol, configuration[0]))
        configuration = previous
    steps.reverse()
    return steps
