"""Two-way regular path queries: expressions, automata, C2RPQs, evaluation.

Re-exports:

* :class:`Regex` and its constructors :func:`node`, :func:`edge`,
  :func:`concat`, :func:`union`, :func:`star`, :func:`plus`,
  :func:`optional`, :func:`word` plus the node types :class:`EmptyLanguage`,
  :class:`Epsilon`, :class:`NodeTest`, :class:`EdgeStep`, :class:`Concat`,
  :class:`Union`, :class:`Star` and the constants :data:`EMPTY`,
  :data:`EPSILON` — the two-way regular expression AST of Section 3;
* :class:`NFA` / :func:`build_nfa` — linear-size automata with pumped-word
  enumeration (Lemma C.2's prerequisite);
* :class:`Atom` / :class:`C2RPQ` / :class:`UC2RPQ` / :data:`Variable` with
  :func:`label_atom` and :func:`equality_atom` — conjunctive queries, their
  unions and the two convenience atom forms;
* :func:`eval_regex` / :func:`eval_regex_from` / :func:`eval_atom` /
  :func:`eval_c2rpq` / :func:`eval_uc2rpq` / :func:`satisfies` /
  :func:`witnessing_path` — evaluation over labeled graphs;
* :func:`parse_regex` / :func:`parse_c2rpq` / :func:`parse_uc2rpq` — the
  textual syntax used throughout examples and tests.
"""

from .regex import (
    EMPTY,
    EPSILON,
    Concat,
    EdgeStep,
    EmptyLanguage,
    Epsilon,
    NodeTest,
    Regex,
    Star,
    Union,
    concat,
    edge,
    node,
    optional,
    plus,
    star,
    union,
    word,
)
from .automaton import NFA, build_nfa
from .queries import Atom, C2RPQ, UC2RPQ, Variable, equality_atom, label_atom
from .evaluation import (
    eval_atom,
    eval_c2rpq,
    eval_regex,
    eval_regex_from,
    eval_uc2rpq,
    satisfies,
    witnessing_path,
)
from .parser import parse_c2rpq, parse_regex, parse_uc2rpq

__all__ = [
    "EMPTY",
    "EPSILON",
    "Concat",
    "EdgeStep",
    "EmptyLanguage",
    "Epsilon",
    "NodeTest",
    "Regex",
    "Star",
    "Union",
    "concat",
    "edge",
    "node",
    "optional",
    "plus",
    "star",
    "union",
    "word",
    "NFA",
    "build_nfa",
    "Atom",
    "C2RPQ",
    "UC2RPQ",
    "Variable",
    "equality_atom",
    "label_atom",
    "eval_atom",
    "eval_c2rpq",
    "eval_regex",
    "eval_regex_from",
    "eval_uc2rpq",
    "satisfies",
    "witnessing_path",
    "parse_c2rpq",
    "parse_regex",
    "parse_uc2rpq",
]
