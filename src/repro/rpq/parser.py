"""Parser for the textual form of two-way regular expressions and C2RPQs.

Regular expression syntax (mirroring the paper's notation)::

    Vaccine . designTarget . crossReacting* . Antigen
    (a . b . c+ . d . a)            # '+' directly after an operand is "one or more"
    a + b                           # '+' between operands is union
    r-                              # inverse edge label
    <eps>, <empty>                  # ε and ∅

Identifiers starting with an upper-case letter denote node labels (Γ); all
other identifiers denote edge labels (Σ).  A trailing ``-`` marks an inverse
edge label.  ``?`` is the zero-or-one postfix operator.

C2RPQ syntax::

    q(x, y) := (Vaccine . designTarget . crossReacting*)(x, y), Antigen(y)

i.e. a head with free variables followed by ``:=`` and a comma-separated list
of atoms ``(regex)(var, var)`` or ``Label(var)``; every variable not listed in
the head is existentially quantified.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from ..exceptions import ParseError
from .regex import (
    EMPTY,
    EPSILON,
    Concat,
    Regex,
    Star,
    Union,
    edge,
    node,
    optional,
    plus,
)

__all__ = ["parse_regex", "parse_c2rpq", "parse_uc2rpq"]

_TOKEN_RE = re.compile(
    r"\s*(?:(?P<lpar>\()|(?P<rpar>\))|(?P<star>\*)|(?P<plus>\+)|(?P<qmark>\?)"
    r"|(?P<dot>\.|·)|(?P<eps><eps>|ε)|(?P<empty><empty>|∅)"
    r"|(?P<ident>[A-Za-z_][A-Za-z0-9_]*-?))"
)


class _Tokenizer:
    def __init__(self, text: str) -> None:
        self.text = text
        self.tokens: List[Tuple[str, str, int]] = []
        position = 0
        while position < len(text):
            match = _TOKEN_RE.match(text, position)
            if not match or match.end() == position:
                remaining = text[position:].strip()
                if not remaining:
                    break
                raise ParseError(f"unexpected character {text[position]!r}", position, text)
            position = match.end()
            for kind, value in match.groupdict().items():
                if value is not None:
                    self.tokens.append((kind, value, match.start()))
                    break
        self.index = 0

    def peek(self) -> Optional[Tuple[str, str, int]]:
        if self.index < len(self.tokens):
            return self.tokens[self.index]
        return None

    def next(self) -> Tuple[str, str, int]:
        token = self.peek()
        if token is None:
            raise ParseError("unexpected end of expression", len(self.text), self.text)
        self.index += 1
        return token


def parse_regex(text: str) -> Regex:
    """Parse a two-way regular expression from its textual form."""
    tokenizer = _Tokenizer(text)
    expr = _parse_union(tokenizer)
    if tokenizer.peek() is not None:
        kind, value, position = tokenizer.peek()
        raise ParseError(f"unexpected token {value!r}", position, text)
    return expr


def _starts_operand(token: Optional[Tuple[str, str, int]]) -> bool:
    return token is not None and token[0] in ("lpar", "ident", "eps", "empty")


def _parse_union(tokens: _Tokenizer) -> Regex:
    left = _parse_concat(tokens)
    while True:
        token = tokens.peek()
        if token is None or token[0] != "plus":
            return left
        # '+' is union only when an operand follows; otherwise it is the
        # postfix one-or-more operator already consumed by _parse_postfix.
        lookahead = tokens.tokens[tokens.index + 1] if tokens.index + 1 < len(tokens.tokens) else None
        if not _starts_operand(lookahead):
            return left
        tokens.next()
        right = _parse_concat(tokens)
        left = Union(left, right)


def _parse_concat(tokens: _Tokenizer) -> Regex:
    left = _parse_postfix(tokens)
    while True:
        token = tokens.peek()
        if token is not None and token[0] == "dot":
            tokens.next()
            right = _parse_postfix(tokens)
            left = Concat(left, right)
        elif _starts_operand(token):
            # juxtaposition also means concatenation
            right = _parse_postfix(tokens)
            left = Concat(left, right)
        else:
            return left


def _parse_postfix(tokens: _Tokenizer) -> Regex:
    expr = _parse_primary(tokens)
    while True:
        token = tokens.peek()
        if token is None:
            return expr
        kind = token[0]
        if kind == "star":
            tokens.next()
            expr = Star(expr)
        elif kind == "qmark":
            tokens.next()
            expr = optional(expr)
        elif kind == "plus":
            lookahead = (
                tokens.tokens[tokens.index + 1] if tokens.index + 1 < len(tokens.tokens) else None
            )
            if _starts_operand(lookahead):
                return expr  # binary union, handled by _parse_union
            tokens.next()
            expr = plus(expr)
        else:
            return expr


def _parse_primary(tokens: _Tokenizer) -> Regex:
    kind, value, position = tokens.next()
    if kind == "lpar":
        expr = _parse_union(tokens)
        closing = tokens.next()
        if closing[0] != "rpar":
            raise ParseError("expected ')'", closing[2], tokens.text)
        return expr
    if kind == "eps":
        return EPSILON
    if kind == "empty":
        return EMPTY
    if kind == "ident":
        if value.endswith("-"):
            return edge(value)
        if value[:1].isupper():
            return node(value)
        return edge(value)
    raise ParseError(f"unexpected token {value!r}", position, tokens.text)


# --------------------------------------------------------------------------- #
# C2RPQ parsing
# --------------------------------------------------------------------------- #
_HEAD_RE = re.compile(r"^\s*(?P<name>\w+)\s*\(\s*(?P<vars>[^)]*)\)\s*:=\s*(?P<body>.+)$", re.S)
_ATOM_RE = re.compile(
    r"^\s*(?:\(\s*(?P<regex>.+?)\s*\)|(?P<label>[A-Za-z_][A-Za-z0-9_]*-?))"
    r"\s*\(\s*(?P<args>[^)]*)\)\s*$",
    re.S,
)


def _split_atoms(body: str) -> List[str]:
    """Split the body on commas that are not nested inside parentheses."""
    atoms, depth, current = [], 0, []
    for char in body:
        if char == "(":
            depth += 1
        elif char == ")":
            depth -= 1
        if char == "," and depth == 0:
            atoms.append("".join(current))
            current = []
        else:
            current.append(char)
    if current:
        atoms.append("".join(current))
    return [atom.strip() for atom in atoms if atom.strip()]


def parse_c2rpq(text: str):
    """Parse a C2RPQ written as ``q(x, y) := (regex)(x, y), Label(z), ...``."""
    from .queries import Atom, C2RPQ  # local import to avoid a cycle

    match = _HEAD_RE.match(text.strip())
    if not match:
        raise ParseError("expected 'name(vars) := atoms'", text=text)
    name = match.group("name")
    head_vars = [v.strip() for v in match.group("vars").split(",") if v.strip()]
    atoms = []
    for atom_text in _split_atoms(match.group("body")):
        atom_match = _ATOM_RE.match(atom_text)
        if not atom_match:
            raise ParseError(f"could not parse atom {atom_text!r}", text=text)
        if atom_match.group("regex") is not None:
            expr = parse_regex(atom_match.group("regex"))
        else:
            expr = parse_regex(atom_match.group("label"))
        args = [v.strip() for v in atom_match.group("args").split(",") if v.strip()]
        if len(args) == 1:
            atoms.append(Atom(expr, args[0], args[0]))
        elif len(args) == 2:
            atoms.append(Atom(expr, args[0], args[1]))
        else:
            raise ParseError(f"atoms take one or two variables, got {args!r}", text=text)
    return C2RPQ(atoms, free_variables=head_vars, name=name)


def parse_uc2rpq(texts, name: str = "Q"):
    """Parse a union of C2RPQs from an iterable of C2RPQ documents."""
    from .queries import UC2RPQ

    return UC2RPQ([parse_c2rpq(text) for text in texts], name=name)
