"""Nondeterministic finite automata for two-way regular expressions.

The automata read words over the alphabet Γ ∪ Σ± whose letters are the
:class:`~repro.rpq.regex.NodeTest` and :class:`~repro.rpq.regex.EdgeStep`
symbols.  They are used in three places:

* query evaluation over graphs (product-graph reachability);
* the rolling-up construction of Appendix C (Lemma C.2), which simulates the
  automata inside a Horn-ALCIF TBox;
* the satisfiability engine, which enumerates witnessing words in *pumped
  normal form* — words whose runs repeat no automaton state more than a
  configurable number of times.

The construction is a standard Thompson translation followed by ε-elimination,
so the number of states is linear in the size of the expression (as required
for the polynomial-time rolling-up of Lemma C.2).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Sequence, Set, Tuple

from .regex import Concat, EdgeStep, EmptyLanguage, Epsilon, NodeTest, Regex, Star, Symbol, Union

__all__ = ["NFA", "build_nfa"]


class NFA:
    """A nondeterministic finite automaton over Γ ∪ Σ± (no ε-transitions)."""

    def __init__(
        self,
        states: Iterable[int],
        initial: Iterable[int],
        final: Iterable[int],
        transitions: Iterable[Tuple[int, Symbol, int]],
    ) -> None:
        self.states: FrozenSet[int] = frozenset(states)
        self.initial: FrozenSet[int] = frozenset(initial)
        self.final: FrozenSet[int] = frozenset(final)
        self._forward: Dict[int, Dict[Symbol, Set[int]]] = {s: {} for s in self.states}
        self._transitions: List[Tuple[int, Symbol, int]] = []
        for source, symbol, target in transitions:
            self._forward.setdefault(source, {}).setdefault(symbol, set()).add(target)
            self._transitions.append((source, symbol, target))

    # ------------------------------------------------------------------ #
    def transitions(self) -> Iterator[Tuple[int, Symbol, int]]:
        """Iterate over all transitions ``(source, symbol, target)``."""
        return iter(self._transitions)

    def transitions_from(self, state: int) -> Iterator[Tuple[Symbol, int]]:
        """Iterate over ``(symbol, target)`` pairs leaving *state*."""
        for symbol, targets in self._forward.get(state, {}).items():
            for target in targets:
                yield symbol, target

    def step(self, states: Iterable[int], symbol: Symbol) -> FrozenSet[int]:
        """Set of states reachable from *states* by reading *symbol*."""
        result: Set[int] = set()
        for state in states:
            result |= self._forward.get(state, {}).get(symbol, set())
        return frozenset(result)

    def accepts(self, word: Sequence[Symbol]) -> bool:
        """``True`` when the automaton accepts the given word."""
        current: FrozenSet[int] = self.initial
        for symbol in word:
            current = self.step(current, symbol)
            if not current:
                return False
        return bool(current & self.final)

    def alphabet(self) -> FrozenSet[Symbol]:
        """The symbols that label at least one transition."""
        return frozenset(symbol for _, symbol, _ in self._transitions)

    def accepts_epsilon(self) -> bool:
        """``True`` when the empty word is accepted."""
        return bool(self.initial & self.final)

    def is_empty_language(self) -> bool:
        """``True`` when no word at all is accepted (reachability check)."""
        reachable = set(self.initial)
        frontier = list(self.initial)
        while frontier:
            state = frontier.pop()
            if state in self.final:
                return False
            for _, target in self.transitions_from(state):
                if target not in reachable:
                    reachable.add(target)
                    frontier.append(target)
        return not (reachable & self.final)

    def state_count(self) -> int:
        """Number of states."""
        return len(self.states)

    def reverse(self) -> "NFA":
        """The automaton for the reversed language with inverted edge steps."""
        transitions = []
        for source, symbol, target in self._transitions:
            reversed_symbol: Symbol
            if isinstance(symbol, EdgeStep):
                reversed_symbol = EdgeStep(symbol.signed.inverse())
            else:
                reversed_symbol = symbol
            transitions.append((target, reversed_symbol, source))
        return NFA(self.states, self.final, self.initial, transitions)

    def trim(self) -> "NFA":
        """Remove states that are unreachable from the initial states or cannot
        reach a final state; renumber densely."""
        forward_reachable = set(self.initial)
        frontier = list(self.initial)
        while frontier:
            state = frontier.pop()
            for _, target in self.transitions_from(state):
                if target not in forward_reachable:
                    forward_reachable.add(target)
                    frontier.append(target)

        predecessors: Dict[int, Set[int]] = {}
        for source, _, target in self.transitions():
            predecessors.setdefault(target, set()).add(source)
        backward_reachable = set(self.final)
        frontier = list(self.final)
        while frontier:
            state = frontier.pop()
            for source in predecessors.get(state, ()):
                if source not in backward_reachable:
                    backward_reachable.add(source)
                    frontier.append(source)

        useful = forward_reachable & backward_reachable
        if not useful:
            # empty language: keep a single initial state so the object stays valid
            return NFA({0}, {0}, set(), [])
        renumber = {state: index for index, state in enumerate(sorted(useful))}
        transitions = [
            (renumber[s], symbol, renumber[t])
            for s, symbol, t in self.transitions()
            if s in useful and t in useful
        ]
        return NFA(
            renumber.values(),
            {renumber[s] for s in self.initial if s in useful},
            {renumber[s] for s in self.final if s in useful},
            transitions,
        )

    def to_dfa(self, table=None):
        """Compile to a :class:`repro.core.DFA` (subset construction).

        *table* is an optional :class:`repro.core.SymbolTable`; the process
        default is used otherwise.  Prefer :func:`repro.core.compile_regex`
        when starting from a regex — it memoizes the whole compilation.
        """
        from ..core.dfa import determinize  # deferred: core builds on this module

        return determinize(self, table)

    # ------------------------------------------------------------------ #
    # word enumeration (pumped normal form)
    # ------------------------------------------------------------------ #
    def enumerate_words(
        self,
        max_length: int = 12,
        max_state_repeats: int = 2,
        max_words: int = 10_000,
    ) -> Iterator[Tuple[Symbol, ...]]:
        """Enumerate accepted words in pumped normal form.

        Words are produced in order of non-decreasing length.  A run may visit
        each automaton state at most *max_state_repeats* times, which bounds
        the unrolling of cycles (the satisfiability engine's completeness
        bound, see docs/ARCHITECTURE.md, stage 5 "Chase"); *max_length* and
        *max_words* are additional hard caps.

        The search runs on the kernel fast path
        (:func:`repro.core.kernels.enumerate_nfa_words`: adjacency sorted
        once per automaton, ``bytes`` visit counters) whenever the repeat
        bound fits a byte; word set and order are identical to
        :meth:`_enumerate_words_dictwalk`, the historical implementation
        kept as the benchmark and property-test reference.
        """
        if 0 <= max_state_repeats <= 255:
            from ..core.kernels import enumerate_nfa_words  # deferred: core builds on this module

            return enumerate_nfa_words(self, max_length, max_state_repeats, max_words)
        return self._enumerate_words_dictwalk(max_length, max_state_repeats, max_words)

    def _enumerate_words_dictwalk(
        self,
        max_length: int = 12,
        max_state_repeats: int = 2,
        max_words: int = 10_000,
    ) -> Iterator[Tuple[Symbol, ...]]:
        """The historical dict-walk enumeration, kept verbatim.

        :meth:`enumerate_words` must stay word-for-word identical to this
        (it also serves repeat bounds beyond the kernel's byte counters).
        """
        emitted = 0
        seen_words: Set[Tuple[Symbol, ...]] = set()
        # breadth-first search over (state, word, visit-counts)
        start: List[Tuple[int, Tuple[Symbol, ...], Tuple[Tuple[int, int], ...]]] = [
            (state, (), ((state, 1),)) for state in sorted(self.initial)
        ]
        frontier = start
        if self.accepts_epsilon() and () not in seen_words:
            seen_words.add(())
            emitted += 1
            yield ()
        length = 0
        while frontier and length < max_length and emitted < max_words:
            length += 1
            next_frontier: List[Tuple[int, Tuple[Symbol, ...], Tuple[Tuple[int, int], ...]]] = []
            for state, word, counts in frontier:
                count_map = dict(counts)
                for symbol, target in sorted(
                    self.transitions_from(state), key=lambda pair: (repr(pair[0]), pair[1])
                ):
                    visits = count_map.get(target, 0) + 1
                    if visits > max_state_repeats:
                        continue
                    new_word = word + (symbol,)
                    new_counts = dict(count_map)
                    new_counts[target] = visits
                    if target in self.final and new_word not in seen_words:
                        seen_words.add(new_word)
                        emitted += 1
                        yield new_word
                        if emitted >= max_words:
                            return
                    next_frontier.append((target, new_word, tuple(sorted(new_counts.items()))))
            frontier = next_frontier

    def shortest_word(self) -> Tuple[Symbol, ...]:
        """Return one shortest accepted word (raises ``ValueError`` if none)."""
        for word in self.enumerate_words(max_length=2 * len(self.states) + 2, max_state_repeats=1):
            return word
        for word in self.enumerate_words(max_length=2 * len(self.states) + 2, max_state_repeats=2):
            return word
        raise ValueError("the automaton accepts no word")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"NFA(states={len(self.states)}, initial={sorted(self.initial)}, "
            f"final={sorted(self.final)}, transitions={len(self._transitions)})"
        )


# --------------------------------------------------------------------------- #
# Thompson construction with ε-elimination
# --------------------------------------------------------------------------- #
class _Fragment:
    """A fragment of the ε-NFA under construction."""

    __slots__ = ("start", "end")

    def __init__(self, start: int, end: int) -> None:
        self.start = start
        self.end = end


class _Builder:
    def __init__(self) -> None:
        self.counter = 0
        self.epsilon: Dict[int, Set[int]] = {}
        self.labelled: List[Tuple[int, Symbol, int]] = []

    def fresh(self) -> int:
        self.counter += 1
        return self.counter - 1

    def add_epsilon(self, source: int, target: int) -> None:
        self.epsilon.setdefault(source, set()).add(target)

    def add_symbol(self, source: int, symbol: Symbol, target: int) -> None:
        self.labelled.append((source, symbol, target))

    def build(self, expr: Regex) -> _Fragment:
        if isinstance(expr, EmptyLanguage):
            return _Fragment(self.fresh(), self.fresh())
        if isinstance(expr, Epsilon):
            start, end = self.fresh(), self.fresh()
            self.add_epsilon(start, end)
            return _Fragment(start, end)
        if isinstance(expr, (NodeTest, EdgeStep)):
            start, end = self.fresh(), self.fresh()
            self.add_symbol(start, expr, end)
            return _Fragment(start, end)
        if isinstance(expr, Concat):
            left = self.build(expr.left)
            right = self.build(expr.right)
            self.add_epsilon(left.end, right.start)
            return _Fragment(left.start, right.end)
        if isinstance(expr, Union):
            left = self.build(expr.left)
            right = self.build(expr.right)
            start, end = self.fresh(), self.fresh()
            self.add_epsilon(start, left.start)
            self.add_epsilon(start, right.start)
            self.add_epsilon(left.end, end)
            self.add_epsilon(right.end, end)
            return _Fragment(start, end)
        if isinstance(expr, Star):
            inner = self.build(expr.inner)
            start, end = self.fresh(), self.fresh()
            self.add_epsilon(start, inner.start)
            self.add_epsilon(start, end)
            self.add_epsilon(inner.end, inner.start)
            self.add_epsilon(inner.end, end)
            return _Fragment(start, end)
        raise TypeError(f"unknown regex node: {expr!r}")

    def epsilon_closure(self, state: int) -> Set[int]:
        closure = {state}
        frontier = [state]
        while frontier:
            current = frontier.pop()
            for target in self.epsilon.get(current, ()):
                if target not in closure:
                    closure.add(target)
                    frontier.append(target)
        return closure


def build_nfa(expr: Regex) -> NFA:
    """Compile a two-way regular expression to an ε-free NFA.

    The result has O(|expr|) states, as required by the rolling-up lemma.
    """
    from ..core.kernels import bitset_closure  # deferred: core builds on this module

    builder = _Builder()
    fragment = builder.build(expr)
    # all ε-closures at once as int bitsets (bit j of closures[i] ⇔ j is in
    # the closure of i) — same sets the per-state DFS produced
    closures = bitset_closure(
        builder.counter,
        (
            (source, target)
            for source, targets in builder.epsilon.items()
            for target in targets
        ),
    )

    transitions: List[Tuple[int, Symbol, int]] = []
    for source, symbol, target in builder.labelled:
        source_bit = 1 << source
        for origin in range(builder.counter):
            if closures[origin] & source_bit:
                transitions.append((origin, symbol, target))

    end_bit = 1 << fragment.end
    final = {state for state in range(builder.counter) if closures[state] & end_bit}
    # keep only states reachable from the start to stay small
    return NFA(range(builder.counter), {fragment.start}, final, transitions).trim()
