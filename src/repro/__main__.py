"""``python -m repro`` — see :mod:`repro.cli`.

The ``__name__`` guard is required: the process backend starts workers with
the ``spawn`` method, which re-imports the main module in each worker.
"""

from .cli import main

if __name__ == "__main__":
    raise SystemExit(main())
