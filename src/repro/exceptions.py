"""Exception hierarchy for the :mod:`repro` library.

All exceptions raised by the public API derive from :class:`ReproError`, so a
caller can catch a single base class.  More specific subclasses exist for the
main subsystems (graphs, schemas, queries, transformations, analysis) so that
tests and downstream tooling can react precisely.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all errors raised by the library."""


class GraphError(ReproError):
    """Raised when a graph is constructed or manipulated inconsistently."""


class SchemaError(ReproError):
    """Raised when a schema definition is malformed."""


class ConformanceError(ReproError):
    """Raised when a graph is required to conform to a schema but does not."""

    def __init__(self, message: str, violations=None):
        super().__init__(message)
        self.violations = list(violations or [])


class QueryError(ReproError):
    """Raised when a regular path query or C2RPQ is malformed."""


class AcyclicityError(QueryError):
    """Raised when an acyclic C2RPQ is required but the query is cyclic."""


class ParseError(ReproError):
    """Raised by the textual DSL parsers (schemas, queries, rules)."""

    def __init__(self, message: str, position: int | None = None, text: str | None = None):
        super().__init__(message)
        self.position = position
        self.text = text


class TransformationError(ReproError):
    """Raised when a transformation or one of its rules is malformed."""


class ConstructorError(TransformationError):
    """Raised when node constructors violate the paper's assumptions
    (one constructor per label, injectivity, disjoint ranges)."""


class AnalysisError(ReproError):
    """Raised when a static-analysis task cannot be carried out."""


class ElicitationError(AnalysisError):
    """Raised when schema elicitation fails, e.g. because some output node
    may lack a label (Section 4 of the paper)."""


class TBoxError(ReproError):
    """Raised when a description-logic TBox is malformed."""


class SolverError(ReproError):
    """Raised when the satisfiability / containment solver is misused."""


class BudgetExceeded(SolverError):
    """Raised when a solver exceeds its configured resource budget."""

    def __init__(self, message: str, budget=None):
        super().__init__(message)
        self.budget = budget
