"""repro — static analysis of graph database transformations.

A from-scratch Python implementation of the framework of Boneva, Groz,
Hidders, Murlak and Staworko, *Static Analysis of Graph Database
Transformations* (PODS 2023): labeled graphs, schemas with participation
constraints, two-way regular path queries, Datalog-like graph transformations
with node constructors, and the EXPTIME static-analysis procedures — type
checking, equivalence and target schema elicitation — built on containment of
UC2RPQs in acyclic UC2RPQs modulo schema.

The most common entry points are re-exported here; see the subpackages for
the full API:

* :mod:`repro.graph` — the labeled graph data model;
* :mod:`repro.schema` — schemas and conformance;
* :mod:`repro.rpq` — regular path queries and their evaluation;
* :mod:`repro.transform` — transformations and their application;
* :mod:`repro.analysis` — type checking, equivalence, schema elicitation;
* :mod:`repro.containment` — query containment modulo schema;
* :mod:`repro.engine` — the cached containment engine and its batch API;
* :mod:`repro.store` — the disk-persistent result store behind
  ``ContainmentEngine(persist=path)``;
* :mod:`repro.service` — the long-running containment service behind
  ``python -m repro serve`` (request coalescer, HTTP/stdio transports; not
  re-exported here — import :mod:`repro.service` directly);
* :mod:`repro.workloads` — ready-made scenarios (the paper's medical example,
  FHIR-style migrations, synthetic generators, service request streams).
"""

from .graph import Graph, GraphBuilder
from .schema import Multiplicity, Schema, check_conformance, conforms, parse_schema
from .rpq import C2RPQ, UC2RPQ, Atom, parse_c2rpq, parse_regex, satisfies
from .transform import (
    EdgeRule,
    NodeConstructor,
    NodeRule,
    Transformation,
    parse_transformation,
)
from .analysis import (
    EquivalenceResult,
    TypeCheckResult,
    check_equivalence,
    check_equivalence_many,
    elicit_schema,
    type_check,
    type_check_many,
)
from .containment import ContainmentResult, contains
from .engine import (
    ContainmentEngine,
    ContainmentRequest,
    EvolveReport,
    InvalidationReport,
    SchemaDelta,
    default_engine,
)
from .store import ResultStore

__version__ = "1.0.0"

__all__ = [
    "Graph",
    "GraphBuilder",
    "Multiplicity",
    "Schema",
    "check_conformance",
    "conforms",
    "parse_schema",
    "C2RPQ",
    "UC2RPQ",
    "Atom",
    "parse_c2rpq",
    "parse_regex",
    "satisfies",
    "EdgeRule",
    "NodeConstructor",
    "NodeRule",
    "Transformation",
    "parse_transformation",
    "EquivalenceResult",
    "TypeCheckResult",
    "check_equivalence",
    "check_equivalence_many",
    "elicit_schema",
    "type_check",
    "type_check_many",
    "ContainmentResult",
    "contains",
    "ContainmentEngine",
    "ContainmentRequest",
    "EvolveReport",
    "InvalidationReport",
    "SchemaDelta",
    "default_engine",
    "ResultStore",
    "__version__",
]
