"""Description-logic layer: ALCIF concept inclusions, Horn TBoxes, the
schema ↔ L0 correspondence and finite model checking."""

from .concepts import (
    AtMostOneCI,
    ConceptInclusion,
    ConceptNames,
    DisjunctionCI,
    ExistsCI,
    ForAllCI,
    NoExistsCI,
    SubclassOf,
    SubclassOfBottom,
    TOP,
    conj,
    format_conjunction,
)
from .tbox import TBox, is_coherent_l0, is_l0_statement
from .schema_tbox import (
    disjointness_statements,
    label_coverage_statement,
    schema_from_l0,
    schema_to_extended_tbox,
    schema_to_l0,
)
from .model_check import conformance_tbox, conforms_via_tbox, holds_in, violated

__all__ = [
    "AtMostOneCI",
    "ConceptInclusion",
    "ConceptNames",
    "DisjunctionCI",
    "ExistsCI",
    "ForAllCI",
    "NoExistsCI",
    "SubclassOf",
    "SubclassOfBottom",
    "TOP",
    "conj",
    "format_conjunction",
    "TBox",
    "is_coherent_l0",
    "is_l0_statement",
    "disjointness_statements",
    "label_coverage_statement",
    "schema_from_l0",
    "schema_to_extended_tbox",
    "schema_to_l0",
    "conformance_tbox",
    "conforms_via_tbox",
    "holds_in",
    "violated",
]
