"""Description-logic layer: ALCIF concept inclusions, Horn TBoxes, the
schema ↔ L0 correspondence and finite model checking.

Re-exports:

* the normal-form statement kinds :class:`SubclassOf`,
  :class:`SubclassOfBottom`, :class:`ForAllCI`, :class:`ExistsCI`,
  :class:`NoExistsCI`, :class:`AtMostOneCI`, :class:`DisjunctionCI` with
  their base :class:`ConceptInclusion`, the conjunction helpers
  :func:`conj` / :func:`format_conjunction`, the alias :data:`ConceptNames`
  and the constant :data:`TOP`;
* :class:`TBox` — a statement set grouped by kind, with canonical
  fingerprints for the engine caches; :func:`is_l0_statement` /
  :func:`is_coherent_l0` — the L0 fragment of Appendix B;
* :func:`schema_to_l0` / :func:`schema_from_l0` /
  :func:`schema_to_extended_tbox` / :func:`label_coverage_statement` /
  :func:`disjointness_statements` — the schema ↔ TBox translations
  (Theorem 5.6 / Proposition B.4);
* :func:`holds_in` / :func:`violated` / :func:`conformance_tbox` /
  :func:`conforms_via_tbox` — finite model checking of statements.
"""

from .concepts import (
    AtMostOneCI,
    ConceptInclusion,
    ConceptNames,
    DisjunctionCI,
    ExistsCI,
    ForAllCI,
    NoExistsCI,
    SubclassOf,
    SubclassOfBottom,
    TOP,
    conj,
    format_conjunction,
)
from .tbox import TBox, is_coherent_l0, is_l0_statement
from .schema_tbox import (
    disjointness_statements,
    label_coverage_statement,
    schema_from_l0,
    schema_to_extended_tbox,
    schema_to_l0,
)
from .model_check import conformance_tbox, conforms_via_tbox, holds_in, violated

__all__ = [
    "AtMostOneCI",
    "ConceptInclusion",
    "ConceptNames",
    "DisjunctionCI",
    "ExistsCI",
    "ForAllCI",
    "NoExistsCI",
    "SubclassOf",
    "SubclassOfBottom",
    "TOP",
    "conj",
    "format_conjunction",
    "TBox",
    "is_coherent_l0",
    "is_l0_statement",
    "disjointness_statements",
    "label_coverage_statement",
    "schema_from_l0",
    "schema_to_extended_tbox",
    "schema_to_l0",
    "conformance_tbox",
    "conforms_via_tbox",
    "holds_in",
    "violated",
]
