"""Horn-ALCIF TBoxes and the L0 fragment (Sections 3–5, Appendix B).

A :class:`TBox` is a finite set of concept inclusions in the normal forms of
:mod:`repro.dl.concepts`.  The class keeps the statements grouped by kind so
that the chase engine and the cycle-reversing procedure can iterate over
exactly the statements they need, and it knows the two complexity parameters
that the paper tracks: the number of concept names ``k`` and the number of
at-most constraints ``ℓ``.

The *L0 fragment* (Appendix B) restricts statements to the three forms
``A ⊑ ∃R.B``, ``A ⊑ ¬∃R.B`` and ``A ⊑ ∃≤1R.B`` with single concept names on
both sides; it is in one-to-one correspondence with schemas (see
:mod:`repro.dl.schema_tbox`).
"""

from __future__ import annotations

import hashlib
from typing import FrozenSet, Iterable, Iterator, List, Optional, Set, Tuple

from ..exceptions import TBoxError
from ..graph.graph import Graph
from ..graph.labels import SignedLabel
from .concepts import (
    AtMostOneCI,
    ConceptInclusion,
    ConceptNames,
    DisjunctionCI,
    ExistsCI,
    ForAllCI,
    NoExistsCI,
    SubclassOf,
    SubclassOfBottom,
)

__all__ = ["TBox", "canonical_statement_token", "is_l0_statement", "is_coherent_l0"]


def canonical_statement_token(statement: ConceptInclusion) -> str:
    """A deterministic serialisation of one concept inclusion.

    Unlike ``repr`` (whose frozenset ordering depends on the per-process hash
    seed) the token sorts every conjunction, so it is stable across processes
    and suitable as cache-key material for the :mod:`repro.engine` caches.
    """
    parts = [type(statement).__name__]
    parts.append(",".join(f"{len(n)}:{n}" for n in sorted(statement.body)))  # type: ignore[attr-defined]
    role = getattr(statement, "role", None)
    if role is not None:
        text = str(role)
        parts.append(f"{len(text)}:{text}")
    head = getattr(statement, "head", None)
    if head is not None:
        if isinstance(head, frozenset):
            parts.append(",".join(f"{len(n)}:{n}" for n in sorted(head)))
        else:
            parts.append(f"{len(head)}:{head}")
    alternatives = getattr(statement, "alternatives", None)
    if alternatives is not None:
        parts.append(",".join(f"{len(n)}:{n}" for n in sorted(alternatives)))
    return "|".join(parts)


_HORN_KINDS = (
    SubclassOf,
    SubclassOfBottom,
    ForAllCI,
    ExistsCI,
    NoExistsCI,
    AtMostOneCI,
)


class TBox:
    """A set of ALCIF concept inclusions in normal form."""

    def __init__(self, statements: Iterable[ConceptInclusion] = (), name: str = "T") -> None:
        self.name = name
        self._statements: List[ConceptInclusion] = []
        self._seen: Set[ConceptInclusion] = set()
        for statement in statements:
            self.add(statement)

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def add(self, statement: ConceptInclusion) -> bool:
        """Add a statement; returns ``True`` when it was new."""
        if not isinstance(statement, ConceptInclusion):
            raise TBoxError(f"not a concept inclusion: {statement!r}")
        if statement in self._seen:
            return False
        self._seen.add(statement)
        self._statements.append(statement)
        return True

    def extend(self, statements: Iterable[ConceptInclusion]) -> int:
        """Add several statements; returns the number of new ones."""
        return sum(1 for statement in statements if self.add(statement))

    def union(self, other: "TBox", name: Optional[str] = None) -> "TBox":
        """Union of two TBoxes."""
        result = TBox(self._statements, name=name or f"{self.name}∪{other.name}")
        result.extend(other._statements)
        return result

    def copy(self, name: Optional[str] = None) -> "TBox":
        """A shallow copy (statements are immutable)."""
        return TBox(self._statements, name=name or self.name)

    # ------------------------------------------------------------------ #
    # inspection
    # ------------------------------------------------------------------ #
    def __iter__(self) -> Iterator[ConceptInclusion]:
        return iter(self._statements)

    def __len__(self) -> int:
        return len(self._statements)

    def __contains__(self, statement: ConceptInclusion) -> bool:
        return statement in self._seen

    def statements(self) -> Tuple[ConceptInclusion, ...]:
        """All statements, in insertion order."""
        return tuple(self._statements)

    def of_kind(self, kind) -> Iterator[ConceptInclusion]:
        """Iterate over the statements of one normal-form kind."""
        return (s for s in self._statements if isinstance(s, kind))

    def subclass_statements(self) -> Iterator[SubclassOf]:
        """The statements ``K ⊑ A``."""
        return self.of_kind(SubclassOf)  # type: ignore[return-value]

    def bottom_statements(self) -> Iterator[SubclassOfBottom]:
        """The statements ``K ⊑ ⊥``."""
        return self.of_kind(SubclassOfBottom)  # type: ignore[return-value]

    def forall_statements(self) -> Iterator[ForAllCI]:
        """The statements ``K ⊑ ∀R.K'``."""
        return self.of_kind(ForAllCI)  # type: ignore[return-value]

    def exists_statements(self) -> Iterator[ExistsCI]:
        """The statements ``K ⊑ ∃R.K'``."""
        return self.of_kind(ExistsCI)  # type: ignore[return-value]

    def no_exists_statements(self) -> Iterator[NoExistsCI]:
        """The statements ``K ⊑ ¬∃R.K'``."""
        return self.of_kind(NoExistsCI)  # type: ignore[return-value]

    def at_most_statements(self) -> Iterator[AtMostOneCI]:
        """The statements ``K ⊑ ∃≤1R.K'``."""
        return self.of_kind(AtMostOneCI)  # type: ignore[return-value]

    def disjunction_statements(self) -> Iterator[DisjunctionCI]:
        """The non-Horn statements ``K ⊑ A₁ ⊔ … ⊔ A_n``."""
        return self.of_kind(DisjunctionCI)  # type: ignore[return-value]

    def is_horn(self) -> bool:
        """``True`` when no disjunctive statement is present."""
        return not any(True for _ in self.disjunction_statements())

    def concept_names(self) -> FrozenSet[str]:
        """All concept names mentioned (complexity parameter ``k``)."""
        names: Set[str] = set()
        for statement in self._statements:
            names |= statement.concept_names()
        return frozenset(names)

    def role_names(self) -> FrozenSet[str]:
        """All base role names mentioned."""
        names: Set[str] = set()
        for statement in self._statements:
            names |= statement.role_names()
        return frozenset(names)

    def signed_roles(self) -> FrozenSet[SignedLabel]:
        """All signed roles mentioned in ∀/∃/¬∃/≤1 statements."""
        roles: Set[SignedLabel] = set()
        for statement in self._statements:
            role = getattr(statement, "role", None)
            if role is not None:
                roles.add(role)
        return frozenset(roles)

    def at_most_count(self) -> int:
        """The complexity parameter ℓ — the number of at-most constraints."""
        return sum(1 for _ in self.at_most_statements())

    def size(self) -> int:
        """Total number of statements ``|T|``."""
        return len(self._statements)

    def canonical_token(self) -> str:
        """Order- and name-insensitive serialisation (the *set* of statements)."""
        return "tbox[" + ";".join(sorted(canonical_statement_token(s) for s in self._statements)) + "]"

    def canonical_fingerprint(self) -> str:
        """SHA-256 digest of :meth:`canonical_token` (cache-key material)."""
        return hashlib.sha256(self.canonical_token().encode("utf-8")).hexdigest()

    # ------------------------------------------------------------------ #
    # semantics over finite graphs
    # ------------------------------------------------------------------ #
    def holds_in(self, graph: Graph) -> bool:
        """``G ⊨ T`` for a finite graph, checked statement by statement."""
        return all(statement.holds_in(graph) for statement in self._statements)

    def violated_statements(self, graph: Graph) -> List[ConceptInclusion]:
        """The statements violated by *graph* (useful for diagnostics)."""
        return [statement for statement in self._statements if not statement.holds_in(graph)]

    # ------------------------------------------------------------------ #
    def describe(self) -> str:
        """A human-readable listing of the TBox."""
        lines = [f"TBox {self.name} ({len(self)} statements)"]
        lines.extend(f"  {statement}" for statement in self._statements)
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TBox({self.name!r}, {len(self)} statements)"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TBox):
            return NotImplemented
        return self._seen == other._seen

    def __hash__(self) -> int:
        return hash(frozenset(self._seen))


def is_l0_statement(statement: ConceptInclusion) -> bool:
    """``True`` for statements of the L0 fragment: single concept names on
    both sides and one of the forms ∃ / ¬∃ / ∃≤1."""
    if not isinstance(statement, (ExistsCI, NoExistsCI, AtMostOneCI)):
        return False
    return len(statement.body) == 1 and len(statement.head) == 1


def is_coherent_l0(statements: Iterable[ConceptInclusion]) -> bool:
    """Coherence of an L0 TBox (Appendix B).

    A set of L0 statements is coherent when (1) it never contains both
    ``A ⊑ ∃R.B`` and ``A ⊑ ¬∃R.B`` and (2) it contains ``A ⊑ ∃≤1R.B``
    whenever it contains ``A ⊑ ¬∃R.B``.
    """
    exists: Set[Tuple[ConceptNames, SignedLabel, ConceptNames]] = set()
    no_exists: Set[Tuple[ConceptNames, SignedLabel, ConceptNames]] = set()
    at_most: Set[Tuple[ConceptNames, SignedLabel, ConceptNames]] = set()
    for statement in statements:
        if not is_l0_statement(statement):
            raise TBoxError(f"not an L0 statement: {statement}")
        key = (statement.body, statement.role, statement.head)  # type: ignore[attr-defined]
        if isinstance(statement, ExistsCI):
            exists.add(key)
        elif isinstance(statement, NoExistsCI):
            no_exists.add(key)
        elif isinstance(statement, AtMostOneCI):
            at_most.add(key)
    if exists & no_exists:
        return False
    return no_exists <= at_most
