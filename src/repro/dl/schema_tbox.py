"""The schema ↔ L0-TBox correspondence (Appendix B of the paper).

For a schema ``S`` the corresponding L0 TBox ``T_S`` over ``Γ_S`` and ``Σ_S``
is (Appendix B)::

    T_S = { A ⊑ ∃R.B    | δ_S(A,R,B) ∈ {1,+} }
        ∪ { A ⊑ ∃≤1R.B  | δ_S(A,R,B) ∈ {1,?,0} }
        ∪ { A ⊑ ¬∃R.B   | δ_S(A,R,B) = 0 }

Proposition B.1: a graph conforms to ``S`` iff it satisfies ``T_S``, the
disjunction ``⊤ ⊑ ⊔Γ_S`` and the pairwise-disjointness statements
``A ⊓ B ⊑ ⊥``.  The *extended* TBox ``T̂_S`` of Theorem 5.6 adds the
disjointness statements (the disjunction is pushed into the query instead,
because it is not Horn).

The correspondence is a bijection between schemas over (Γ₀, Σ₀) and coherent
L0 TBoxes over (Γ₀, Σ₀); :func:`schema_from_l0` is the inverse direction and
is the workhorse of schema elicitation (Lemma B.5).
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable, Optional, Set, Tuple

from ..exceptions import TBoxError
from ..graph.labels import SignedLabel, signed_closure
from ..schema.schema import Multiplicity, Schema
from .concepts import AtMostOneCI, ConceptInclusion, DisjunctionCI, ExistsCI, NoExistsCI, SubclassOfBottom, conj
from .tbox import TBox, is_l0_statement

__all__ = [
    "schema_to_l0",
    "schema_to_extended_tbox",
    "disjointness_statements",
    "label_coverage_statement",
    "schema_from_l0",
]


def schema_to_l0(schema: Schema) -> TBox:
    """The L0 TBox ``T_S`` expressing the participation constraints of *S*."""
    tbox = TBox(name=f"T_{schema.name}")
    for source in sorted(schema.node_labels):
        for signed in signed_closure(sorted(schema.edge_labels)):
            for target in sorted(schema.node_labels):
                multiplicity = schema.multiplicity(source, signed, target)
                body, head = conj(source), conj(target)
                if multiplicity in (Multiplicity.ONE, Multiplicity.PLUS):
                    tbox.add(ExistsCI(body, signed, head))
                if multiplicity in (Multiplicity.ONE, Multiplicity.OPTIONAL, Multiplicity.ZERO):
                    tbox.add(AtMostOneCI(body, signed, head))
                if multiplicity is Multiplicity.ZERO:
                    tbox.add(NoExistsCI(body, signed, head))
    return tbox


def disjointness_statements(node_labels: Iterable[str]) -> Tuple[SubclassOfBottom, ...]:
    """The statements ``A ⊓ B ⊑ ⊥`` for all distinct node labels."""
    return tuple(
        SubclassOfBottom(conj(a, b)) for a, b in combinations(sorted(node_labels), 2)
    )


def label_coverage_statement(node_labels: Iterable[str]) -> DisjunctionCI:
    """The non-Horn statement ``⊤ ⊑ ⊔Γ`` ("every node has a label")."""
    return DisjunctionCI(conj(), tuple(sorted(node_labels)))


def schema_to_extended_tbox(schema: Schema) -> TBox:
    """The Horn TBox ``T̂_S = T_S ∪ {A ⊓ B ⊑ ⊥}`` of Theorem 5.6."""
    tbox = schema_to_l0(schema)
    tbox.name = f"T̂_{schema.name}"
    tbox.extend(disjointness_statements(schema.node_labels))
    return tbox


def schema_from_l0(
    statements: Iterable[ConceptInclusion],
    node_labels: Iterable[str],
    edge_labels: Iterable[str],
    name: str = "S",
) -> Schema:
    """Reconstruct the schema corresponding to a coherent L0 TBox.

    The multiplicity of a triple ``(A, R, B)`` is read off the statements
    present for it::

        ∃ and ∃≤1       →  1
        ∃ only          →  +
        ∃≤1 and ¬∃      →  0
        ∃≤1 only        →  ?
        nothing         →  *

    Raises :class:`TBoxError` when the statement set is not a coherent L0
    TBox over the given labels.
    """
    node_labels = frozenset(node_labels)
    edge_labels = frozenset(edge_labels)
    exists: Set[Tuple[str, SignedLabel, str]] = set()
    at_most: Set[Tuple[str, SignedLabel, str]] = set()
    no_exists: Set[Tuple[str, SignedLabel, str]] = set()
    for statement in statements:
        if not is_l0_statement(statement):
            raise TBoxError(f"not an L0 statement: {statement}")
        (source,) = statement.body  # type: ignore[attr-defined]
        (target,) = statement.head  # type: ignore[attr-defined]
        role: SignedLabel = statement.role  # type: ignore[attr-defined]
        if source not in node_labels or target not in node_labels or role.label not in edge_labels:
            raise TBoxError(f"statement {statement} uses labels outside the given alphabets")
        key = (source, role, target)
        if isinstance(statement, ExistsCI):
            exists.add(key)
        elif isinstance(statement, AtMostOneCI):
            at_most.add(key)
        elif isinstance(statement, NoExistsCI):
            no_exists.add(key)
    if exists & no_exists:
        raise TBoxError("incoherent L0 TBox: contradictory ∃ and ¬∃ statements")

    schema = Schema(node_labels, edge_labels, name=name)
    for source in sorted(node_labels):
        for signed in signed_closure(sorted(edge_labels)):
            for target in sorted(node_labels):
                key = (source, signed, target)
                has_exists = key in exists
                has_at_most = key in at_most or key in no_exists
                has_no_exists = key in no_exists
                if has_no_exists:
                    multiplicity = Multiplicity.ZERO
                elif has_exists and has_at_most:
                    multiplicity = Multiplicity.ONE
                elif has_exists:
                    multiplicity = Multiplicity.PLUS
                elif has_at_most:
                    multiplicity = Multiplicity.OPTIONAL
                else:
                    multiplicity = Multiplicity.STAR
                # unmentioned triples default to 0 in Schema, but the L0
                # reading is "unconstrained", so every triple is set explicitly
                schema.set(source, signed, target, multiplicity)
    return schema


def optional_schema_name(schema: Optional[Schema]) -> str:
    """Small helper used by diagnostics."""
    return schema.name if schema is not None else "<none>"
