"""Finite model checking of ALCIF statements and Proposition B.1.

These helpers connect the description-logic view and the schema view of a
finite graph: ``conforms(G, S)`` holds exactly when ``G ⊨ T_S``, ``G ⊨ ⊤⊑⊔Γ_S``
and ``G ⊨ A⊓B⊑⊥`` for distinct labels (Proposition B.1).  The functions are
used by the test-suite as an independent oracle for the conformance checker
and by the static-analysis layer when validating witnesses.
"""

from __future__ import annotations

from typing import Iterable, List

from ..graph.graph import Graph
from ..schema.schema import Schema
from .concepts import ConceptInclusion
from .schema_tbox import (
    disjointness_statements,
    label_coverage_statement,
    schema_to_l0,
)
from .tbox import TBox

__all__ = [
    "holds_in",
    "violated",
    "conforms_via_tbox",
    "conformance_tbox",
]


def holds_in(graph: Graph, statements: Iterable[ConceptInclusion]) -> bool:
    """``G ⊨ T`` for an iterable of statements."""
    return all(statement.holds_in(graph) for statement in statements)


def violated(graph: Graph, statements: Iterable[ConceptInclusion]) -> List[ConceptInclusion]:
    """The statements from *statements* violated by *graph*."""
    return [statement for statement in statements if not statement.holds_in(graph)]


def conformance_tbox(schema: Schema) -> TBox:
    """The full (non-Horn) TBox characterising conformance to *schema*:
    ``T_S`` plus ``⊤ ⊑ ⊔Γ_S`` plus pairwise disjointness (Proposition B.1)."""
    tbox = schema_to_l0(schema)
    tbox.name = f"conformance({schema.name})"
    tbox.extend(disjointness_statements(schema.node_labels))
    if schema.node_labels:
        tbox.add(label_coverage_statement(schema.node_labels))
    return tbox


def conforms_via_tbox(graph: Graph, schema: Schema) -> bool:
    """Conformance checked through the description-logic characterisation.

    This is an independent implementation of ``conforms(graph, schema)`` via
    Proposition B.1, used by tests to cross-validate the two views.  Note that
    the DL view does not constrain *edge* labels, so foreign edge labels are
    checked separately here.
    """
    if not graph.edge_labels() <= schema.edge_labels:
        return False
    if not graph.node_labels() <= schema.node_labels:
        return False
    return conformance_tbox(schema).holds_in(graph)
