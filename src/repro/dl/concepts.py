"""Concept inclusions of (Horn-)ALCIF in the normal forms used by the paper.

The paper only ever manipulates Horn-ALCIF TBoxes in normal form (Section 3):

    K ⊑ A        K ⊑ ⊥        K ⊑ ∀R.K'
    K ⊑ ∃R.K'    K ⊑ ¬∃R.K'   K ⊑ ∃≤1 R.K'

where ``K``, ``K'`` are (possibly empty) conjunctions of concept names and
``R ∈ Σ±``.  Full ALCIF is recovered by additionally allowing disjunctive
inclusions ``K ⊑ A₁ ⊔ … ⊔ A_n`` — which the paper needs only for the single
statement ``⊤ ⊑ ⊔Γ`` ("every node has a label").  This module defines the
normal-form statements directly as small frozen dataclasses; conjunctions of
concept names are plain ``frozenset``\\ s of strings (the empty set is ⊤).

Every statement knows how to check itself over a finite graph
(:meth:`ConceptInclusion.holds_in`), which implements the interpretation
function of Section 3 for the fragment the paper uses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, Tuple, Union

from ..graph.graph import Graph
from ..graph.labels import SignedLabel

__all__ = [
    "ConceptNames",
    "conj",
    "TOP",
    "ConceptInclusion",
    "SubclassOf",
    "SubclassOfBottom",
    "ForAllCI",
    "ExistsCI",
    "NoExistsCI",
    "AtMostOneCI",
    "DisjunctionCI",
    "format_conjunction",
]

# A conjunction of concept names; the empty conjunction is ⊤.
ConceptNames = FrozenSet[str]

TOP: ConceptNames = frozenset()


def conj(*names: Union[str, Iterable[str]]) -> ConceptNames:
    """Build a conjunction of concept names from strings and/or iterables."""
    result = set()
    for name in names:
        if isinstance(name, str):
            result.add(name)
        else:
            result.update(name)
    return frozenset(result)


def format_conjunction(names: ConceptNames) -> str:
    """Human-readable rendering of a conjunction (⊤ for the empty one)."""
    if not names:
        return "⊤"
    return " ⊓ ".join(sorted(names))


def _nodes_satisfying(graph: Graph, names: ConceptNames):
    """Nodes of *graph* whose label set includes all of *names*."""
    for node in graph.nodes():
        if names <= graph.labels(node):
            yield node


class ConceptInclusion:
    """Base class of all concept inclusions."""

    def holds_in(self, graph: Graph) -> bool:
        """``G ⊨ CI`` over a finite graph."""
        raise NotImplementedError

    def concept_names(self) -> ConceptNames:
        """All concept names mentioned by the statement."""
        raise NotImplementedError

    def role_names(self) -> FrozenSet[str]:
        """All base role (edge-label) names mentioned by the statement."""
        return frozenset()


@dataclass(frozen=True)
class SubclassOf(ConceptInclusion):
    """``K ⊑ A`` — every node satisfying K carries concept name A."""

    body: ConceptNames
    head: str

    def holds_in(self, graph: Graph) -> bool:
        return all(graph.has_label(node, self.head) for node in _nodes_satisfying(graph, self.body))

    def concept_names(self) -> ConceptNames:
        return self.body | {self.head}

    def __str__(self) -> str:
        return f"{format_conjunction(self.body)} ⊑ {self.head}"


@dataclass(frozen=True)
class SubclassOfBottom(ConceptInclusion):
    """``K ⊑ ⊥`` — no node satisfies K."""

    body: ConceptNames

    def holds_in(self, graph: Graph) -> bool:
        return not any(True for _ in _nodes_satisfying(graph, self.body))

    def concept_names(self) -> ConceptNames:
        return self.body

    def __str__(self) -> str:
        return f"{format_conjunction(self.body)} ⊑ ⊥"


@dataclass(frozen=True)
class ForAllCI(ConceptInclusion):
    """``K ⊑ ∀R.K'`` — every R-successor of a K-node satisfies K'."""

    body: ConceptNames
    role: SignedLabel
    head: ConceptNames

    def holds_in(self, graph: Graph) -> bool:
        for node in _nodes_satisfying(graph, self.body):
            for successor in graph.successors(node, self.role):
                if not self.head <= graph.labels(successor):
                    return False
        return True

    def concept_names(self) -> ConceptNames:
        return self.body | self.head

    def role_names(self) -> FrozenSet[str]:
        return frozenset({self.role.label})

    def __str__(self) -> str:
        return f"{format_conjunction(self.body)} ⊑ ∀{self.role}.{format_conjunction(self.head)}"


@dataclass(frozen=True)
class ExistsCI(ConceptInclusion):
    """``K ⊑ ∃R.K'`` — every K-node has an R-successor satisfying K'."""

    body: ConceptNames
    role: SignedLabel
    head: ConceptNames

    def holds_in(self, graph: Graph) -> bool:
        for node in _nodes_satisfying(graph, self.body):
            if not any(
                self.head <= graph.labels(successor)
                for successor in graph.successors(node, self.role)
            ):
                return False
        return True

    def concept_names(self) -> ConceptNames:
        return self.body | self.head

    def role_names(self) -> FrozenSet[str]:
        return frozenset({self.role.label})

    def __str__(self) -> str:
        return f"{format_conjunction(self.body)} ⊑ ∃{self.role}.{format_conjunction(self.head)}"


@dataclass(frozen=True)
class NoExistsCI(ConceptInclusion):
    """``K ⊑ ¬∃R.K'`` — no K-node has an R-successor satisfying K'."""

    body: ConceptNames
    role: SignedLabel
    head: ConceptNames

    def holds_in(self, graph: Graph) -> bool:
        for node in _nodes_satisfying(graph, self.body):
            if any(
                self.head <= graph.labels(successor)
                for successor in graph.successors(node, self.role)
            ):
                return False
        return True

    def concept_names(self) -> ConceptNames:
        return self.body | self.head

    def role_names(self) -> FrozenSet[str]:
        return frozenset({self.role.label})

    def __str__(self) -> str:
        return f"{format_conjunction(self.body)} ⊑ ¬∃{self.role}.{format_conjunction(self.head)}"


@dataclass(frozen=True)
class AtMostOneCI(ConceptInclusion):
    """``K ⊑ ∃≤1 R.K'`` — every K-node has at most one R-successor satisfying K'."""

    body: ConceptNames
    role: SignedLabel
    head: ConceptNames

    def holds_in(self, graph: Graph) -> bool:
        for node in _nodes_satisfying(graph, self.body):
            count = sum(
                1
                for successor in graph.successors(node, self.role)
                if self.head <= graph.labels(successor)
            )
            if count > 1:
                return False
        return True

    def concept_names(self) -> ConceptNames:
        return self.body | self.head

    def role_names(self) -> FrozenSet[str]:
        return frozenset({self.role.label})

    def __str__(self) -> str:
        return f"{format_conjunction(self.body)} ⊑ ∃≤1{self.role}.{format_conjunction(self.head)}"


@dataclass(frozen=True)
class DisjunctionCI(ConceptInclusion):
    """``K ⊑ A₁ ⊔ … ⊔ A_n`` — the non-Horn statement needed for ⊤ ⊑ ⊔Γ."""

    body: ConceptNames
    alternatives: Tuple[str, ...]

    def holds_in(self, graph: Graph) -> bool:
        for node in _nodes_satisfying(graph, self.body):
            if not any(graph.has_label(node, name) for name in self.alternatives):
                return False
        return True

    def concept_names(self) -> ConceptNames:
        return self.body | frozenset(self.alternatives)

    def __str__(self) -> str:
        alternatives = " ⊔ ".join(sorted(self.alternatives)) or "⊥"
        return f"{format_conjunction(self.body)} ⊑ {alternatives}"
