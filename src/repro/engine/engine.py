"""The cached containment engine and its batch API.

Every static-analysis entry point of the paper — type checking, equivalence
and schema elicitation — reduces to *many* containment tests modulo the same
schema (Theorem 4.2's polynomial Turing reduction).  A bare
:class:`~repro.containment.solver.ContainmentSolver` rebuilds the schema
encoding ``T̂_S``, the rolled-up ``T_¬Q``, the cycle-reversal completion and
the compiled atom automata from scratch on every call; the :class:`ContainmentEngine`
owns those artefacts in per-schema caches keyed by canonical fingerprints
(:meth:`Schema.canonical_fingerprint`, :meth:`UC2RPQ.canonical_token`, the
regex tokens) and substitutes them through the solver's pipeline hooks, so
repeated calls against a warm schema skip straight to the chase.
(:meth:`TBox.canonical_fingerprint` is the corresponding verification tool:
cached and fresh runs must produce bit-identical completed TBoxes, which the
engine tests and benchmarks assert by fingerprint.)

Four caches, from coarse to fine (see docs/ARCHITECTURE.md for the exact key
composition and invalidation rules):

* **results** — full :class:`ContainmentResult` verdicts per
  ``(schema, left, right, config)``;
* **completions** — the completed ``T̂_S ∪ T_¬Q`` choice lists *plus* their
  chase engines (whose tree-extendability memos stay warm) per
  ``(extended schema, right query, completion config)``;
* **schema-tboxes** — the Horn encoding ``T̂_S`` per extended schema;
* **automata** — :class:`repro.core.CompiledAutomaton` bundles (NFA, lazy
  minimal DFA, cycle/emptiness flags, memoized pumped word lists) keyed by
  ``(schema intern context, regex)``.  This cache *fronts* the process-wide
  :func:`repro.core.compile_regex` memo (which shares bundles across engines
  and rebuilds them in worker processes): its hit/miss stats measure
  engine-level reuse, while the memory bound for compiled bundles is the
  memo's — ``repro.core.clear_compile_memo()`` is the cold-path reset.

Because all keys are content fingerprints, mutating a schema or query after a
call can never make the caches return stale answers — a mutated object simply
fingerprints to a new key.  :meth:`ContainmentEngine.check_many` evaluates
batches (optionally on a :class:`~concurrent.futures.ThreadPoolExecutor`) and
:data:`default_engine` provides the process-wide instance behind the
stateless :func:`repro.containment.contains` wrapper.

``ContainmentEngine(persist=path)`` adds a **second, disk-persistent tier**
below the memory caches (:class:`repro.store.ResultStore`): result and
schema-TBox lookups go memory → disk → solver, misses write back to both
tiers, and worker processes of the ``"process"`` backend open the same file
read-only so they warm-start instead of recomputing.  The store is keyed by
the same canonical fingerprints and version-stamped, so verdicts are
bit-identical with the store hot, cold, disabled or deleted (see
docs/ARCHITECTURE.md, "The two-tier cache hierarchy").

Schema edits are first-class: :meth:`ContainmentEngine.evolve` diffs two
schemas (:class:`~repro.engine.delta.SchemaDelta`), migrates the
schema-content-independent artefacts — compiled automata, symbol tables,
schema-blind verdicts — into the new fingerprint namespace across both
cache tiers and any live worker pool, and conservatively invalidates the
rest; :meth:`ContainmentEngine.invalidate_schema` reports its per-tier
counts as a structured :class:`~repro.engine.delta.InvalidationReport`
(see docs/ARCHITECTURE.md, "Schema evolution").
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..containment.counterexample import Counterexample
from ..containment.solver import (
    ContainmentConfig,
    ContainmentResult,
    ContainmentSolver,
    _as_union,
)
from ..core.compile import install_compiled, rebase_compiled
from ..core.interning import adopt_context
from ..rpq.queries import UC2RPQ
from ..schema.schema import Schema
from ..store import ResultStore, StoreStats
from .adaptive import AdaptiveSelector
from .cache import CacheStats, LRUCache
from .delta import REPORT_TIERS, EvolveReport, InvalidationReport, SchemaDelta

__all__ = [
    "ContainmentEngine",
    "ContainmentRequest",
    "EngineStats",
    "default_engine",
    "reset_default_engine",
]

# extended-schema fingerprints (the booleanized schema with per-variable
# marker labels) indexed back to their base schema — see _CachingSolver's
# hooks; bounded FIFO so a service cycling through many schemas cannot
# grow it without limit
_SCHEMA_INDEX_LIMIT = 4096


@dataclass(frozen=True)
class ContainmentRequest:
    """One unit of work for :meth:`ContainmentEngine.check_many`.

    ``schema`` and ``config`` may be left ``None`` when the batch call
    supplies defaults for the whole batch.
    """

    left: Any
    right: Any
    schema: Optional[Schema] = None
    config: Optional[ContainmentConfig] = None


@dataclass
class EngineStats:
    """A snapshot of the engine's cache counters and call totals.

    ``store`` is the persistent tier's counters, present only on engines
    constructed with ``persist=`` (and in worker snapshots of warm-started
    pools).
    """

    results: CacheStats
    completions: CacheStats
    schema_tboxes: CacheStats
    automata: CacheStats
    contains_calls: int = 0
    batches: int = 0
    store: Optional[StoreStats] = None

    def as_dict(self) -> Dict[str, Any]:
        """Plain-dict form for logging and benchmark reports."""
        report = {
            "contains_calls": self.contains_calls,
            "batches": self.batches,
            "caches": {
                stats.name: stats.as_dict()
                for stats in (self.results, self.completions, self.schema_tboxes, self.automata)
            },
        }
        if self.store is not None:
            report["store"] = self.store.as_dict()
        return report

    def summary(self) -> str:
        """A short human-readable report."""
        lines = [f"engine: {self.contains_calls} containment calls, {self.batches} batches"]
        lines.extend(
            f"  {stats}"
            for stats in (self.results, self.completions, self.schema_tboxes, self.automata)
        )
        if self.store is not None:
            lines.append(f"  {self.store}")
        return "\n".join(lines)


def _digest(*parts: str) -> str:
    payload = "\x1f".join(parts).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()


def _result_key(
    schema: Schema, left: UC2RPQ, right: UC2RPQ, config: ContainmentConfig
) -> Tuple[str, str, ContainmentConfig]:
    """The results-cache key for one (already ``_as_union``-normalised) call.

    Shared by :class:`_CachingSolver` and the process backend's merge-back
    path, so results computed in worker processes land under exactly the key
    a later serial call will look up.
    """
    return (
        schema.canonical_fingerprint(),
        _digest(left.canonical_token(), left.name, right.canonical_token(), right.name),
        config,
    )


def _store_token(key: Tuple[str, str, ContainmentConfig]) -> str:
    """Flatten a results-cache key into the store's string key space.

    ``ContainmentConfig`` is a frozen dataclass of plain values (and nested
    frozen dataclasses), so its ``repr`` is a deterministic canonical token —
    two configs hash to the same store row exactly when they would hit the
    same in-memory cache entry.
    """
    schema_fingerprint, pair_digest, config = key
    return _digest(schema_fingerprint, pair_digest, repr(config))


class _CachingSolver(ContainmentSolver):
    """A drop-in :class:`ContainmentSolver` whose pipeline stages consult the
    engine's caches.

    It inherits the full decision procedure unchanged and only overrides the
    hook methods, so cached and uncached runs execute the same algorithm on
    the same intermediate artefacts — verdicts are identical by construction.
    """

    def __init__(
        self, engine: "ContainmentEngine", schema: Schema, config: Optional[ContainmentConfig]
    ) -> None:
        super().__init__(schema, config or engine.default_config)
        self.engine = engine

    # -- cached full results ------------------------------------------------
    def contains(self, left, right) -> ContainmentResult:
        started = time.perf_counter()
        left = _as_union(left, "P")
        right = _as_union(right, "Q")
        key = _result_key(self.schema, left, right, self.config)
        engine = self.engine
        with engine._lock:
            engine._contains_calls += 1
            cached = engine._results.get(key)
        if cached is None and engine._store is not None:
            # second tier: the disk store (its own lock; never under ours)
            cached = engine._store.get("results", _store_token(key))
            if cached is not None:
                with engine._lock:
                    engine._results.put(key, cached)
        if cached is not None:
            return self._replay(cached, time.perf_counter() - started)
        result = super().contains(left, right)
        with engine._lock:
            engine._results.put(key, result)
        if engine._store is not None:
            engine._store.put("results", _store_token(key), result)
        return result

    def _replay(self, cached: ContainmentResult, elapsed: float) -> ContainmentResult:
        """Re-issue a cached verdict as an independent result.

        The witness graphs are copied so a caller mutating its counterexample
        (e.g. relabelling nodes for display) cannot corrupt later hits; the
        ``completion`` bookkeeping object stays shared and must be treated as
        read-only.  ``schema_name`` is refreshed because the cache key is
        name-insensitive for schemas (renamed-but-equal schemas hit the same
        entry) while query names are part of the key already.
        """
        witness = cached.witness_pattern.copy() if cached.witness_pattern is not None else None
        counterexample = cached.finite_counterexample
        if counterexample is not None:
            counterexample = Counterexample(counterexample.graph.copy(), counterexample.answer)
        return dataclasses.replace(
            cached,
            schema_name=self.schema.name,
            witness_pattern=witness,
            finite_counterexample=counterexample,
            elapsed_seconds=elapsed,
        )

    # -- cached pipeline stages ---------------------------------------------
    def _schema_tbox(self, extended_schema: Schema):
        engine = self.engine
        key = extended_schema.canonical_fingerprint()
        engine._record_extended(key, self.schema.canonical_fingerprint())
        with engine._lock:
            cached = engine._schema_tboxes.get(key)
        if cached is not None:
            return cached
        if engine._store is not None:
            cached = engine._store.get("schema-tboxes", key)
            if cached is not None:
                with engine._lock:
                    engine._schema_tboxes.put(key, cached)
                return cached
        cached = super()._schema_tbox(extended_schema)
        with engine._lock:
            engine._schema_tboxes.put(key, cached)
        if engine._store is not None:
            engine._store.put("schema-tboxes", key, cached)
        return cached

    def _prepared_choices(self, reduction, right_name: str):
        engine = self.engine
        engine._record_extended(
            reduction.schema.canonical_fingerprint(), self.schema.canonical_fingerprint()
        )
        key = (
            reduction.schema.canonical_fingerprint(),
            _digest(reduction.right.canonical_token(), right_name),
            self.config.completion,
            self.config.apply_completion,
        )
        with engine._lock:
            cached = engine._completions.get(key)
        if cached is None:
            cached = super()._prepared_choices(reduction, right_name)
            with engine._lock:
                engine._completions.put(key, cached)
        return cached

    def _compile_automaton(self, regex):
        engine = self.engine
        # key by (intern context, regex) like the core memo: a bundle is
        # pinned to its schema's symbol table, so one engine serving several
        # schemas must not hand schema A's bundle to schema B's solver
        if self._intern_context is None:
            self._intern_context = self.schema.canonical_fingerprint()
        key = (self._intern_context, regex)
        with engine._lock:
            cached = engine._automata.get(key)
        if cached is None:
            cached = super()._compile_automaton(regex)
            with engine._lock:
                engine._automata.put(key, cached)
        return cached


class ContainmentEngine:
    """Decides UC2RPQ containment modulo schemas with per-schema caching.

    The engine is schema-agnostic: pass the schema per call (or bind one with
    :meth:`solver`), and artefacts are cached under content fingerprints, so
    one engine can serve any number of schemas concurrently.  All cache
    access is serialised by an internal lock; :meth:`check_many` may fan a
    batch out over threads.
    """

    def __init__(
        self,
        config: Optional[ContainmentConfig] = None,
        *,
        result_cache_size: int = 4096,
        completion_cache_size: int = 512,
        schema_tbox_cache_size: int = 128,
        automaton_cache_size: int = 4096,
        max_workers: Optional[int] = None,
        persist: Optional[Any] = None,
        persist_mode: str = "rw",
    ) -> None:
        self.default_config = config or ContainmentConfig()
        self.max_workers = max_workers
        self._lock = threading.RLock()
        self._results = LRUCache("results", result_cache_size)
        self._completions = LRUCache("completions", completion_cache_size)
        self._schema_tboxes = LRUCache("schema-tboxes", schema_tbox_cache_size)
        self._automata = LRUCache("automata", automaton_cache_size)
        self._contains_calls = 0
        self._batches = 0
        # extended-schema fingerprint → base-schema fingerprint: lets
        # invalidate_schema/evolve find the completion and schema-tbox
        # entries that belong to a base schema (their keys carry the
        # *extended* fingerprint, which also depends on the query's free
        # variable names)
        self._schema_index: Dict[str, str] = {}
        self._closed = False
        self._process_pool: Optional[Any] = None
        # per-schema cost profiles behind parallel="auto" (repro.engine.adaptive)
        self._selector = AdaptiveSelector()
        # the second cache tier: memory → disk → solver (never blocks answers
        # — an unopenable store is a disabled one, see repro.store)
        self._store: Optional[ResultStore] = (
            ResultStore(persist, mode=persist_mode) if persist is not None else None
        )

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def _ensure_open(self) -> None:
        """Fail fast (and clearly) on a closed engine.

        Without this check a closed engine would limp along on its disabled
        store — or surface as ``sqlite3.ProgrammingError`` from deep inside a
        write-back — instead of naming the actual mistake.
        """
        if self._closed:
            raise RuntimeError(
                "this ContainmentEngine has been closed; create a new engine "
                "(close() tears down the worker pool and the persistent store)"
            )

    @property
    def closed(self) -> bool:
        """``True`` once :meth:`close` has run (statistics stay readable)."""
        return self._closed

    def __enter__(self) -> "ContainmentEngine":
        self._ensure_open()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # solver facade
    # ------------------------------------------------------------------ #
    def solver(
        self, schema: Schema, config: Optional[ContainmentConfig] = None
    ) -> ContainmentSolver:
        """A schema-bound solver that shares this engine's caches.

        The returned object is a :class:`ContainmentSolver` subclass, so it
        drops into every API that accepts a solver (``trim``,
        ``check_label_coverage``, ``StatementChecker``, …).
        """
        self._ensure_open()
        return _CachingSolver(self, schema, config)

    def contains(
        self,
        left,
        right,
        schema: Schema,
        config: Optional[ContainmentConfig] = None,
    ) -> ContainmentResult:
        """Decide ``left ⊆_schema right`` through the caches."""
        return self.solver(schema, config).contains(left, right)

    def satisfiable(
        self, query, schema: Schema, config: Optional[ContainmentConfig] = None
    ) -> ContainmentResult:
        """Satisfiability of *query* modulo *schema* (``q ⊄_S ∅``)."""
        return self.solver(schema, config).satisfiable(query)

    def equivalent(
        self, left, right, schema: Schema, config: Optional[ContainmentConfig] = None
    ) -> bool:
        """``True`` when both containments hold (both sides acyclic)."""
        return self.solver(schema, config).equivalent(left, right)

    # ------------------------------------------------------------------ #
    # batch API
    # ------------------------------------------------------------------ #
    def check_many(
        self,
        requests: Iterable[Union[ContainmentRequest, Sequence]],
        schema: Optional[Schema] = None,
        config: Optional[ContainmentConfig] = None,
        parallel: Union[bool, str] = False,
        max_workers: Optional[int] = None,
    ) -> List[ContainmentResult]:
        """Decide a batch of containment tests; results keep request order.

        Each request is a :class:`ContainmentRequest` or a ``(left, right)`` /
        ``(left, right, schema)`` / ``(left, right, schema, config)`` tuple;
        ``schema`` and ``config`` arguments fill in whatever a request leaves
        unset.  ``parallel`` selects the execution backend:

        * ``False`` / ``"serial"`` — this thread, in request order;
        * ``True`` / ``"thread"`` — a
          :class:`~concurrent.futures.ThreadPoolExecutor`; under CPython's
          GIL this overlaps at most allocator- and cache-bound work, so it
          helps mixed workloads and free-threaded builds, not the CPU-bound
          chase;
        * ``"process"`` — the engine's persistent
          :class:`~repro.engine.parallel.WorkerPool` of worker processes,
          sharded by schema fingerprint (see docs/ARCHITECTURE.md).  Worker
          verdicts are merged back into this engine's result cache, so a
          later serial call replays them warm; worker-side cache counters
          are reported by :meth:`process_stats`, not :attr:`stats`.  One
          transport difference: in these results (and their cached
          replays) ``completion.tbox`` is a
          :class:`~repro.engine.parallel.TBoxDigest` — it answers
          ``canonical_fingerprint()``/``size()`` exactly like the real
          completed TBox but does not carry the statements themselves.
        * ``"auto"`` — measure, then choose: the first batch over a schema
          pays a calibration probe (its first item solved serially, timed,
          plus one timed pickle of the request) and the
          :class:`~repro.engine.adaptive.AdaptiveSelector` picks one of the
          three backends per batch from the recorded per-schema cost
          profile, the batch size, the core count and the pool state.

        All backends return bit-identical results (asserted by
        fingerprint in the tests and ``benchmarks/bench_parallel_scaling.py``).
        """
        self._ensure_open()
        backend = self._normalise_backend(parallel)
        normalized: List[Tuple[Any, Any, Schema, Optional[ContainmentConfig]]] = []
        for request in requests:
            if isinstance(request, ContainmentRequest):
                left, right = request.left, request.right
                request_schema, request_config = request.schema, request.config
            else:
                parts = tuple(request)
                if not 2 <= len(parts) <= 4:
                    raise TypeError(
                        "check_many expects (left, right[, schema[, config]]) "
                        f"tuples or ContainmentRequest, got {request!r}"
                    )
                left, right = parts[0], parts[1]
                request_schema = parts[2] if len(parts) >= 3 else None
                request_config = parts[3] if len(parts) == 4 else None
            resolved_schema = request_schema or schema
            if resolved_schema is None:
                raise TypeError("check_many: no schema given for a request and no batch default")
            normalized.append((left, right, resolved_schema, request_config or config))

        with self._lock:
            self._batches += 1

        if backend == "auto" and normalized:
            return self._check_many_adaptive(normalized, max_workers)
        if backend == "process" and normalized:
            return self._check_many_in_processes(normalized, max_workers)
        if backend in ("auto", "process"):
            backend = "serial"  # empty batch: nothing to fan out
        return self._check_many_local(normalized, backend, max_workers)

    def _check_many_local(
        self,
        normalized: List[Tuple[Any, Any, Schema, Optional[ContainmentConfig]]],
        backend: str,
        max_workers: Optional[int],
    ) -> List[ContainmentResult]:
        """The in-process backends: serial, or a thread pool."""

        def run(task: Tuple[Any, Any, Schema, Optional[ContainmentConfig]]) -> ContainmentResult:
            left, right, task_schema, task_config = task
            return self.contains(left, right, task_schema, task_config)

        if backend == "thread" and len(normalized) > 1:
            workers = max_workers or self.max_workers or min(32, (os.cpu_count() or 2))
            workers = min(workers, len(normalized))
            with ThreadPoolExecutor(max_workers=workers) as executor:
                return list(executor.map(run, normalized))
        return [run(task) for task in normalized]

    @staticmethod
    def _normalise_backend(parallel: Union[bool, str]) -> str:
        if parallel is False or parallel == "serial":
            return "serial"
        if parallel is True or parallel == "thread":
            return "thread"
        if parallel in ("process", "auto"):
            return parallel
        raise ValueError(
            f"check_many: unknown backend {parallel!r} "
            "(expected False/'serial', True/'thread', 'process' or 'auto')"
        )

    def _check_many_adaptive(
        self,
        normalized: List[Tuple[Any, Any, Schema, Optional[ContainmentConfig]]],
        max_workers: Optional[int],
    ) -> List[ContainmentResult]:
        """``parallel="auto"``: measure (or recall) costs, then pick a backend.

        When the batch's schemas have no recorded profile, the first item is
        solved serially as a *calibration probe* — its timed solve plus one
        timed ``pickle.dumps`` of the request seed the profile, and its
        result is part of the answer, so the probe costs nothing extra.  The
        remainder runs on whatever :class:`~repro.engine.adaptive.AdaptiveSelector`
        picks from the profile, the batch size and the pool state.  Serial
        runs feed their per-item timings back into the profile, so the
        selector keeps tracking a drifting workload.
        """
        selector = self._selector
        fingerprints = [task[2].canonical_fingerprint() for task in normalized]
        profile = selector.profile_for(fingerprints)
        probed: List[ContainmentResult] = []
        remainder = normalized
        remainder_fps = fingerprints
        if profile is None:
            left, right, task_schema, task_config = normalized[0]
            started = time.perf_counter()
            probed.append(self.contains(left, right, task_schema, task_config))
            solve_seconds = time.perf_counter() - started
            transport_seconds = selector.measure_transport(normalized[0])
            selector.observe(fingerprints[0], solve_seconds, transport_seconds)
            profile = selector.profile_for([fingerprints[0]])
            remainder = normalized[1:]
            remainder_fps = fingerprints[1:]
        if not remainder:
            return probed

        with self._lock:
            pool = self._process_pool
            pool_ready = pool is not None and pool.started and not pool.closed
        backend = selector.choose(
            len(remainder),
            profile,
            workers=max_workers or self.max_workers,
            pool_ready=pool_ready,
        )
        if backend == "process":
            return probed + self._check_many_in_processes(remainder, max_workers)
        results = self._check_many_local(remainder, backend, max_workers)
        if backend == "serial":
            # free refresh of the solve estimate (transport stays as measured)
            for fingerprint, result in zip(remainder_fps, results):
                selector.observe(fingerprint, result.elapsed_seconds)
        return probed + results

    def _check_many_in_processes(
        self,
        normalized: List[Tuple[Any, Any, Schema, Optional[ContainmentConfig]]],
        max_workers: Optional[int],
    ) -> List[ContainmentResult]:
        """Fan the batch out over the persistent worker pool and merge back.

        Results are inserted into this engine's result cache under the same
        keys the serial path uses, so a process batch warms the parent
        exactly like a serial one (witnesses are still served as independent
        copies via the usual replay path).
        """
        pool = self.process_pool(max_workers)
        tasks = [
            (_as_union(left, "P"), _as_union(right, "Q"), task_schema, task_config)
            for left, right, task_schema, task_config in normalized
        ]
        unique_schemas: Dict[str, Schema] = {}
        for _, _, task_schema, _ in tasks:
            fingerprint = task_schema.canonical_fingerprint()
            unique_schemas.setdefault(fingerprint, task_schema)
        if self._store is not None:
            # persist the batch's schemas (content-addressed, skip-if-present)
            # so workers can resolve the transport layer's schema references
            # from the shared read-only store even across pool restarts
            self._store.put_many("schemas", list(unique_schemas.items()))
        with self._lock:
            bundles = [bundle for _key, bundle in self._automata.items()]
        # hand any warm automata for these schemas to the workers (symbol
        # tables + computed DFAs via shared memory); a cold parent ships
        # nothing and the workers compile locally, bit-identically
        pool.seed(bundles, set(unique_schemas))
        results = pool.check_many(tasks)
        keys = [
            _result_key(task_schema, left, right, task_config or self.default_config)
            for (left, right, task_schema, task_config) in tasks
        ]
        with self._lock:
            for key, result in zip(keys, results):
                self._results.put(key, result)
        if self._store is not None:
            # worker verdicts persist under the same keys the serial path
            # uses, so a later run (or a warm-started worker) replays them;
            # one transaction, and already-persisted verdicts are skipped
            self._store.put_many(
                "results", [(_store_token(key), result) for key, result in zip(keys, results)]
            )
        return results

    def process_pool(self, max_workers: Optional[int] = None):
        """The engine's persistent worker pool, created on first use.

        The pool inherits the engine's default config; its size is fixed at
        creation (``max_workers``, then the engine's ``max_workers``, then
        one per CPU).  Call :meth:`shutdown` to stop the workers; the pool
        is also closed at interpreter exit.  A pool that closed itself
        after a worker death is replaced by a fresh one here.
        """
        from .parallel import WorkerPool, default_worker_count

        self._ensure_open()
        with self._lock:
            if self._process_pool is not None and self._process_pool.closed:
                self._process_pool = None
            if self._process_pool is None:
                workers = max_workers or self.max_workers or default_worker_count()
                # a persisting engine hands its store path to the pool so the
                # spawned workers warm-start from disk (read-only: the parent
                # stays the only writer)
                persist = (
                    self._store.path
                    if self._store is not None and not self._store.disabled
                    else None
                )
                self._process_pool = WorkerPool(workers, self.default_config, persist=persist)
            return self._process_pool

    def process_stats(self) -> Optional[EngineStats]:
        """Aggregated worker-side cache counters, ``None`` before first use."""
        with self._lock:
            pool = self._process_pool
        if pool is None or not pool.started:
            return None
        return pool.stats()

    @property
    def selector(self) -> AdaptiveSelector:
        """The cost model behind ``parallel="auto"`` (injectable in tests)."""
        return self._selector

    def adaptive_report(self) -> Dict[str, Any]:
        """The selector's decision counters and last decision, JSON-ready."""
        return self._selector.report()

    def transport_report(self) -> Optional[Dict[str, Any]]:
        """The pool's transport counters, ``None`` before the pool exists."""
        with self._lock:
            pool = self._process_pool
        if pool is None:
            return None
        return pool.transport_report()

    def shutdown(self) -> None:
        """Stop the worker pool, if one was created (caches are kept).

        The persistent store stays open — a long-lived engine keeps serving
        disk hits after its pool is gone; :meth:`close` tears down both.
        """
        with self._lock:
            pool, self._process_pool = self._process_pool, None
        if pool is not None:
            pool.close()

    def close(self) -> None:
        """Full teardown, in dependency order: pool first, then the store.

        The pool goes first because its final merge-backs write through this
        engine; the store closes last so nothing tries to persist into a dead
        handle.  Idempotent — a second ``close()`` is a no-op — and terminal:
        further ``contains``/``check_many``/``solver`` calls raise a clear
        :class:`RuntimeError` instead of degrading silently (or surfacing as
        ``sqlite3.ProgrammingError``).  Statistics stay readable for
        post-mortem reports.
        """
        if self._closed:
            return
        self.shutdown()
        self._closed = True
        if self._store is not None:
            self._store.close()

    # ------------------------------------------------------------------ #
    # statistics and cache management
    # ------------------------------------------------------------------ #
    @property
    def store(self) -> Optional[ResultStore]:
        """The persistent store, ``None`` unless constructed with ``persist=``."""
        return self._store

    @property
    def stats(self) -> EngineStats:
        """An independent snapshot of all counters (safe to keep around)."""
        with self._lock:
            return EngineStats(
                results=self._results.stats.snapshot(),
                completions=self._completions.stats.snapshot(),
                schema_tboxes=self._schema_tboxes.stats.snapshot(),
                automata=self._automata.stats.snapshot(),
                contains_calls=self._contains_calls,
                batches=self._batches,
                store=self._store.stats.snapshot() if self._store is not None else None,
            )

    def cache_sizes(self) -> Dict[str, int]:
        """Current entry counts per cache."""
        with self._lock:
            return {
                "results": len(self._results),
                "completions": len(self._completions),
                "schema-tboxes": len(self._schema_tboxes),
                "automata": len(self._automata),
            }

    def clear(self) -> None:
        """Drop every artefact cached *by this engine* (statistics are kept).

        Compiled automata are additionally memoized process-wide below the
        engine (``repro.core.compile_regex``); a truly cold automaton path —
        e.g. for benchmarking — also needs
        :func:`repro.core.clear_compile_memo`.
        """
        with self._lock:
            for cache in (self._results, self._completions, self._schema_tboxes, self._automata):
                cache.clear()
            self._schema_index.clear()

    def _record_extended(self, extended_fingerprint: str, base_fingerprint: str) -> None:
        """Remember which base schema an extended fingerprint derives from."""
        with self._lock:
            index = self._schema_index
            index[extended_fingerprint] = base_fingerprint
            while len(index) > _SCHEMA_INDEX_LIMIT:
                index.pop(next(iter(index)))

    def _extended_fingerprints(self, fingerprint: str) -> set:
        """Every known extended fingerprint of the base *fingerprint* (incl. itself).

        Must be called under :attr:`_lock`.  Arity-0 queries extend a schema
        to itself, so the base fingerprint always belongs to the set.
        """
        extended = {ext for ext, base in self._schema_index.items() if base == fingerprint}
        extended.add(fingerprint)
        return extended

    def invalidate_schema(self, schema: Schema) -> InvalidationReport:
        """Drop every cached artefact under *schema*'s fingerprint, all tiers.

        Content-keyed caches can never serve stale answers (a mutated schema
        fingerprints to a new key), so this is a reclamation call: results
        and automata under the base fingerprint, completions and schema
        TBoxes under its known extended fingerprints, plus a best-effort
        delete of the corresponding persistent-store rows (rows the engine
        no longer knows about stay behind as dead weight — content
        addressing means they can never be replayed incorrectly).

        Returns an :class:`~repro.engine.delta.InvalidationReport` with the
        per-tier counts; ``int(report)`` still yields the dropped-result
        count (the former return value) with a :class:`DeprecationWarning`.
        """
        return self._invalidate_fingerprint(schema.canonical_fingerprint())

    def _invalidate_fingerprint(self, fingerprint: str) -> InvalidationReport:
        with self._lock:
            extended = self._extended_fingerprints(fingerprint)
            result_keys = [key for key, _ in self._results.items() if key[0] == fingerprint]
            results = self._results.prune(lambda key: key[0] == fingerprint)
            automata = self._automata.prune(lambda key: key[0] == fingerprint)
            completions = self._completions.prune(lambda key: key[0] in extended)
            schema_tboxes = self._schema_tboxes.prune(lambda key: key in extended)
            for ext in extended:
                self._schema_index.pop(ext, None)
        store_rows = 0
        if self._store is not None:
            store_rows += self._store.delete(
                "results", [_store_token(key) for key in result_keys]
            )
            store_rows += self._store.delete("schema-tboxes", sorted(extended))
            store_rows += self._store.delete("schemas", [fingerprint])
        return InvalidationReport(
            fingerprint,
            results=results,
            completions=completions,
            schema_tboxes=schema_tboxes,
            automata=automata,
            store_rows=store_rows,
        )

    # ------------------------------------------------------------------ #
    # schema evolution
    # ------------------------------------------------------------------ #
    def evolve(self, old_schema: Schema, new_schema: Schema) -> EvolveReport:
        """Migrate cached artefacts from *old_schema* to *new_schema*.

        The delta-aware counterpart of :meth:`invalidate_schema` for the
        "one constraint changed, re-check everything" scenario: artefacts
        whose content is independent of the schema's axioms — compiled
        automaton bundles (NFAs, DFAs, pumped word enumerations), the
        schema-fingerprint :class:`~repro.core.interning.SymbolTable`, and
        verdicts that never consulted the schema (the empty-left short
        circuit) — are re-keyed into *new_schema*'s fingerprint namespace,
        written through to the persistent store, and re-broadcast to live
        workers as context seeds.  Everything else under the old namespace
        is dropped (conservative rule: the Horn encoding ``T̂_S`` spans the
        schema's full domain, so any semantic edit invalidates every
        completed TBox and with it every non-trivial verdict — when in
        doubt, invalidate), which is exactly what keeps post-evolve verdicts
        and ``result_fingerprint``s bit-identical to a cold start.

        A fingerprint-identical edit (rename, explicitly declaring a ZERO
        constraint) is trivial: nothing moves, everything is kept.  The old
        schema's entries are gone afterwards either way — evolve declares
        *old_schema* superseded; keep using plain per-call caching if both
        versions stay live.
        """
        self._ensure_open()
        started = time.perf_counter()
        delta = SchemaDelta.between(old_schema, new_schema)
        old_fingerprint = delta.old_fingerprint
        new_fingerprint = delta.new_fingerprint
        if delta.is_empty:
            with self._lock:
                extended = self._extended_fingerprints(old_fingerprint)
                kept = {
                    "results": sum(
                        1 for key, _ in self._results.items() if key[0] == old_fingerprint
                    ),
                    "completions": sum(
                        1 for key, _ in self._completions.items() if key[0] in extended
                    ),
                    "schema-tboxes": sum(
                        1 for key, _ in self._schema_tboxes.items() if key in extended
                    ),
                    "automata": sum(
                        1 for key, _ in self._automata.items() if key[0] == old_fingerprint
                    ),
                }
            return EvolveReport(
                delta=delta,
                trivial=True,
                kept=kept,
                elapsed_seconds=time.perf_counter() - started,
            )

        with self._lock:
            old_bundles = [
                (key[1], bundle)
                for key, bundle in self._automata.items()
                if key[0] == old_fingerprint
            ]
            old_results = [
                (key, result) for key, result in self._results.items()
                if key[0] == old_fingerprint
            ]

        # automata and their symbol table: schema axioms never enter them,
        # so they migrate verbatim — provided both fingerprints resolve to
        # one table *object* (DFA cross-operations compare interned ids)
        migrated = {tier: 0 for tier in REPORT_TIERS}
        seed_bundles = []
        table = adopt_context(old_fingerprint, new_fingerprint)
        if table is not None:
            for regex, bundle in old_bundles:
                if bundle.table is not table:
                    # pinned to a table since evicted from the registry;
                    # recompiling is the only safe option
                    continue
                clone = install_compiled(rebase_compiled(bundle, new_fingerprint))
                seed_bundles.append(clone)
                with self._lock:
                    self._automata.put((new_fingerprint, regex), clone)
                migrated["automata"] += 1

        # verdicts that never consulted the schema: the empty-left short
        # circuit (no TBox, no patterns, no witness — replay refreshes the
        # schema name, so the re-keyed result is bit-identical)
        migrated_results = []
        for (_, pair_digest, config), result in old_results:
            if (
                result.completion is None
                and result.witness_pattern is None
                and result.finite_counterexample is None
                and result.tbox_size == 0
                and result.patterns_checked == 0
            ):
                migrated_results.append(((new_fingerprint, pair_digest, config), result))
        with self._lock:
            for key, result in migrated_results:
                self._results.put(key, result)
        migrated["results"] = len(migrated_results)

        store_written = 0
        if self._store is not None:
            store_written += self._store.put_many(
                "results",
                [(_store_token(key), result) for key, result in migrated_results],
            )
            store_written += self._store.put_many("schemas", [(new_fingerprint, new_schema)])

        # everything else under the old namespace is superseded
        invalidation = self._invalidate_fingerprint(old_fingerprint)
        invalidated = {
            "results": max(invalidation.results - migrated["results"], 0),
            "completions": invalidation.completions,
            "schema-tboxes": invalidation.schema_tboxes,
            "automata": max(invalidation.automata - migrated["automata"], 0),
        }

        # refresh live workers: the new fingerprint has never been seeded,
        # so the migrated bundles (tables + computed DFAs) ship in full
        seeded = 0
        with self._lock:
            pool = self._process_pool
        if pool is not None and pool.started and not pool.closed and seed_bundles:
            try:
                seeded = pool.seed(seed_bundles, {new_fingerprint})
            except Exception:
                seeded = 0  # best effort — the next process batch reseeds

        return EvolveReport(
            delta=delta,
            trivial=False,
            kept=dict(migrated),
            invalidated=invalidated,
            migrated=migrated,
            invalidation=invalidation,
            seeded_contexts=seeded,
            store_written=store_written,
            store_deleted=invalidation.store_rows,
            elapsed_seconds=time.perf_counter() - started,
        )


# --------------------------------------------------------------------------- #
# the process-wide default engine
# --------------------------------------------------------------------------- #
_default_engine: Optional[ContainmentEngine] = None
_default_engine_lock = threading.Lock()


def default_engine() -> ContainmentEngine:
    """The shared engine behind the stateless :func:`repro.containment.contains`
    wrapper and the analysis entry points; created on first use."""
    global _default_engine
    with _default_engine_lock:
        if _default_engine is None:
            _default_engine = ContainmentEngine()
        return _default_engine


def reset_default_engine() -> None:
    """Discard the shared engine (tests use this to isolate statistics)."""
    global _default_engine
    with _default_engine_lock:
        _default_engine = None
