"""Process-parallel batch execution for the containment engine.

:class:`~repro.engine.ContainmentEngine.check_many` with ``parallel="thread"``
cannot beat the GIL on the CPU-bound chase, so this module supplies the
*process* backend: a persistent :class:`WorkerPool` whose workers each own a
warm :class:`~repro.engine.ContainmentEngine` in a separate interpreter.

Three design points (docs/ARCHITECTURE.md, "The process-parallel backend"):

* **Routing is sharded by schema fingerprint.**  Every request carries the
  routing key ``(schema fp, right-query token, request digest)``; requests
  for the same schema land on the same worker so its schema-TBox, completion
  and NFA caches stay hot.  When a batch holds fewer distinct schemas than
  workers (the common single-schema case), each schema receives a contiguous
  *range* of workers proportional to its share of the batch and requests are
  sub-sharded by right-query token (the completion-cache key) — falling back
  to the full request digest when even the right queries do not spread —
  so parallelism never collapses while cache affinity degrades gracefully.
  :func:`plan_routing` is a pure, deterministic function of the batch.

* **The process boundary is cheap: references out, digests back.**
  Workers are started via the ``spawn`` method so they never inherit locks
  or caches from the parent; each receives its whole shard as one message
  and replies with one message.  Containment requests ship through the
  reference protocol of :mod:`repro.engine.transport`: a schema or query the
  worker has already seen crosses as a canonical-fingerprint *token* instead
  of a pickled object, resolved worker-side against a bounded catalog and —
  for schemas of a persisting engine — the shared read-only
  :class:`~repro.store.ResultStore` (``"schemas"`` tier).  Unresolvable
  tokens degrade to full-payload transport via a ``"miss"`` round-trip, so
  eviction and restarts cost latency, never correctness.  Warm parents
  additionally broadcast a context *seed* (interned symbol tables plus
  computed DFA transition arrays) through one shared-memory segment (pickle
  fallback, ``REPRO_NO_SHM=1`` forces it).  On the way back, a result's
  ``completion.tbox`` — the completed Horn TBox, easily hundreds of
  kilobytes and only ever consumed via ``canonical_fingerprint()``/
  ``size()`` — is replaced by a :class:`TBoxDigest` carrying exactly those
  two answers (computed worker-side from the real bits); the full TBox
  stays in the worker's completion cache.  Worker-side exceptions travel
  back as :class:`WorkerError` with the remote traceback attached.

* **Verdicts are bit-identical to the serial path.**  Workers run the exact
  same ``ContainmentEngine.contains`` code; :func:`result_fingerprint`
  digests every verdict-relevant field (including witness/counterexample
  payloads and the completed TBox fingerprint, excluding only wall-clock
  timings) and the tests and ``benchmarks/bench_parallel_scaling.py`` assert
  serial/thread/process fingerprint identity on every workload.

Aggregate cache statistics are merged back with :func:`merge_stats`, so
``WorkerPool.stats()`` reports pool-wide hit/miss/eviction counters in the
same :class:`EngineStats` shape as a single engine.
"""

from __future__ import annotations

import atexit
import dataclasses
import hashlib
import multiprocessing
import os
import queue as queue_module
import threading
import traceback
import weakref
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..containment.solver import ContainmentConfig, ContainmentResult, _as_union
from .cache import CacheStats
from .engine import ContainmentEngine, EngineStats
from .transport import (
    SeedSegment,
    TokenCatalog,
    TransportStats,
    WorkerTransportStats,
    build_context_seed,
    decode_payload,
    encode_payload,
    install_context_seed,
    load_seed,
    publish_seed,
    query_token,
    schema_token,
)

__all__ = [
    "TBoxDigest",
    "WorkerError",
    "WorkerPool",
    "default_worker_count",
    "graph_token",
    "merge_stats",
    "plan_routing",
    "result_fingerprint",
]


def default_worker_count() -> int:
    """The pool size used when none is given: one worker per CPU, capped."""
    return max(1, min(16, os.cpu_count() or 1))


def _stable_hash(text: str) -> int:
    """A deterministic (process-independent) 64-bit hash of *text*."""
    return int.from_bytes(hashlib.sha256(text.encode("utf-8")).digest()[:8], "big")


# --------------------------------------------------------------------------- #
# routing
# --------------------------------------------------------------------------- #
def plan_routing(keys: Sequence[Tuple[str, str, str]], workers: int) -> List[int]:
    """Assign each request to a worker; deterministic in the batch contents.

    *keys* holds one ``(schema fingerprint, secondary token, tertiary digest)``
    triple per request.  Requests sharing a schema fingerprint are routed to
    the same worker when there are at least as many distinct schemas as
    workers.  Otherwise every schema gets a contiguous worker range sized
    proportionally to its request count (largest-remainder apportionment, at
    least one worker each) and requests spread inside the range by secondary
    token — or by tertiary digest when the range is wider than the number of
    distinct secondary tokens, so a single-(schema, right) batch still uses
    every worker in its range.
    """
    if workers < 1:
        raise ValueError("plan_routing needs at least one worker")
    if workers == 1 or not keys:
        return [0] * len(keys)

    groups: Dict[str, List[int]] = {}
    for index, (schema_fp, _, _) in enumerate(keys):
        groups.setdefault(schema_fp, []).append(index)

    assignment = [0] * len(keys)
    if len(groups) >= workers:
        for schema_fp, members in groups.items():
            worker = _stable_hash(schema_fp) % workers
            for index in members:
                assignment[index] = worker
        return assignment

    # fewer schemas than workers: contiguous ranges, proportional widths
    ordered = sorted(groups.items())
    total = len(keys)
    widths = [1] * len(ordered)
    spare = workers - len(ordered)
    if spare > 0:
        quotas = [len(members) * spare / total for _, members in ordered]
        floors = [int(quota) for quota in quotas]
        for position, floor in enumerate(floors):
            widths[position] += floor
        remainder = spare - sum(floors)
        by_fraction = sorted(
            range(len(ordered)),
            key=lambda position: (floors[position] - quotas[position], ordered[position][0]),
        )
        for position in by_fraction[:remainder]:
            widths[position] += 1

    start = 0
    for (schema_fp, members), width in zip(ordered, widths):
        secondaries = {keys[index][1] for index in members}
        spread_by_secondary = len(secondaries) >= width
        for index in members:
            token = keys[index][1] if spread_by_secondary else keys[index][2]
            assignment[index] = start + _stable_hash(token) % width
        start += width
    return assignment


# --------------------------------------------------------------------------- #
# fingerprints of results (the determinism-verification material)
# --------------------------------------------------------------------------- #
def graph_token(graph) -> str:
    """A deterministic serialisation of a witness/counterexample graph.

    Node identifiers are rendered with ``repr`` (they may be tuples or
    strings) and both node and edge lists are sorted, so isomorphic copies of
    the same graph object — e.g. a pickled round-trip — produce the same
    token.
    """
    if graph is None:
        return "∅"
    nodes = sorted(f"{node!r}:{','.join(sorted(graph.labels(node)))}" for node in graph.nodes())
    edges = sorted(
        f"{source!r}-{label}->{target!r}" for source, label, target in graph.edges()
    )
    return "|".join(["nodes", *nodes, "edges", *edges])


def result_fingerprint(result: ContainmentResult) -> str:
    """SHA-256 digest of every verdict-relevant field of *result*.

    Wall-clock timing (``elapsed_seconds``) is excluded; everything else —
    including the witness pattern, the finite counterexample payload and the
    completed TBox fingerprint — is part of the digest, so serial, thread and
    process backends must agree bit-for-bit to fingerprint equal.
    """
    counterexample = result.finite_counterexample
    completion = result.completion
    parts = [
        repr(result.contained),
        result.regime,
        result.schema_name,
        result.left_name,
        result.right_name,
        str(result.tbox_size),
        str(result.patterns_checked),
        result.reason,
        graph_token(result.witness_pattern),
        graph_token(counterexample.graph) if counterexample is not None else "∅",
        repr(counterexample.answer) if counterexample is not None else "∅",
        completion.tbox.canonical_fingerprint() if completion is not None else "∅",
    ]
    return hashlib.sha256("\x1f".join(parts).encode("utf-8")).hexdigest()


# --------------------------------------------------------------------------- #
# transport lightening
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class TBoxDigest:
    """The transport stand-in for a completed TBox in process-backend results.

    Shipping the full completion (hundreds of kilobytes of Horn statements,
    shared by every result of the same ``(schema, right)`` pair) dominates
    batch latency, and callers only ever ask a result's completed TBox two
    questions; the digest answers both from values computed worker-side on
    the real object, so fingerprint comparisons against serial runs remain
    exact.
    """

    fingerprint: str
    statement_count: int

    def canonical_fingerprint(self) -> str:
        return self.fingerprint

    def size(self) -> int:
        return self.statement_count

    def __getattr__(self, name: str):
        # results computed by worker processes (and their cached replays on
        # the parent engine) carry this digest; anything beyond the two
        # supported queries should fail with directions, not a puzzle
        raise AttributeError(
            f"TBoxDigest has no attribute {name!r}: it stands in for a completed "
            "TBox shipped back from a worker process and only supports "
            "canonical_fingerprint() and size(); rebuild the full TBox with a "
            "ContainmentSolver (or a serial engine call) if you need the statements"
        )


def _lighten_containment(
    result: ContainmentResult, memo: Dict[int, TBoxDigest]
) -> ContainmentResult:
    """Replace the completed TBox with its digest.

    *memo* is keyed by TBox object identity and scoped to one worker chunk:
    the engine's completion cache hands the same completed TBox to every
    result of a ``(schema, right)`` pair, and canonicalising a large TBox
    costs tens of milliseconds, so each distinct TBox must be fingerprinted
    once per chunk, not once per result.  (Identity keying is safe for the
    chunk's lifetime — the worker is single-threaded and the objects are
    pinned by its caches.)
    """
    completion = result.completion
    if completion is None or isinstance(completion.tbox, TBoxDigest):
        return result
    digest = memo.get(id(completion.tbox))
    if digest is None:
        digest = TBoxDigest(completion.tbox.canonical_fingerprint(), completion.tbox.size())
        memo[id(completion.tbox)] = digest
    return dataclasses.replace(result, completion=dataclasses.replace(completion, tbox=digest))


def _lighten_for_transport(kind: str, value: Any, memo: Dict[int, TBoxDigest]) -> Any:
    """Swap completed TBoxes for digests in every nested containment result."""
    if kind == "contain":
        return _lighten_containment(value, memo)
    if kind == "typecheck":
        for entailment in value.statement_results:
            if entailment.containment is not None:
                entailment.containment = _lighten_containment(entailment.containment, memo)
        if value.coverage is not None:
            for check in value.coverage.checks:
                if check.result is not None:
                    check.result = _lighten_containment(check.result, memo)
        return value
    if kind == "equivalence":
        for difference in value.differences:
            if difference.left_result is not None:
                difference.left_result = _lighten_containment(difference.left_result, memo)
            if difference.right_result is not None:
                difference.right_result = _lighten_containment(difference.right_result, memo)
        return value
    return value


# --------------------------------------------------------------------------- #
# statistics merging
# --------------------------------------------------------------------------- #
def _merge_cache_stats(name: str, snapshots: Sequence[CacheStats]) -> CacheStats:
    merged = CacheStats(name)
    for snapshot in snapshots:
        merged.hits += snapshot.hits
        merged.misses += snapshot.misses
        merged.evictions += snapshot.evictions
    return merged


def merge_stats(snapshots: Sequence[EngineStats]) -> EngineStats:
    """Sum per-worker :class:`EngineStats` into one pool-wide aggregate.

    The ``store`` block is merged only when at least one snapshot carries
    one (i.e. the pool was warm-started from a persistent store).
    """
    store_snapshots = [s.store for s in snapshots if s.store is not None]
    store = None
    if store_snapshots:
        from ..store import StoreStats

        store = StoreStats()
        for snapshot in store_snapshots:
            store.merge(snapshot)
    return EngineStats(
        results=_merge_cache_stats("results", [s.results for s in snapshots]),
        completions=_merge_cache_stats("completions", [s.completions for s in snapshots]),
        schema_tboxes=_merge_cache_stats("schema-tboxes", [s.schema_tboxes for s in snapshots]),
        automata=_merge_cache_stats("automata", [s.automata for s in snapshots]),
        contains_calls=sum(s.contains_calls for s in snapshots),
        batches=sum(s.batches for s in snapshots),
        store=store,
    )


# --------------------------------------------------------------------------- #
# the worker process
# --------------------------------------------------------------------------- #
class WorkerError(RuntimeError):
    """A task raised inside a worker process; carries the remote traceback."""

    def __init__(self, message: str, remote_traceback: str = "") -> None:
        super().__init__(message)
        self.remote_traceback = remote_traceback


def _run_task(engine: ContainmentEngine, kind: str, payload: Tuple) -> Any:
    """Execute one unit of work against the worker's warm engine.

    The analysis handlers import lazily: :mod:`repro.analysis` itself imports
    the engine package, so a module-level import would be circular.
    """
    if kind == "contain":
        left, right, schema, config = payload
        return engine.contains(left, right, schema, config)
    if kind == "typecheck":
        from ..analysis.typecheck import type_check

        transformation, source, target, config = payload
        return type_check(transformation, source, target, config=config, engine=engine)
    if kind == "equivalence":
        from ..analysis.equivalence import check_equivalence

        left, right, schema, config = payload
        return check_equivalence(left, right, schema, config=config, engine=engine)
    raise ValueError(f"unknown task kind {kind!r}")


def _worker_main(
    worker_id: int, config, cache_sizes: Dict[str, int], persist, inbox, outbox
) -> None:
    """The worker loop: one warm engine, tasks in, results out.

    *persist* (a path or ``None``) is the parent engine's store file; the
    worker opens it **read-only**, so a spawned process warm-starts from
    every verdict and schema TBox persisted by earlier runs without ever
    contending for the write lock.  Write-backs of fresh worker verdicts
    happen in the parent, on merge (single-writer discipline).
    """
    engine = ContainmentEngine(
        config,
        result_cache_size=cache_sizes["results"],
        completion_cache_size=cache_sizes["completions"],
        schema_tbox_cache_size=cache_sizes["schema_tboxes"],
        automaton_cache_size=cache_sizes["automata"],
        persist=persist,
        persist_mode="ro",
    )
    catalog = TokenCatalog()
    transport_stats = WorkerTransportStats()
    while True:
        message = inbox.get()
        if message is None:
            break
        command = message[0]
        if command == "tasks":
            _, kind, chunk, mode = message
            reply: List[Tuple] = []
            digest_memo: Dict[int, TBoxDigest] = {}
            for index, payload in chunk:
                if mode == "ref":
                    payload, missing = decode_payload(payload, catalog, engine.store, transport_stats)
                    if missing:
                        # unresolvable tokens (catalog eviction, cold store):
                        # ask the parent for the full payload instead
                        reply.append((index, "miss", tuple(missing)))
                        continue
                try:
                    value = _lighten_for_transport(kind, _run_task(engine, kind, payload), digest_memo)
                    reply.append((index, "ok", value))
                except Exception as error:  # noqa: BLE001 - relayed to the parent
                    reply.append(
                        (index, "error", f"{type(error).__name__}: {error}", traceback.format_exc())
                    )
            outbox.put(("results", worker_id, reply))
        elif command == "seed":
            # strictly an optimisation: a seed that fails to load or install
            # (version skew, table mismatch) leaves the worker recompiling
            # locally, which is bit-identical by determinism — never fatal
            try:
                install_context_seed(load_seed(message[1]), transport_stats)
            except Exception:  # noqa: BLE001 - see above
                transport_stats.contexts_skipped += 1
        elif command == "stats":
            outbox.put(("stats", worker_id, engine.stats, transport_stats.snapshot()))
        else:  # pragma: no cover - defensive: unknown control message
            outbox.put(("results", worker_id, [(None, "error", f"unknown command {command!r}", "")]))


_LIVE_POOLS: "weakref.WeakSet[WorkerPool]" = weakref.WeakSet()


@atexit.register
def _close_live_pools() -> None:  # pragma: no cover - interpreter shutdown
    for pool in list(_LIVE_POOLS):
        pool.close()


class WorkerPool:
    """A persistent pool of worker processes, each with a warm engine.

    Workers are started lazily on the first batch (or eagerly via
    :meth:`start`) with the ``spawn`` method, so each runs a fresh interpreter
    with nothing inherited from the parent but the pickled *config* and cache
    sizes.  The pool survives across batches — that is the whole point:
    per-worker caches accumulate heat exactly like a long-lived serial
    engine's.  Use as a context manager or call :meth:`close` to tear down;
    live pools are also closed at interpreter exit.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        config: Optional[ContainmentConfig] = None,
        *,
        result_cache_size: int = 4096,
        completion_cache_size: int = 512,
        schema_tbox_cache_size: int = 128,
        automaton_cache_size: int = 4096,
        start_method: str = "spawn",
        persist: Optional[Any] = None,
    ) -> None:
        self.workers = workers or default_worker_count()
        self.config = config
        # workers open this store file read-only and warm-start from it; the
        # parent engine remains the only writer
        self.persist = str(persist) if persist is not None else None
        self._cache_sizes = {
            "results": result_cache_size,
            "completions": completion_cache_size,
            "schema_tboxes": schema_tbox_cache_size,
            "automata": automaton_cache_size,
        }
        self._context = multiprocessing.get_context(start_method)
        self._lock = threading.Lock()
        self._processes: List[Any] = []
        self._inboxes: List[Any] = []
        self._outbox: Optional[Any] = None
        self._closed = False
        # the cheap-transport bookkeeping (repro.engine.transport): which
        # tokens each worker has been sent (the reference ledger), which
        # contexts have been seeded, the live shared-memory segments, and
        # the parent-side protocol counters
        self._seen_tokens: List[set] = [set() for _ in range(self.workers)]
        self._seeded_contexts: set = set()
        self._segments: List[SeedSegment] = []
        self.transport_stats = TransportStats()
        self._worker_transport: Optional[WorkerTransportStats] = None
        _LIVE_POOLS.add(self)
        # a pool dropped without close() (e.g. its engine was discarded) must
        # not leak its worker processes or shared-memory segments; the
        # finalizer reaps both at GC time.  close() empties the shared lists,
        # which makes the reap a no-op.
        self._finalizer = weakref.finalize(
            self, WorkerPool._reap, self._processes, self._inboxes, self._segments
        )

    @staticmethod
    def _reap(processes: List[Any], inboxes: List[Any], segments: List[SeedSegment]) -> None:
        """GC-time teardown: runs without the pool lock (the pool is gone)."""
        for inbox in inboxes:
            try:
                inbox.put(None)
            except (OSError, ValueError):  # pragma: no cover - queue torn down
                pass
        for process in processes:
            process.join(timeout=5)
            if process.is_alive():  # pragma: no cover - stuck worker
                process.terminate()
        for segment in segments:
            segment.release()
        segments.clear()

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    @property
    def started(self) -> bool:
        return bool(self._processes)

    @property
    def closed(self) -> bool:
        return self._closed

    def start(self) -> "WorkerPool":
        """Spawn the worker processes (no-op when already running)."""
        with self._lock:
            self._ensure_started()
        return self

    def _ensure_started(self) -> None:
        if self._closed:
            raise RuntimeError("the worker pool has been closed")
        if self._processes:
            return
        self._outbox = self._context.Queue()
        for worker_id in range(self.workers):
            inbox = self._context.Queue()
            process = self._context.Process(
                target=_worker_main,
                args=(worker_id, self.config, self._cache_sizes, self.persist, inbox, self._outbox),
                daemon=True,
                name=f"repro-engine-worker-{worker_id}",
            )
            process.start()
            self._inboxes.append(inbox)
            self._processes.append(process)

    def close(self) -> None:
        """Stop the workers and release the queues (idempotent)."""
        with self._lock:
            self._teardown_locked()

    def _teardown_locked(self) -> None:
        """Stop workers and release queues; caller holds the pool lock.

        Also the failure path: after a worker died mid-batch the outbox may
        still hold (or later receive) replies from surviving workers, which
        a subsequent batch would misattribute to its own indices — so the
        whole pool is torn down rather than left half-alive.  The engine
        transparently builds a fresh pool on the next process batch.
        """
        if self._closed:
            return
        self._closed = True
        for inbox in self._inboxes:
            try:
                inbox.put(None)
            except (OSError, ValueError):  # pragma: no cover - queue torn down
                pass
        for process in self._processes:
            process.join(timeout=5)
            if process.is_alive():  # pragma: no cover - stuck worker
                process.terminate()
        self._release_locked()

    def _release_locked(self) -> None:
        """The shared teardown tail: free the queues, forget the workers.

        Runs on *every* teardown path — close, interrupt abort, dead-worker
        teardown — so the shared-memory seed segments are reclaimed exactly
        here (plus in the GC finalizer, for pools dropped without close).
        """
        for inbox in self._inboxes:
            inbox.close()
        if self._outbox is not None:
            self._outbox.close()
        self._processes.clear()
        self._inboxes.clear()
        self._outbox = None
        for segment in self._segments:
            segment.release()
        self._segments.clear()

    def _abort_locked(self) -> None:
        """Immediate teardown for an interrupted batch; caller holds the lock.

        The graceful path (:meth:`_teardown_locked`) asks each worker to
        finish via a sentinel and then joins with a 5 s timeout *per process,
        serially* — after a Ctrl-C mid-batch that can hold the terminal for
        ``5 × workers`` seconds while spawn children keep burning CPU.  Here
        every worker is terminated first (in parallel — SIGTERM is
        asynchronous), then joined briefly, then killed if it still lingers;
        a mid-chase worker's state is unrecoverable anyway, and the engine
        builds a fresh pool on the next batch.
        """
        if self._closed:
            return
        self._closed = True
        for process in self._processes:
            if process.is_alive():
                process.terminate()
        for process in self._processes:
            process.join(timeout=1.0)
            if process.is_alive():  # pragma: no cover - SIGTERM ignored
                process.kill()
                process.join(timeout=1.0)
        self._release_locked()

    def __enter__(self) -> "WorkerPool":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # batch execution
    # ------------------------------------------------------------------ #
    def seed(self, bundles: Sequence[Any], contexts: Optional[set] = None) -> int:
        """Broadcast a warm-context seed to every worker; returns the number
        of contexts shipped.

        *bundles* are :class:`~repro.core.CompiledAutomaton` objects from the
        parent (typically its automata cache); only those with already
        computed DFAs for a context in *contexts* (``None``: any context) not
        yet seeded participate — seeding transfers work already done, it
        never triggers new compilation.  The seed travels through one
        shared-memory segment when available (``REPRO_NO_SHM=1`` or any
        creation failure falls back to the queue pickle); the segment is
        owned by the pool and reclaimed on every teardown path.  The seed
        message is enqueued ahead of task messages (FIFO inboxes), so no
        acknowledgement is needed.
        """
        with self._lock:
            self._ensure_started()
            wanted: Optional[set] = None
            if contexts is not None:
                wanted = set(contexts) - self._seeded_contexts
                if not wanted:
                    return 0
            seed = build_context_seed(bundles, wanted)
            for context in list(seed):
                if context in self._seeded_contexts:
                    del seed[context]
            if not seed:
                return 0
            wire, segment = publish_seed(seed, self.transport_stats)
            if segment is not None:
                self._segments.append(segment)
            for inbox in self._inboxes:
                inbox.put(("seed", wire))
            self._seeded_contexts.update(seed)
            return len(seed)

    def run_batch(
        self,
        kind: str,
        payloads: Sequence[Tuple],
        routing_keys: Sequence[Tuple[str, str, str]],
        transport_tokens: Optional[Sequence[Tuple[str, str, str]]] = None,
    ) -> List[Any]:
        """Route *payloads* to workers and gather results in request order.

        Each participating worker receives its whole shard as **one** message
        and replies with one message.  With *transport_tokens* (one
        ``(left, right, schema)`` token triple per payload — the ``contain``
        path) payloads are encoded through the reference protocol: slots
        whose token the worker already holds ship as bare tokens, the rest
        ship once as values.  A worker that cannot resolve a reference
        replies ``"miss"`` for that item and the parent re-sends exactly
        those items with every slot as a value — full-payload fallback, one
        extra round-trip, bit-identical results.  Without tokens (the
        analysis kinds) payloads ship raw, as before.

        One batch at a time: submissions are serialised under the pool lock
        so interleaved batches cannot steal each other's replies.  A
        worker-side exception does not abort the rest of that worker's
        shard; after all replies arrive the first failure (in request order)
        is raised as :class:`WorkerError`.  An *interrupt*
        (KeyboardInterrupt/SIGINT, SystemExit) mid-batch shuts the pool down
        promptly — workers are terminated in parallel rather than left to the
        ``atexit`` hook's serial 5-second joins — and the interrupt
        propagates.
        """
        if len(payloads) != len(routing_keys):
            raise ValueError("run_batch: payloads and routing keys must align")
        if transport_tokens is not None and len(transport_tokens) != len(payloads):
            raise ValueError("run_batch: payloads and transport tokens must align")
        if not payloads:
            return []
        with self._lock:
            self._ensure_started()
            assignment = plan_routing(routing_keys, self.workers)
            mode = "raw" if transport_tokens is None else "ref"
            chunks: Dict[int, List[Tuple[int, Tuple]]] = {}
            for index, (payload, worker) in enumerate(zip(payloads, assignment)):
                if transport_tokens is not None:
                    payload = encode_payload(
                        payload, transport_tokens[index], self._seen_tokens[worker],
                        self.transport_stats,
                    )
                chunks.setdefault(worker, []).append((index, payload))
            results: List[Any] = [None] * len(payloads)
            errors: List[Tuple[int, int, str, str]] = []
            missed: Dict[int, List[int]] = {}
            try:
                # the abort window opens before the first put: once any chunk
                # is in flight, an un-aborted pool would hold replies a later
                # batch could misattribute to its own indices
                for worker, chunk in chunks.items():
                    self._inboxes[worker].put(("tasks", kind, chunk, mode))
                self._gather(len(chunks), results, errors, missed)
                if missed:
                    # full-payload fallback: re-send exactly the missed items
                    # to their workers, every slot as a value (re-registering
                    # whatever the catalog evicted), and collect once more
                    fallback: Dict[int, List[Tuple[int, Tuple]]] = {}
                    for worker, indices in missed.items():
                        ledger = self._seen_tokens[worker]
                        fallback[worker] = [
                            (
                                index,
                                encode_payload(
                                    payloads[index], transport_tokens[index], ledger,
                                    self.transport_stats, force_values=True,
                                ),
                            )
                            for index in sorted(indices)
                        ]
                        self.transport_stats.fallback_items += len(indices)
                    for worker, chunk in fallback.items():
                        self._inboxes[worker].put(("tasks", kind, chunk, "ref"))
                    still_missed: Dict[int, List[int]] = {}
                    self._gather(len(fallback), results, errors, still_missed)
                    if still_missed:  # pragma: no cover - all-value items cannot miss
                        raise WorkerError(
                            "worker(s) reported unresolvable references on a "
                            f"full-payload fallback: {sorted(still_missed)}"
                        )
            except (KeyboardInterrupt, SystemExit):
                # the workers are mid-chase and their replies are now
                # unclaimable; leaving them alive would burn CPU until the
                # atexit joins (5 s each, serially) finally reaped them
                self._abort_locked()
                raise
            if errors:
                errors.sort()
                index, worker_id, description, remote_traceback = errors[0]
                suffix = f" (+{len(errors) - 1} more)" if len(errors) > 1 else ""
                raise WorkerError(
                    f"worker {worker_id} failed on request {index}: {description}{suffix}",
                    remote_traceback,
                )
            return results

    def _gather(
        self,
        replies: int,
        results: List[Any],
        errors: List[Tuple[int, int, str, str]],
        missed: Dict[int, List[int]],
    ) -> None:
        """Collect *replies* worker messages into the three outcome buckets.

        A ``"miss"`` entry also retires the unresolvable tokens from that
        worker's ledger, so the fallback (and any later batch) ships them as
        values again instead of as references that would miss forever.
        """
        for _ in range(replies):
            message = self._receive()
            if message[0] != "results":  # pragma: no cover - defensive
                raise WorkerError(f"unexpected reply while running a batch: {message[0]!r}")
            _, worker_id, reply = message
            for entry in reply:
                if entry[1] == "ok":
                    results[entry[0]] = entry[2]
                elif entry[1] == "miss":
                    for token in entry[2]:
                        self._seen_tokens[worker_id].discard(token)
                    missed.setdefault(worker_id, []).append(entry[0])
                else:
                    errors.append((entry[0], worker_id, entry[2], entry[3]))

    def _receive(self) -> Tuple:
        """One reply from the outbox, watching for dead workers.

        A worker that dies without replying (killed, import failure in the
        spawned interpreter, unpicklable payload) would otherwise block the
        parent forever; polling its liveness turns that into a
        :class:`WorkerError` naming the exit code.  Because replies from the
        *surviving* workers of the aborted batch may still be in flight, the
        pool is torn down before raising — a half-alive pool would hand
        those stale replies to the next batch as its own results.
        """
        while True:
            try:
                return self._outbox.get(timeout=1.0)
            except queue_module.Empty:
                dead = [
                    (process.name, process.exitcode)
                    for process in self._processes
                    if not process.is_alive()
                ]
                if dead:
                    self._teardown_locked()  # the caller already holds the lock
                    raise WorkerError(
                        "worker process(es) died without replying: "
                        + ", ".join(f"{name} (exit code {code})" for name, code in dead)
                        + "; the pool has been closed — the engine will start a "
                        "fresh one on the next process batch"
                    )

    def check_many(
        self,
        requests: Sequence[Tuple[Any, Any, Any, Optional[ContainmentConfig]]],
    ) -> List[ContainmentResult]:
        """Decide normalised ``(left, right, schema, config)`` requests.

        The routing key is ``(schema fp, right token, full request digest)``:
        schema-major sharding, completion-affine sub-sharding (the completion
        cache is keyed by the right query) — see :func:`plan_routing`.  The
        same canonical tokens double as the reference-protocol tokens, so
        repeated schemas and queries cross the process boundary as compact
        references rather than pickled objects (see :meth:`run_batch`).
        """
        keys = []
        tasks = []
        tokens = []
        for left, right, schema, config in requests:
            left, right = _as_union(left, "P"), _as_union(right, "Q")
            schema_fp = schema.canonical_fingerprint()
            right_canonical = right.canonical_token()
            left_canonical = left.canonical_token()
            request_digest = "\x1f".join(
                (schema_fp, right_canonical, left_canonical, repr(config))
            )
            keys.append((schema_fp, right_canonical, request_digest))
            tokens.append(
                (
                    query_token(left.name, left_canonical),
                    query_token(right.name, right_canonical),
                    schema_token(schema.name, schema_fp),
                )
            )
            tasks.append((left, right, schema, config))
        return self.run_batch("contain", tasks, keys, transport_tokens=tokens)

    # ------------------------------------------------------------------ #
    # statistics
    # ------------------------------------------------------------------ #
    def worker_stats(self) -> List[EngineStats]:
        """Per-worker engine statistics (in worker order).

        The same exchange refreshes the worker-side transport counters
        (:meth:`worker_transport`).
        """
        with self._lock:
            self._ensure_started()
            for inbox in self._inboxes:
                inbox.put(("stats",))
            snapshots: List[Optional[EngineStats]] = [None] * self.workers
            transport = WorkerTransportStats()
            for _ in range(self.workers):
                message = self._receive()
                if message[0] != "stats":  # pragma: no cover - defensive
                    raise WorkerError(f"unexpected reply while collecting stats: {message[0]!r}")
                _, worker_id, stats, worker_transport = message
                snapshots[worker_id] = stats
                transport.merge(worker_transport)
            self._worker_transport = transport
            return [snapshot for snapshot in snapshots if snapshot is not None]

    def worker_transport(self) -> WorkerTransportStats:
        """Pool-wide worker-side transport counters (fresh collection)."""
        self.worker_stats()
        assert self._worker_transport is not None
        return self._worker_transport

    def transport_report(self) -> Dict[str, Any]:
        """Parent- and worker-side transport counters, JSON-ready.

        The worker block is the most recent :meth:`worker_stats` collection
        (``None`` before the first one) — reading it must not block on a
        round-trip to possibly-busy workers.
        """
        report: Dict[str, Any] = {"parent": self.transport_stats.as_dict()}
        report["workers"] = (
            self._worker_transport.as_dict() if self._worker_transport is not None else None
        )
        return report

    def stats(self) -> EngineStats:
        """Pool-wide aggregate of every worker's cache counters."""
        return merge_stats(self.worker_stats())
