"""Schema deltas and the structured reports behind the evolution API.

A :class:`SchemaDelta` diffs two schemas at the axiom level — node/edge label
sets plus per-``(source, signed-role, target)`` multiplicity constraints,
with an undeclared constraint ≡ :data:`~repro.schema.schema.Multiplicity.ZERO`
(exactly the equivalence :meth:`Schema.canonical_token` uses, so
``delta.is_empty`` ⇔ equal canonical fingerprints).

:meth:`ContainmentEngine.evolve` uses the delta to decide which cached
artefacts survive a schema edit.  The classification is deliberately
conservative, and the reasoning is worth recording here because it is what
keeps post-evolve verdicts bit-identical to a cold start:

* the schema Horn encoding ``T̂_S`` is emitted over the schema's *full*
  domain (every node label × signed role × node label), so **any** semantic
  edit changes ``T̂_S``, hence every completed TBox fingerprint, hence every
  non-trivial ``result_fingerprint`` — those artefacts are always
  invalidated, never migrated;
* compiled automata, their pumped word enumerations and the per-context
  :class:`~repro.core.interning.SymbolTable` depend only on the *query*
  regexes and the fingerprint string used as intern context — schema
  *content* never enters them — so they migrate to the new fingerprint
  namespace verbatim;
* cached verdicts whose decision never consulted the schema (the empty-left
  short circuit: no TBox, no patterns, no witness) migrate too;
* a fingerprint-identical "edit" (rename, declaring an explicit ZERO) is
  trivial: every tier is kept in place and nothing is touched.

:class:`InvalidationReport` is the structured replacement for
:meth:`ContainmentEngine.invalidate_schema`'s former bare ``int`` return
(per-tier counts; ``int(report)`` still yields the dropped-result count,
with a :class:`DeprecationWarning`), and :class:`EvolveReport` is
:meth:`~ContainmentEngine.evolve`'s kept/invalidated/migrated accounting.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Optional, Tuple

from ..schema.schema import Multiplicity, Schema

__all__ = [
    "ConstraintChange",
    "EvolveReport",
    "InvalidationReport",
    "REPORT_TIERS",
    "SchemaDelta",
]

#: The engine cache tiers an invalidation / evolution report accounts for.
REPORT_TIERS = ("results", "completions", "schema-tboxes", "automata")


@dataclass(frozen=True)
class ConstraintChange:
    """One edited multiplicity axiom: ``source --signed--> target`` old → new.

    ``old``/``new`` are multiplicity symbols (``"0"``, ``"1"``, ``"?"``,
    ``"+"``, ``"*"``); an undeclared constraint reads as ``"0"``.
    """

    source: str
    signed: str
    target: str
    old: str
    new: str

    def describe(self) -> str:
        return f"{self.source} -{self.signed}-> {self.target}: {self.old} → {self.new}"


@dataclass(frozen=True)
class SchemaDelta:
    """The axiom-level difference between two schemas.

    Build with :meth:`between`.  ``is_empty`` is ``True`` exactly when the
    canonical fingerprints agree — i.e. the edit was a rename or an
    explicitly-declared ZERO, both invisible to every cache key.
    """

    old_fingerprint: str
    new_fingerprint: str
    added_node_labels: FrozenSet[str] = frozenset()
    removed_node_labels: FrozenSet[str] = frozenset()
    added_edge_labels: FrozenSet[str] = frozenset()
    removed_edge_labels: FrozenSet[str] = frozenset()
    constraint_changes: Tuple[ConstraintChange, ...] = ()

    @classmethod
    def between(cls, old: Schema, new: Schema) -> "SchemaDelta":
        """Diff *old* → *new* over the union of their declared constraints.

        Constraints over labels that were added or removed wholesale are
        reported through the label sets, not repeated per axiom; the
        per-axiom list covers triples whose labels exist on both sides.
        """
        old_constraints = {
            (source, signed, target): mult
            for source, signed, target, mult in old.declared_constraints()
        }
        new_constraints = {
            (source, signed, target): mult
            for source, signed, target, mult in new.declared_constraints()
        }
        shared_nodes = old.node_labels & new.node_labels
        shared_edges = old.edge_labels & new.edge_labels
        changes = []
        for triple in sorted(set(old_constraints) | set(new_constraints), key=repr):
            source, signed, target = triple
            if (
                source not in shared_nodes
                or target not in shared_nodes
                or signed.label not in shared_edges
            ):
                # reported through the label sets, not per axiom
                continue
            before = old_constraints.get(triple, Multiplicity.ZERO)
            after = new_constraints.get(triple, Multiplicity.ZERO)
            if before is not after:
                changes.append(
                    ConstraintChange(source, str(signed), target, str(before), str(after))
                )
        return cls(
            old_fingerprint=old.canonical_fingerprint(),
            new_fingerprint=new.canonical_fingerprint(),
            added_node_labels=frozenset(new.node_labels - old.node_labels),
            removed_node_labels=frozenset(old.node_labels - new.node_labels),
            added_edge_labels=frozenset(new.edge_labels - old.edge_labels),
            removed_edge_labels=frozenset(old.edge_labels - new.edge_labels),
            constraint_changes=tuple(changes),
        )

    @property
    def is_empty(self) -> bool:
        """``True`` when the two schemas are semantically identical."""
        return self.old_fingerprint == self.new_fingerprint

    def as_dict(self) -> Dict[str, Any]:
        """Plain-dict form for ``/stats``, bench reports and logs."""
        return {
            "old_fingerprint": self.old_fingerprint,
            "new_fingerprint": self.new_fingerprint,
            "is_empty": self.is_empty,
            "added_node_labels": sorted(self.added_node_labels),
            "removed_node_labels": sorted(self.removed_node_labels),
            "added_edge_labels": sorted(self.added_edge_labels),
            "removed_edge_labels": sorted(self.removed_edge_labels),
            "constraint_changes": [change.describe() for change in self.constraint_changes],
        }

    def summary(self) -> str:
        """A short human-readable report."""
        if self.is_empty:
            return "schema delta: empty (fingerprints identical)"
        parts = []
        if self.added_node_labels or self.removed_node_labels:
            parts.append(
                f"node labels +{len(self.added_node_labels)}/-{len(self.removed_node_labels)}"
            )
        if self.added_edge_labels or self.removed_edge_labels:
            parts.append(
                f"edge labels +{len(self.added_edge_labels)}/-{len(self.removed_edge_labels)}"
            )
        if self.constraint_changes:
            parts.append(f"{len(self.constraint_changes)} constraint edit(s)")
        detail = ", ".join(parts) or "token-level change"
        lines = [f"schema delta: {detail}"]
        lines.extend(f"  {change.describe()}" for change in self.constraint_changes[:8])
        if len(self.constraint_changes) > 8:
            lines.append(f"  … and {len(self.constraint_changes) - 8} more")
        return "\n".join(lines)


@dataclass(frozen=True)
class InvalidationReport:
    """Per-tier counts dropped by :meth:`ContainmentEngine.invalidate_schema`.

    ``store_rows`` counts persistent-tier rows deleted (best-effort over the
    keys known in memory; the store is content-addressed, so any rows left
    behind are dead weight, never stale).  ``int(report)`` returns the
    dropped-result count — the method's former return value — and warns with
    a :class:`DeprecationWarning`; compare/arithmetic via the report's fields
    instead.
    """

    schema_fingerprint: str
    results: int = 0
    completions: int = 0
    schema_tboxes: int = 0
    automata: int = 0
    store_rows: int = 0

    @property
    def total(self) -> int:
        """Entries dropped from the in-memory tiers (store rows excluded)."""
        return self.results + self.completions + self.schema_tboxes + self.automata

    def tier_counts(self) -> Dict[str, int]:
        return {
            "results": self.results,
            "completions": self.completions,
            "schema-tboxes": self.schema_tboxes,
            "automata": self.automata,
        }

    def as_dict(self) -> Dict[str, Any]:
        """Plain-dict form for ``/stats`` and the cache CLI."""
        return {
            "schema_fingerprint": self.schema_fingerprint,
            "invalidated": self.tier_counts(),
            "store_rows": self.store_rows,
            "total": self.total,
        }

    def summary(self) -> str:
        """A short human-readable report."""
        tiers = ", ".join(f"{name}={count}" for name, count in self.tier_counts().items())
        return (
            f"invalidated schema {self.schema_fingerprint[:12]}…: "
            f"{tiers}, store_rows={self.store_rows}"
        )

    def _legacy_int(self) -> int:
        warnings.warn(
            "treating InvalidationReport as an int is deprecated; read "
            "report.results (or the other per-tier fields) explicitly",
            DeprecationWarning,
            stacklevel=3,
        )
        return self.results

    def __int__(self) -> int:
        return self._legacy_int()

    def __index__(self) -> int:
        return self._legacy_int()


def _zero_tiers() -> Dict[str, int]:
    return {tier: 0 for tier in REPORT_TIERS}


@dataclass(frozen=True)
class EvolveReport:
    """What :meth:`ContainmentEngine.evolve` did, tier by tier.

    * ``kept`` — entries still usable after the evolve: on a trivial
      (fingerprint-identical) edit everything found under the namespace, on a
      semantic edit exactly the migrated entries (they survive by rekeying);
    * ``migrated`` — entries copied into the new fingerprint namespace
      (automata bundles and schema-independent verdicts; completions and
      schema TBoxes never migrate — see the module docstring);
    * ``invalidated`` — old-namespace entries dropped without a successor;
    * ``invalidation`` — the underlying :class:`InvalidationReport` for the
      old namespace (``None`` on a trivial evolve).

    ``seeded_contexts`` counts refreshed context seeds broadcast to a live
    worker pool over the transport; ``store_written`` counts migrated rows
    written through to the persistent tier.
    """

    delta: SchemaDelta
    trivial: bool
    kept: Dict[str, int] = field(default_factory=_zero_tiers)
    invalidated: Dict[str, int] = field(default_factory=_zero_tiers)
    migrated: Dict[str, int] = field(default_factory=_zero_tiers)
    invalidation: Optional[InvalidationReport] = None
    seeded_contexts: int = 0
    store_written: int = 0
    store_deleted: int = 0
    elapsed_seconds: float = 0.0

    @property
    def old_fingerprint(self) -> str:
        return self.delta.old_fingerprint

    @property
    def new_fingerprint(self) -> str:
        return self.delta.new_fingerprint

    def as_dict(self) -> Dict[str, Any]:
        """Plain-dict form for ``/stats``, the CLI and bench reports."""
        report = {
            "delta": self.delta.as_dict(),
            "trivial": self.trivial,
            "kept": dict(self.kept),
            "invalidated": dict(self.invalidated),
            "migrated": dict(self.migrated),
            "seeded_contexts": self.seeded_contexts,
            "store_written": self.store_written,
            "store_deleted": self.store_deleted,
            "elapsed_seconds": self.elapsed_seconds,
        }
        if self.invalidation is not None:
            report["invalidation"] = self.invalidation.as_dict()
        return report

    def summary(self) -> str:
        """A short human-readable report."""
        def counts(mapping: Dict[str, int]) -> str:
            return ", ".join(f"{tier}={mapping.get(tier, 0)}" for tier in REPORT_TIERS)

        lines = [
            (
                f"evolve {self.old_fingerprint[:12]}… → {self.new_fingerprint[:12]}… "
                f"({'trivial' if self.trivial else 'semantic edit'}, "
                f"{self.elapsed_seconds * 1000:.1f} ms)"
            ),
            f"  kept:        {counts(self.kept)}",
            f"  migrated:    {counts(self.migrated)}",
            f"  invalidated: {counts(self.invalidated)}",
            (
                f"  store: {self.store_written} written, {self.store_deleted} deleted; "
                f"contexts reseeded: {self.seeded_contexts}"
            ),
        ]
        if not self.trivial:
            lines.insert(1, "  " + self.delta.summary().replace("\n", "\n  "))
        return "\n".join(lines)
