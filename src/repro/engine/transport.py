"""Cheap transport for the process backend: references, catalogs, seeds.

The original worker protocol pickled every request whole — schema, both
queries, config — into each worker's inbox, even though a long-lived pool
decides thousands of requests over the *same* few schemas and queries.  On
the workloads that matter the pickled schema dominates the message, which is
how the headline parallel path ended up losing to serial (ROADMAP item 1).
This module supplies the three mechanisms that make the boundary cheap
(docs/ARCHITECTURE.md, "The transport layer"):

* **Canonical-fingerprint references.**  Every schema and query crossing the
  boundary is named by a token derived from its canonical fingerprint
  (:func:`schema_token` / :func:`query_token`).  The parent tracks which
  tokens each worker has already received (:class:`TransportStats` counts
  the traffic); a known token ships as a 2-tuple reference, an unknown one
  ships as a ``("v", token, object)`` slot that the worker registers in its
  bounded :class:`TokenCatalog` before resolving later references of the
  same message.  A reference the worker cannot resolve — catalog eviction,
  a restarted worker, a store miss — is answered with a ``"miss"`` reply
  and the parent **falls back to full-payload transport** for exactly those
  items; the protocol degrades to the old one, it never fails.

* **Store-backed schema resolution.**  Workers of a persisting engine open
  the shared :class:`~repro.store.ResultStore` read-only; the parent
  persists every schema of a process batch into the store's ``"schemas"``
  tier (keyed by canonical fingerprint), so a schema reference can be
  resolved from disk even by a worker that never saw the object — the
  warm-start that already covered results and schema TBoxes now covers the
  request payloads themselves.

* **Pre-seeded interning and automata contexts.**  A warm parent engine has
  already paid for symbol interning and DFA construction; a freshly spawned
  worker should not pay again.  :func:`build_context_seed` snapshots, per
  schema context, the :class:`~repro.core.interning.SymbolTable` (symbols in
  arrival order — ids are positional) and, for every compiled automaton, the
  computed DFAs' flat dense tables (the already-built
  :class:`~repro.core.kernels.DenseDFA` buffers, shipped as bytes — far
  smaller than per-transition triples, and ``TransportStats`` reports both
  sizes); :func:`publish_seed` ships the pickled
  seed through one :mod:`multiprocessing.shared_memory` segment (one copy
  for the whole pool, attached read-only by each worker) with a
  pickle-through-queue fallback when shared memory is unavailable or
  disabled via ``REPRO_NO_SHM=1``; :func:`install_context_seed` re-interns
  the symbols and installs the DFAs onto the worker's compile-memo bundles.
  Installation is guarded: if the worker's table prefix does not match the
  seed (it interned symbols in a different order first), the context is
  skipped and the worker recompiles locally — ``determinize``/``minimize``
  are deterministic, so verdicts are bit-identical either way.

Every mechanism preserves the engine's core invariant: verdicts and
``result_fingerprint`` digests are bit-identical across serial, thread and
process backends, with shared memory on or off.
"""

from __future__ import annotations

import itertools
import os
import pickle
import threading
from collections import OrderedDict
from dataclasses import dataclass, fields
from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

from ..core.compile import CompiledAutomaton, compile_regex
from ..core.dfa import DFA
from ..core.interning import symbol_table
from ..core.kernels import DenseDFA

__all__ = [
    "SHM_DISABLE_VARIABLE",
    "SeedSegment",
    "TokenCatalog",
    "TransportStats",
    "WorkerTransportStats",
    "build_context_seed",
    "decode_payload",
    "encode_payload",
    "install_context_seed",
    "load_seed",
    "publish_seed",
    "query_token",
    "schema_token",
    "shared_memory_disabled",
]

#: Setting this environment variable to anything but ``0``/empty forces the
#: pickle-through-queue fallback for context seeds (the CI differential smoke
#: runs the zoo corpus both ways and asserts fingerprint identity).
SHM_DISABLE_VARIABLE = "REPRO_NO_SHM"

#: Prefix of every shared-memory segment this module creates; the leak tests
#: scan ``/dev/shm`` for it after crash/interrupt teardowns.
SEED_SEGMENT_PREFIX = "repro_seed"

_segment_counter = itertools.count()


# --------------------------------------------------------------------------- #
# statistics
# --------------------------------------------------------------------------- #
@dataclass
class TransportStats:
    """Parent-side counters of the reference protocol (one per pool)."""

    items: int = 0  # payloads encoded for the wire
    references_sent: int = 0  # slots shipped as bare tokens
    values_sent: int = 0  # slots shipped with their full object
    fallback_items: int = 0  # items re-sent with full payloads after a miss
    seeds_published: int = 0
    shm_segments: int = 0  # seeds that went through shared memory
    seed_bytes: int = 0  # pickled seed size actually shipped (dense tables)
    seed_bytes_legacy: int = 0  # what the per-transition triple encoding weighed

    def as_dict(self) -> Dict[str, Any]:
        return {field.name: getattr(self, field.name) for field in fields(self)}

    def snapshot(self) -> "TransportStats":
        return TransportStats(**self.as_dict())


@dataclass
class WorkerTransportStats:
    """Worker-side counters, shipped back with the engine stats."""

    catalog_hits: int = 0  # references resolved from the token catalog
    store_hits: int = 0  # schema references resolved from the read-only store
    misses: int = 0  # references answered with a "miss" reply
    values_registered: int = 0
    automata_seeded: int = 0  # DFAs installed from context seeds
    contexts_skipped: int = 0  # seed contexts rejected by the prefix guard

    def as_dict(self) -> Dict[str, Any]:
        return {field.name: getattr(self, field.name) for field in fields(self)}

    def snapshot(self) -> "WorkerTransportStats":
        return WorkerTransportStats(**self.as_dict())

    def merge(self, other: "WorkerTransportStats") -> None:
        for field in fields(self):
            setattr(self, field.name, getattr(self, field.name) + getattr(other, field.name))


# --------------------------------------------------------------------------- #
# tokens and the reference protocol
# --------------------------------------------------------------------------- #
def schema_token(name: str, fingerprint: str) -> str:
    """The wire token of a schema: its name *and* canonical fingerprint.

    Fingerprints are deliberately name-insensitive (renamed-but-equal schemas
    share every cache entry), but a worker-computed result carries
    ``schema_name`` — resolving a reference to a same-fingerprint schema with
    a different name would silently change result fingerprints, so the name
    is part of the token.
    """
    return f"s:{name}\x1f{fingerprint}"


def query_token(name: str, canonical: str) -> str:
    """The wire token of a (normalised) query.

    The canonical token ignores names and disjunct order by design, but names
    surface in result fields (``left_name``/``right_name``), so two queries
    that differ only by name must resolve to *different* catalog entries.
    """
    return f"q:{name}\x1f{canonical}"


class TokenCatalog:
    """The worker-side bounded token → object map (LRU).

    Eviction is always safe: a reference to an evicted token comes back as a
    ``"miss"`` and the parent re-sends the full payload, which re-registers
    it.  The bound exists so a worker serving an adversarial stream of
    distinct schemas cannot grow without limit.
    """

    def __init__(self, maxsize: int = 8192) -> None:
        if maxsize < 1:
            raise ValueError("TokenCatalog maxsize must be at least 1")
        self.maxsize = maxsize
        self._entries: "OrderedDict[str, Any]" = OrderedDict()

    def register(self, token: str, value: Any) -> None:
        if token in self._entries:
            self._entries.move_to_end(token)
        self._entries[token] = value
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)

    def resolve(self, token: str) -> Optional[Any]:
        value = self._entries.get(token)
        if value is not None:
            self._entries.move_to_end(token)
        return value

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, token: str) -> bool:
        return token in self._entries


def encode_payload(
    payload: Tuple[Any, Any, Any, Any],
    tokens: Tuple[str, str, str],
    seen: Set[str],
    stats: TransportStats,
    *,
    force_values: bool = False,
) -> Tuple:
    """One ``(left, right, schema, config)`` payload in wire form.

    *tokens* is ``(left token, right token, schema token)``.  Slots whose
    token the worker has already received (per *seen*, the parent's
    per-worker ledger) ship as references; the rest ship as values and are
    added to the ledger.  ``force_values`` is the miss-fallback path: every
    slot ships its object regardless (re-registering evicted entries).
    Within one chunk the ordering does the sharing: the first item carrying
    a new schema ships it, later items reference it — the worker decodes in
    order, registering values before resolving references.
    """
    left, right, schema, config = payload
    slots: List[Tuple] = []
    stats.items += 1
    for value, token in ((left, tokens[0]), (right, tokens[1]), (schema, tokens[2])):
        if not force_values and token in seen:
            slots.append(("r", token))
            stats.references_sent += 1
        else:
            seen.add(token)
            slots.append(("v", token, value))
            stats.values_sent += 1
    return (slots[0], slots[1], slots[2], config)


def decode_payload(
    encoded: Tuple,
    catalog: TokenCatalog,
    store: Optional[Any],
    stats: WorkerTransportStats,
) -> Tuple[Optional[Tuple], List[str]]:
    """The worker-side inverse: ``(payload, [])`` or ``(None, missing tokens)``.

    Value slots are registered into *catalog* before any later reference of
    the same message is resolved (the caller decodes items in chunk order).
    Schema references additionally fall back to the read-only *store*'s
    ``"schemas"`` tier.  Unresolvable tokens are reported, not raised — the
    parent answers a miss with the full payload.
    """
    resolved: List[Any] = []
    missing: List[str] = []
    for slot in encoded[:3]:
        if slot[0] == "v":
            _, token, value = slot
            catalog.register(token, value)
            stats.values_registered += 1
            resolved.append(value)
            continue
        token = slot[1]
        value = catalog.resolve(token)
        if value is not None:
            stats.catalog_hits += 1
            resolved.append(value)
            continue
        if store is not None and token.startswith("s:"):
            name, _, fingerprint = token[2:].partition("\x1f")
            value = store.get("schemas", fingerprint)
            # the stored schema must carry the token's name: fingerprints are
            # name-insensitive, result fingerprints are not (schema_name)
            if value is not None and getattr(value, "name", None) == name:
                catalog.register(token, value)
                stats.store_hits += 1
                resolved.append(value)
                continue
        stats.misses += 1
        missing.append(token)
    if missing:
        return None, missing
    return (resolved[0], resolved[1], resolved[2], encoded[3]), []


# --------------------------------------------------------------------------- #
# context seeds: symbol tables + DFA transition arrays
# --------------------------------------------------------------------------- #
def _dfa_spec(dfa: Optional[DFA]) -> Optional[Tuple]:
    """A table-independent description of *dfa* (``None`` stays ``None``).

    The payload is the automaton's dense kernel form: ``(num_states,
    initial, final, alphabet ids, flat table bytes)``.  The byte string is
    the :class:`~repro.core.kernels.DenseDFA` buffer the parent already
    computed (``tobytes`` of the backing ``array('i')`` — no per-transition
    re-derivation), and symbol ids are positions in the seed's symbol
    snapshot — valid in any table whose arrival-order prefix matches it.
    """
    if dfa is None:
        return None
    dense = dfa.dense()
    return (
        dense.num_states,
        dense.initial,
        dense.final,
        dense.alphabet,
        dense.tobytes(),
    )


def _legacy_seed_bytes(seed: Dict[str, Dict[str, Any]]) -> int:
    """The pickled size of *seed* under the old per-transition encoding.

    Reconstructed from the dense specs themselves (rare — once per seed
    publication) so ``TransportStats`` can report the payload shrink the
    dense tables buy without keeping two encoders alive.
    """
    legacy: Dict[str, Dict[str, Any]] = {}
    for context, entry in seed.items():
        automata = []
        for regex, dfa_spec, min_spec in entry["automata"]:
            automata.append(
                (regex, _triples_from_spec(dfa_spec), _triples_from_spec(min_spec))
            )
        legacy[context] = {"symbols": entry["symbols"], "automata": tuple(automata)}
    return len(pickle.dumps(legacy, protocol=pickle.HIGHEST_PROTOCOL))


def _triples_from_spec(spec: Optional[Tuple]) -> Optional[Tuple]:
    """The old ``(num_states, initial, final, sorted transition triples)`` form."""
    if spec is None:
        return None
    num_states, initial, final, alphabet, buffer = spec
    dense = DenseDFA.from_bytes(num_states, initial, final, alphabet, buffer)
    width, flat = dense.width, dense.table
    triples = sorted(
        (state, alphabet[column], target)
        for state in range(num_states)
        for column in range(width)
        if (target := flat[state * width + column]) >= 0
    )
    return (num_states, initial, tuple(sorted(final)), tuple(triples))


def build_context_seed(
    bundles: Iterable[CompiledAutomaton],
    contexts: Optional[Set[str]] = None,
) -> Dict[str, Dict[str, Any]]:
    """Snapshot the warm automata state of *bundles*, grouped by context.

    Only bundles with a named context (a schema fingerprint) and at least
    one *computed* DFA participate — seeding is strictly a transfer of work
    already done, never a trigger for new work.  The symbol snapshot is
    taken after the spec extraction, so every id referenced by a shipped
    transition array is covered by the snapshot.
    """
    per_context: Dict[str, Dict[str, Any]] = {}
    for bundle in bundles:
        context = bundle.context
        if context is None or (contexts is not None and context not in contexts):
            continue
        dfa_spec = _dfa_spec(bundle._dfa)
        min_spec = _dfa_spec(bundle._min_dfa)
        if dfa_spec is None and min_spec is None:
            continue
        entry = per_context.setdefault(context, {"automata": []})
        entry["automata"].append((bundle.regex, dfa_spec, min_spec))
    for context, entry in per_context.items():
        entry["symbols"] = symbol_table(context).snapshot()
        entry["automata"] = tuple(entry["automata"])
    return per_context


def _dfa_from_spec(table: Any, spec: Tuple) -> DFA:
    """Reattach one shipped dense table as a worker-side :class:`DFA`."""
    num_states, initial, final, alphabet, buffer = spec
    dense = DenseDFA.from_bytes(num_states, initial, final, alphabet, buffer)
    return DFA.from_dense(table, dense)


def install_context_seed(
    seed: Dict[str, Dict[str, Any]], stats: Optional[WorkerTransportStats] = None
) -> int:
    """Install *seed* into this process's tables and compile memo.

    Returns the number of DFAs installed.  Per context, the local symbol
    table must start with exactly the seed's symbols (interning the tail if
    the local table is shorter) — a positional-id mismatch means the shipped
    transition arrays would be read against the wrong alphabet, so the whole
    context is skipped and its automata recompile locally (bit-identical by
    determinism of the subset construction).  Already-computed local DFAs
    are never overwritten.
    """
    stats = stats if stats is not None else WorkerTransportStats()
    installed = 0
    for context, entry in seed.items():
        table = symbol_table(context)
        symbols = entry["symbols"]
        compatible = True
        for position, symbol in enumerate(symbols):
            if position < len(table):
                if table.symbol(position) != symbol:
                    compatible = False
                    break
            elif table.intern(symbol) != position:  # pragma: no cover - racing intern
                compatible = False
                break
        if not compatible:
            stats.contexts_skipped += 1
            continue
        for regex, dfa_spec, min_spec in entry["automata"]:
            bundle = compile_regex(regex, context)
            if dfa_spec is not None and bundle._dfa is None:
                bundle._dfa = _dfa_from_spec(table, dfa_spec)
                installed += 1
            if min_spec is not None and bundle._min_dfa is None:
                bundle._min_dfa = _dfa_from_spec(table, min_spec)
                installed += 1
    stats.automata_seeded += installed
    return installed


# --------------------------------------------------------------------------- #
# shared-memory publication (with the pickle fallback)
# --------------------------------------------------------------------------- #
def shared_memory_disabled() -> bool:
    """``True`` when ``REPRO_NO_SHM`` forces the pickle fallback."""
    return os.environ.get(SHM_DISABLE_VARIABLE, "").strip() not in ("", "0")


class SeedSegment:
    """One owned shared-memory segment; the parent unlinks it exactly once.

    Workers attach by name, copy, and detach immediately; the parent keeps
    the segment alive for the pool's lifetime (a late-starting worker may
    attach long after publication) and reclaims it on every teardown path —
    close, interrupt abort, worker-death teardown, GC finalizer, atexit.
    """

    def __init__(self, shm: Any) -> None:
        self._shm = shm
        self.name: str = shm.name
        self._lock = threading.Lock()
        self._released = False

    def release(self) -> None:
        """Close and unlink (idempotent; never raises)."""
        with self._lock:
            if self._released:
                return
            self._released = True
        for action in (self._shm.close, self._shm.unlink):
            try:
                action()
            except (FileNotFoundError, OSError):  # pragma: no cover - already gone
                pass


def publish_seed(seed: Dict[str, Any], stats: TransportStats) -> Tuple[Tuple, Optional[SeedSegment]]:
    """Pickle *seed* and choose its transport.

    Returns ``(("shm", name, size), segment)`` when a shared-memory segment
    was created (the caller owns the segment and must eventually
    :meth:`~SeedSegment.release` it), or ``(("pickle", blob), None)`` on the
    fallback — shared memory unavailable, creation failed, or disabled via
    ``REPRO_NO_SHM``.
    """
    blob = pickle.dumps(seed, protocol=pickle.HIGHEST_PROTOCOL)
    stats.seeds_published += 1
    stats.seed_bytes += len(blob)
    try:
        stats.seed_bytes_legacy += _legacy_seed_bytes(seed)
    except Exception:  # noqa: BLE001 - accounting must never block a publish
        stats.seed_bytes_legacy += len(blob)
    if not shared_memory_disabled():
        try:
            from multiprocessing import shared_memory

            name = f"{SEED_SEGMENT_PREFIX}_{os.getpid()}_{next(_segment_counter)}"
            shm = shared_memory.SharedMemory(create=True, size=max(1, len(blob)), name=name)
            shm.buf[: len(blob)] = blob
            stats.shm_segments += 1
            return ("shm", shm.name, len(blob)), SeedSegment(shm)
        except Exception:  # noqa: BLE001 - any failure falls back to the queue
            pass
    return ("pickle", blob), None


def load_seed(wire: Tuple) -> Dict[str, Any]:
    """The worker-side inverse of :func:`publish_seed`."""
    if wire[0] == "pickle":
        return pickle.loads(wire[1])
    _, name, size = wire
    from multiprocessing import shared_memory

    try:
        # 3.13+: attach untracked — the parent owns the segment's lifetime
        shm = shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # pragma: no cover - Python < 3.13
        shm = shared_memory.SharedMemory(name=name)
        _untrack_segment(name)
    try:
        blob = bytes(shm.buf[:size])
    finally:
        shm.close()
    return pickle.loads(blob)


def _untrack_segment(name: str) -> None:  # pragma: no cover - Python < 3.13 path
    """Undo the resource tracker's attach-side registration.

    Before 3.13 every attach registers the segment with the process's
    resource tracker, which would try to unlink it again at worker exit —
    after the parent (the owner) already has — and spam warnings.
    """
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(f"/{name}", "shared_memory")
    except Exception:  # noqa: BLE001 - tracking cosmetics must never break a worker
        pass


def live_seed_segments(directory: str = "/dev/shm") -> List[str]:
    """Names of this machine's live seed segments (the leak-test probe)."""
    try:
        names = os.listdir(directory)
    except OSError:  # pragma: no cover - non-Linux or exotic container
        return []
    return sorted(name for name in names if name.startswith(SEED_SEGMENT_PREFIX))
