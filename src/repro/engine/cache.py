"""Bounded LRU caches with hit/miss/eviction accounting.

The containment engine keeps several independent caches (verdicts,
completions, schema encodings, compiled automaton bundles).  Each is an
:class:`LRUCache` with its own :class:`CacheStats`, so benchmarks and
operators can see exactly where batch workloads hit or miss (see
docs/ARCHITECTURE.md, "The cached containment engine").  These are the
*memory* tier; engines constructed with ``persist=`` back them with the
disk tier of :mod:`repro.store`, whose :class:`~repro.store.StoreStats`
counters are reported alongside these in ``engine.stats``.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, Hashable, Optional

__all__ = ["CacheStats", "LRUCache"]


@dataclass
class CacheStats:
    """Counters of one cache: lookups that hit, missed, and entries evicted."""

    name: str
    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        """Total number of lookups."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when never used)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def snapshot(self) -> "CacheStats":
        """An independent copy (the live object keeps counting)."""
        return CacheStats(self.name, self.hits, self.misses, self.evictions)

    def as_dict(self) -> Dict[str, Any]:
        """Plain-dict form for logging and benchmark reports."""
        return {
            "name": self.name,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }

    def __str__(self) -> str:
        return (
            f"{self.name}: {self.hits} hits / {self.misses} misses "
            f"({self.hit_rate:.0%}), {self.evictions} evicted"
        )


class LRUCache:
    """A bounded mapping with least-recently-used eviction.

    Not synchronised by itself — the engine serialises access through its own
    lock so that hit/miss counters stay exact under concurrent batches.
    """

    def __init__(self, name: str, maxsize: int) -> None:
        if maxsize < 1:
            raise ValueError("cache maxsize must be at least 1")
        self.maxsize = maxsize
        self.stats = CacheStats(name)
        self._data: "OrderedDict[Hashable, Any]" = OrderedDict()

    def get(self, key: Hashable) -> Optional[Any]:
        """Return the cached value (refreshing recency) or ``None`` on a miss."""
        try:
            value = self._data[key]
        except KeyError:
            self.stats.misses += 1
            return None
        self._data.move_to_end(key)
        self.stats.hits += 1
        return value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert *value*, evicting the least recently used entry on overflow."""
        if key in self._data:
            self._data.move_to_end(key)
        self._data[key] = value
        while len(self._data) > self.maxsize:
            self._data.popitem(last=False)
            self.stats.evictions += 1

    def items(self) -> list:
        """A list snapshot of ``(key, value)`` pairs, oldest to most recent.

        Recency and counters are untouched — this is an inspection API (the
        engine uses it to harvest warm automata bundles for worker seeding),
        not a lookup path.
        """
        return list(self._data.items())

    def prune(self, predicate) -> int:
        """Drop every entry whose key satisfies *predicate*; returns the count.

        Pruned entries are deliberate invalidations, not capacity evictions,
        so they do not touch the eviction counter.
        """
        doomed = [key for key in self._data if predicate(key)]
        for key in doomed:
            del self._data[key]
        return len(doomed)

    def clear(self) -> int:
        """Drop all entries (counters are kept); returns the count."""
        count = len(self._data)
        self._data.clear()
        return count

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data
