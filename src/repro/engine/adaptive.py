"""Adaptive backend selection: measure, then choose serial/thread/process.

``check_many(parallel="auto")`` — and the containment service, whose default
this is — should not make the user guess whether a batch is worth a worker
pool.  The wrong guess is exactly what the benchmark trend caught (ROADMAP
item 1): a process pool losing to serial because per-item transport cost
exceeded per-item solve cost.  So the engine measures both and decides:

* **Calibration probe.**  The first time a batch arrives for schemas with no
  recorded profile, the engine solves the batch's first item serially (its
  result is part of the answer — the probe is never wasted work) and times
  one ``pickle.dumps`` of the request tuple as the per-item transport cost.
  Both go into a per-schema-fingerprint EWMA (:meth:`AdaptiveSelector.observe`),
  so later batches skip the probe and re-use the profile; serial runs keep
  refreshing the solve estimate for free from result timings.

* **Backend estimates** (:meth:`AdaptiveSelector.choose`).  For a batch of
  ``n`` items with per-item solve cost ``s`` and transport cost ``t`` over
  ``w`` effective workers::

      serial  ≈ n·s
      process ≈ dispatch + n·t + n·s/w   (+ spawn penalty if the pool is cold)
      thread  ≈ dispatch/4 + n·s/w       (only on free-threaded builds —
                                          under the GIL threads cannot
                                          overlap the CPU-bound chase)

  The cheapest estimate wins, but a non-serial backend must beat serial by a
  :data:`margin <SERIAL_MARGIN>` — estimates are noisy, and when they are
  close, serial's predictability (and the absence of worker processes) is
  worth more than a few projected milliseconds.

Degenerate cases short-circuit to serial: single-item batches, single-core
boxes, unpicklable payloads (transport cost ``inf``), and schemas with no
profile and nothing left after the probe.  The selection changes only *where*
a batch runs; every backend returns bit-identical verdicts, so a wrong guess
costs milliseconds, never correctness.
"""

from __future__ import annotations

import os
import pickle
import sys
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, Iterable, Optional

__all__ = [
    "AdaptiveSelector",
    "CostProfile",
    "DISPATCH_OVERHEAD_SECONDS",
    "SERIAL_MARGIN",
    "SPAWN_PENALTY_SECONDS",
]

#: Fixed cost of putting a batch on the pool's queues and collecting replies.
DISPATCH_OVERHEAD_SECONDS = 0.002

#: Amortised cost of spawning the worker processes when the pool is cold; a
#: fresh interpreter per worker (spawn method) plus the first warm-up imports.
SPAWN_PENALTY_SECONDS = 0.25

#: A non-serial backend must project at least this speedup over serial —
#: close calls go to serial, whose estimate has the least variance.
SERIAL_MARGIN = 1.2

#: EWMA weight of the newest observation (0.5: adapt fast, keep some memory).
EWMA_ALPHA = 0.5


@dataclass(frozen=True)
class CostProfile:
    """Measured per-item costs for one schema context (or an average)."""

    solve_seconds: float
    transport_seconds: float


def _gil_enabled() -> bool:
    try:
        return sys._is_gil_enabled()  # free-threaded 3.13+: may be False
    except AttributeError:  # pragma: no cover - depends on the interpreter
        return True


class AdaptiveSelector:
    """Per-schema cost profiles plus the serial/thread/process decision rule.

    Thread-safe (the service's coalescer flushes from a worker thread).
    ``cpu_count`` and ``gil_enabled`` are injectable for tests — forcing a
    profile and a core count makes every decision deterministic.
    """

    def __init__(
        self, cpu_count: Optional[int] = None, gil_enabled: Optional[bool] = None
    ) -> None:
        self.cpu_count = cpu_count if cpu_count is not None else (os.cpu_count() or 1)
        self.gil_enabled = gil_enabled if gil_enabled is not None else _gil_enabled()
        self._lock = threading.Lock()
        self._profiles: Dict[str, CostProfile] = {}
        self.decisions: Dict[str, int] = {"serial": 0, "thread": 0, "process": 0}
        self.probes = 0
        self.last_decision: Optional[Dict[str, Any]] = None

    # ------------------------------------------------------------------ #
    # measurement
    # ------------------------------------------------------------------ #
    def observe(
        self, context: str, solve_seconds: float, transport_seconds: Optional[float] = None
    ) -> None:
        """Fold one measurement into *context*'s profile (EWMA).

        ``transport_seconds=None`` refreshes only the solve estimate — serial
        runs re-measure solving for free but learn nothing about pickling.
        """
        with self._lock:
            current = self._profiles.get(context)
            if current is None:
                self._profiles[context] = CostProfile(
                    solve_seconds,
                    transport_seconds if transport_seconds is not None else 0.0,
                )
                return
            blended_transport = current.transport_seconds
            if transport_seconds is not None:
                blended_transport = (
                    EWMA_ALPHA * transport_seconds + (1 - EWMA_ALPHA) * blended_transport
                )
            self._profiles[context] = CostProfile(
                EWMA_ALPHA * solve_seconds + (1 - EWMA_ALPHA) * current.solve_seconds,
                blended_transport,
            )

    def profile_for(self, contexts: Iterable[str]) -> Optional[CostProfile]:
        """The averaged profile of the known *contexts*, ``None`` if all new."""
        with self._lock:
            known = [self._profiles[c] for c in set(contexts) if c in self._profiles]
        if not known:
            return None
        return CostProfile(
            sum(p.solve_seconds for p in known) / len(known),
            sum(p.transport_seconds for p in known) / len(known),
        )

    def measure_transport(self, payload: Any) -> float:
        """The per-item serialization cost: one timed ``pickle.dumps``.

        An unpicklable payload measures as ``inf`` — the process backend
        could not ship it anyway, so the estimate pushes the choice to
        serial instead of letting the pool discover the failure later.
        """
        self.probes += 1
        started = time.perf_counter()
        try:
            pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:  # noqa: BLE001 - unpicklable ⇒ process is off the table
            return float("inf")
        return time.perf_counter() - started

    # ------------------------------------------------------------------ #
    # the decision rule
    # ------------------------------------------------------------------ #
    def choose(
        self,
        batch_size: int,
        profile: Optional[CostProfile],
        workers: Optional[int] = None,
        pool_ready: bool = False,
    ) -> str:
        """Pick ``"serial"``, ``"thread"`` or ``"process"`` for this batch."""
        effective_workers = max(1, min(workers or self.cpu_count, self.cpu_count, batch_size))
        if batch_size <= 1 or self.cpu_count < 2 or profile is None:
            return self._record("serial", batch_size, profile, None)

        estimates = {"serial": batch_size * profile.solve_seconds}
        process = (
            DISPATCH_OVERHEAD_SECONDS
            + batch_size * profile.transport_seconds
            + batch_size * profile.solve_seconds / effective_workers
        )
        if not pool_ready:
            process += SPAWN_PENALTY_SECONDS
        estimates["process"] = process
        if not self.gil_enabled:
            # free-threaded build: no pickling, shared caches, cheap dispatch
            estimates["thread"] = (
                DISPATCH_OVERHEAD_SECONDS / 4
                + batch_size * profile.solve_seconds / effective_workers
            )
        choice = min(estimates, key=lambda backend: (estimates[backend], backend))
        if choice != "serial" and estimates[choice] * SERIAL_MARGIN > estimates["serial"]:
            choice = "serial"
        return self._record(choice, batch_size, profile, estimates)

    def _record(
        self,
        choice: str,
        batch_size: int,
        profile: Optional[CostProfile],
        estimates: Optional[Dict[str, float]],
    ) -> str:
        with self._lock:
            self.decisions[choice] += 1
            self.last_decision = {
                "backend": choice,
                "batch_size": batch_size,
                "profile": (
                    {
                        "solve_seconds": profile.solve_seconds,
                        "transport_seconds": profile.transport_seconds,
                    }
                    if profile is not None
                    else None
                ),
                "estimates": estimates,
            }
        return choice

    # ------------------------------------------------------------------ #
    # observability
    # ------------------------------------------------------------------ #
    def report(self) -> Dict[str, Any]:
        """JSON-ready counters for service stats and benchmark reports."""
        with self._lock:
            return {
                "cpu_count": self.cpu_count,
                "gil_enabled": self.gil_enabled,
                "profiles": len(self._profiles),
                "probes": self.probes,
                "decisions": dict(self.decisions),
                "last_decision": self.last_decision,
            }
