"""Cached containment engine: batch containment with per-schema caches.

The subsystem behind every hot static-analysis path (see
docs/ARCHITECTURE.md, "The cached containment engine"):

* :class:`ContainmentEngine` — owns the fingerprint-keyed caches (verdicts,
  completions + chase engines, schema TBox encodings, compiled automata) and the
  ``check_many`` batch API with serial/thread/process/auto backends; constructed
  with ``persist=path`` it adds the disk-persistent second tier
  (:class:`repro.store.ResultStore`) that worker processes warm-start from;
* :class:`ContainmentRequest` — one ``(left, right, schema, config)`` unit of
  work for a batch;
* :class:`EngineStats` / :class:`CacheStats` — hit/miss/eviction accounting;
* :class:`LRUCache` — the bounded cache primitive;
* :class:`WorkerPool` / :class:`WorkerError` — the process-parallel backend:
  persistent worker processes, each with its own warm engine, sharded by
  schema fingerprint (``repro.engine.parallel``), fed through the cheap
  reference transport of ``repro.engine.transport``;
* :class:`AdaptiveSelector` / :class:`CostProfile` — the measured cost model
  behind ``parallel="auto"`` (``repro.engine.adaptive``);
* :class:`TransportStats` / :class:`WorkerTransportStats` — the reference
  protocol's parent- and worker-side counters;
* :func:`merge_stats` / :func:`result_fingerprint` — pool-wide statistics
  aggregation and the verdict digest used to assert backend determinism;
* :class:`SchemaDelta` / :class:`EvolveReport` / :class:`InvalidationReport`
  — the schema-evolution layer (``repro.engine.delta``): axiom-level schema
  diffs and the structured reports behind ``engine.evolve`` and
  ``engine.invalidate_schema``;
* :func:`default_engine` — the process-wide engine used by the stateless
  ``repro.containment.contains`` wrapper and the analysis entry points;
* :func:`reset_default_engine` — drop the shared engine (test isolation).
"""

from .adaptive import AdaptiveSelector, CostProfile
from .cache import CacheStats, LRUCache
from .delta import EvolveReport, InvalidationReport, SchemaDelta
from .engine import (
    ContainmentEngine,
    ContainmentRequest,
    EngineStats,
    default_engine,
    reset_default_engine,
)
from .parallel import WorkerError, WorkerPool, merge_stats, result_fingerprint
from .transport import TransportStats, WorkerTransportStats

__all__ = [
    "AdaptiveSelector",
    "CacheStats",
    "CostProfile",
    "LRUCache",
    "ContainmentEngine",
    "ContainmentRequest",
    "EngineStats",
    "EvolveReport",
    "InvalidationReport",
    "SchemaDelta",
    "TransportStats",
    "WorkerError",
    "WorkerPool",
    "WorkerTransportStats",
    "merge_stats",
    "result_fingerprint",
    "default_engine",
    "reset_default_engine",
]
