"""Cached containment engine: batch containment with per-schema caches.

The subsystem behind every hot static-analysis path (see
docs/ARCHITECTURE.md, "The cached containment engine"):

* :class:`ContainmentEngine` — owns the fingerprint-keyed caches (verdicts,
  completions + chase engines, schema TBox encodings, compiled NFAs) and the
  ``check_many`` batch API;
* :class:`ContainmentRequest` — one ``(left, right, schema, config)`` unit of
  work for a batch;
* :class:`EngineStats` / :class:`CacheStats` — hit/miss/eviction accounting;
* :class:`LRUCache` — the bounded cache primitive;
* :func:`default_engine` — the process-wide engine used by the stateless
  ``repro.containment.contains`` wrapper and the analysis entry points;
* :func:`reset_default_engine` — drop the shared engine (test isolation).
"""

from .cache import CacheStats, LRUCache
from .engine import (
    ContainmentEngine,
    ContainmentRequest,
    EngineStats,
    default_engine,
    reset_default_engine,
)

__all__ = [
    "CacheStats",
    "LRUCache",
    "ContainmentEngine",
    "ContainmentRequest",
    "EngineStats",
    "default_engine",
    "reset_default_engine",
]
