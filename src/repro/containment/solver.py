"""Containment of UC2RPQs in acyclic UC2RPQs modulo schema (Theorem 5.1).

The :class:`ContainmentSolver` wires together the reductions of the paper:

1. booleanization of the free variables (Lemma D.1);
2. restriction of the left query to the schema alphabet and encoding of the
   schema as the Horn TBox ``T̂_S`` (Theorem 5.6 / Lemma D.3);
3. rolling up of the acyclic right query into ``T_¬Q`` (Lemma C.2);
4. completion of ``T̂_S ∪ T_¬Q`` by cycle reversing (Theorem 5.4 / Lemma D.7);
5. unrestricted satisfiability of the rewritten left query modulo the
   completion, decided by the Horn chase over enumerated witness patterns.

``P ⊆_S Q`` holds iff step 5 reports *unsatisfiable*.  The "every node has a
schema label" requirement — the only non-Horn part of conformance — is
enforced on witness patterns directly: every pattern node without a schema
label is assigned one, branching over the locally compatible choices (this is
equivalent to the paper's interleaving rewrite but keeps the enumerated words
short; see docs/ARCHITECTURE.md, stage 5 "Chase").

The expensive stages of the pipeline are factored into overridable hook
methods (:meth:`ContainmentSolver._schema_tbox`,
:meth:`ContainmentSolver._prepared_choices`,
:meth:`ContainmentSolver._compile_automaton`) so that :class:`repro.engine.ContainmentEngine`
can substitute cached artefacts without duplicating the decision procedure;
the module-level :func:`contains` wrapper routes through the shared default
engine and therefore benefits from those caches automatically.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple

from ..chase.engine import ChaseEngine
from ..chase.solver import SatisfiabilityConfig, build_pattern
from ..core import CompiledAutomaton, PrefixPruner, compile_regex
from ..dl.schema_tbox import schema_to_extended_tbox
from ..dl.tbox import TBox
from ..exceptions import AcyclicityError, QueryError
from ..graph.graph import Graph, NodeId
from ..rpq.queries import C2RPQ, UC2RPQ
from ..rpq.regex import Symbol
from ..schema.schema import Schema
from .booleanize import booleanize
from .counterexample import Counterexample, find_counterexample
from .cycle_reversal import CompletionConfig, CompletionResult, complete
from .rolling_up import roll_up_choices
from .schema_encoding import filter_uc2rpq

__all__ = ["ContainmentConfig", "ContainmentResult", "ContainmentSolver", "contains"]


@dataclass(frozen=True)
class ContainmentConfig:
    """Resource bounds for the containment decision procedure."""

    satisfiability: SatisfiabilityConfig = field(default_factory=SatisfiabilityConfig)
    completion: CompletionConfig = field(default_factory=CompletionConfig)
    apply_completion: bool = True
    max_label_assignments: int = 2_000
    search_finite_counterexample: bool = False
    counterexample_max_nodes: int = 3


@dataclass
class ContainmentResult:
    """Outcome of one containment test ``P ⊆_S Q``."""

    contained: bool
    regime: str
    schema_name: str
    left_name: str
    right_name: str
    witness_pattern: Optional[Graph] = None
    finite_counterexample: Optional[Counterexample] = None
    completion: Optional[CompletionResult] = None
    tbox_size: int = 0
    patterns_checked: int = 0
    elapsed_seconds: float = 0.0
    reason: str = ""

    def __bool__(self) -> bool:
        return self.contained

    @property
    def conclusive(self) -> bool:
        """``False`` only for a "contained" verdict obtained in the truncated regime."""
        return (not self.contained) or self.regime in ("exact", "pumped")

    def summary(self) -> str:
        verdict = "⊆" if self.contained else "⊄"
        return (
            f"{self.left_name} {verdict}_{self.schema_name} {self.right_name} "
            f"[regime={self.regime}, patterns={self.patterns_checked}, "
            f"|T|={self.tbox_size}, {self.elapsed_seconds * 1000:.1f} ms]"
        )


class ContainmentSolver:
    """Decides ``P ⊆_S Q`` for UC2RPQs ``P`` and acyclic UC2RPQs ``Q``."""

    def __init__(self, schema: Schema, config: Optional[ContainmentConfig] = None) -> None:
        self.schema = schema
        self.config = config or ContainmentConfig()
        self._intern_context: Optional[str] = None

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def contains(self, left, right) -> ContainmentResult:
        """Decide ``left ⊆_S right`` (over finite graphs conforming to S)."""
        started = time.perf_counter()
        left = _as_union(left, "P")
        right = _as_union(right, "Q")
        if not right.is_acyclic():
            raise AcyclicityError(
                f"the right-hand side {right.name} must be an acyclic UC2RPQ"
            )
        if left.is_empty():
            return ContainmentResult(
                True, "exact", self.schema.name, left.name, right.name,
                reason="the left-hand side is the empty union",
                elapsed_seconds=time.perf_counter() - started,
            )

        reduction = self._booleanize(left, right)
        extended_schema = reduction.schema
        filtered_left = filter_uc2rpq(reduction.left, extended_schema)

        # one Horn TBox per choice of the component to refute in each disjunct
        # of Q (exactly one choice when all disjuncts are connected); P ⊆_S Q
        # holds iff the left query is unsatisfiable modulo every choice.
        satisfiable = False
        regime = "exact"
        witness: Optional[Graph] = None
        patterns = 0
        completion: Optional[CompletionResult] = None
        tbox_size = 0
        for choice_completion, engine in self._prepared_choices(reduction, right.name):
            completion = completion or choice_completion
            tbox_size = max(tbox_size, choice_completion.tbox.size())
            choice_sat, choice_regime, choice_witness, choice_patterns = self._left_satisfiable(
                filtered_left, extended_schema, engine
            )
            patterns += choice_patterns
            regime = _weakest(regime, choice_regime)
            if choice_sat:
                satisfiable, witness, completion = True, choice_witness, choice_completion
                break

        result = ContainmentResult(
            contained=not satisfiable,
            regime=regime,
            schema_name=self.schema.name,
            left_name=left.name,
            right_name=right.name,
            witness_pattern=witness,
            completion=completion,
            tbox_size=tbox_size,
            patterns_checked=patterns,
            reason=(
                "no witness pattern is consistent with the completed TBox"
                if not satisfiable
                else "a consistent witness pattern exists (counterexample to containment)"
            ),
        )
        if satisfiable and self.config.search_finite_counterexample:
            result.finite_counterexample = find_counterexample(
                left, right, self.schema, max_nodes=self.config.counterexample_max_nodes
            )
        result.elapsed_seconds = time.perf_counter() - started
        return result

    def equivalent(self, left, right) -> bool:
        """``True`` when both containments hold (both sides must be acyclic)."""
        return bool(self.contains(left, right)) and bool(self.contains(right, left))

    def satisfiable(self, query) -> ContainmentResult:
        """Satisfiability of *query* modulo the schema over finite graphs.

        ``q`` is satisfiable modulo ``S`` iff ``q ⊄_S ∅``; the returned result
        is the containment result against the empty union, so ``not result``
        means satisfiable.
        """
        query = _as_union(query, "P")
        empty = UC2RPQ([], name="∅")
        return self.contains(query, empty)

    # ------------------------------------------------------------------ #
    # pipeline stages — overridable hooks for the caching engine
    # ------------------------------------------------------------------ #
    def _booleanize(self, left: UC2RPQ, right: UC2RPQ):
        """Stage 1 — the Lemma D.1 reduction to Boolean queries."""
        return booleanize(self.schema, left, right)

    def _schema_tbox(self, extended_schema: Schema) -> TBox:
        """Stage 2 — the Horn TBox ``T̂_S`` of the (extended) schema.

        :class:`repro.engine.ContainmentEngine` overrides this to reuse one
        encoding per schema fingerprint.
        """
        return schema_to_extended_tbox(extended_schema)

    def _prepared_choices(
        self, reduction, right_name: str
    ) -> List[Tuple[CompletionResult, ChaseEngine]]:
        """Stages 3–4 — roll up the right query and complete each choice.

        Returns one ``(completion, chase engine)`` pair per choice of the
        component to refute.  This is the dominant cost of a containment call
        (the completion runs exponentially many entailment checks in the worst
        case), which is why the engine caches the whole list per
        ``(schema, right query, config)`` fingerprint.
        """
        schema_tbox = self._schema_tbox(reduction.schema)
        prepared: List[Tuple[CompletionResult, ChaseEngine]] = []
        for rolled in roll_up_choices(reduction.right, prefix=right_name):
            combined = schema_tbox.union(
                rolled.tbox, name=f"T̂_{reduction.schema.name}∪T_¬{right_name}"
            )
            if self.config.apply_completion:
                choice_completion = complete(
                    combined, reduction.schema, config=self.config.completion
                )
            else:
                # ablation mode: decide containment over *unrestricted* models only
                choice_completion = CompletionResult(combined, skipped=True)
            prepared.append((choice_completion, ChaseEngine(choice_completion.tbox)))
        return prepared

    def _compile_automaton(self, regex) -> CompiledAutomaton:
        """Stage 5 prerequisite — compile one atom regex (cacheable).

        Returns the :class:`repro.core.CompiledAutomaton` bundle (NFA, lazy
        minimal DFA, cycle/emptiness flags, memoized pumped word lists);
        symbols intern into the table of this solver's schema fingerprint.
        :class:`repro.engine.ContainmentEngine` overrides this to serve the
        bundle from its automaton cache.  (The pre-core ``_build_nfa`` hook
        finished its deprecation cycle and is gone; subclasses substitute
        automata by overriding this method.)
        """
        if self._intern_context is None:
            self._intern_context = self.schema.canonical_fingerprint()
        return compile_regex(regex, self._intern_context)

    # ------------------------------------------------------------------ #
    # satisfiability of the reduced left-hand side
    # ------------------------------------------------------------------ #
    def _left_satisfiable(
        self, left: UC2RPQ, schema: Schema, engine: ChaseEngine
    ) -> Tuple[bool, str, Optional[Graph], int]:
        config = self.config.satisfiability
        regime = "exact"
        patterns_checked = 0
        for disjunct in left:
            word_lists: List[Tuple[Tuple[Symbol, ...], ...]] = []
            empty_atom = False
            for atom in disjunct.atoms:
                automaton = self._compile_automaton(atom.regex)
                words = automaton.words(
                    max_length=config.max_word_length,
                    max_state_repeats=config.max_state_repeats,
                    max_words=config.max_words_per_atom,
                )
                if not words:
                    if not automaton.is_empty():
                        regime = _weakest(regime, "truncated")
                    empty_atom = True
                    break
                if len(words) >= config.max_words_per_atom or any(
                    len(word) >= config.max_word_length for word in words
                ):
                    regime = _weakest(regime, "truncated")
                elif automaton.has_productive_cycle():
                    regime = _weakest(regime, "pumped")
                word_lists.append(words)
            if empty_atom:
                continue
            if not disjunct.atoms:
                word_lists = []
            atoms = list(disjunct.atoms)
            # prefix sharing (see repro.core.prefix): an inconsistent prefix
            # pattern refutes its whole subtree of combinations, so those are
            # counted — label branching included — without being chased
            pruner: Optional[PrefixPruner] = None
            if config.share_prefixes and len(atoms) >= 2:
                pruner = PrefixPruner(
                    atoms,
                    word_lists,
                    build_pattern,
                    lambda graph: engine.check_pattern(graph).consistent,
                )
                if not pruner.useful:
                    pruner = None
            combinations = itertools.product(*word_lists) if word_lists else iter([()])
            for combination in combinations:
                if patterns_checked >= config.max_patterns:
                    regime = _weakest(regime, "truncated")
                    break
                base_pattern, assignment = build_pattern(atoms, list(combination))
                if not disjunct.atoms:
                    base_pattern = Graph()
                    base_pattern.add_node("n0")
                if pruner is not None and pruner.prunes(combination):
                    patterns_checked += self._count_label_assignments(base_pattern, schema)
                    continue
                for labelled in self._label_assignments(base_pattern, schema):
                    patterns_checked += 1
                    chase = engine.check_pattern(labelled, assignment)
                    if chase.consistent:
                        return True, regime, chase.pattern, patterns_checked
        return False, regime, None, patterns_checked

    def _label_candidates(
        self, pattern: Graph, schema: Schema
    ) -> Optional[Tuple[List[NodeId], List[List[str]]]]:
        """The unlabeled nodes and their locally compatible schema labels.

        ``None`` when some node admits no label at all (the pattern has no
        conforming labelling).  Shared by :meth:`_label_assignments` and the
        prefix-pruned counting path, which must agree exactly.
        """
        unlabeled = [
            node
            for node in sorted(pattern.nodes(), key=repr)
            if not (pattern.labels(node) & schema.node_labels)
        ]
        candidate_lists: List[List[str]] = []
        for node in unlabeled:
            candidates = [
                label
                for label in sorted(schema.node_labels)
                if self._locally_compatible(pattern, schema, node, label)
            ]
            if not candidates:
                return None  # no conforming labelling exists for this pattern
            candidate_lists.append(candidates)
        return unlabeled, candidate_lists

    def _count_label_assignments(self, pattern: Graph, schema: Schema) -> int:
        """How many labelled patterns :meth:`_label_assignments` would yield.

        Used when a word-prefix already refutes the pattern: the subtree is
        skipped but the counter must advance exactly as if every labelled
        variant had been chased.
        """
        candidates = self._label_candidates(pattern, schema)
        if candidates is None:
            return 0
        unlabeled, candidate_lists = candidates
        if not unlabeled:
            return 1
        total = 1
        for options in candidate_lists:
            total *= len(options)
            if total >= self.config.max_label_assignments:
                return self.config.max_label_assignments
        return total

    def _label_assignments(self, pattern: Graph, schema: Schema) -> Iterator[Graph]:
        """Assign a schema label to every pattern node that lacks one.

        Branches over the locally compatible labels of each unlabeled node;
        this enforces the "at least one label per node" part of conformance
        (the non-Horn statement ``⊤ ⊑ ⊔Γ_S``).
        """
        candidates = self._label_candidates(pattern, schema)
        if candidates is None:
            return
        unlabeled, candidate_lists = candidates
        if not unlabeled:
            yield pattern
            return
        emitted = 0
        for choice in itertools.product(*candidate_lists):
            if emitted >= self.config.max_label_assignments:
                return
            emitted += 1
            labelled = pattern.copy()
            for node, label in zip(unlabeled, choice):
                labelled.add_label(node, label)
            yield labelled

    @staticmethod
    def _locally_compatible(pattern: Graph, schema: Schema, node: NodeId, label: str) -> bool:
        """Quick necessary condition for *label* to be assignable to *node*."""
        for edge_label, target in pattern.out_neighbours(node):
            if edge_label not in schema.edge_labels:
                return False
            target_labels = pattern.labels(target) & schema.node_labels
            targets = target_labels or schema.node_labels
            if all(schema.forbids_edge(label, edge_label, t) for t in targets):
                return False
        for edge_label, source in pattern.in_neighbours(node):
            if edge_label not in schema.edge_labels:
                return False
            source_labels = pattern.labels(source) & schema.node_labels
            sources = source_labels or schema.node_labels
            if all(schema.forbids_edge(s, edge_label, label) for s in sources):
                return False
        return True


# --------------------------------------------------------------------------- #
def _as_union(query, default_name: str) -> UC2RPQ:
    if isinstance(query, UC2RPQ):
        return query
    if isinstance(query, C2RPQ):
        return UC2RPQ.from_query(query)
    raise QueryError(f"expected a C2RPQ or UC2RPQ for {default_name}, got {type(query).__name__}")


def _weakest(left: str, right: str) -> str:
    order = {"exact": 0, "pumped": 1, "truncated": 2}
    return left if order[left] >= order[right] else right


def contains(
    left,
    right,
    schema: Schema,
    config: Optional[ContainmentConfig] = None,
) -> ContainmentResult:
    """Module-level convenience wrapper: decide ``left ⊆_schema right``.

    Routes through the process-wide :func:`repro.engine.default_engine`, so
    repeated stateless calls against the same schema reuse its cached TBox
    encoding, completions and compiled NFAs.  Construct a
    :class:`ContainmentSolver` directly to bypass every cache.
    """
    from ..engine import default_engine  # local import: engine depends on this module

    return default_engine().contains(left, right, schema, config=config)
