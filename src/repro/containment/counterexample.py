"""Explicit finite counterexamples to containment (a testing / debugging aid).

``find_counterexample(P, Q, S, ...)`` enumerates small finite graphs that
conform to the schema ``S`` and returns one on which some answer of ``P`` is
not an answer of ``Q``.  The search is exhaustive up to the configured size,
so it is *sound* (any graph returned is a genuine counterexample) but not
complete; the main containment decision procedure lives in
:mod:`repro.containment.solver`.  Tests use this module as an independent
oracle: whenever the bounded search finds a counterexample, the solver must
report non-containment.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from ..graph.graph import Graph
from ..rpq.evaluation import eval_uc2rpq
from ..rpq.queries import UC2RPQ
from ..schema.conformance import conforms
from ..schema.schema import Schema

__all__ = ["Counterexample", "enumerate_conforming_graphs", "find_counterexample"]


@dataclass
class Counterexample:
    """A finite graph and an answer tuple witnessing non-containment."""

    graph: Graph
    answer: Tuple

    def __str__(self) -> str:
        return f"answer {self.answer!r} on\n{self.graph.describe()}"


def enumerate_conforming_graphs(
    schema: Schema,
    max_nodes: int = 3,
    max_graphs: Optional[int] = None,
    max_attempts: int = 200_000,
) -> Iterator[Graph]:
    """Enumerate finite graphs conforming to *schema*, by increasing node count.

    The enumeration assigns every node exactly one schema label and considers
    every subset of the allowed edge triples; it is exponential and intended
    for very small sizes only.  *max_attempts* bounds the number of candidate
    graphs examined (conforming or not).
    """
    produced = 0
    attempts = 0
    labels = sorted(schema.node_labels)
    edge_labels = sorted(schema.edge_labels)
    for node_count in range(0, max_nodes + 1):
        nodes = list(range(node_count))
        for labelling in itertools.product(labels, repeat=node_count) if node_count else [()]:
            possible_edges: List[Tuple[int, str, int]] = []
            for source, target in itertools.product(nodes, repeat=2):
                for edge_label in edge_labels:
                    if not schema.forbids_edge(labelling[source], edge_label, labelling[target]):
                        possible_edges.append((source, edge_label, target))
            # iterate over subsets of the allowed edges (smallest first)
            for size in range(0, len(possible_edges) + 1):
                for chosen in itertools.combinations(possible_edges, size):
                    attempts += 1
                    if attempts > max_attempts:
                        return
                    graph = Graph()
                    for node, label in zip(nodes, labelling):
                        graph.add_node(node, [label])
                    for source, edge_label, target in chosen:
                        graph.add_edge(source, edge_label, target)
                    if conforms(graph, schema):
                        yield graph
                        produced += 1
                        if max_graphs is not None and produced >= max_graphs:
                            return


def find_counterexample(
    left: UC2RPQ,
    right: UC2RPQ,
    schema: Schema,
    max_nodes: int = 3,
    max_graphs: int = 20_000,
) -> Optional[Counterexample]:
    """Search for a finite graph in ``L(S)`` where some answer of *left* is
    missing from *right*; ``None`` when none exists within the bounds."""
    for graph in enumerate_conforming_graphs(schema, max_nodes=max_nodes, max_graphs=max_graphs):
        left_answers = eval_uc2rpq(left, graph)
        if not left_answers:
            continue
        right_answers = eval_uc2rpq(right, graph)
        missing = left_answers - right_answers
        if missing:
            return Counterexample(graph, sorted(missing, key=repr)[0])
    return None
