"""Fusing the schema into the containment instance (Theorem 5.6, Lemma D.3).

The participation constraints of a schema ``S`` translate to the Horn TBox
``T̂_S`` (see :func:`repro.dl.schema_to_extended_tbox`), but the requirement
that *every node carries at least one label of Γ_S* is not Horn.  Following
the paper, that requirement is pushed into the left-hand-side query instead:

* every edge step ``R`` occurring in an atom of ``P`` is surrounded by the
  disjunction ``(A₁+…+A_n)`` of the schema's node labels, so that a witnessing
  path can only pass through labeled nodes;
* every node or edge label of ``P`` outside ``Γ_S ∪ Σ±_S`` is replaced by
  ``∅`` (such an atom can never be satisfied in a conforming graph).

The resulting query ``P̂`` satisfies  ``P ⊆_S Q  iff  P̂ ⊆_{T̂_S} Q``  over
finite graphs (Lemma D.3).
"""

from __future__ import annotations

from typing import FrozenSet

from ..rpq.queries import Atom, C2RPQ, UC2RPQ
from ..rpq.regex import (
    EMPTY,
    Concat,
    EdgeStep,
    EmptyLanguage,
    Epsilon,
    NodeTest,
    Regex,
    Star,
    Union,
    union as regex_union,
    node,
)
from ..schema.schema import Schema

__all__ = [
    "interleave_regex",
    "filter_foreign_labels",
    "encode_query",
    "encode_uc2rpq",
    "filter_query",
    "filter_uc2rpq",
]


def _label_disjunction(node_labels: FrozenSet[str]) -> Regex:
    """The disjunction ``A₁ + … + A_n`` of the schema's node labels."""
    return regex_union(*(node(label) for label in sorted(node_labels)))


def interleave_regex(regex: Regex, schema: Schema) -> Regex:
    """Rewrite one regular expression as described by Theorem 5.6."""
    labels = schema.node_labels
    guard = _label_disjunction(labels)

    def rewrite(expr: Regex) -> Regex:
        if isinstance(expr, (EmptyLanguage, Epsilon)):
            return expr
        if isinstance(expr, NodeTest):
            return expr if expr.label in labels else EMPTY
        if isinstance(expr, EdgeStep):
            if expr.signed.label not in schema.edge_labels:
                return EMPTY
            return Concat(Concat(guard, expr), guard)
        if isinstance(expr, Concat):
            return Concat(rewrite(expr.left), rewrite(expr.right))
        if isinstance(expr, Union):
            return Union(rewrite(expr.left), rewrite(expr.right))
        if isinstance(expr, Star):
            return Star(rewrite(expr.inner))
        raise TypeError(f"unknown regex node: {expr!r}")  # pragma: no cover

    if not labels:
        return EMPTY
    return rewrite(regex)


def filter_foreign_labels(regex: Regex, schema: Schema) -> Regex:
    """Replace labels outside ``Γ_S ∪ Σ±_S`` by ``∅`` without adding guards.

    This is the part of the Theorem 5.6 rewriting that restricts the query to
    the schema's alphabet.  The containment solver uses it instead of the full
    interleaving and enforces the "at least one label per node" requirement on
    witness patterns directly (see :mod:`repro.containment.solver`), which is
    equivalent but avoids blowing up the regular expressions.
    """

    def rewrite(expr: Regex) -> Regex:
        if isinstance(expr, (EmptyLanguage, Epsilon)):
            return expr
        if isinstance(expr, NodeTest):
            return expr if expr.label in schema.node_labels else EMPTY
        if isinstance(expr, EdgeStep):
            return expr if expr.signed.label in schema.edge_labels else EMPTY
        if isinstance(expr, Concat):
            return Concat(rewrite(expr.left), rewrite(expr.right))
        if isinstance(expr, Union):
            return Union(rewrite(expr.left), rewrite(expr.right))
        if isinstance(expr, Star):
            return Star(rewrite(expr.inner))
        raise TypeError(f"unknown regex node: {expr!r}")  # pragma: no cover

    return rewrite(regex)


def filter_query(query: C2RPQ, schema: Schema) -> C2RPQ:
    """Apply :func:`filter_foreign_labels` to every atom of a C2RPQ."""
    atoms = [
        Atom(filter_foreign_labels(atom.regex, schema), atom.source, atom.target)
        for atom in query.atoms
    ]
    return C2RPQ(atoms, query.free_variables, name=query.name)


def filter_uc2rpq(query: UC2RPQ, schema: Schema) -> UC2RPQ:
    """Apply :func:`filter_foreign_labels` to every disjunct of a UC2RPQ."""
    return UC2RPQ([filter_query(disjunct, schema) for disjunct in query], name=query.name)


def encode_query(query: C2RPQ, schema: Schema) -> C2RPQ:
    """Apply the Theorem 5.6 rewriting to every atom of a C2RPQ."""
    atoms = [
        Atom(interleave_regex(atom.regex, schema), atom.source, atom.target)
        for atom in query.atoms
    ]
    return C2RPQ(atoms, query.free_variables, name=f"{query.name}̂")


def encode_uc2rpq(query: UC2RPQ, schema: Schema) -> UC2RPQ:
    """Apply the rewriting to every disjunct of a UC2RPQ."""
    return UC2RPQ([encode_query(disjunct, schema) for disjunct in query], name=f"{query.name}̂")
