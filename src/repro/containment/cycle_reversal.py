"""Finmod cycles, cycle reversing and the completion T* (Section 5, App. D).

Finite graphs conforming to a schema can exhibit properties that infinite
graphs do not (Example 5.2: an "at least one outgoing / at most one incoming"
edge label forms disjoint cycles in every finite graph).  Cycle reversing
(Cosmadakis et al.; Ibáñez-García et al.) captures these properties: a
*finmod cycle* in a Horn-ALCIF TBox ``T`` is a sequence

    K₁, R₁, K₂, R₂, …, K_{n-1}, R_{n-1}, K_n = K₁

with ``T ⊨ Kᵢ ⊑ ∃Rᵢ.Kᵢ₊₁`` and ``T ⊨ Kᵢ₊₁ ⊑ ∃≤1Rᵢ⁻.Kᵢ``; *reversing* it adds
``Kᵢ₊₁ ⊑ ∃Rᵢ⁻.Kᵢ`` and ``Kᵢ ⊑ ∃≤1Rᵢ.Kᵢ₊₁``.  The completion ``T*`` reverses
finmod cycles exhaustively; by Theorem 5.4, finite satisfiability modulo ``T``
coincides with unrestricted satisfiability modulo ``T*``.

Implementation notes
--------------------
The paper's completion operates over *all* conjunctions of concept names,
which is purely a proof device — it is astronomically large even for toy
inputs.  This implementation restricts attention to the conjunctions that can
actually label nodes of canonical models: closures of the schema labels, of
schema labels extended with the heads of ∀-statements (the query concepts the
rolling-up propagates), of caller-provided seeds (the label sets appearing in
chased witness patterns), and of the child seeds generated from those — a
lazily grown, capped candidate family.  Entailment of the defining conditions
is checked exactly with the Corollary E.7 reductions.  Lemma D.6's S-driven
invariant is preserved: whenever a reversed cycle projects to unique schema
labels, the corresponding single-label statements are added as well, and the
S-driven simplification of Lemma D.5 keeps the number of at-most constraints
polynomial.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..chase.labelsets import TBoxIndex
from ..dl.concepts import AtMostOneCI, ConceptNames, ExistsCI
from ..dl.tbox import TBox
from ..graph.labels import SignedLabel, signed_closure
from ..schema.schema import Schema
from .entailment import entails_at_most, entails_exists

__all__ = ["CompletionResult", "CompletionConfig", "complete", "schema_has_finmod_cycle", "simplify_s_driven"]


@dataclass(frozen=True)
class CompletionConfig:
    """Resource bounds for the completion procedure."""

    max_candidates: int = 64
    max_rounds: int = 6
    max_seed_depth: int = 3


@dataclass
class CompletionResult:
    """The completion ``T*`` together with bookkeeping for benchmarks."""

    tbox: TBox
    reversed_cycles: int = 0
    added_statements: int = 0
    candidate_count: int = 0
    rounds: int = 0
    skipped: bool = False
    entailment_checks: int = 0


# --------------------------------------------------------------------------- #
# fast path: does the schema admit any finmod cycle at all?
# --------------------------------------------------------------------------- #
def schema_has_finmod_cycle(schema: Schema) -> bool:
    """``True`` when the single-label graph of the schema has a finmod cycle.

    The nodes are the schema labels; there is an ``R``-edge from ``A`` to
    ``B`` when ``δ(A,R,B)`` requires at least one successor and ``δ(B,R⁻,A)``
    allows at most one.  Because the ∃-statements of the TBoxes produced by
    the paper's reduction all come from the schema (the rolled-up query only
    contributes ∀-statements), the absence of a cycle here implies the absence
    of satisfiable finmod cycles in the combined TBox, so the completion is
    the TBox itself.
    """
    adjacency: Dict[str, Set[str]] = {label: set() for label in schema.node_labels}
    for source in schema.node_labels:
        for signed in signed_closure(sorted(schema.edge_labels)):
            for target in schema.node_labels:
                forward_mult = schema.multiplicity(source, signed, target)
                backward_mult = schema.multiplicity(target, signed.inverse(), source)
                if forward_mult.requires_at_least_one and backward_mult.requires_at_most_one:
                    adjacency[source].add(target)
    # detect a cycle (self-loops included) with a DFS colouring
    colour: Dict[str, int] = {}

    def dfs(node: str) -> bool:
        colour[node] = 1
        for successor in adjacency[node]:
            state = colour.get(successor, 0)
            if state == 1:
                return True
            if state == 0 and dfs(successor):
                return True
        colour[node] = 2
        return False

    return any(dfs(label) for label in schema.node_labels if colour.get(label, 0) == 0)


# --------------------------------------------------------------------------- #
# candidate conjunctions
# --------------------------------------------------------------------------- #
def _candidate_label_sets(
    index: TBoxIndex,
    schema: Schema,
    extra_seeds: Iterable[ConceptNames],
    config: CompletionConfig,
) -> List[ConceptNames]:
    candidates: List[ConceptNames] = []
    seen: Set[ConceptNames] = set()

    def push(labels: Iterable[str]) -> None:
        closed = index.close(frozenset(labels))
        if closed not in seen and len(candidates) < config.max_candidates:
            seen.add(closed)
            candidates.append(closed)

    forall_heads = [statement.head for statement in index.forall]
    for label in sorted(schema.node_labels):
        push({label})
        for head in forall_heads:
            push({label} | set(head))
    for seed in extra_seeds:
        push(seed)

    # grow by the child-seed operation (the label sets of canonical tree nodes)
    frontier = list(candidates)
    for _ in range(config.max_seed_depth):
        next_frontier: List[ConceptNames] = []
        for labels in frontier:
            for statement in index.required_successors(labels):
                child = index.child_seed(labels, statement.role, statement.head)
                if child not in seen and len(candidates) < config.max_candidates:
                    seen.add(child)
                    candidates.append(child)
                    next_frontier.append(child)
        if not next_frontier:
            break
        frontier = next_frontier
    return candidates


# --------------------------------------------------------------------------- #
# the completion
# --------------------------------------------------------------------------- #
def complete(
    tbox: TBox,
    schema: Schema,
    extra_seeds: Iterable[ConceptNames] = (),
    config: Optional[CompletionConfig] = None,
) -> CompletionResult:
    """Compute (an S-driven approximation of) the completion ``T*`` of *tbox*."""
    config = config or CompletionConfig()
    if not schema_has_finmod_cycle(schema):
        return CompletionResult(tbox.copy(name=f"{tbox.name}*"), skipped=True)

    work = tbox.copy(name=f"{tbox.name}*")
    result = CompletionResult(work)
    extra_seeds = list(extra_seeds)

    for round_index in range(config.max_rounds):
        result.rounds = round_index + 1
        index = TBoxIndex(work)
        candidates = _candidate_label_sets(index, schema, extra_seeds, config)
        result.candidate_count = len(candidates)
        roles = sorted(
            {statement.role for statement in index.exists}, key=str
        )
        # edge (K, R, K') of the finmod graph
        edges: Dict[Tuple[ConceptNames, SignedLabel], List[ConceptNames]] = {}
        edge_list: List[Tuple[ConceptNames, SignedLabel, ConceptNames]] = []
        for body in candidates:
            for role in roles:
                # cheap necessary condition: some syntactic ∃-statement applies
                if not any(statement.body <= body for statement in index.exists_by_role.get(role, ())):
                    continue
                for head in candidates:
                    result.entailment_checks += 2
                    if not entails_exists(work, body, role, head):
                        continue
                    if not entails_at_most(work, head, role.inverse(), body):
                        continue
                    edges.setdefault((body, role), []).append(head)
                    edge_list.append((body, role, head))

        added_this_round = 0
        for body, role, head in edge_list:
            reverse_exists = ExistsCI(head, role.inverse(), body)
            reverse_at_most = AtMostOneCI(body, role, head)
            if reverse_exists in work and reverse_at_most in work:
                continue
            if not _path_exists(edges, head, body):
                continue
            cycle = _find_cycle(edges, head, body)
            cycle = [(body, role, head)] + cycle
            result.reversed_cycles += 1
            for step_body, step_role, step_head in cycle:
                for statement in (
                    ExistsCI(step_head, step_role.inverse(), step_body),
                    AtMostOneCI(step_body, step_role, step_head),
                ):
                    if work.add(statement):
                        added_this_round += 1
                # Lemma D.6: project the cycle onto unique schema labels
                body_schema = step_body & schema.node_labels
                head_schema = step_head & schema.node_labels
                if len(body_schema) == 1 and len(head_schema) == 1:
                    for statement in (
                        ExistsCI(frozenset(head_schema), step_role.inverse(), frozenset(body_schema)),
                        AtMostOneCI(frozenset(body_schema), step_role, frozenset(head_schema)),
                    ):
                        if work.add(statement):
                            added_this_round += 1
        result.added_statements += added_this_round
        if not added_this_round:
            break
    simplify_s_driven(work, schema)
    result.tbox = work
    return result


def _path_exists(
    edges: Dict[Tuple[ConceptNames, SignedLabel], List[ConceptNames]],
    start: ConceptNames,
    goal: ConceptNames,
) -> bool:
    return _find_cycle(edges, start, goal) is not None if start != goal else True


def _find_cycle(
    edges: Dict[Tuple[ConceptNames, SignedLabel], List[ConceptNames]],
    start: ConceptNames,
    goal: ConceptNames,
) -> Optional[List[Tuple[ConceptNames, SignedLabel, ConceptNames]]]:
    """A path from *start* to *goal* in the finmod graph (empty when equal)."""
    if start == goal:
        return []
    parents: Dict[ConceptNames, Tuple[ConceptNames, SignedLabel]] = {}
    visited = {start}
    frontier = [start]
    while frontier:
        current = frontier.pop(0)
        for (body, role), heads in edges.items():
            if body != current:
                continue
            for head in heads:
                if head in visited:
                    continue
                visited.add(head)
                parents[head] = (current, role)
                if head == goal:
                    path: List[Tuple[ConceptNames, SignedLabel, ConceptNames]] = []
                    node = goal
                    while node != start:
                        previous, via = parents[node]
                        path.append((previous, via, node))
                        node = previous
                    path.reverse()
                    return path
                frontier.append(head)
    return None


# --------------------------------------------------------------------------- #
# S-driven simplification (Lemma 5.7 / D.5)
# --------------------------------------------------------------------------- #
def simplify_s_driven(tbox: TBox, schema: Schema) -> TBox:
    """Drop composite at-most constraints subsumed by single-label ones.

    Lemma D.5: in an S-driven TBox every relevant composite at-most constraint
    ``K ⊑ ∃≤1R.K'`` is implied by some ``A ⊑ ∃≤1R.A'`` with ``A ∈ K``,
    ``A' ∈ K'``; removing the composite one keeps the TBox equivalent and
    bounds the number of at-most constraints by ``|Σ±|·|Γ|²``.
    """
    singles = {
        (next(iter(statement.body)), statement.role, next(iter(statement.head)))
        for statement in tbox.at_most_statements()
        if len(statement.body) == 1 and len(statement.head) == 1
    }
    removable = []
    for statement in tbox.at_most_statements():
        if len(statement.body) == 1 and len(statement.head) == 1:
            continue
        body_labels = statement.body & schema.node_labels
        head_labels = statement.head & schema.node_labels
        if any(
            (body_label, statement.role, head_label) in singles
            for body_label in body_labels
            for head_label in head_labels
        ):
            removable.append(statement)
    if removable:
        keep = [s for s in tbox.statements() if s not in set(removable)]
        tbox._statements = list(keep)  # noqa: SLF001 - internal, documented simplification
        tbox._seen = set(keep)
    return tbox
