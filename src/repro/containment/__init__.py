"""Containment of UC2RPQs in acyclic UC2RPQs modulo schema (Section 5)."""

from .booleanize import Booleanization, booleanize
from .schema_encoding import (
    encode_query,
    encode_uc2rpq,
    filter_foreign_labels,
    filter_query,
    filter_uc2rpq,
    interleave_regex,
)
from .rolling_up import RollingUp, roll_up
from .entailment import (
    entails_at_most,
    entails_exists,
    label_set_satisfiable,
    triple_satisfiable,
)
from .cycle_reversal import (
    CompletionConfig,
    CompletionResult,
    complete,
    schema_has_finmod_cycle,
    simplify_s_driven,
)
from .counterexample import Counterexample, enumerate_conforming_graphs, find_counterexample
from .solver import ContainmentConfig, ContainmentResult, ContainmentSolver, contains

__all__ = [
    "Booleanization",
    "booleanize",
    "encode_query",
    "encode_uc2rpq",
    "filter_foreign_labels",
    "filter_query",
    "filter_uc2rpq",
    "interleave_regex",
    "RollingUp",
    "roll_up",
    "entails_at_most",
    "entails_exists",
    "label_set_satisfiable",
    "triple_satisfiable",
    "CompletionConfig",
    "CompletionResult",
    "complete",
    "schema_has_finmod_cycle",
    "simplify_s_driven",
    "Counterexample",
    "enumerate_conforming_graphs",
    "find_counterexample",
    "ContainmentConfig",
    "ContainmentResult",
    "ContainmentSolver",
    "contains",
]
