"""Containment of UC2RPQs in acyclic UC2RPQs modulo schema (Section 5).

Re-exports, one per pipeline stage (see docs/ARCHITECTURE.md):

* :func:`contains` — the stateless entry point ``P ⊆_S Q`` (routed through
  the shared :mod:`repro.engine` caches);
* :class:`ContainmentSolver` / :class:`ContainmentConfig` /
  :class:`ContainmentResult` — the cache-free decision procedure, its
  resource bounds and its outcome record;
* :func:`booleanize` / :class:`Booleanization` — stage 1, the Lemma D.1
  reduction of free variables to marker labels;
* :func:`encode_query` / :func:`encode_uc2rpq` / :func:`interleave_regex` —
  stage 2, the Theorem 5.6 interleaving rewrite;
* :func:`filter_query` / :func:`filter_uc2rpq` / :func:`filter_foreign_labels`
  — the alphabet-restriction half of stage 2 used by the solver;
* :func:`roll_up` / :class:`RollingUp` — stage 3, the Lemma C.2 translation
  of the acyclic right query into the Horn TBox ``T_¬Q``;
* :func:`complete` / :class:`CompletionConfig` / :class:`CompletionResult` /
  :func:`schema_has_finmod_cycle` / :func:`simplify_s_driven` — stage 4,
  cycle reversal and the S-driven simplification (Theorem 5.4, Lemma D.5);
* :func:`entails_exists` / :func:`entails_at_most` /
  :func:`label_set_satisfiable` / :func:`triple_satisfiable` — the
  Corollary E.7 entailment reductions the completion builds on;
* :func:`find_counterexample` / :class:`Counterexample` /
  :func:`enumerate_conforming_graphs` — finite counterexample search for
  non-containment diagnostics.
"""

from .booleanize import Booleanization, booleanize
from .schema_encoding import (
    encode_query,
    encode_uc2rpq,
    filter_foreign_labels,
    filter_query,
    filter_uc2rpq,
    interleave_regex,
)
from .rolling_up import RollingUp, roll_up
from .entailment import (
    entails_at_most,
    entails_exists,
    label_set_satisfiable,
    triple_satisfiable,
)
from .cycle_reversal import (
    CompletionConfig,
    CompletionResult,
    complete,
    schema_has_finmod_cycle,
    simplify_s_driven,
)
from .counterexample import Counterexample, enumerate_conforming_graphs, find_counterexample
from .solver import ContainmentConfig, ContainmentResult, ContainmentSolver, contains

__all__ = [
    "Booleanization",
    "booleanize",
    "encode_query",
    "encode_uc2rpq",
    "filter_foreign_labels",
    "filter_query",
    "filter_uc2rpq",
    "interleave_regex",
    "RollingUp",
    "roll_up",
    "entails_at_most",
    "entails_exists",
    "label_set_satisfiable",
    "triple_satisfiable",
    "CompletionConfig",
    "CompletionResult",
    "complete",
    "schema_has_finmod_cycle",
    "simplify_s_driven",
    "Counterexample",
    "enumerate_conforming_graphs",
    "find_counterexample",
    "ContainmentConfig",
    "ContainmentResult",
    "ContainmentSolver",
    "contains",
]
