"""Unrestricted entailment of concept inclusions modulo Horn-ALCIF TBoxes.

Corollary E.7 of the paper reduces entailment of the two kinds of concept
inclusions needed by the cycle-reversing procedure to (un)satisfiability of
tiny C2RPQs modulo a slightly extended TBox.  Because those queries are
star-free, their witness patterns are unique and the chase decides the
resulting satisfiability questions exactly; entailment checking is therefore
exact in this implementation.
"""

from __future__ import annotations

from typing import Iterable

from ..dl.concepts import ForAllCI, SubclassOfBottom, conj
from ..dl.tbox import TBox
from ..graph.graph import Graph
from ..graph.labels import SignedLabel
from ..chase.engine import ChaseEngine

__all__ = ["entails_exists", "entails_at_most", "label_set_satisfiable", "triple_satisfiable"]

_FRESH_B = "__entail_B"
_FRESH_B_PRIME = "__entail_B2"


def label_set_satisfiable(tbox: TBox, labels: Iterable[str]) -> bool:
    """``True`` when some (possibly infinite) model of *tbox* has a node whose
    label set includes *labels*."""
    engine = ChaseEngine(tbox)
    return engine.label_set_is_satisfiable(frozenset(labels))


def triple_satisfiable(
    tbox: TBox, body: Iterable[str], role: SignedLabel, head: Iterable[str]
) -> bool:
    """Satisfiability of the triple ``(K, R, K')`` (Section 5): some model has
    an ``R``-edge from a ``K``-node to a ``K'``-node."""
    pattern = Graph()
    pattern.add_node("u", body)
    pattern.add_node("v", head)
    if role.is_inverse:
        pattern.add_edge("v", role.label, "u")
    else:
        pattern.add_edge("u", role.label, "v")
    engine = ChaseEngine(tbox)
    return engine.check_pattern(pattern).consistent


def entails_exists(
    tbox: TBox, body: Iterable[str], role: SignedLabel, head: Iterable[str]
) -> bool:
    """``T ⊨ K ⊑ ∃R.K'`` via the Corollary E.7 reduction.

    The entailment holds iff a single node satisfying ``K`` and additionally
    marked with a fresh name ``B`` is unsatisfiable modulo
    ``T ∪ {K' ⊑ ∀R⁻.B', B ⊓ B' ⊑ ⊥}``.
    """
    body = frozenset(body)
    head = frozenset(head)
    extended = tbox.copy(name=f"{tbox.name}+entail∃")
    extended.add(ForAllCI(head, role.inverse(), conj(_FRESH_B_PRIME)))
    extended.add(SubclassOfBottom(conj(_FRESH_B, _FRESH_B_PRIME)))
    pattern = Graph()
    pattern.add_node("u", body | {_FRESH_B})
    engine = ChaseEngine(extended)
    return not engine.check_pattern(pattern).consistent


def entails_at_most(
    tbox: TBox, body: Iterable[str], role: SignedLabel, head: Iterable[str]
) -> bool:
    """``T ⊨ K ⊑ ∃≤1R.K'`` via the Corollary E.7 reduction.

    The entailment holds iff the pattern consisting of a ``K``-node with two
    distinct ``R``-successors, both satisfying ``K'`` and marked with fresh
    names ``B`` and ``B'`` respectively, is unsatisfiable modulo
    ``T ∪ {B ⊓ B' ⊑ ⊥}`` (the disjointness of the markers prevents the chase
    from merging the two successors).
    """
    body = frozenset(body)
    head = frozenset(head)
    extended = tbox.copy(name=f"{tbox.name}+entail≤1")
    extended.add(SubclassOfBottom(conj(_FRESH_B, _FRESH_B_PRIME)))
    pattern = Graph()
    pattern.add_node("u", body)
    pattern.add_node("v1", head | {_FRESH_B})
    pattern.add_node("v2", head | {_FRESH_B_PRIME})
    if role.is_inverse:
        pattern.add_edge("v1", role.label, "u")
        pattern.add_edge("v2", role.label, "u")
    else:
        pattern.add_edge("u", role.label, "v1")
        pattern.add_edge("u", role.label, "v2")
    engine = ChaseEngine(extended)
    return not engine.check_pattern(pattern).consistent
