"""Reduction from containment of queries with free variables to containment
of Boolean queries (Lemma D.1).

Given a schema ``S`` and UC2RPQs ``P(x̄)`` and ``Q(x̄)`` over the free
variables ``x̄ = (x₁,…,x_n)``, the construction introduces fresh *marker*
node labels ``X₁,…,X_n`` and fresh edge labels ``r₁,…,r_n``:

* the schema ``S°`` extends ``S`` so that an ``Xᵢ``-node may have at most one
  outgoing ``rᵢ``-edge to a node with a label of ``Γ_S`` and nothing else;
* both queries are extended with the atoms ``∃y.(Xᵢ·rᵢ)(y, xᵢ)`` and then all
  variables are existentially quantified.

Because the original regular expressions cannot traverse the fresh labels,
``P(x̄) ⊆_S Q(x̄)`` holds iff ``P° ⊆_{S°} Q°`` holds for the Boolean queries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..exceptions import QueryError
from ..rpq.queries import Atom, C2RPQ, UC2RPQ
from ..rpq.regex import concat, edge, node
from ..schema.schema import Multiplicity, Schema

__all__ = ["Booleanization", "booleanize"]

MARKER_NODE_PREFIX = "FreeVarMarker_"
MARKER_EDGE_PREFIX = "answers_"


@dataclass
class Booleanization:
    """The outcome of the Lemma D.1 reduction."""

    schema: Schema
    left: UC2RPQ
    right: UC2RPQ
    marker_node_labels: Tuple[str, ...]
    marker_edge_labels: Tuple[str, ...]
    free_variables: Tuple[str, ...]


def _marker_labels(free_variables: Sequence[str]) -> Tuple[Tuple[str, ...], Tuple[str, ...]]:
    nodes = tuple(f"{MARKER_NODE_PREFIX}{variable}" for variable in free_variables)
    edges = tuple(f"{MARKER_EDGE_PREFIX}{variable}" for variable in free_variables)
    return nodes, edges


def _extended_schema(schema: Schema, free_variables: Sequence[str]) -> Schema:
    marker_nodes, marker_edges = _marker_labels(free_variables)
    clash = (set(marker_nodes) & schema.node_labels) | (set(marker_edges) & schema.edge_labels)
    if clash:
        raise QueryError(f"marker labels clash with schema labels: {sorted(clash)}")
    extended = Schema(
        schema.node_labels | set(marker_nodes),
        schema.edge_labels | set(marker_edges),
        name=f"{schema.name}°",
    )
    for source, signed, target, multiplicity in schema.declared_constraints():
        extended.set(source, signed, target, multiplicity)
    for marker_node, marker_edge in zip(marker_nodes, marker_edges):
        for label in sorted(schema.node_labels):
            extended.set(marker_node, marker_edge, label, Multiplicity.OPTIONAL)
            extended.set(label, f"{marker_edge}-", marker_node, Multiplicity.OPTIONAL)
    return extended


def _add_marker_atoms(query: C2RPQ, free_variables: Sequence[str]) -> C2RPQ:
    marker_nodes, marker_edges = _marker_labels(free_variables)
    atoms: List[Atom] = list(query.atoms)
    for index, variable in enumerate(free_variables):
        witness = f"__marker_{variable}"
        atoms.append(Atom(concat(node(marker_nodes[index]), edge(marker_edges[index])), witness, variable))
    return C2RPQ(atoms, [], name=f"{query.name}°")


def booleanize(schema: Schema, left: UC2RPQ, right: UC2RPQ) -> Booleanization:
    """Apply the Lemma D.1 reduction to a containment instance.

    Both queries must have the same free variables (the paper assumes a shared
    answer tuple ``x̄``); queries supplied as single C2RPQs may be wrapped with
    :meth:`UC2RPQ.from_query` first.
    """
    if not left.is_empty() and not right.is_empty() and left.arity() != right.arity():
        raise QueryError(
            f"containment requires equal arities, got {left.arity()} and {right.arity()}"
        )
    if left.is_empty():
        free_variables: Tuple[str, ...] = tuple(
            right.disjuncts[0].free_variables if right.disjuncts else ()
        )
    else:
        free_variables = tuple(left.disjuncts[0].free_variables)

    # align the right-hand side's free-variable names with the left's
    def align(query: C2RPQ) -> C2RPQ:
        if tuple(query.free_variables) == free_variables:
            return query
        mapping: Dict[str, str] = dict(zip(query.free_variables, free_variables))
        # avoid accidental capture of existential variables
        safe = query.with_fresh_variables("_rhs") if set(mapping.values()) & query.existential_variables() else query
        mapping = dict(zip(safe.free_variables, free_variables))
        return safe.rename(mapping)

    aligned_right = right.map(align) if free_variables else right

    extended_schema = _extended_schema(schema, free_variables)
    boolean_left = left.map(lambda q: _add_marker_atoms(q, free_variables))
    boolean_right = aligned_right.map(lambda q: _add_marker_atoms(q, free_variables))
    marker_nodes, marker_edges = _marker_labels(free_variables)
    return Booleanization(
        schema=extended_schema,
        left=UC2RPQ(boolean_left.disjuncts, name=f"{left.name}°"),
        right=UC2RPQ(boolean_right.disjuncts, name=f"{right.name}°"),
        marker_node_labels=marker_nodes,
        marker_edge_labels=marker_edges,
        free_variables=free_variables,
    )
