"""Rolling up acyclic Boolean UC2RPQs into Horn-ALCIF TBoxes (Lemma C.2).

For an acyclic Boolean UC2RPQ ``Q`` the construction produces a Horn TBox
``T_¬Q`` over an extended set of concept names such that a graph ``G`` (not
using the fresh names) satisfies ``T_¬Q`` — i.e. admits a valuation of the
fresh names making all statements true — iff ``G ⊭ Q``.

Construction (per connected component of each disjunct):

* the component is a tree; a leaf variable is chosen as the *root*;
* every atom is oriented away from the root towards the leaves?  No — towards
  the root: an atom connecting a variable ``y`` to its tree parent ``x`` is
  read as a regular expression from ``y`` to ``x`` (reversing it if needed);
* each atom ``α`` gets the states of a linear-size NFA ``A_α`` as fresh
  concept names plus one acceptance marker ``acc_α``;
* the TBox simulates the automata (rules ``q ⊑ ∀R.q'`` and ``q ⊓ A ⊑ q'``),
  starts them at nodes where the whole subtree below already matched
  (``⊓ acc_β ⊓ (trivial labels) ⊑ q₀``) and forbids acceptance at the root
  (``acc_root ⊓ (trivial labels at the root) ⊑ ⊥``).

In the minimal valuation the fresh concepts mark exactly the partial matches
of the query, so the ⊥-rule fires iff the query has a match — which is the
statement of Lemma C.2.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Set, Tuple

from ..core import compile_regex
from ..dl.concepts import ForAllCI, SubclassOf, SubclassOfBottom, conj
from ..dl.tbox import TBox
from ..exceptions import AcyclicityError, QueryError
from ..rpq.queries import Atom, C2RPQ, UC2RPQ, Variable
from ..rpq.regex import EdgeStep, NodeTest

__all__ = ["RollingUp", "roll_up", "roll_up_choices"]


class RollingUp:
    """The result of rolling up a query: the TBox and the fresh concept names."""

    def __init__(self, tbox: TBox, fresh_concepts: Set[str]) -> None:
        self.tbox = tbox
        self.fresh_concepts = frozenset(fresh_concepts)


class _NameSource:
    """Generates globally unique fresh concept names for states and markers."""

    def __init__(self, prefix: str) -> None:
        self.prefix = prefix
        self.counter = itertools.count()

    def state(self, atom_index: int, state: int) -> str:
        return f"{self.prefix}#st{atom_index}_{state}"

    def accept(self, atom_index: int) -> str:
        return f"{self.prefix}#acc{atom_index}"


def roll_up(query: UC2RPQ, prefix: str = "Q") -> RollingUp:
    """Compute ``T_¬Q`` for an acyclic Boolean UC2RPQ whose disjuncts are
    connected (Lemma C.2).

    For a *disconnected* disjunct ``C₁ ∧ C₂``, the negation ``¬C₁ ∨ ¬C₂`` is a
    disjunction and cannot be captured by a single Horn TBox; use
    :func:`roll_up_choices`, which enumerates one TBox per choice of the
    component to refute (the containment solver does).  This function keeps
    the simple behaviour for the common connected case and takes the union of
    the component TBoxes otherwise (which refutes *every* component and is
    therefore only an under-approximation of ¬Q).
    """
    if not query.is_boolean():
        raise QueryError("rolling up requires a Boolean query; apply booleanization first")
    tbox = TBox(name=f"T_¬{query.name}")
    fresh: Set[str] = set()
    for disjunct_index, disjunct in enumerate(query.disjuncts):
        if not disjunct.is_acyclic():
            raise AcyclicityError(
                f"disjunct {disjunct.name} is not acyclic; rolling up is inapplicable"
            )
        for component_index, component in enumerate(disjunct.connected_components()):
            names = _NameSource(f"{prefix}{disjunct_index}c{component_index}")
            statements, component_fresh = _roll_up_component(component, names)
            tbox.extend(statements)
            fresh |= component_fresh
    return RollingUp(tbox, fresh)


def roll_up_choices(query: UC2RPQ, prefix: str = "Q", max_choices: int = 256) -> List[RollingUp]:
    """All Horn TBoxes ``T_¬Q^σ`` obtained by choosing, for every disjunct,
    one connected component to refute.

    A graph satisfies ``¬Q`` iff it satisfies at least one of the returned
    TBoxes, so the containment solver declares ``P ⊆_S Q`` exactly when the
    left query is unsatisfiable modulo *every* choice.  Disjuncts are almost
    always connected, in which case there is exactly one choice and the
    result coincides with :func:`roll_up`.
    """
    if not query.is_boolean():
        raise QueryError("rolling up requires a Boolean query; apply booleanization first")
    per_disjunct: List[List[Tuple[List, Set[str]]]] = []
    for disjunct_index, disjunct in enumerate(query.disjuncts):
        if not disjunct.is_acyclic():
            raise AcyclicityError(
                f"disjunct {disjunct.name} is not acyclic; rolling up is inapplicable"
            )
        component_boxes = []
        for component_index, component in enumerate(disjunct.connected_components()):
            names = _NameSource(f"{prefix}{disjunct_index}c{component_index}")
            component_boxes.append(_roll_up_component(component, names))
        if not component_boxes:
            # a disjunct with no atoms and no variables matches every graph;
            # it can never be refuted, so no choice exists at all
            component_boxes.append(None)  # type: ignore[arg-type]
        per_disjunct.append(component_boxes)

    if any(choices == [None] for choices in per_disjunct):
        return []

    results: List[RollingUp] = []
    for combination in itertools.product(*per_disjunct):
        if len(results) >= max_choices:
            break
        tbox = TBox(name=f"T_¬{query.name}")
        fresh: Set[str] = set()
        for statements, component_fresh in combination:
            tbox.extend(statements)
            fresh |= component_fresh
        results.append(RollingUp(tbox, fresh))
    return results


# --------------------------------------------------------------------------- #
def _roll_up_component(component: C2RPQ, names: _NameSource) -> Tuple[List, Set[str]]:
    """Roll up one connected acyclic Boolean C2RPQ component."""
    trivial: Dict[Variable, Set[str]] = {}
    unsatisfiable = False
    tree_atoms: List[Atom] = []
    for atom in component.atoms:
        if atom.is_trivial():
            if isinstance(atom.regex, NodeTest):
                trivial.setdefault(atom.source, set()).add(atom.regex.label)
            elif atom.regex.is_empty_language():
                unsatisfiable = True
            # ε(x,x) imposes nothing
            continue
        tree_atoms.append(atom)

    if unsatisfiable:
        # the component can never match, so ¬component holds unconditionally
        return [], set()

    variables = sorted(component.variables()) or ["__root"]
    if not tree_atoms:
        # only trivial atoms: the component matches iff some node carries all
        # the required labels of some variable carrying labels; forbid that.
        statements = []
        for variable in variables:
            labels = trivial.get(variable, set())
            statements.append(SubclassOfBottom(conj(labels)))
        return statements, set()

    # choose a leaf variable of the multigraph as the root
    incidence: Dict[Variable, List[Atom]] = {v: [] for v in variables}
    for atom in tree_atoms:
        incidence[atom.source].append(atom)
        if atom.target != atom.source:
            incidence[atom.target].append(atom)
    root = min(
        (v for v in variables if incidence[v]),
        key=lambda v: (len(incidence[v]), v),
    )

    # orient the tree away from the root via BFS; children[x] lists (atom, child)
    children: Dict[Variable, List[Tuple[Atom, Variable]]] = {v: [] for v in variables}
    parent: Dict[Variable, Optional[Variable]] = {root: None}
    order: List[Variable] = [root]
    queue = [root]
    while queue:
        current = queue.pop(0)
        for atom in incidence[current]:
            other = atom.target if atom.source == current else atom.source
            if other in parent:
                continue
            parent[other] = current
            children[current].append((atom, other))
            order.append(other)
            queue.append(other)

    statements: List = []
    fresh: Set[str] = set()
    accept_marker: Dict[int, str] = {}

    # process atoms bottom-up: for the atom connecting child y to parent x we
    # need the acceptance markers of y's own child atoms first
    atom_index_of: Dict[Tuple[Variable, Variable], int] = {}
    indexed_atoms: List[Tuple[int, Atom, Variable, Variable]] = []
    counter = itertools.count()
    for x in order:
        for atom, y in children[x]:
            index = next(counter)
            atom_index_of[(x, y)] = index
            indexed_atoms.append((index, atom, x, y))

    def start_body(variable: Variable) -> frozenset:
        markers = {accept_marker[atom_index_of[(variable, child)]] for _, child in children[variable]}
        return conj(markers, trivial.get(variable, set()))

    # bottom-up order: reverse BFS order guarantees children are processed first
    for x in reversed(order):
        for atom, y in children[x]:
            index = atom_index_of[(x, y)]
            # regex read from the child y towards the parent x
            if atom.source == y and atom.target == x:
                regex = atom.regex
            else:
                regex = atom.regex.reverse()
            # the memoized compilation returns build_nfa(regex) verbatim, so
            # the state numbering — and with it the fresh concept names the
            # simulation mints below — is exactly the pre-core one.  The
            # default intern context is deliberate: this Lemma C.2 code path
            # only reads the NFA and the emptiness flag (never a DFA), and
            # threading schema identity in here would buy nothing — at worst
            # a regex also compiled under a schema context occupies two memo
            # entries
            automaton = compile_regex(regex)
            nfa = automaton.nfa
            accept = names.accept(index)
            accept_marker[index] = accept
            fresh.add(accept)
            state_name = {state: names.state(index, state) for state in nfa.states}
            fresh |= set(state_name.values())
            body = start_body(y)
            for initial in nfa.initial:
                statements.append(SubclassOf(body, state_name[initial]))
            for source, symbol, target in nfa.transitions():
                if isinstance(symbol, EdgeStep):
                    statements.append(
                        ForAllCI(conj(state_name[source]), symbol.signed, conj(state_name[target]))
                    )
                elif isinstance(symbol, NodeTest):
                    statements.append(
                        SubclassOf(conj(state_name[source], symbol.label), state_name[target])
                    )
            for final in nfa.final:
                statements.append(SubclassOf(conj(state_name[final]), accept))
            if automaton.is_empty():
                # the atom can never be witnessed: the component never matches
                return [], fresh

    root_markers = {accept_marker[atom_index_of[(root, child)]] for _, child in children[root]}
    statements.append(SubclassOfBottom(conj(root_markers, trivial.get(root, set()))))
    return statements, fresh
