"""Entailment of L0 statements by a transformation and a source schema
(Lemma B.7): the building block of type checking and schema elicitation.

For a transformation ``T`` (assumed trimmed and label-covering) and a source
schema ``S``, the entailments reduce to containment tests over the grouped
queries ``Q_A`` and ``Q_{A,R,B}``:

* ``(T,S) ⊨ A ⊑ ∃R.B``    iff ``Q_A(x̄) ⊆_S ∃ȳ.Q_{A,R,B}(x̄,ȳ)``;
* ``(T,S) ⊨ A ⊑ ¬∃R.B``   iff ``Q_A(x̄) ∧ Q_{A,R,B}(x̄,ȳ)`` is unsatisfiable
  modulo ``S``;
* ``(T,S) ⊨ A ⊑ ∃≤1R.B``  iff every answer of
  ``∃x̄.(Q_A(x̄) ∧ Q_{A,R,B}(x̄,ȳ) ∧ Q_{A,R,B}(x̄,z̄))`` satisfies ``ȳ = z̄``
  (a containment in a conjunction of ε-atoms).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..containment.solver import ContainmentResult, ContainmentSolver
from ..dl.concepts import AtMostOneCI, ConceptInclusion, ExistsCI, NoExistsCI, conj
from ..graph.labels import SignedLabel
from ..rpq.queries import UC2RPQ
from ..schema.schema import Schema
from ..transform.grouping import (
    conjoin_unions,
    edge_query,
    equality_query,
    node_query,
)
from ..transform.transformation import Transformation

__all__ = ["StatementEntailment", "StatementChecker"]


@dataclass
class StatementEntailment:
    """The outcome of one Lemma B.7 entailment test."""

    statement: ConceptInclusion
    entailed: bool
    containment: Optional[ContainmentResult] = None

    def __bool__(self) -> bool:
        return self.entailed

    def __str__(self) -> str:
        status = "entailed" if self.entailed else "not entailed"
        return f"{self.statement}: {status}"


class StatementChecker:
    """Caches the grouped queries of a transformation and answers the
    Lemma B.7 entailment questions."""

    def __init__(
        self,
        transformation: Transformation,
        schema: Schema,
        solver: Optional[ContainmentSolver] = None,
    ) -> None:
        self.transformation = transformation
        self.schema = schema
        self.solver = solver or ContainmentSolver(schema)
        self._node_queries: Dict[str, UC2RPQ] = {}
        self._edge_queries: Dict[Tuple[str, SignedLabel, str], UC2RPQ] = {}
        self.containment_calls = 0

    # ------------------------------------------------------------------ #
    def node_query(self, label: str) -> UC2RPQ:
        """``Q_A`` with caching."""
        if label not in self._node_queries:
            self._node_queries[label] = node_query(self.transformation, label)
        return self._node_queries[label]

    def edge_query(self, source: str, role: SignedLabel, target: str) -> UC2RPQ:
        """``Q_{A,R,B}`` with caching."""
        key = (source, role, target)
        if key not in self._edge_queries:
            self._edge_queries[key] = edge_query(self.transformation, source, role, target)
        return self._edge_queries[key]

    def _contains(self, left: UC2RPQ, right: UC2RPQ) -> ContainmentResult:
        self.containment_calls += 1
        return self.solver.contains(left, right)

    # ------------------------------------------------------------------ #
    def entails_exists(self, source: str, role: SignedLabel, target: str) -> StatementEntailment:
        """``(T,S) ⊨ A ⊑ ∃R.B``."""
        statement = ExistsCI(conj(source), role, conj(target))
        q_node = self.node_query(source)
        q_edge = self.edge_query(source, role, target)
        if q_node.is_empty():
            # no A-node is ever produced: the statement holds vacuously
            return StatementEntailment(statement, True)
        if q_edge.is_empty():
            # A-nodes may be produced but never with an outgoing R-edge to B
            return StatementEntailment(statement, False)
        projected = q_edge.map(
            lambda disjunct: disjunct.project(
                [v for v in disjunct.free_variables if v.startswith("x")]
            )
        )
        containment = self._contains(q_node, projected)
        return StatementEntailment(statement, bool(containment), containment)

    def entails_no_exists(self, source: str, role: SignedLabel, target: str) -> StatementEntailment:
        """``(T,S) ⊨ A ⊑ ¬∃R.B``."""
        statement = NoExistsCI(conj(source), role, conj(target))
        q_node = self.node_query(source)
        q_edge = self.edge_query(source, role, target)
        if q_node.is_empty() or q_edge.is_empty():
            return StatementEntailment(statement, True)
        conjunction = conjoin_unions(q_node, q_edge).boolean()
        satisfiability = self.solver.satisfiable(conjunction)
        self.containment_calls += 1
        return StatementEntailment(statement, bool(satisfiability.contained), satisfiability)

    def entails_at_most(self, source: str, role: SignedLabel, target: str) -> StatementEntailment:
        """``(T,S) ⊨ A ⊑ ∃≤1R.B``."""
        statement = AtMostOneCI(conj(source), role, conj(target))
        q_node = self.node_query(source)
        q_edge = self.edge_query(source, role, target)
        if q_node.is_empty() or q_edge.is_empty():
            return StatementEntailment(statement, True)
        arity = q_edge.disjuncts[0].arity() - q_node.arity() if q_node.arity() else None
        y_vars = [v for v in q_edge.disjuncts[0].free_variables if v.startswith("y")]
        z_vars = [f"z{index + 1}" for index in range(len(y_vars))]
        second_copy = q_edge.map(
            lambda disjunct: disjunct.rename(
                {
                    **{v: f"z{v[1:]}" for v in disjunct.free_variables if v.startswith("y")},
                    **{
                        v: f"_second_{v}"
                        for v in disjunct.existential_variables()
                    },
                }
            )
        )
        left = conjoin_unions(conjoin_unions(q_node, q_edge), second_copy)
        left = left.map(lambda disjunct: disjunct.project(y_vars + z_vars))
        right = equality_query(y_vars, z_vars)
        containment = self._contains(left, right)
        return StatementEntailment(statement, bool(containment), containment)

    # ------------------------------------------------------------------ #
    def entails(self, statement: ConceptInclusion) -> StatementEntailment:
        """Dispatch on an L0 statement (single labels on both sides)."""
        (source,) = statement.body  # type: ignore[attr-defined]
        (target,) = statement.head  # type: ignore[attr-defined]
        role: SignedLabel = statement.role  # type: ignore[attr-defined]
        if isinstance(statement, ExistsCI):
            return self.entails_exists(source, role, target)
        if isinstance(statement, NoExistsCI):
            return self.entails_no_exists(source, role, target)
        if isinstance(statement, AtMostOneCI):
            return self.entails_at_most(source, role, target)
        raise TypeError(f"not an L0 statement: {statement}")
