"""Equivalence of graph transformations modulo a source schema (Lemma B.8).

Two transformations are equivalent modulo ``S`` when they produce the same
output on every graph conforming to ``S``.  After trimming, this holds iff

1. they use the same output node and edge labels;
2. for every node label ``A``: ``Q^{T₁}_A ≡_S Q^{T₂}_A``;
3. for every ``A, B ∈ Γ`` and ``r ∈ Σ``: ``Q^{T₁}_{A,r,B} ≡_S Q^{T₂}_{A,r,B}``.

Equivalence of unions of (acyclic) queries is decided as two containments.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..containment.solver import ContainmentConfig, ContainmentResult, ContainmentSolver
from ..engine import ContainmentEngine, default_engine
from ..graph.labels import forward
from ..rpq.queries import UC2RPQ
from ..schema.schema import Schema
from ..transform.grouping import edge_query, node_query, trim
from ..transform.transformation import Transformation

__all__ = ["EquivalenceDifference", "EquivalenceResult", "check_equivalence"]


@dataclass
class EquivalenceDifference:
    """One reason why the transformations differ."""

    kind: str
    description: str
    left_result: Optional[ContainmentResult] = None
    right_result: Optional[ContainmentResult] = None

    def __str__(self) -> str:
        return f"[{self.kind}] {self.description}"


@dataclass
class EquivalenceResult:
    """Outcome of the equivalence analysis."""

    equivalent: bool
    left_name: str
    right_name: str
    differences: List[EquivalenceDifference] = field(default_factory=list)
    containment_calls: int = 0
    elapsed_seconds: float = 0.0

    def __bool__(self) -> bool:
        return self.equivalent

    def summary(self) -> str:
        if self.equivalent:
            return f"{self.left_name} and {self.right_name} are equivalent"
        lines = [f"{self.left_name} and {self.right_name} differ:"]
        lines.extend(f"  {difference}" for difference in self.differences)
        return "\n".join(lines)


def _queries_equivalent(
    solver: ContainmentSolver, left: UC2RPQ, right: UC2RPQ
) -> Tuple[bool, Optional[ContainmentResult], Optional[ContainmentResult], int]:
    if left.is_empty() and right.is_empty():
        return True, None, None, 0
    if left.is_empty() or right.is_empty():
        # one side never produces the object, the other might (trimmed rules do)
        return False, None, None, 0
    forward_result = solver.contains(left, right)
    if not forward_result:
        return False, forward_result, None, 1
    backward_result = solver.contains(right, left)
    return bool(backward_result), forward_result, backward_result, 2


def check_equivalence(
    left: Transformation,
    right: Transformation,
    schema: Schema,
    config: Optional[ContainmentConfig] = None,
    pre_trimmed: bool = False,
    engine: Optional[ContainmentEngine] = None,
) -> EquivalenceResult:
    """Decide whether two transformations agree on every graph in ``L(S)``.

    All containment tests run through *engine* (the process-wide default
    when not given), sharing the per-schema caches across the per-label and
    per-edge query comparisons.
    """
    started = time.perf_counter()
    solver = (engine or default_engine()).solver(schema, config)
    left_trimmed = left if pre_trimmed else trim(left, schema, solver)
    right_trimmed = right if pre_trimmed else trim(right, schema, solver)

    result = EquivalenceResult(True, left.name, right.name)
    if not pre_trimmed:
        result.containment_calls += len(left.rules()) + len(right.rules())

    # (1) identical output signatures
    if left_trimmed.node_labels() != right_trimmed.node_labels():
        symmetric = left_trimmed.node_labels() ^ right_trimmed.node_labels()
        result.differences.append(
            EquivalenceDifference("signature", f"node labels differ on {sorted(symmetric)}")
        )
    if left_trimmed.edge_labels() != right_trimmed.edge_labels():
        symmetric = left_trimmed.edge_labels() ^ right_trimmed.edge_labels()
        result.differences.append(
            EquivalenceDifference("signature", f"edge labels differ on {sorted(symmetric)}")
        )
    if result.differences:
        result.equivalent = False
        result.elapsed_seconds = time.perf_counter() - started
        return result

    node_labels = sorted(left_trimmed.node_labels())
    edge_labels = sorted(left_trimmed.edge_labels())

    # (2) node queries agree
    for label in node_labels:
        left_query = node_query(left_trimmed, label)
        right_query = node_query(right_trimmed, label)
        equivalent, forward_result, backward_result, calls = _queries_equivalent(
            solver, left_query, right_query
        )
        result.containment_calls += calls
        if not equivalent:
            result.equivalent = False
            result.differences.append(
                EquivalenceDifference(
                    "node-rule",
                    f"the {label}-nodes produced by the two transformations differ",
                    forward_result,
                    backward_result,
                )
            )

    # (3) edge queries agree
    for source_label in node_labels:
        for edge_label in edge_labels:
            for target_label in node_labels:
                left_query = edge_query(left_trimmed, source_label, forward(edge_label), target_label)
                right_query = edge_query(right_trimmed, source_label, forward(edge_label), target_label)
                equivalent, forward_result, backward_result, calls = _queries_equivalent(
                    solver, left_query, right_query
                )
                result.containment_calls += calls
                if not equivalent:
                    result.equivalent = False
                    result.differences.append(
                        EquivalenceDifference(
                            "edge-rule",
                            (
                                f"the {edge_label}-edges from {source_label}- to {target_label}-nodes "
                                f"produced by the two transformations differ"
                            ),
                            forward_result,
                            backward_result,
                        )
                    )

    result.elapsed_seconds = time.perf_counter() - started
    return result
