"""Static analysis of graph transformations: type checking, equivalence,
target schema elicitation (the paper's core contribution).

Re-exports:

* :func:`type_check` / :class:`TypeCheckResult` — does ``T(G)`` conform to
  the target schema for every conforming input ``G`` (Theorem 4.2)?
* :func:`check_equivalence` / :class:`EquivalenceResult` /
  :class:`EquivalenceDifference` — do two transformations agree on every
  conforming input (Lemma B.8)?
* :func:`elicit_schema` / :class:`ElicitationResult` — construct the
  containment-minimal target schema of a transformation (Lemma B.5);
* :func:`check_label_coverage` / :class:`CoverageResult` /
  :class:`CoverageCheck` — the "every output node is labeled" premise
  (Lemma B.6);
* :class:`StatementChecker` / :class:`StatementEntailment` — the Lemma B.7
  entailment tests for individual L0 statements;
* :func:`type_check_many` / :func:`check_equivalence_many` — batch variants
  running whole job lists across the serial/thread/process backends of the
  containment engine (:mod:`repro.analysis.batch`).

All entry points accept an ``engine`` argument and otherwise share the
process-wide :func:`repro.engine.default_engine`, so their many containment
tests reuse per-schema caches.
"""

from .coverage import CoverageCheck, CoverageResult, check_label_coverage
from .statements import StatementChecker, StatementEntailment
from .typecheck import TypeCheckResult, type_check
from .elicitation import ElicitationResult, elicit_schema
from .equivalence import EquivalenceDifference, EquivalenceResult, check_equivalence
from .batch import check_equivalence_many, type_check_many

__all__ = [
    "CoverageCheck",
    "CoverageResult",
    "check_label_coverage",
    "StatementChecker",
    "StatementEntailment",
    "TypeCheckResult",
    "type_check",
    "type_check_many",
    "ElicitationResult",
    "elicit_schema",
    "EquivalenceDifference",
    "EquivalenceResult",
    "check_equivalence",
    "check_equivalence_many",
]
