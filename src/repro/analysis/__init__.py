"""Static analysis of graph transformations: type checking, equivalence,
target schema elicitation (the paper's core contribution)."""

from .coverage import CoverageCheck, CoverageResult, check_label_coverage
from .statements import StatementChecker, StatementEntailment
from .typecheck import TypeCheckResult, type_check
from .elicitation import ElicitationResult, elicit_schema
from .equivalence import EquivalenceDifference, EquivalenceResult, check_equivalence

__all__ = [
    "CoverageCheck",
    "CoverageResult",
    "check_label_coverage",
    "StatementChecker",
    "StatementEntailment",
    "TypeCheckResult",
    "type_check",
    "ElicitationResult",
    "elicit_schema",
    "EquivalenceDifference",
    "EquivalenceResult",
    "check_equivalence",
]
