"""Type checking of graph transformations (Section 4, Lemma B.2).

``type_check(T, S, S')`` decides whether ``T(G)`` conforms to the target
schema ``S'`` for *every* graph ``G`` conforming to the source schema ``S``.
Following Lemma B.2 the check decomposes into:

1. trimming ``T`` modulo ``S`` (unproductive rules are irrelevant);
2. the syntactic inclusion of the output signature: ``Γ_T ⊆ Γ_{S'}`` and
   ``Σ_T ⊆ Σ_{S'}``;
3. label coverage ``(T,S) ⊨ ⊤ ⊑ ⊔Γ_T`` (Lemma B.6);
4. entailment of every statement of the L0 TBox ``T_{S'}`` (Lemma B.7).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional

from ..containment.solver import ContainmentConfig
from ..dl.schema_tbox import schema_to_l0
from ..engine import ContainmentEngine, default_engine
from ..schema.schema import Schema
from ..transform.grouping import trim
from ..transform.transformation import Transformation
from .coverage import CoverageResult, check_label_coverage
from .statements import StatementChecker, StatementEntailment

__all__ = ["TypeCheckResult", "type_check"]


@dataclass
class TypeCheckResult:
    """Outcome of type checking a transformation against a target schema."""

    well_typed: bool
    transformation_name: str
    source_schema: str
    target_schema: str
    signature_errors: List[str] = field(default_factory=list)
    coverage: Optional[CoverageResult] = None
    statement_results: List[StatementEntailment] = field(default_factory=list)
    containment_calls: int = 0
    elapsed_seconds: float = 0.0

    def __bool__(self) -> bool:
        return self.well_typed

    def failed_statements(self) -> List[StatementEntailment]:
        """The target-schema constraints that the transformation may violate."""
        return [entailment for entailment in self.statement_results if not entailment.entailed]

    def summary(self) -> str:
        header = (
            f"type checking {self.transformation_name}: {self.source_schema} → {self.target_schema}: "
            f"{'WELL-TYPED' if self.well_typed else 'NOT WELL-TYPED'}"
        )
        lines = [header]
        lines.extend(f"  signature: {error}" for error in self.signature_errors)
        if self.coverage is not None and not self.coverage.covered:
            lines.append("  " + self.coverage.summary().replace("\n", "\n  "))
        lines.extend(f"  violates {entailment.statement}" for entailment in self.failed_statements())
        return "\n".join(lines)


def type_check(
    transformation: Transformation,
    source_schema: Schema,
    target_schema: Schema,
    config: Optional[ContainmentConfig] = None,
    pre_trimmed: bool = False,
    engine: Optional[ContainmentEngine] = None,
) -> TypeCheckResult:
    """Decide whether ``T(G)`` conforms to *target_schema* for every
    ``G ∈ L(source_schema)`` (Theorem 4.2).

    The many containment tests of the Turing reduction are routed through
    *engine* (the process-wide :func:`repro.engine.default_engine` when not
    given), so the schema encoding, completions and NFAs are built once per
    schema rather than once per test.
    """
    started = time.perf_counter()
    solver = (engine or default_engine()).solver(source_schema, config)
    result = TypeCheckResult(
        well_typed=True,
        transformation_name=transformation.name,
        source_schema=source_schema.name,
        target_schema=target_schema.name,
    )

    trimmed = transformation if pre_trimmed else trim(transformation, source_schema, solver)
    result.containment_calls += 0 if pre_trimmed else len(transformation.rules())

    # (2) signature inclusion
    foreign_nodes = sorted(trimmed.node_labels() - target_schema.node_labels)
    foreign_edges = sorted(trimmed.edge_labels() - target_schema.edge_labels)
    for label in foreign_nodes:
        result.signature_errors.append(f"output node label {label!r} is not allowed by {target_schema.name}")
    for label in foreign_edges:
        result.signature_errors.append(f"output edge label {label!r} is not allowed by {target_schema.name}")
    if result.signature_errors:
        result.well_typed = False

    # (3) label coverage
    result.coverage = check_label_coverage(trimmed, source_schema, solver)
    result.containment_calls += result.coverage.containment_calls
    if not result.coverage.covered:
        result.well_typed = False

    # (4) the participation constraints of the target schema
    if result.well_typed:
        checker = StatementChecker(trimmed, source_schema, solver)
        target_tbox = schema_to_l0(target_schema)
        for statement in target_tbox:
            # constraints that mention labels the transformation never produces
            # are vacuously satisfied (there are no such nodes in any output)
            (body_label,) = statement.body  # type: ignore[attr-defined]
            if body_label not in trimmed.node_labels():
                continue
            entailment = checker.entails(statement)
            result.statement_results.append(entailment)
            if not entailment.entailed:
                result.well_typed = False
        result.containment_calls += checker.containment_calls

    result.elapsed_seconds = time.perf_counter() - started
    return result
