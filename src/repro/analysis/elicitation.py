"""Target schema elicitation (Section 4, Lemma B.5).

When the target schema of a transformation is unknown, elicitation constructs
the containment-minimal schema over ``(Γ_T, Σ_T)`` that captures every output
``T(G)`` for ``G`` conforming to the source schema.  By Lemma B.5 it suffices
to collect all L0 statements over ``(Γ_T, Σ_T)`` entailed by ``(T, S)``; the
coherent L0 TBox obtained this way corresponds to the desired schema
(Proposition B.4).  Elicitation fails — like type checking would — when some
output node may lack a label.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional

from ..containment.solver import ContainmentConfig
from ..dl.concepts import ConceptInclusion
from ..engine import ContainmentEngine, default_engine
from ..dl.schema_tbox import schema_from_l0
from ..exceptions import ElicitationError
from ..graph.labels import signed_closure
from ..schema.schema import Schema
from ..transform.grouping import trim
from ..transform.transformation import Transformation
from .coverage import CoverageResult, check_label_coverage
from .statements import StatementChecker, StatementEntailment

__all__ = ["ElicitationResult", "elicit_schema"]


@dataclass
class ElicitationResult:
    """The elicited schema together with the entailment evidence."""

    schema: Schema
    coverage: CoverageResult
    statements: List[StatementEntailment] = field(default_factory=list)
    containment_calls: int = 0
    elapsed_seconds: float = 0.0

    def entailed_statements(self) -> List[ConceptInclusion]:
        """The L0 statements that hold on every output graph."""
        return [entailment.statement for entailment in self.statements if entailment.entailed]


def elicit_schema(
    transformation: Transformation,
    source_schema: Schema,
    name: Optional[str] = None,
    config: Optional[ContainmentConfig] = None,
    pre_trimmed: bool = False,
    engine: Optional[ContainmentEngine] = None,
) -> ElicitationResult:
    """Construct the containment-minimal target schema of a transformation.

    Raises :class:`ElicitationError` when some output node may lack a label
    (in that case no schema captures the outputs, as every conforming graph
    labels every node).  Elicitation sweeps ``|Γ_T|² · |Σ±_T|`` candidate
    statements, each a containment test — the densest batch workload in the
    repo — so the tests run through *engine* (the process-wide default when
    not given).
    """
    started = time.perf_counter()
    solver = (engine or default_engine()).solver(source_schema, config)
    trimmed = transformation if pre_trimmed else trim(transformation, source_schema, solver)

    coverage = check_label_coverage(trimmed, source_schema, solver)
    if not coverage.covered:
        raise ElicitationError(
            "schema elicitation is impossible: some output node may lack a label\n"
            + coverage.summary()
        )

    node_labels = sorted(trimmed.node_labels())
    edge_labels = sorted(trimmed.edge_labels())
    checker = StatementChecker(trimmed, source_schema, solver)
    entailments: List[StatementEntailment] = []
    statements: List[ConceptInclusion] = []
    for source_label in node_labels:
        for role in signed_closure(edge_labels):
            for target_label in node_labels:
                for check in (
                    checker.entails_exists,
                    checker.entails_at_most,
                    checker.entails_no_exists,
                ):
                    entailment = check(source_label, role, target_label)
                    entailments.append(entailment)
                    if entailment.entailed:
                        statements.append(entailment.statement)

    schema = schema_from_l0(
        statements,
        node_labels,
        edge_labels,
        name=name or f"elicited({transformation.name})",
    )
    result = ElicitationResult(
        schema=schema,
        coverage=coverage,
        statements=entailments,
        containment_calls=coverage.containment_calls + checker.containment_calls,
        elapsed_seconds=time.perf_counter() - started,
    )
    return result
