"""Label coverage: the entailment ``(T, S) ⊨ ⊤ ⊑ ⊔Γ_T`` (Lemma B.6).

Every node of every output graph ``T(G)`` (for ``G`` conforming to ``S``) must
carry a label.  Nodes are created by node rules (which label them) and by
edge rules (which do not), so the check amounts to: whenever an edge rule
creates a node with constructor ``f_A``, the same argument tuple also
satisfies some ``A``-node rule.  Lemma B.6 phrases this as the containments

    ∃ȳ. Q_{A,R,B}(x̄, ȳ)  ⊆_S  Q_A(x̄)      for all A, B ∈ Γ_T, R ∈ Σ±_T.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..containment.solver import ContainmentResult, ContainmentSolver
from ..graph.labels import SignedLabel, signed_closure
from ..rpq.queries import UC2RPQ
from ..schema.schema import Schema
from ..transform.grouping import edge_query, node_query
from ..transform.transformation import Transformation

__all__ = ["CoverageCheck", "CoverageResult", "check_label_coverage"]


@dataclass
class CoverageCheck:
    """One containment test performed during coverage checking."""

    source_label: str
    role: SignedLabel
    target_label: str
    holds: bool
    result: Optional[ContainmentResult] = None

    def __str__(self) -> str:
        status = "ok" if self.holds else "FAILS"
        return f"∃ȳ.Q_{self.source_label},{self.role},{self.target_label} ⊆ Q_{self.source_label}: {status}"


@dataclass
class CoverageResult:
    """Outcome of the label-coverage analysis."""

    covered: bool
    checks: List[CoverageCheck] = field(default_factory=list)
    unassociated_constructors: List[str] = field(default_factory=list)
    containment_calls: int = 0

    def __bool__(self) -> bool:
        return self.covered

    def failures(self) -> List[CoverageCheck]:
        """The containment tests that failed."""
        return [check for check in self.checks if not check.holds]

    def summary(self) -> str:
        if self.covered:
            return "every output node carries exactly one label"
        lines = ["label coverage fails:"]
        lines.extend(f"  constructor {name} is not dedicated to any node label"
                     for name in self.unassociated_constructors)
        lines.extend(f"  {check}" for check in self.failures())
        return "\n".join(lines)


def check_label_coverage(
    transformation: Transformation,
    schema: Schema,
    solver: Optional[ContainmentSolver] = None,
) -> CoverageResult:
    """Decide ``(T, S) ⊨ ⊤ ⊑ ⊔Γ_T`` via the containments of Lemma B.6."""
    solver = solver or ContainmentSolver(schema)
    result = CoverageResult(covered=True)

    # every constructor used by an edge rule must be dedicated to a node label
    for rule in transformation.edge_rules:
        for constructor in (rule.source_constructor, rule.target_constructor):
            label = transformation.label_of_constructor(constructor.name)
            if label is None and constructor.name not in result.unassociated_constructors:
                result.unassociated_constructors.append(constructor.name)
                result.covered = False
    if result.unassociated_constructors:
        return result

    node_labels = sorted(transformation.node_labels())
    edge_labels = sorted(transformation.edge_labels())
    node_queries: Dict[str, UC2RPQ] = {
        label: node_query(transformation, label) for label in node_labels
    }
    for source_label in node_labels:
        for role in signed_closure(edge_labels):
            for target_label in node_labels:
                lhs = edge_query(transformation, source_label, role, target_label)
                if lhs.is_empty():
                    continue  # no edge rule creates such edges; nothing to check
                projected = lhs.map(
                    lambda disjunct: disjunct.project(
                        [v for v in disjunct.free_variables if v.startswith("x")]
                    )
                )
                containment = solver.contains(projected, node_queries[source_label])
                result.containment_calls += 1
                check = CoverageCheck(source_label, role, target_label, bool(containment), containment)
                result.checks.append(check)
                if not containment:
                    result.covered = False
    return result
