"""Batch entry points for the static analyses (the Theorem 4.2 procedures
at fleet scale).

A served deployment does not type check one migration at a time — it
validates whole catalogues of transformations against schema registries.
:func:`type_check_many` and :func:`check_equivalence_many` run such batches
across the same three backends as
:meth:`repro.engine.ContainmentEngine.check_many`:

* ``"serial"`` — one shared engine, jobs in order (the baseline);
* ``"thread"`` — a thread pool over one shared engine; overlaps only
  allocator/cache-bound work under the GIL, but every job warms the same
  caches;
* ``"process"`` — each *job* ships whole to a
  :class:`~repro.engine.parallel.WorkerPool` worker (routed by source-schema
  fingerprint, so a registry of schemas shards cleanly), runs against that
  worker's warm engine, and the full result object — coverage reports,
  statement entailments, per-difference containment results — is pickled
  back.

All backends produce identical analysis outcomes; the process backend is the
one that scales with cores because each job's many containment calls run in
a separate interpreter.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from typing import Any, List, Optional, Sequence, Tuple, Union

from ..containment.solver import ContainmentConfig
from ..engine import ContainmentEngine, default_engine
from ..engine.parallel import WorkerPool
from ..schema.schema import Schema
from .equivalence import EquivalenceResult, check_equivalence
from .typecheck import TypeCheckResult, type_check

__all__ = ["check_equivalence_many", "type_check_many"]

def _run_jobs(
    kind: str,
    payloads: Sequence[Tuple],
    routing_schemas: Sequence[Schema],
    serial_runner,
    parallel: Union[bool, str],
    engine: Optional[ContainmentEngine],
    max_workers: Optional[int],
    persist: Optional[Any] = None,
) -> List[Any]:
    backend = ContainmentEngine._normalise_backend(parallel)
    owned: Optional[ContainmentEngine] = None
    if engine is None and persist is not None:
        # a one-shot persisting engine for this batch; callers running many
        # batches should construct ContainmentEngine(persist=...) themselves
        # and pass it, so its pool and memory caches survive between calls
        owned = engine = ContainmentEngine(persist=persist)
    resolved_engine = engine or default_engine()
    try:
        if backend == "process" and payloads:
            pool: WorkerPool = resolved_engine.process_pool(max_workers)
            # the tertiary routing token must be deterministic run-to-run (the
            # plan_routing contract), so it is built from the schema fingerprint
            # and the job's batch position — never from object reprs, whose
            # memory addresses would scatter identical work across workers
            keys = []
            for position, schema in enumerate(routing_schemas):
                schema_fp = schema.canonical_fingerprint()
                keys.append((schema_fp, "", f"{schema_fp}\x1f{position}"))
            return pool.run_batch(kind, list(payloads), keys)
        if backend == "thread" and len(payloads) > 1:
            workers = max_workers or min(32, (os.cpu_count() or 2))
            workers = min(workers, len(payloads))
            with ThreadPoolExecutor(max_workers=workers) as executor:
                return list(executor.map(lambda p: serial_runner(resolved_engine, p), payloads))
        return [serial_runner(resolved_engine, payload) for payload in payloads]
    finally:
        if owned is not None:
            owned.close()


def type_check_many(
    jobs: Sequence[Union[Tuple, Any]],
    *,
    config: Optional[ContainmentConfig] = None,
    parallel: Union[bool, str] = False,
    engine: Optional[ContainmentEngine] = None,
    max_workers: Optional[int] = None,
    persist: Optional[Any] = None,
) -> List[TypeCheckResult]:
    """Type check a batch of ``(transformation, source, target[, config])``
    jobs; results keep job order.

    ``parallel`` selects the backend exactly as in ``check_many`` (see the
    module docstring); ``engine`` defaults to the process-wide engine, whose
    persistent worker pool serves the ``"process"`` backend.  ``persist``
    (a store path, only without ``engine``) runs the batch on a one-shot
    engine backed by the disk store, so the containment verdicts inside the
    analyses survive the process.
    """
    payloads = []
    schemas = []
    for job in jobs:
        transformation, source, target, job_config = _normalise_job(job, config)
        payloads.append((transformation, source, target, job_config))
        schemas.append(source)
    return _run_jobs(
        "typecheck",
        payloads,
        schemas,
        lambda eng, p: type_check(p[0], p[1], p[2], config=p[3], engine=eng),
        parallel,
        engine,
        max_workers,
        persist,
    )


def check_equivalence_many(
    jobs: Sequence[Union[Tuple, Any]],
    *,
    config: Optional[ContainmentConfig] = None,
    parallel: Union[bool, str] = False,
    engine: Optional[ContainmentEngine] = None,
    max_workers: Optional[int] = None,
    persist: Optional[Any] = None,
) -> List[EquivalenceResult]:
    """Decide equivalence for a batch of ``(left, right, schema[, config])``
    jobs; results keep job order.  Backends and ``persist`` as in
    :func:`type_check_many`."""
    payloads = []
    schemas = []
    for job in jobs:
        left, right, schema, job_config = _normalise_job(job, config)
        payloads.append((left, right, schema, job_config))
        schemas.append(schema)
    return _run_jobs(
        "equivalence",
        payloads,
        schemas,
        lambda eng, p: check_equivalence(p[0], p[1], p[2], config=p[3], engine=eng),
        parallel,
        engine,
        max_workers,
        persist,
    )


def _normalise_job(
    job: Union[Tuple, Any], default_config: Optional[ContainmentConfig]
) -> Tuple[Any, Any, Any, Optional[ContainmentConfig]]:
    parts = tuple(job)
    if len(parts) == 3:
        first, second, third = parts
        job_config: Optional[ContainmentConfig] = None
    elif len(parts) == 4:
        first, second, third, job_config = parts
    else:
        raise TypeError(
            "expected (transformation, source, target[, config]) or "
            f"(left, right, schema[, config]) jobs, got {job!r}"
        )
    if not isinstance(third, Schema):
        raise TypeError(f"the third element of a job must be a Schema, got {type(third).__name__}")
    return first, second, third, job_config or default_config
