"""Interned alphabet symbols: signed role labels and concept names as small ints.

The compiled-automaton core (:mod:`repro.core.dfa`) works over dense integer
symbol ids rather than the :class:`~repro.rpq.regex.NodeTest` /
:class:`~repro.rpq.regex.EdgeStep` objects themselves: transition tables
become plain ``dict[int, int]`` maps, product and subset constructions hash
machine ints instead of dataclasses, and a compiled automaton can be
rebuilt in a worker process from nothing but its regex (symbols re-intern
deterministically on arrival).

A :class:`SymbolTable` is a bidirectional intern table.  Ids are assigned in
arrival order — they are *per-table* handles, never serialised — while the
*canonical key* of a symbol (its length-prefixed
:func:`~repro.rpq.regex.canonical_token`) is process-independent and is what
every deterministic iteration order in the core sorts by.

Tables are scoped: :func:`symbol_table` returns one shared table per context
string — callers use the schema's canonical fingerprint, so every automaton
compiled for one schema shares one small table — and the process-wide
default table for context ``None``.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..rpq.regex import Symbol, canonical_token

__all__ = ["SymbolTable", "adopt_context", "symbol_table"]


class SymbolTable:
    """A bidirectional intern table mapping alphabet symbols to dense ints.

    Thread-safe; ids are assigned in first-arrival order and never reused.
    Symbols are the regex alphabet letters (node-label tests and signed edge
    steps), compared structurally.
    """

    def __init__(self, context: Optional[str] = None) -> None:
        self.context = context
        self._lock = threading.Lock()
        self._ids: Dict[Symbol, int] = {}
        self._symbols: List[Symbol] = []
        self._keys: List[str] = []

    # ------------------------------------------------------------------ #
    def intern(self, symbol: Symbol) -> int:
        """The id of *symbol*, interning it on first sight."""
        existing = self._ids.get(symbol)
        if existing is not None:
            return existing
        with self._lock:
            existing = self._ids.get(symbol)
            if existing is not None:
                return existing
            symbol_id = len(self._symbols)
            # publish into _ids LAST: lock-free readers (the fast path above,
            # known()) take an id from _ids and immediately index _symbols /
            # _keys, so those lists must be complete before the id is visible
            self._symbols.append(symbol)
            self._keys.append(canonical_token(symbol))
            self._ids[symbol] = symbol_id
            return symbol_id

    def known(self, symbol: Symbol) -> Optional[int]:
        """The id of *symbol* if already interned, else ``None`` (no interning)."""
        return self._ids.get(symbol)

    def symbol(self, symbol_id: int) -> Symbol:
        """The symbol behind *symbol_id* (``IndexError`` for unknown ids)."""
        return self._symbols[symbol_id]

    def sort_key(self, symbol_id: int) -> str:
        """The process-independent canonical key of the symbol behind the id.

        Every deterministic iteration in the core (subset construction,
        shortest-witness tie-breaks, word enumeration) orders symbols by this
        key, never by the arrival-order id.
        """
        return self._keys[symbol_id]

    def snapshot(self) -> Tuple[Symbol, ...]:
        """The interned symbols in arrival order, as an immutable snapshot.

        Taken under the lock so the tuple is a consistent prefix of the
        table's history; position *i* of the snapshot is the symbol behind id
        ``i``.  This is the transport seed's view of the table
        (:mod:`repro.engine.transport`): a worker whose table starts with the
        same prefix can consume transition arrays that use these positional
        ids verbatim.
        """
        with self._lock:
            return tuple(self._symbols)

    def intern_word(self, word: Iterable[Symbol]) -> Tuple[int, ...]:
        """Intern every symbol of *word*; returns the id tuple."""
        return tuple(self.intern(symbol) for symbol in word)

    def word(self, ids: Sequence[int]) -> Tuple[Symbol, ...]:
        """Map an id tuple back to symbols."""
        return tuple(self._symbols[symbol_id] for symbol_id in ids)

    def __len__(self) -> int:
        return len(self._symbols)

    def __contains__(self, symbol: Symbol) -> bool:
        return symbol in self._ids

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        scope = self.context or "default"
        return f"SymbolTable({scope!r}, {len(self._symbols)} symbols)"


# --------------------------------------------------------------------------- #
# the per-context registry
# --------------------------------------------------------------------------- #
_REGISTRY_LIMIT = 256

_registry_lock = threading.Lock()
_default_table = SymbolTable()
_tables: "OrderedDict[str, SymbolTable]" = OrderedDict()


def symbol_table(context: Optional[str] = None) -> SymbolTable:
    """The shared :class:`SymbolTable` for *context* (one per schema fingerprint).

    ``None`` returns the process-wide default table.  The registry is bounded
    (least-recently-requested contexts are dropped once more than
    ``256`` are live).  Dropping a table never corrupts existing automata —
    they pin the table they were compiled against, and a re-request starts a
    fresh one — but automata compiled for the same context *across* an
    eviction hold different table objects, so cross-automaton operations
    (``DFA.product`` / ``DFA.equivalent``) between them raise rather than
    mix ids.  A long-running process cycling through more than ``256``
    schemas recovers by calling :func:`repro.core.clear_compile_memo` and
    recompiling both sides — the compile memo would otherwise keep serving
    the bundle pinned to the evicted table.
    """
    if context is None:
        return _default_table
    with _registry_lock:
        table = _tables.get(context)
        if table is None:
            table = SymbolTable(context)
            _tables[context] = table
        else:
            _tables.move_to_end(context)
        while len(_tables) > _REGISTRY_LIMIT:
            _tables.popitem(last=False)
        return table


def adopt_context(old_context: str, new_context: str) -> Optional[SymbolTable]:
    """Alias *old_context*'s table under *new_context* too; returns the table.

    The schema-evolution path (:meth:`repro.engine.ContainmentEngine.evolve`)
    uses this so automata migrated between fingerprint namespaces keep
    sharing one table *object* — ``DFA.product`` / ``DFA.equivalent`` compare
    ids and refuse to mix tables, so a migrated bundle and a freshly
    compiled one must intern into the same table.  Ids never enter any
    fingerprint (every deterministic order sorts by canonical key), so a
    shared table cannot change verdicts.

    Returns ``None`` without touching the registry when adoption is unsafe:
    the old context's table was never created (or was evicted), or the new
    context already holds a *different, non-empty* table — callers treat
    ``None`` as "recompile from scratch".
    """
    with _registry_lock:
        table = _tables.get(old_context)
        if table is None:
            return None
        existing = _tables.get(new_context)
        if existing is not None and existing is not table and len(existing) > 0:
            return None
        _tables[new_context] = table
        _tables.move_to_end(new_context)
        while len(_tables) > _REGISTRY_LIMIT:
            _tables.popitem(last=False)
        return table
