"""The compiled automaton core: interned symbols, DFAs and shared compilation.

This layer sits between the regex AST (:mod:`repro.rpq.regex`) and every
automaton consumer — query evaluation, the chase solver's witness
enumeration, the containment pipeline and the caching engine (see
docs/ARCHITECTURE.md, "The compiled automaton core"):

* :class:`SymbolTable` / :func:`symbol_table` — signed role labels and
  concept names interned as small ints, one shared table per schema
  fingerprint plus a process-wide default;
* :class:`DFA` / :func:`determinize` — deterministic automata over interned
  symbols with minimize / complement / product / emptiness /
  shortest-witness / language-enumeration operations;
* :class:`CompiledAutomaton` / :func:`compile_regex` — the memoized bundle
  of NFA, minimal DFA, cycle/emptiness flags and pumped word lists per
  structural regex (:func:`clear_compile_memo` resets it for cold runs;
  :func:`rebase_compiled` / :func:`install_compiled` / :func:`adopt_context`
  are the schema-evolution hooks that migrate bundles and their symbol
  table between fingerprint namespaces);
* :func:`has_productive_cycle` — the shared finiteness test;
* :class:`PrefixPruner` — verdict-preserving prefix sharing for the
  solvers' pattern enumeration.

``repro.core.benchmarks`` (imported on demand, not re-exported) holds the
automata benchmark harness behind ``python -m repro bench --suite automata``
and ``benchmarks/bench_automaton_compile.py``.
"""

from .compile import (
    CompiledAutomaton,
    clear_compile_memo,
    compile_regex,
    has_productive_cycle,
    install_compiled,
    rebase_compiled,
)
from .dfa import DFA, determinize
from .interning import SymbolTable, adopt_context, symbol_table
from .prefix import PrefixPruner

__all__ = [
    "CompiledAutomaton",
    "DFA",
    "PrefixPruner",
    "SymbolTable",
    "adopt_context",
    "clear_compile_memo",
    "compile_regex",
    "determinize",
    "has_productive_cycle",
    "install_compiled",
    "rebase_compiled",
    "symbol_table",
]
