"""Deterministic finite automata over interned symbols.

A :class:`DFA` is the compiled, canonicalisable form of a two-way regular
expression's automaton: states are dense ints, letters are
:class:`~repro.core.interning.SymbolTable` ids, and the transition function
is a tuple of per-state ``dict[int, int]`` maps (partial — a missing entry
is the dead sink).  Everything that needs a deterministic result across
processes iterates symbols by their canonical *sort key*, never by the
arrival-order id, so subset construction, minimisation and witness searches
produce identical automata on every machine.

The dict rows are the construction/validation form; execution runs on the
automaton's :meth:`DFA.dense` form — a flat :class:`repro.core.kernels.DenseDFA`
transition array whose columns are the canonical symbol order, so emptiness,
witness search, product discovery, minimisation signatures and word
enumeration sweep arrays instead of sorting dict keys per step.  The dense
form never changes a result: its column order *is* the canonical order the
dict walks sorted into, and the dict-walk enumeration is kept verbatim as
:meth:`DFA._enumerate_words_dictwalk` so benchmarks and property tests can
assert word-for-word equality.

Provided operations: :func:`determinize` (NFA → DFA), :meth:`DFA.minimize`
(Moore partition refinement plus trimming), :meth:`DFA.complement`,
:meth:`DFA.product` (intersection/union), :meth:`DFA.is_empty`,
:meth:`DFA.shortest_witness`, :meth:`DFA.enumerate_words` (deterministic,
duplicate-free language enumeration) and :meth:`DFA.equivalent`.
"""

from __future__ import annotations

from array import array
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..rpq.regex import Symbol
from .interning import SymbolTable, symbol_table
from .kernels import DenseDFA, subset_construct

__all__ = ["DFA", "determinize"]

_DEAD = -1  # the implicit sink class used during minimisation


class DFA:
    """A deterministic automaton over interned symbols (partial δ, sink implicit)."""

    __slots__ = (
        "table",
        "num_states",
        "initial",
        "final",
        "_delta_rows",
        "_count",
        "_alphabet",
        "_dense",
        "_enum_rows",
        "_enum_variants",
    )

    def __init__(
        self,
        table: SymbolTable,
        num_states: int,
        initial: int,
        final: Iterable[int],
        transitions: Iterable[Tuple[int, int, int]],
    ) -> None:
        if not 0 <= initial < max(num_states, 1):
            raise ValueError(f"initial state {initial} out of range for {num_states} states")
        self.table = table
        self.num_states = num_states
        self.initial = initial
        self.final: FrozenSet[int] = frozenset(final)
        delta: List[Dict[int, int]] = [{} for _ in range(num_states)]
        count = 0
        for source, symbol_id, target in transitions:
            existing = delta[source].get(symbol_id)
            if existing is not None and existing != target:
                raise ValueError(
                    f"nondeterministic transition: state {source} reads symbol "
                    f"{symbol_id} into both {existing} and {target}"
                )
            if existing is None:
                count += 1
            delta[source][symbol_id] = target
        self._delta_rows: Optional[Tuple[Dict[int, int], ...]] = tuple(delta)
        self._count = count
        self._alphabet: Optional[Tuple[int, ...]] = None
        self._dense: Optional[DenseDFA] = None
        self._enum_rows: Optional[Tuple[Tuple, int]] = None
        self._enum_variants: Dict[int, Tuple] = {}

    @classmethod
    def from_dense(cls, table: SymbolTable, dense: DenseDFA) -> "DFA":
        """Reattach a :class:`~repro.core.kernels.DenseDFA`.

        This is both the transport's seed path and the fast exit of the
        construction pipeline (`determinize`/`trim`/`minimize` emit dense
        tables directly).  The dense form comes out of a deterministic
        construction, so the dict rows are rebuilt lazily — only if a
        dict-walk consumer actually asks — without re-running the
        nondeterminism check.
        """
        dfa = cls.__new__(cls)
        dfa.table = table
        dfa.num_states = dense.num_states
        dfa.initial = dense.initial
        dfa.final = frozenset(dense.final)
        dfa._delta_rows = None
        dfa._count = dense.transitions
        dfa._alphabet = dense.alphabet
        dfa._dense = dense
        dfa._enum_rows = None
        dfa._enum_variants = {}
        return dfa

    @property
    def _delta(self) -> Tuple[Dict[int, int], ...]:
        """Per-state ``dict[symbol id, target]`` rows (built lazily from dense)."""
        rows = self._delta_rows
        if rows is None:
            dense = self._dense
            alphabet, width, flat = dense.alphabet, dense.width, dense.table
            if width == 0:
                rows = tuple({} for _ in range(dense.num_states))
            else:
                rows = tuple(
                    {
                        alphabet[column]: target
                        for column in range(width)
                        if (target := flat[base + column]) >= 0
                    }
                    for base in range(0, dense.num_states * width, width)
                )
            self._delta_rows = rows
        return rows

    def dense(self) -> DenseDFA:
        """The flat-array execution form of this automaton (built once)."""
        if self._dense is None:
            self._dense = DenseDFA.from_rows(
                self.num_states, self.initial, self.final, self.alphabet_ids(), self._delta
            )
        return self._dense

    # ------------------------------------------------------------------ #
    # basics
    # ------------------------------------------------------------------ #
    def successor(self, state: int, symbol_id: int) -> Optional[int]:
        """δ(state, symbol) — ``None`` means the dead sink."""
        return self._delta[state].get(symbol_id)

    def transitions(self) -> Iterator[Tuple[int, int, int]]:
        """Iterate over all ``(source, symbol id, target)`` transitions."""
        for source, row in enumerate(self._delta):
            for symbol_id, target in row.items():
                yield source, symbol_id, target

    def alphabet_ids(self) -> Tuple[int, ...]:
        """Ids labelling at least one transition, in canonical-key order (cached)."""
        if self._alphabet is None:
            used = {symbol_id for row in self._delta for symbol_id in row}
            self._alphabet = tuple(sorted(used, key=self.table.sort_key))
        return self._alphabet

    def state_count(self) -> int:
        return self.num_states

    def transition_count(self) -> int:
        """Number of transitions — counted once at construction, O(1) here."""
        return self._count

    def accepts_ids(self, ids: Sequence[int]) -> bool:
        state: Optional[int] = self.initial
        for symbol_id in ids:
            state = self._delta[state].get(symbol_id)
            if state is None:
                return False
        return state in self.final

    def accepts(self, word: Sequence[Symbol]) -> bool:
        """``True`` when the automaton accepts the given symbol word."""
        ids = []
        for symbol in word:
            symbol_id = self.table.known(symbol)
            if symbol_id is None:
                return False  # a letter the automaton has never seen
            ids.append(symbol_id)
        return self.accepts_ids(ids)

    def accepts_epsilon(self) -> bool:
        return self.initial in self.final

    # ------------------------------------------------------------------ #
    # language queries
    # ------------------------------------------------------------------ #
    def is_empty(self) -> bool:
        """``True`` when no word at all is accepted."""
        return self.dense().is_empty()

    def shortest_witness_ids(self) -> Optional[Tuple[int, ...]]:
        """One shortest accepted word as an id tuple (``None`` when empty).

        Layered BFS over the dense table; ties break by column order, which
        is the canonical symbol order, so the witness is deterministic across
        processes (and identical to the historical dict-walk search).
        """
        return self.dense().shortest_witness_ids()

    def shortest_witness(self) -> Optional[Tuple[Symbol, ...]]:
        """One shortest accepted word as symbols (``None`` when empty)."""
        ids = self.shortest_witness_ids()
        return None if ids is None else self.table.word(ids)

    def _enumeration_rows(self) -> Tuple[Tuple, int]:
        """Per state, the productive dense row for enumeration, built once.

        Entries are ``(symbol, target, distance-to-final from target, target
        is final)`` in column (= canonical) order; targets that can never
        reach acceptance are dropped here instead of per-step.  Also returns
        the largest finite distance (budgets at or above it filter nothing).
        """
        if self._enum_rows is None:
            dense = self.dense()
            distances = dense.distance_to_final()
            symbols = [self.table.symbol(symbol_id) for symbol_id in dense.alphabet]
            flat, width = dense.table, dense.width
            final = self.final
            rows: List[Tuple[Tuple[Symbol, int, int, bool], ...]] = []
            largest = 0
            for state in range(self.num_states):
                base = state * width
                row = tuple(
                    (symbols[column], target, distances[target], target in final)
                    for column in range(width)
                    if (target := flat[base + column]) >= 0 and distances[target] >= 0
                )
                for entry in row:
                    if entry[2] > largest:
                        largest = entry[2]
                rows.append(row)
            self._enum_rows = (tuple(rows), largest)
        return self._enum_rows

    def _enumeration_rows_for_budget(self, budget: int) -> Tuple:
        """Rows with the out-of-reach-within-*budget* entries already dropped.

        Entries shrink to ``(symbol, target, target is final)``: the distance
        comparison moves out of the frontier loop entirely.  Variants are
        cached per budget, capped at the largest finite distance.
        """
        rows, largest = self._enumeration_rows()
        key = budget if budget < largest else largest
        variant = self._enum_variants.get(key)
        if variant is None:
            variant = tuple(
                tuple(
                    (symbol, target, is_final)
                    for symbol, target, remaining, is_final in row
                    if remaining <= key
                )
                for row in rows
            )
            self._enum_variants[key] = variant
        return variant

    def enumerate_words(
        self, max_length: int = 12, max_words: int = 10_000
    ) -> Iterator[Tuple[Symbol, ...]]:
        """Enumerate accepted words by non-decreasing length, canonical order.

        Determinism makes duplicates impossible by construction — every word
        has exactly one run — so, unlike the NFA enumerator, no seen-set is
        needed.  Runs over the precomputed dense enumeration rows, with the
        distance-to-final budget pruning baked into per-budget row variants
        (word set and order identical to :meth:`_enumerate_words_dictwalk`,
        the historical implementation kept as the benchmark/property-test
        reference).  Intended for language inspection and tests; the solvers
        keep enumerating over the NFA, whose pumped normal form is the
        completeness bound (see ``docs/ARCHITECTURE.md``).
        """
        if max_words <= 0:
            return
        emitted = 0
        if self.initial in self.final:
            emitted += 1
            yield ()
            if emitted >= max_words:
                return
        frontier: List[Tuple[int, Tuple[Symbol, ...]]] = [(self.initial, ())]
        length = 0
        while frontier and length < max_length and emitted < max_words:
            length += 1
            budget = max_length - length
            rows = self._enumeration_rows_for_budget(budget)
            if budget:
                next_frontier: List[Tuple[int, Tuple[Symbol, ...]]] = []
                append = next_frontier.append
                for state, word in frontier:
                    for symbol, target, is_final in rows[state]:
                        extended = word + (symbol,)
                        if is_final:
                            emitted += 1
                            yield extended
                            if emitted >= max_words:
                                return
                        append((target, extended))
                frontier = next_frontier
            else:
                # the final level: the budget-0 rows keep only direct steps
                # into acceptance, and nothing is extended afterwards, so no
                # frontier is built
                for state, word in frontier:
                    for symbol, _, _ in rows[state]:
                        emitted += 1
                        yield word + (symbol,)
                        if emitted >= max_words:
                            return
                return

    def _enumerate_words_dictwalk(
        self, max_length: int = 12, max_words: int = 10_000
    ) -> Iterator[Tuple[Symbol, ...]]:
        """The historical dict-walk enumeration, kept verbatim.

        :meth:`enumerate_words` must stay word-for-word identical to this;
        the kernel benchmarks price the two against each other and the
        property tests assert equality over generated corpora.
        """
        if max_words <= 0:
            return
        sort_key = self.table.sort_key
        emitted = 0
        if self.accepts_epsilon():
            emitted += 1
            yield ()
            if emitted >= max_words:
                return
        # distance from each state to the nearest final state (reverse BFS):
        # a path is only extended while it can still reach acceptance within
        # the length budget, so search work tracks the emitted words instead
        # of every path of the (possibly exponential) unpruned tree
        predecessors: Dict[int, List[int]] = {}
        for source, _, target in self.transitions():
            predecessors.setdefault(target, []).append(source)
        to_final: Dict[int, int] = {state: 0 for state in self.final}
        wave = list(self.final)
        distance = 0
        while wave:
            distance += 1
            next_wave: List[int] = []
            for state in wave:
                for source in predecessors.get(state, ()):
                    if source not in to_final:
                        to_final[source] = distance
                        next_wave.append(source)
            wave = next_wave
        delta = self._delta
        frontier: List[Tuple[int, Tuple[Symbol, ...]]] = [(self.initial, ())]
        length = 0
        while frontier and length < max_length and emitted < max_words:
            length += 1
            budget = max_length - length
            next_frontier: List[Tuple[int, Tuple[Symbol, ...]]] = []
            for state, word in frontier:
                row = delta[state]
                for symbol_id in sorted(row, key=sort_key):
                    target = row[symbol_id]
                    remaining = to_final.get(target)
                    if remaining is None or remaining > budget:
                        continue  # acceptance is out of reach down this path
                    extended = word + (self.table.symbol(symbol_id),)
                    if target in self.final:
                        emitted += 1
                        yield extended
                        if emitted >= max_words:
                            return
                    if remaining == 0 and budget == 0:
                        continue
                    next_frontier.append((target, extended))
            frontier = next_frontier

    # ------------------------------------------------------------------ #
    # boolean operations
    # ------------------------------------------------------------------ #
    def complement(self, alphabet_ids: Optional[Iterable[int]] = None) -> "DFA":
        """The automaton for the complement language over *alphabet_ids*.

        Complement is alphabet-relative; the default is this automaton's own
        alphabet.  The result is total over the chosen alphabet (the sink
        becomes an explicit, accepting state).
        """
        alphabet = tuple(alphabet_ids) if alphabet_ids is not None else self.alphabet_ids()
        sink = self.num_states
        transitions: List[Tuple[int, int, int]] = []
        for state in range(self.num_states):
            row = self._delta[state]
            for symbol_id in alphabet:
                transitions.append((state, symbol_id, row.get(symbol_id, sink)))
        for symbol_id in alphabet:
            transitions.append((sink, symbol_id, sink))
        final = [state for state in range(self.num_states + 1) if state not in self.final]
        return DFA(self.table, self.num_states + 1, self.initial, final, transitions)

    def product(self, other: "DFA", mode: str = "intersection") -> "DFA":
        """The product automaton for intersection or union of the languages.

        Both operands must share a symbol table.  Only the reachable part of
        the product is built, by BFS over the operands' dense tables (the
        pair numbering is identical to the historical dict-walk discovery —
        the joint alphabet is swept in canonical order either way).  For
        ``union`` the operands are implicitly totalised over the joint
        alphabet (the missing-transition sink of one side must not kill the
        other side's acceptance).
        """
        if other.table is not self.table:
            raise ValueError("product requires both automata to share one symbol table")
        if mode not in ("intersection", "union"):
            raise ValueError(f"unknown product mode {mode!r}")
        left_dense = self.dense()
        right_dense = other.dense()
        alphabet = tuple(
            sorted(set(left_dense.alphabet) | set(right_dense.alphabet), key=self.table.sort_key)
        )
        # per joint symbol: its column in each operand (-1 = never read there)
        columns = [
            (symbol_id, left_dense.column(symbol_id), right_dense.column(symbol_id))
            for symbol_id in alphabet
        ]
        left_table, left_width = left_dense.table, left_dense.width
        right_table, right_width = right_dense.table, right_dense.width

        def accepting(left: Optional[int], right: Optional[int]) -> bool:
            in_left = left in self.final
            in_right = right in other.final
            return (in_left and in_right) if mode == "intersection" else (in_left or in_right)

        intersection = mode == "intersection"
        start = (self.initial, other.initial)
        numbering: Dict[Tuple[Optional[int], Optional[int]], int] = {start: 0}
        order: List[Tuple[Optional[int], Optional[int]]] = [start]
        transitions: List[Tuple[int, int, int]] = []
        index = 0
        while index < len(order):
            left, right = order[index]
            for symbol_id, left_column, right_column in columns:
                next_left: Optional[int] = None
                if left is not None and left_column >= 0:
                    stepped = left_table[left * left_width + left_column]
                    if stepped >= 0:
                        next_left = stepped
                next_right: Optional[int] = None
                if right is not None and right_column >= 0:
                    stepped = right_table[right * right_width + right_column]
                    if stepped >= 0:
                        next_right = stepped
                if intersection and (next_left is None or next_right is None):
                    continue
                if next_left is None and next_right is None:
                    continue
                pair = (next_left, next_right)
                target = numbering.get(pair)
                if target is None:
                    target = len(order)
                    numbering[pair] = target
                    order.append(pair)
                transitions.append((index, symbol_id, target))
            index += 1
        final = [numbering[pair] for pair in order if accepting(*pair)]
        return DFA(self.table, len(order), 0, final, transitions)

    def equivalent(self, other: "DFA") -> bool:
        """Language equality, decided via symmetric-difference emptiness."""
        alphabet = tuple(
            sorted(set(self.alphabet_ids()) | set(other.alphabet_ids()), key=self.table.sort_key)
        )
        return (
            self.product(other.complement(alphabet), "intersection").is_empty()
            and other.product(self.complement(alphabet), "intersection").is_empty()
        )

    # ------------------------------------------------------------------ #
    # canonicalisation
    # ------------------------------------------------------------------ #
    def trim(self) -> "DFA":
        """Restrict to states on some initial → final path (initial kept).

        Reachability and productivity come from the dense kernels (forward
        sweep + the memoized reverse distance table); the surviving rows are
        copied straight into the trimmed automaton's dense table — states
        keep their relative numbering and columns that lost every transition
        are dropped, exactly what rebuilding from the surviving transition
        triples produced.
        """
        dense = self.dense()
        distances = dense.distance_to_final()
        useful = {state for state in dense.reachable() if distances[state] >= 0}
        useful.add(self.initial)
        kept = sorted(useful)
        renumber = {state: index for index, state in enumerate(kept)}
        alphabet, width, flat = dense.alphabet, dense.width, dense.table
        trimmed_flat = array("i", [-1]) * (len(kept) * width) if width else array("i")
        used_columns = set()
        for index, state in enumerate(kept):
            base = state * width
            target_base = index * width
            for column in range(width):
                target = flat[base + column]
                if target >= 0 and (renumbered := renumber.get(target)) is not None:
                    trimmed_flat[target_base + column] = renumbered
                    used_columns.add(column)
        if len(used_columns) != width:
            keep_columns = sorted(used_columns)
            narrow = array("i", [-1]) * (len(kept) * len(keep_columns))
            for index in range(len(kept)):
                base = index * width
                target_base = index * len(keep_columns)
                for narrow_column, column in enumerate(keep_columns):
                    narrow[target_base + narrow_column] = trimmed_flat[base + column]
            trimmed_flat = narrow
            alphabet = tuple(alphabet[column] for column in keep_columns)
        trimmed = DenseDFA(
            len(kept),
            renumber[self.initial],
            [renumber[state] for state in self.final if state in useful],
            alphabet,
            trimmed_flat,
        )
        return DFA.from_dense(self.table, trimmed)

    def minimize(self) -> "DFA":
        """The minimal trimmed DFA for the language (Moore partition refinement).

        The implicit dead sink is one block throughout, so the input need not
        be total; the result is again partial (dead transitions dropped) with
        states renumbered in canonical BFS order from the initial state.
        Refinement signatures are read off the trimmed automaton's dense rows
        — the column order is the canonical alphabet order the dict walk
        sorted into, so the partition and the final numbering are unchanged.
        """
        trimmed = self.trim()
        dense = trimmed.dense()
        alphabet, width, flat = dense.alphabet, dense.width, dense.table
        num_states = trimmed.num_states
        # initial partition: final vs non-final (the sink lives in class _DEAD)
        classes = [1 if state in trimmed.final else 0 for state in range(num_states)]
        while True:
            signatures: Dict[Tuple, int] = {}
            next_classes = [0] * num_states
            # list[-1] is the appended sentinel, so the dense table's -1 dead
            # marker indexes straight to _DEAD and the whole row signature is
            # one C-level map over the row slice
            lookup = classes + [_DEAD]
            for state in range(num_states):
                base = state * width
                signature = (
                    classes[state],
                    tuple(map(lookup.__getitem__, flat[base : base + width])),
                )
                block = signatures.setdefault(signature, len(signatures))
                next_classes[state] = block
            if next_classes == classes:
                break
            classes = next_classes

        # canonical numbering: BFS from the initial class in symbol-key order
        representative: Dict[int, int] = {}
        for state in range(num_states):
            representative.setdefault(classes[state], state)
        block_count = len(representative)
        minimal_flat = array("i", [-1]) * (block_count * width) if width else array("i")
        numbering = {classes[trimmed.initial]: 0}
        order = [classes[trimmed.initial]]
        index = 0
        while index < len(order):
            base = representative[order[index]] * width
            target_base = index * width
            for column in range(width):
                target_state = flat[base + column]
                if target_state < 0:
                    continue
                target_block = classes[target_state]
                target = numbering.get(target_block)
                if target is None:
                    target = len(order)
                    numbering[target_block] = target
                    order.append(target_block)
                minimal_flat[target_base + column] = target
            index += 1
        final = {
            numbering[classes[state]]
            for state in trimmed.final
            if classes[state] in numbering
        }
        minimal = DenseDFA(len(order), 0, final, alphabet, minimal_flat)
        return DFA.from_dense(self.table, minimal)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DFA(states={self.num_states}, final={sorted(self.final)}, "
            f"transitions={self.transition_count()})"
        )


# --------------------------------------------------------------------------- #
# NFA → DFA
# --------------------------------------------------------------------------- #
def determinize(nfa, table: Optional[SymbolTable] = None) -> DFA:
    """Subset-construct a :class:`DFA` from an ε-free NFA.

    Only reachable subsets are materialised, discovered in BFS order with
    symbols iterated by canonical key — the resulting state numbering is a
    pure function of the NFA, identical in every process.  The search runs
    on the int-bitset kernel (:func:`repro.core.kernels.subset_construct`);
    subset masks and frozensets are in bijection and both searches expand
    identical frontiers in identical order, so the numbering is the one the
    frozenset construction produced.  Inputs without the full NFA surface
    (``states``/``transitions``) fall back to the frozenset walk.
    """
    # explicit None check: a fresh (empty) SymbolTable is falsy via __len__
    if table is None:
        table = symbol_table()
    alphabet: List[Tuple[str, Symbol, int]] = []
    for symbol in nfa.alphabet():
        symbol_id = table.intern(symbol)
        alphabet.append((table.sort_key(symbol_id), symbol, symbol_id))
    alphabet.sort(key=lambda entry: entry[0])

    states = getattr(nfa, "states", None)
    if states is None or not hasattr(nfa, "transitions"):
        return _determinize_setwalk(nfa, table, alphabet)

    state_list = sorted(states)
    index_of = {state: position for position, state in enumerate(state_list)}
    column_of = {symbol: column for column, (_, symbol, _) in enumerate(alphabet)}
    moves: List[List[int]] = [[0] * len(state_list) for _ in alphabet]
    for source, symbol, target in nfa.transitions():
        moves[column_of[symbol]][index_of[source]] |= 1 << index_of[target]
    initial_mask = 0
    for state in nfa.initial:
        initial_mask |= 1 << index_of[state]
    final_mask = 0
    for state in nfa.final:
        final_mask |= 1 << index_of[state]
    num_states, triples, final_states = subset_construct(initial_mask, final_mask, moves)
    # straight to the dense execution form: the construction is deterministic
    # by definition, so no dict-row validation pass is needed.  Only columns
    # that actually label a transition are kept — that is exactly the
    # ``alphabet_ids()`` the triple-built DFA would have reported.
    used = sorted({column for _, column, _ in triples})
    width = len(used)
    flat = array("i", [-1]) * (num_states * width) if width else array("i")
    if width == len(alphabet):
        for source, column, target in triples:
            flat[source * width + column] = target
    else:
        remap = {column: narrow for narrow, column in enumerate(used)}
        for source, column, target in triples:
            flat[source * width + remap[column]] = target
    dense = DenseDFA(
        num_states, 0, final_states, tuple(alphabet[column][2] for column in used), flat
    )
    return DFA.from_dense(table, dense)


def _determinize_setwalk(
    nfa, table: SymbolTable, alphabet: List[Tuple[str, Symbol, int]]
) -> DFA:
    """The frozenset subset construction, for duck-typed NFA stand-ins."""
    start = frozenset(nfa.initial)
    numbering: Dict[FrozenSet[int], int] = {start: 0}
    order: List[FrozenSet[int]] = [start]
    transitions: List[Tuple[int, int, int]] = []
    index = 0
    while index < len(order):
        subset = order[index]
        for _, symbol, symbol_id in alphabet:
            successor = nfa.step(subset, symbol)
            if not successor:
                continue
            target = numbering.get(successor)
            if target is None:
                target = len(order)
                numbering[successor] = target
                order.append(successor)
            transitions.append((index, symbol_id, target))
        index += 1
    final = [numbering[subset] for subset in order if subset & nfa.final]
    return DFA(table, len(order), 0, final, transitions)
