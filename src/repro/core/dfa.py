"""Deterministic finite automata over interned symbols.

A :class:`DFA` is the compiled, canonicalisable form of a two-way regular
expression's automaton: states are dense ints, letters are
:class:`~repro.core.interning.SymbolTable` ids, and the transition function
is a tuple of per-state ``dict[int, int]`` maps (partial — a missing entry
is the dead sink).  Everything that needs a deterministic result across
processes iterates symbols by their canonical *sort key*, never by the
arrival-order id, so subset construction, minimisation and witness searches
produce identical automata on every machine.

Provided operations: :func:`determinize` (NFA → DFA), :meth:`DFA.minimize`
(Moore partition refinement plus trimming), :meth:`DFA.complement`,
:meth:`DFA.product` (intersection/union), :meth:`DFA.is_empty`,
:meth:`DFA.shortest_witness`, :meth:`DFA.enumerate_words` (deterministic,
duplicate-free language enumeration) and :meth:`DFA.equivalent`.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..rpq.regex import Symbol
from .interning import SymbolTable, symbol_table

__all__ = ["DFA", "determinize"]

_DEAD = -1  # the implicit sink class used during minimisation


class DFA:
    """A deterministic automaton over interned symbols (partial δ, sink implicit)."""

    __slots__ = ("table", "num_states", "initial", "final", "_delta")

    def __init__(
        self,
        table: SymbolTable,
        num_states: int,
        initial: int,
        final: Iterable[int],
        transitions: Iterable[Tuple[int, int, int]],
    ) -> None:
        if not 0 <= initial < max(num_states, 1):
            raise ValueError(f"initial state {initial} out of range for {num_states} states")
        self.table = table
        self.num_states = num_states
        self.initial = initial
        self.final: FrozenSet[int] = frozenset(final)
        delta: List[Dict[int, int]] = [{} for _ in range(num_states)]
        for source, symbol_id, target in transitions:
            existing = delta[source].get(symbol_id)
            if existing is not None and existing != target:
                raise ValueError(
                    f"nondeterministic transition: state {source} reads symbol "
                    f"{symbol_id} into both {existing} and {target}"
                )
            delta[source][symbol_id] = target
        self._delta: Tuple[Dict[int, int], ...] = tuple(delta)

    # ------------------------------------------------------------------ #
    # basics
    # ------------------------------------------------------------------ #
    def successor(self, state: int, symbol_id: int) -> Optional[int]:
        """δ(state, symbol) — ``None`` means the dead sink."""
        return self._delta[state].get(symbol_id)

    def transitions(self) -> Iterator[Tuple[int, int, int]]:
        """Iterate over all ``(source, symbol id, target)`` transitions."""
        for source, row in enumerate(self._delta):
            for symbol_id, target in row.items():
                yield source, symbol_id, target

    def alphabet_ids(self) -> Tuple[int, ...]:
        """Ids labelling at least one transition, in canonical-key order."""
        used = {symbol_id for row in self._delta for symbol_id in row}
        return tuple(sorted(used, key=self.table.sort_key))

    def state_count(self) -> int:
        return self.num_states

    def transition_count(self) -> int:
        return sum(len(row) for row in self._delta)

    def accepts_ids(self, ids: Sequence[int]) -> bool:
        state: Optional[int] = self.initial
        for symbol_id in ids:
            state = self._delta[state].get(symbol_id)
            if state is None:
                return False
        return state in self.final

    def accepts(self, word: Sequence[Symbol]) -> bool:
        """``True`` when the automaton accepts the given symbol word."""
        ids = []
        for symbol in word:
            symbol_id = self.table.known(symbol)
            if symbol_id is None:
                return False  # a letter the automaton has never seen
            ids.append(symbol_id)
        return self.accepts_ids(ids)

    def accepts_epsilon(self) -> bool:
        return self.initial in self.final

    # ------------------------------------------------------------------ #
    # language queries
    # ------------------------------------------------------------------ #
    def is_empty(self) -> bool:
        """``True`` when no word at all is accepted."""
        return self.shortest_witness_ids() is None

    def shortest_witness_ids(self) -> Optional[Tuple[int, ...]]:
        """One shortest accepted word as an id tuple (``None`` when empty).

        BFS from the initial state; ties are broken by the canonical symbol
        order, so the witness is deterministic across processes.
        """
        if self.initial in self.final:
            return ()
        sort_key = self.table.sort_key
        parents: Dict[int, Tuple[int, int]] = {}
        visited = {self.initial}
        frontier = [self.initial]
        while frontier:
            next_frontier: List[int] = []
            for state in frontier:
                row = self._delta[state]
                for symbol_id in sorted(row, key=sort_key):
                    target = row[symbol_id]
                    if target in visited:
                        continue
                    visited.add(target)
                    parents[target] = (state, symbol_id)
                    if target in self.final:
                        word: List[int] = []
                        current = target
                        while current in parents:  # the initial state has no parent
                            current, via = parents[current]
                            word.append(via)
                        word.reverse()
                        return tuple(word)
                    next_frontier.append(target)
            frontier = next_frontier
        return None

    def shortest_witness(self) -> Optional[Tuple[Symbol, ...]]:
        """One shortest accepted word as symbols (``None`` when empty)."""
        ids = self.shortest_witness_ids()
        return None if ids is None else self.table.word(ids)

    def enumerate_words(
        self, max_length: int = 12, max_words: int = 10_000
    ) -> Iterator[Tuple[Symbol, ...]]:
        """Enumerate accepted words by non-decreasing length, canonical order.

        Determinism makes duplicates impossible by construction — every word
        has exactly one run — so, unlike the NFA enumerator, no seen-set is
        needed.  Intended for language inspection and tests; the solvers keep
        enumerating over the NFA, whose pumped normal form is the
        completeness bound (see ``docs/ARCHITECTURE.md``).
        """
        if max_words <= 0:
            return
        sort_key = self.table.sort_key
        emitted = 0
        if self.accepts_epsilon():
            emitted += 1
            yield ()
            if emitted >= max_words:
                return
        # distance from each state to the nearest final state (reverse BFS):
        # a path is only extended while it can still reach acceptance within
        # the length budget, so search work tracks the emitted words instead
        # of every path of the (possibly exponential) unpruned tree
        predecessors: Dict[int, List[int]] = {}
        for source, _, target in self.transitions():
            predecessors.setdefault(target, []).append(source)
        to_final: Dict[int, int] = {state: 0 for state in self.final}
        wave = list(self.final)
        distance = 0
        while wave:
            distance += 1
            next_wave: List[int] = []
            for state in wave:
                for source in predecessors.get(state, ()):
                    if source not in to_final:
                        to_final[source] = distance
                        next_wave.append(source)
            wave = next_wave
        frontier: List[Tuple[int, Tuple[Symbol, ...]]] = [(self.initial, ())]
        length = 0
        while frontier and length < max_length and emitted < max_words:
            length += 1
            budget = max_length - length
            next_frontier: List[Tuple[int, Tuple[Symbol, ...]]] = []
            for state, word in frontier:
                row = self._delta[state]
                for symbol_id in sorted(row, key=sort_key):
                    target = row[symbol_id]
                    remaining = to_final.get(target)
                    if remaining is None or remaining > budget:
                        continue  # acceptance is out of reach down this path
                    extended = word + (self.table.symbol(symbol_id),)
                    if target in self.final:
                        emitted += 1
                        yield extended
                        if emitted >= max_words:
                            return
                    if remaining == 0 and budget == 0:
                        continue
                    next_frontier.append((target, extended))
            frontier = next_frontier

    # ------------------------------------------------------------------ #
    # boolean operations
    # ------------------------------------------------------------------ #
    def complement(self, alphabet_ids: Optional[Iterable[int]] = None) -> "DFA":
        """The automaton for the complement language over *alphabet_ids*.

        Complement is alphabet-relative; the default is this automaton's own
        alphabet.  The result is total over the chosen alphabet (the sink
        becomes an explicit, accepting state).
        """
        alphabet = tuple(alphabet_ids) if alphabet_ids is not None else self.alphabet_ids()
        sink = self.num_states
        transitions: List[Tuple[int, int, int]] = []
        for state in range(self.num_states):
            row = self._delta[state]
            for symbol_id in alphabet:
                transitions.append((state, symbol_id, row.get(symbol_id, sink)))
        for symbol_id in alphabet:
            transitions.append((sink, symbol_id, sink))
        final = [state for state in range(self.num_states + 1) if state not in self.final]
        return DFA(self.table, self.num_states + 1, self.initial, final, transitions)

    def product(self, other: "DFA", mode: str = "intersection") -> "DFA":
        """The product automaton for intersection or union of the languages.

        Both operands must share a symbol table.  Only the reachable part of
        the product is built.  For ``union`` the operands are implicitly
        totalised over the joint alphabet (the missing-transition sink of one
        side must not kill the other side's acceptance).
        """
        if other.table is not self.table:
            raise ValueError("product requires both automata to share one symbol table")
        if mode not in ("intersection", "union"):
            raise ValueError(f"unknown product mode {mode!r}")
        alphabet = tuple(
            sorted(set(self.alphabet_ids()) | set(other.alphabet_ids()), key=self.table.sort_key)
        )

        def accepting(left: Optional[int], right: Optional[int]) -> bool:
            in_left = left in self.final
            in_right = right in other.final
            return (in_left and in_right) if mode == "intersection" else (in_left or in_right)

        start = (self.initial, other.initial)
        numbering: Dict[Tuple[Optional[int], Optional[int]], int] = {start: 0}
        order: List[Tuple[Optional[int], Optional[int]]] = [start]
        transitions: List[Tuple[int, int, int]] = []
        index = 0
        while index < len(order):
            left, right = order[index]
            for symbol_id in alphabet:
                next_left = self._delta[left].get(symbol_id) if left is not None else None
                next_right = other._delta[right].get(symbol_id) if right is not None else None
                if mode == "intersection" and (next_left is None or next_right is None):
                    continue
                if next_left is None and next_right is None:
                    continue
                pair = (next_left, next_right)
                target = numbering.get(pair)
                if target is None:
                    target = len(order)
                    numbering[pair] = target
                    order.append(pair)
                transitions.append((index, symbol_id, target))
            index += 1
        final = [numbering[pair] for pair in order if accepting(*pair)]
        return DFA(self.table, len(order), 0, final, transitions)

    def equivalent(self, other: "DFA") -> bool:
        """Language equality, decided via symmetric-difference emptiness."""
        alphabet = tuple(
            sorted(set(self.alphabet_ids()) | set(other.alphabet_ids()), key=self.table.sort_key)
        )
        return (
            self.product(other.complement(alphabet), "intersection").is_empty()
            and other.product(self.complement(alphabet), "intersection").is_empty()
        )

    # ------------------------------------------------------------------ #
    # canonicalisation
    # ------------------------------------------------------------------ #
    def trim(self) -> "DFA":
        """Restrict to states on some initial → final path (initial kept)."""
        reachable = {self.initial}
        frontier = [self.initial]
        while frontier:
            state = frontier.pop()
            for target in self._delta[state].values():
                if target not in reachable:
                    reachable.add(target)
                    frontier.append(target)
        predecessors: Dict[int, List[int]] = {}
        for source, _, target in self.transitions():
            predecessors.setdefault(target, []).append(source)
        productive = set(self.final)
        frontier = list(self.final)
        while frontier:
            state = frontier.pop()
            for source in predecessors.get(state, ()):
                if source not in productive:
                    productive.add(source)
                    frontier.append(source)
        useful = reachable & productive
        useful.add(self.initial)
        renumber = {state: index for index, state in enumerate(sorted(useful))}
        transitions = [
            (renumber[s], symbol_id, renumber[t])
            for s, symbol_id, t in self.transitions()
            if s in useful and t in useful
        ]
        return DFA(
            self.table,
            len(useful),
            renumber[self.initial],
            [renumber[s] for s in self.final if s in useful],
            transitions,
        )

    def minimize(self) -> "DFA":
        """The minimal trimmed DFA for the language (Moore partition refinement).

        The implicit dead sink is one block throughout, so the input need not
        be total; the result is again partial (dead transitions dropped) with
        states renumbered in canonical BFS order from the initial state.
        """
        trimmed = self.trim()
        alphabet = trimmed.alphabet_ids()
        # initial partition: final vs non-final (the sink lives in class _DEAD)
        classes = [1 if state in trimmed.final else 0 for state in range(trimmed.num_states)]
        while True:
            signatures: Dict[Tuple, int] = {}
            next_classes = [0] * trimmed.num_states
            for state in range(trimmed.num_states):
                row = trimmed._delta[state]
                signature = (
                    classes[state],
                    tuple(
                        classes[row[symbol_id]] if symbol_id in row else _DEAD
                        for symbol_id in alphabet
                    ),
                )
                block = signatures.setdefault(signature, len(signatures))
                next_classes[state] = block
            if next_classes == classes:
                break
            classes = next_classes

        # canonical numbering: BFS from the initial class in symbol-key order
        representative: Dict[int, int] = {}
        for state in range(trimmed.num_states):
            representative.setdefault(classes[state], state)
        numbering = {classes[trimmed.initial]: 0}
        order = [classes[trimmed.initial]]
        transitions: List[Tuple[int, int, int]] = []
        index = 0
        while index < len(order):
            block = order[index]
            row = trimmed._delta[representative[block]]
            for symbol_id in alphabet:
                if symbol_id not in row:
                    continue
                target_block = classes[row[symbol_id]]
                target = numbering.get(target_block)
                if target is None:
                    target = len(order)
                    numbering[target_block] = target
                    order.append(target_block)
                transitions.append((index, symbol_id, target))
            index += 1
        final = {
            numbering[classes[state]]
            for state in trimmed.final
            if classes[state] in numbering
        }
        return DFA(self.table, len(order), 0, final, transitions)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DFA(states={self.num_states}, final={sorted(self.final)}, "
            f"transitions={self.transition_count()})"
        )


# --------------------------------------------------------------------------- #
# NFA → DFA
# --------------------------------------------------------------------------- #
def determinize(nfa, table: Optional[SymbolTable] = None) -> DFA:
    """Subset-construct a :class:`DFA` from an ε-free NFA.

    Only reachable subsets are materialised, discovered in BFS order with
    symbols iterated by canonical key — the resulting state numbering is a
    pure function of the NFA, identical in every process.
    """
    # explicit None check: a fresh (empty) SymbolTable is falsy via __len__
    if table is None:
        table = symbol_table()
    alphabet: List[Tuple[str, Symbol, int]] = []
    for symbol in nfa.alphabet():
        symbol_id = table.intern(symbol)
        alphabet.append((table.sort_key(symbol_id), symbol, symbol_id))
    alphabet.sort(key=lambda entry: entry[0])

    start = frozenset(nfa.initial)
    numbering: Dict[FrozenSet[int], int] = {start: 0}
    order: List[FrozenSet[int]] = [start]
    transitions: List[Tuple[int, int, int]] = []
    index = 0
    while index < len(order):
        subset = order[index]
        for _, symbol, symbol_id in alphabet:
            successor = nfa.step(subset, symbol)
            if not successor:
                continue
            target = numbering.get(successor)
            if target is None:
                target = len(order)
                numbering[successor] = target
                order.append(successor)
            transitions.append((index, symbol_id, target))
        index += 1
    final = [numbering[subset] for subset in order if subset & nfa.final]
    return DFA(table, len(order), 0, final, transitions)
