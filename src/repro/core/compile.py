"""Memoized regex → automaton compilation.

One :class:`CompiledAutomaton` bundles everything the solvers repeatedly
derive from an atom's regular expression — the ε-free Thompson NFA, the
trimmed minimal DFA, the productive-cycle and emptiness flags and the
pumped-normal-form word lists — computed lazily, each exactly once, and
shared process-wide through the :func:`compile_regex` memo (keyed by the
structural regex, whose hash and canonical token are themselves cached on
the expression).

Two invariants matter for verdict stability (the engine's fingerprints are
asserted bit-identical across serial/thread/process backends *and* across
cached/uncached runs):

* the NFA is exactly ``build_nfa(regex)`` — memoization changes *when* it is
  built, never *what* is built, so state numbering (which leaks into the
  rolled-up TBox's fresh concept names) is unchanged;
* :meth:`CompiledAutomaton.words` returns the NFA's pumped-normal-form
  enumeration verbatim (same words, same order) — the DFA accelerates
  language-level queries, it does not redefine the solver's completeness
  bound.

Pickling a compiled automaton ships only its regex and context
(:meth:`CompiledAutomaton.__reduce__`); the receiving process re-interns the
symbols into *its* tables and recompiles through its own memo, so worker
processes rebuild from interned tables instead of unpickling transition
maps.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Optional, Tuple

from ..rpq.automaton import NFA, build_nfa
from ..rpq.regex import Regex, Symbol, canonical_token
from .dfa import DFA, determinize
from .interning import SymbolTable, symbol_table
from .kernels import DenseDFA

__all__ = [
    "CompiledAutomaton",
    "clear_compile_memo",
    "compile_regex",
    "has_productive_cycle",
    "install_compiled",
    "rebase_compiled",
]


def has_productive_cycle(nfa: NFA) -> bool:
    """``True`` when the (trimmed) automaton has a cycle, i.e. an infinite language.

    On a trimmed automaton every state is reachable and co-reachable, so any
    cycle pumps some accepted word.  This is the shared implementation behind
    the chase solver's finiteness test and the containment solver's
    ``pumped``-regime detection (both previously carried their own copy).
    """
    colour: Dict[int, int] = {}

    def dfs(state: int) -> bool:
        colour[state] = 1
        for _, target in nfa.transitions_from(state):
            if colour.get(target, 0) == 1:
                return True
            if colour.get(target, 0) == 0 and dfs(target):
                return True
        colour[state] = 2
        return False

    return any(dfs(state) for state in nfa.states if colour.get(state, 0) == 0)


class CompiledAutomaton:
    """A regex with every derived automaton artefact, each computed once.

    Instances are shared (via :func:`compile_regex` and the engine's automaton
    cache) and must be treated as immutable; the lazy fields are idempotent,
    so a benign race between threads at worst computes a value twice.
    """

    __slots__ = (
        "regex",
        "context",
        "table",
        "nfa",
        "_token",
        "_dfa",
        "_min_dfa",
        "_has_cycle",
        "_is_empty",
        "_words",
    )

    def __init__(self, regex: Regex, context: Optional[str] = None) -> None:
        self.regex = regex
        self.context = context
        self.table: SymbolTable = symbol_table(context)
        self.nfa: NFA = build_nfa(regex)
        self._token: Optional[str] = None
        self._dfa: Optional[DFA] = None
        self._min_dfa: Optional[DFA] = None
        self._has_cycle: Optional[bool] = None
        self._is_empty: Optional[bool] = None
        self._words: Dict[Tuple[int, int, int], Tuple[Tuple[Symbol, ...], ...]] = {}

    # ------------------------------------------------------------------ #
    @property
    def fingerprint(self) -> str:
        """The regex's canonical token — the memo/cache key material."""
        if self._token is None:
            self._token = canonical_token(self.regex)
        return self._token

    def dfa(self) -> DFA:
        """The subset-construction DFA (unminimised, reachable part only)."""
        if self._dfa is None:
            self._dfa = determinize(self.nfa, self.table)
        return self._dfa

    def minimal_dfa(self) -> DFA:
        """The trimmed minimal DFA — the canonical form of the language."""
        if self._min_dfa is None:
            self._min_dfa = self.dfa().minimize()
        return self._min_dfa

    def dense_minimal_dfa(self) -> "DenseDFA":
        """The minimal DFA's flat-array kernel form (memoized on the DFA).

        This is what the transport ships as a context seed and what the
        batch/emptiness kernels run on; it is derived from (and cached with)
        :meth:`minimal_dfa`, so it costs nothing extra after the first call.
        """
        return self.minimal_dfa().dense()

    def has_productive_cycle(self) -> bool:
        """Cached :func:`has_productive_cycle` of the NFA (infinite language?)."""
        if self._has_cycle is None:
            self._has_cycle = has_productive_cycle(self.nfa)
        return self._has_cycle

    def is_empty(self) -> bool:
        """Cached language-emptiness check."""
        if self._is_empty is None:
            self._is_empty = self.nfa.is_empty_language()
        return self._is_empty

    def shortest_witness(self) -> Optional[Tuple[Symbol, ...]]:
        """A shortest accepted word via DFA BFS (``None`` for the empty language)."""
        return self.minimal_dfa().shortest_witness()

    def words(
        self, max_length: int, max_state_repeats: int, max_words: int
    ) -> Tuple[Tuple[Symbol, ...], ...]:
        """The pumped-normal-form enumeration under the given bounds, memoized.

        Exactly ``tuple(nfa.enumerate_words(...))`` — word set *and* order —
        so solver verdicts, regimes and pattern counts are unchanged; repeat
        calls (per roll-up choice, per disjunct, per batch request) reuse the
        tuple instead of re-running the pumped search.
        """
        key = (max_length, max_state_repeats, max_words)
        cached = self._words.get(key)
        if cached is None:
            cached = tuple(
                self.nfa.enumerate_words(
                    max_length=max_length,
                    max_state_repeats=max_state_repeats,
                    max_words=max_words,
                )
            )
            self._words[key] = cached
        return cached

    # ------------------------------------------------------------------ #
    def __reduce__(self):
        # rebuild from the regex in the receiving process: symbols re-intern
        # into that process's tables and the compile memo deduplicates
        return (compile_regex, (self.regex, self.context))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CompiledAutomaton({self.regex!s}, states={self.nfa.state_count()})"


# --------------------------------------------------------------------------- #
# the process-wide compile memo
# --------------------------------------------------------------------------- #
_MEMO_LIMIT = 4096

_memo_lock = threading.Lock()
_memo: "OrderedDict[Tuple[Optional[str], Regex], CompiledAutomaton]" = OrderedDict()


def compile_regex(regex: Regex, context: Optional[str] = None) -> CompiledAutomaton:
    """The shared :class:`CompiledAutomaton` for *regex* (bounded LRU memo).

    *context* selects the symbol table (callers pass a schema fingerprint so
    one schema's automata intern into one table); the memo key includes it,
    so the same regex compiled under two schemas yields two entries — each
    pinned to its table — while lookups by structural equality make
    separately-constructed equal regexes share one compilation.
    """
    key = (context, regex)
    with _memo_lock:
        cached = _memo.get(key)
        if cached is not None:
            _memo.move_to_end(key)
            return cached
    compiled = CompiledAutomaton(regex, context)
    with _memo_lock:
        existing = _memo.get(key)
        if existing is not None:
            return existing
        _memo[key] = compiled
        while len(_memo) > _MEMO_LIMIT:
            _memo.popitem(last=False)
    return compiled


def rebase_compiled(bundle: CompiledAutomaton, context: Optional[str]) -> CompiledAutomaton:
    """A clone of *bundle* under a new intern context, sharing every artefact.

    The schema-evolution path uses this to migrate automata between
    fingerprint namespaces: the NFA, DFAs, flags and pumped word lists are
    schema-content-independent (they derive from the regex alone), so the
    clone references them directly — only the context string changes.  The
    caller must have arranged (via :func:`repro.core.interning.adopt_context`)
    that the new context resolves to the *same* :class:`SymbolTable` object;
    the clone pins ``bundle.table`` verbatim either way, so cross-automaton
    DFA operations keep comparing ids from one table.
    """
    clone = CompiledAutomaton.__new__(CompiledAutomaton)
    clone.regex = bundle.regex
    clone.context = context
    clone.table = bundle.table
    clone.nfa = bundle.nfa
    clone._token = bundle._token
    clone._dfa = bundle._dfa
    clone._min_dfa = bundle._min_dfa
    clone._has_cycle = bundle._has_cycle
    clone._is_empty = bundle._is_empty
    # an independent dict: later enumerations under one context must not
    # publish into the other bundle (the tuples themselves are shared)
    clone._words = dict(bundle._words)
    return clone


def install_compiled(bundle: CompiledAutomaton) -> CompiledAutomaton:
    """Insert *bundle* into the process-wide memo; returns the canonical entry.

    If the memo already holds a compilation for ``(bundle.context,
    bundle.regex)`` that one wins (first-writer semantics, exactly like
    :func:`compile_regex`'s double-checked insert) and is returned instead.
    """
    key = (bundle.context, bundle.regex)
    with _memo_lock:
        existing = _memo.get(key)
        if existing is not None:
            _memo.move_to_end(key)
            return existing
        _memo[key] = bundle
        while len(_memo) > _MEMO_LIMIT:
            _memo.popitem(last=False)
    return bundle


def clear_compile_memo() -> int:
    """Drop every memoized compilation (benchmarks use this for cold runs)."""
    with _memo_lock:
        count = len(_memo)
        _memo.clear()
    return count
