"""Prefix-sharing over witness-pattern enumeration.

The Theorem 6.1 solvers enumerate the *product* of per-atom word lists and
chase one materialised pattern per combination.  Combinations sharing a
prefix — the same words for the first ``k`` atoms — share the sub-pattern
those atoms materialise, and the chase is *monotone under homomorphisms*: a
pattern with a homomorphism into another pattern is consistent whenever the
larger one is (compose the homomorphisms into the model).  The prefix
pattern maps homomorphically into every full pattern extending it (later
atoms only add nodes, edges and labels, and merge variables — a quotient),
so **an inconsistent prefix refutes its entire subtree of combinations**.

:class:`PrefixPruner` exploits exactly that: it chases each distinct prefix
once (memoized — this is the incremental chase state shared across the
subtree) and lets the enumeration skip the chase for every combination below
an inconsistent prefix.  Pruning is verdict- and count-preserving by
construction: a pruned combination is one the full chase would have found
inconsistent anyway, so callers keep their pattern counters, regimes, result
order and witnesses bit-identical to the unpruned enumeration — only the
wasted chases disappear.

The pruner is deliberately dependency-free (the chase and pattern builder
arrive as callables) so it sits below both solver layers without import
cycles.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, Tuple

__all__ = ["PrefixPruner"]


class PrefixPruner:
    """Memoized prefix-inconsistency pruning for per-atom word combinations.

    ``build(atoms, words)`` materialises a pattern for a word choice over a
    prefix of the atoms (returning ``(graph, assignment)``) and
    ``check(graph)`` chases it, returning ``True`` for consistent.  Both are
    only ever called on *proper* prefixes — the full combination stays the
    caller's business.
    """

    def __init__(
        self,
        atoms: Sequence,
        word_lists: Sequence[Sequence],
        build: Callable,
        check: Callable,
    ) -> None:
        self.atoms = list(atoms)
        self.build = build
        self.check = check
        self._verdicts: Dict[Tuple, bool] = {}
        # A prefix of length k is only worth chasing when it fronts more than
        # one combination; suffix_products[k] counts the combinations below it.
        count = len(self.atoms)
        suffix_products = [1] * (count + 1)
        for position in range(count - 1, -1, -1):
            suffix_products[position] = suffix_products[position + 1] * max(
                len(word_lists[position]), 1
            )
        self.levels: List[int] = [
            k for k in range(1, count) if suffix_products[k] > 1
        ]
        self.prefix_chases = 0
        self.pruned = 0

    @property
    def useful(self) -> bool:
        """``False`` when no proper prefix fronts more than one combination."""
        return bool(self.levels)

    def prunes(self, combination: Sequence) -> bool:
        """``True`` when some proper prefix of *combination* is inconsistent.

        Each distinct prefix is chased at most once across the whole
        enumeration; deeper prefixes are only examined while the shallower
        ones are consistent.
        """
        for k in self.levels:
            prefix = tuple(combination[:k])
            verdict = self._verdicts.get(prefix)
            if verdict is None:
                graph, _ = self.build(self.atoms[:k], list(prefix))
                self.prefix_chases += 1
                verdict = bool(self.check(graph))
                self._verdicts[prefix] = verdict
            if not verdict:
                self.pruned += 1
                return True
        return False
