"""Benchmark harness for the compiled automaton core.

Three measurements, each returning a JSON-able report block (shared by
``benchmarks/bench_automaton_compile.py`` and ``python -m repro bench
--suite automata``):

* :func:`compile_benchmark` — cold versus memoized regex → automaton
  compilation (NFA + minimal DFA + cycle flag + pumped word list) over a
  deterministic, pumped-enumeration-heavy corpus;
* :func:`enumeration_benchmark` — re-running the NFA's pumped-normal-form
  enumeration on every request versus reusing the compiled automaton's
  memoized word tuple, plus a single-pass NFA-versus-minimal-DFA comparison
  (the deterministic automaton walks one run per word, the NFA's frontier
  carries duplicated runs it must dedupe);
* :func:`prefix_sharing_benchmark` — the Theorem 6.1 witness enumeration on
  a sparse-witness instance (every pattern refuted, first atoms refute
  early) with and without :class:`repro.core.PrefixPruner`, asserting the
  verdict, regime and pattern counter are bit-identical.

All corpora are fixed literals — no randomness, no environment probing — so
two runs on one machine measure the same work.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Tuple

from ..chase.solver import SatisfiabilityConfig, SatisfiabilitySolver
from ..dl import NoExistsCI, TBox, conj
from ..graph import forward
from ..rpq.automaton import build_nfa
from ..rpq.parser import parse_c2rpq, parse_regex
from .compile import clear_compile_memo, compile_regex

__all__ = [
    "compile_benchmark",
    "enumeration_benchmark",
    "prefix_sharing_benchmark",
    "regex_corpus",
    "run_report",
]

# Pumped-enumeration-heavy expressions in the style of Figure 4 / Example 6.2
# (sparse-witness instances): stars under concatenation, overlapping union
# branches (which make the NFA enumerate duplicate words) and inverse steps.
CORPUS_SPECS: Tuple[str, ...] = (
    "a . b . c+ . d . a",
    "a*",
    "a* . b . d . a*",
    "(a + b)* . c",
    "(a . b)+ + a . b . a . b",
    "(a + a . a)*",
    "b- . (a + c)* . b",
    "(a . (b + c))* . d?",
    "A . (a . b-)*",
    "(a + b + c)* . d . (a + b)*",
)

# word-enumeration bounds shared by every timing below (comparable numbers)
MAX_LENGTH = 10
MAX_STATE_REPEATS = 2
MAX_WORDS = 400


def regex_corpus():
    """The fixed benchmark corpus, parsed fresh on every call."""
    return tuple(parse_regex(spec) for spec in CORPUS_SPECS)


def _force_compile(regex) -> None:
    """Compile *regex* and force every lazily derived artefact."""
    automaton = compile_regex(regex)
    automaton.minimal_dfa()
    automaton.has_productive_cycle()
    automaton.words(MAX_LENGTH, MAX_STATE_REPEATS, MAX_WORDS)


def compile_benchmark(repeats: int = 5) -> Dict[str, Any]:
    """Cold versus memoized compilation over the corpus.

    A cold round clears the process-wide compile memo first, so every regex
    pays for NFA construction, subset construction, minimisation and the
    pumped enumeration; a memoized round replays the same requests against
    the warm memo.
    """
    repeats = max(1, repeats)
    cold_seconds = []
    warm_seconds = []
    for _ in range(repeats):
        corpus = regex_corpus()  # fresh ASTs: no cached hashes/tokens either
        clear_compile_memo()
        started = time.perf_counter()
        for regex in corpus:
            _force_compile(regex)
        cold_seconds.append(time.perf_counter() - started)

        started = time.perf_counter()
        for regex in corpus:
            _force_compile(regex)
        warm_seconds.append(time.perf_counter() - started)

    cold = min(cold_seconds)
    warm = min(warm_seconds)
    return {
        "regexes": len(CORPUS_SPECS),
        "repeats": repeats,
        "cold_seconds": cold,
        "memoized_seconds": warm,
        "speedup": (cold / warm) if warm else float("inf"),
    }


def enumeration_benchmark(requests: int = 50) -> Dict[str, Any]:
    """Per-request NFA enumeration versus the memoized word tuple.

    The pre-core solvers re-ran ``NFA.enumerate_words`` for every roll-up
    choice, disjunct and batch request touching the same atom; the compiled
    automaton hands back one shared tuple instead.  Also reports how many of
    the NFA's pumped words are duplicates (the minimal DFA enumerates each
    word of the language exactly once).
    """
    requests = max(1, requests)
    corpus = regex_corpus()
    nfas = [build_nfa(regex) for regex in corpus]

    started = time.perf_counter()
    for _ in range(requests):
        for nfa in nfas:
            tuple(
                nfa.enumerate_words(
                    max_length=MAX_LENGTH,
                    max_state_repeats=MAX_STATE_REPEATS,
                    max_words=MAX_WORDS,
                )
            )
    uncached = time.perf_counter() - started

    clear_compile_memo()
    automata = [compile_regex(regex) for regex in corpus]
    for automaton in automata:
        automaton.words(MAX_LENGTH, MAX_STATE_REPEATS, MAX_WORDS)  # warm once
    started = time.perf_counter()
    for _ in range(requests):
        for automaton in automata:
            automaton.words(MAX_LENGTH, MAX_STATE_REPEATS, MAX_WORDS)
    memoized = time.perf_counter() - started

    # single-pass comparison: the minimal DFA has exactly one run per word
    # (no duplicated frontier entries, no seen-set), so even while it covers
    # *more* of the language — it is not cut off by the state-repeat bound —
    # a pass over it is cheaper per word than the NFA's pumped search.
    # Build the DFAs *before* the timer: this measures enumeration, not
    # subset construction + minimisation (those are in compile_benchmark)
    for automaton in automata:
        automaton.minimal_dfa()
    started = time.perf_counter()
    nfa_words = sum(
        len(
            tuple(
                automaton.nfa.enumerate_words(
                    max_length=MAX_LENGTH,
                    max_state_repeats=MAX_STATE_REPEATS,
                    max_words=MAX_WORDS,
                )
            )
        )
        for automaton in automata
    )
    nfa_pass = time.perf_counter() - started
    started = time.perf_counter()
    dfa_words = sum(
        len(tuple(automaton.minimal_dfa().enumerate_words(MAX_LENGTH, MAX_WORDS)))
        for automaton in automata
    )
    dfa_pass = time.perf_counter() - started

    nfa_states = sum(automaton.nfa.state_count() for automaton in automata)
    dfa_states = sum(automaton.minimal_dfa().state_count() for automaton in automata)
    return {
        "requests_per_regex": requests,
        "uncached_seconds": uncached,
        "memoized_seconds": memoized,
        "speedup": (uncached / memoized) if memoized else float("inf"),
        "nfa_states": nfa_states,
        "minimal_dfa_states": dfa_states,
        "nfa_pass_seconds": nfa_pass,
        "dfa_pass_seconds": dfa_pass,
        "nfa_words": nfa_words,
        "dfa_words": dfa_words,
        "nfa_microseconds_per_word": (nfa_pass / nfa_words * 1e6) if nfa_words else None,
        "dfa_microseconds_per_word": (dfa_pass / dfa_words * 1e6) if dfa_words else None,
    }


def _sparse_witness_instance() -> Tuple[TBox, Any, SatisfiabilityConfig]:
    """An unsatisfiable sparse-witness instance where prefixes refute early.

    The TBox forbids any outgoing ``r`` edge from an ``A``-labeled node, the
    query's leading atoms force exactly that edge, and the trailing atoms
    contribute large pumped word lists — so every one of the (up to)
    ``max_patterns`` enumerated patterns is inconsistent, and the
    inconsistency is already visible on the two-atom prefix the pruner
    chases once per word.
    """
    tbox = TBox([NoExistsCI(conj("A"), forward("r"), conj())])
    query = parse_c2rpq(
        "q() := A(x), (r . (s + t)*)(x, y), ((s + t)* . u?)(y, z)"
    ).boolean()
    config = SatisfiabilityConfig(
        max_word_length=8,
        max_state_repeats=2,
        max_words_per_atom=40,
        max_patterns=5_000,
    )
    return tbox, query, config


def prefix_sharing_benchmark() -> Dict[str, Any]:
    """The witness enumeration with and without prefix sharing.

    Raises :class:`RuntimeError` if sharing changes the verdict, the regime
    or the pattern counter — the pruning must be observationally invisible
    apart from time.  (A real exception, not ``assert``: the check must
    survive ``python -O`` and CLI runs.)
    """
    tbox, query, config = _sparse_witness_instance()

    independent_config = SatisfiabilityConfig(
        max_word_length=config.max_word_length,
        max_state_repeats=config.max_state_repeats,
        max_words_per_atom=config.max_words_per_atom,
        max_patterns=config.max_patterns,
        share_prefixes=False,
    )
    started = time.perf_counter()
    independent = SatisfiabilitySolver(tbox, independent_config).is_satisfiable(query)
    independent_seconds = time.perf_counter() - started

    started = time.perf_counter()
    shared = SatisfiabilitySolver(tbox, config).is_satisfiable(query)
    shared_seconds = time.perf_counter() - started

    if (
        shared.satisfiable != independent.satisfiable
        or shared.regime != independent.regime
        or shared.patterns_checked != independent.patterns_checked
    ):
        raise RuntimeError(
            "prefix sharing changed the observable outcome: "
            f"shared=({shared.satisfiable}, {shared.regime}, {shared.patterns_checked}) "
            f"independent=({independent.satisfiable}, {independent.regime}, "
            f"{independent.patterns_checked})"
        )
    return {
        "satisfiable": shared.satisfiable,
        "regime": shared.regime,
        "patterns_checked": shared.patterns_checked,
        "independent_seconds": independent_seconds,
        "shared_seconds": shared_seconds,
        "speedup": (independent_seconds / shared_seconds) if shared_seconds else float("inf"),
    }


def run_report(repeats: int = 5, requests: int = 50) -> Dict[str, Any]:
    """The full automata-suite report for ``python -m repro bench --suite automata``."""
    return {
        "suite": "automata",
        "compile": compile_benchmark(repeats=repeats),
        "enumeration": enumeration_benchmark(requests=requests),
        "prefix_sharing": prefix_sharing_benchmark(),
    }


def summary(report: Dict[str, Any]) -> str:
    """A human-readable three-line summary of :func:`run_report`'s output."""
    compile_block = report["compile"]
    enumeration = report["enumeration"]
    sharing = report["prefix_sharing"]
    lines: List[str] = [
        (
            f"compile: {compile_block['regexes']} regexes — cold "
            f"{compile_block['cold_seconds'] * 1000:.2f} ms, memoized "
            f"{compile_block['memoized_seconds'] * 1000:.2f} ms "
            f"({compile_block['speedup']:.1f}x)"
        ),
        (
            f"enumeration: uncached {enumeration['uncached_seconds'] * 1000:.1f} ms, "
            f"memoized {enumeration['memoized_seconds'] * 1000:.1f} ms "
            f"({enumeration['speedup']:.1f}x); minimal DFAs use "
            f"{enumeration['minimal_dfa_states']} states vs {enumeration['nfa_states']} NFA states"
        ),
        (
            f"prefix sharing: {sharing['patterns_checked']} patterns — independent "
            f"{sharing['independent_seconds'] * 1000:.1f} ms, shared "
            f"{sharing['shared_seconds'] * 1000:.1f} ms ({sharing['speedup']:.1f}x)"
        ),
    ]
    return "\n".join(lines)
