"""Benchmark harness for the compiled automaton core.

Four measurements, each returning a JSON-able report block (shared by
``benchmarks/bench_automaton_compile.py`` and ``python -m repro bench
--suite automata``):

* :func:`compile_benchmark` — cold versus memoized regex → automaton
  compilation (NFA + minimal DFA + cycle flag + pumped word list) over a
  deterministic, pumped-enumeration-heavy corpus;
* :func:`enumeration_benchmark` — re-running the NFA's pumped-normal-form
  enumeration on every request versus reusing the compiled automaton's
  memoized word tuple, plus a single-pass NFA-versus-minimal-DFA comparison
  (the deterministic automaton walks one run per word, the NFA's frontier
  carries duplicated runs it must dedupe);
* :func:`kernel_benchmark` — per-kernel rows pitting the historical
  dict-walk implementations (kept verbatim as references) against the dense
  flat-array / bitset kernels the public API routes through, with word-for-
  word equality checked in-harness before any clock starts — a regression
  names the guilty kernel, not a downstream verdict;
* :func:`prefix_sharing_benchmark` — the Theorem 6.1 witness enumeration on
  a sparse-witness instance (every pattern refuted, first atoms refute
  early) with and without :class:`repro.core.PrefixPruner`, asserting the
  verdict, regime and pattern counter are bit-identical.

All corpora are fixed literals — no randomness, no environment probing — so
two runs on one machine measure the same work.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Tuple

from ..chase.solver import SatisfiabilityConfig, SatisfiabilitySolver
from ..dl import NoExistsCI, TBox, conj
from ..graph import forward
from ..rpq.automaton import build_nfa
from ..rpq.parser import parse_c2rpq, parse_regex
from .compile import clear_compile_memo, compile_regex
from .kernels import numpy_module

__all__ = [
    "compile_benchmark",
    "enumeration_benchmark",
    "kernel_benchmark",
    "prefix_sharing_benchmark",
    "regex_corpus",
    "run_report",
]

# Pumped-enumeration-heavy expressions in the style of Figure 4 / Example 6.2
# (sparse-witness instances): stars under concatenation, overlapping union
# branches (which make the NFA enumerate duplicate words) and inverse steps.
CORPUS_SPECS: Tuple[str, ...] = (
    "a . b . c+ . d . a",
    "a*",
    "a* . b . d . a*",
    "(a + b)* . c",
    "(a . b)+ + a . b . a . b",
    "(a + a . a)*",
    "b- . (a + c)* . b",
    "(a . (b + c))* . d?",
    "A . (a . b-)*",
    "(a + b + c)* . d . (a + b)*",
)

# word-enumeration bounds shared by every timing below (comparable numbers)
MAX_LENGTH = 10
MAX_STATE_REPEATS = 2
MAX_WORDS = 400


def regex_corpus():
    """The fixed benchmark corpus, parsed fresh on every call."""
    return tuple(parse_regex(spec) for spec in CORPUS_SPECS)


def _force_compile(regex) -> None:
    """Compile *regex* and force every lazily derived artefact."""
    automaton = compile_regex(regex)
    automaton.minimal_dfa()
    automaton.has_productive_cycle()
    automaton.words(MAX_LENGTH, MAX_STATE_REPEATS, MAX_WORDS)


def compile_benchmark(repeats: int = 5) -> Dict[str, Any]:
    """Cold versus memoized compilation over the corpus.

    A cold round clears the process-wide compile memo first, so every regex
    pays for NFA construction, subset construction, minimisation and the
    pumped enumeration; a memoized round replays the same requests against
    the warm memo.
    """
    repeats = max(1, repeats)
    cold_seconds = []
    warm_seconds = []
    for _ in range(repeats):
        corpus = regex_corpus()  # fresh ASTs: no cached hashes/tokens either
        clear_compile_memo()
        started = time.perf_counter()
        for regex in corpus:
            _force_compile(regex)
        cold_seconds.append(time.perf_counter() - started)

        started = time.perf_counter()
        for regex in corpus:
            _force_compile(regex)
        warm_seconds.append(time.perf_counter() - started)

    cold = min(cold_seconds)
    warm = min(warm_seconds)
    return {
        "regexes": len(CORPUS_SPECS),
        "repeats": repeats,
        "cold_seconds": cold,
        "memoized_seconds": warm,
        "speedup": (cold / warm) if warm else float("inf"),
    }


def enumeration_benchmark(requests: int = 50) -> Dict[str, Any]:
    """Per-request NFA enumeration versus the memoized word tuple.

    The pre-core solvers re-ran ``NFA.enumerate_words`` for every roll-up
    choice, disjunct and batch request touching the same atom; the compiled
    automaton hands back one shared tuple instead.  Also reports how many of
    the NFA's pumped words are duplicates (the minimal DFA enumerates each
    word of the language exactly once).
    """
    requests = max(1, requests)
    corpus = regex_corpus()
    nfas = [build_nfa(regex) for regex in corpus]

    started = time.perf_counter()
    for _ in range(requests):
        for nfa in nfas:
            tuple(
                nfa.enumerate_words(
                    max_length=MAX_LENGTH,
                    max_state_repeats=MAX_STATE_REPEATS,
                    max_words=MAX_WORDS,
                )
            )
    uncached = time.perf_counter() - started

    clear_compile_memo()
    automata = [compile_regex(regex) for regex in corpus]
    for automaton in automata:
        automaton.words(MAX_LENGTH, MAX_STATE_REPEATS, MAX_WORDS)  # warm once
    started = time.perf_counter()
    for _ in range(requests):
        for automaton in automata:
            automaton.words(MAX_LENGTH, MAX_STATE_REPEATS, MAX_WORDS)
    memoized = time.perf_counter() - started

    # single-pass comparison: the minimal DFA has exactly one run per word
    # (no duplicated frontier entries, no seen-set), so even while it covers
    # *more* of the language — it is not cut off by the state-repeat bound —
    # a pass over it is cheaper per word than the NFA's pumped search.
    # Build the DFAs *before* the timer: this measures enumeration, not
    # subset construction + minimisation (those are in compile_benchmark)
    for automaton in automata:
        automaton.minimal_dfa()
    started = time.perf_counter()
    nfa_words = sum(
        len(
            tuple(
                automaton.nfa.enumerate_words(
                    max_length=MAX_LENGTH,
                    max_state_repeats=MAX_STATE_REPEATS,
                    max_words=MAX_WORDS,
                )
            )
        )
        for automaton in automata
    )
    nfa_pass = time.perf_counter() - started
    started = time.perf_counter()
    dfa_words = sum(
        len(tuple(automaton.minimal_dfa().enumerate_words(MAX_LENGTH, MAX_WORDS)))
        for automaton in automata
    )
    dfa_pass = time.perf_counter() - started

    nfa_states = sum(automaton.nfa.state_count() for automaton in automata)
    dfa_states = sum(automaton.minimal_dfa().state_count() for automaton in automata)
    return {
        "requests_per_regex": requests,
        "uncached_seconds": uncached,
        "memoized_seconds": memoized,
        "speedup": (uncached / memoized) if memoized else float("inf"),
        "nfa_states": nfa_states,
        "minimal_dfa_states": dfa_states,
        "nfa_pass_seconds": nfa_pass,
        "dfa_pass_seconds": dfa_pass,
        "nfa_words": nfa_words,
        "dfa_words": dfa_words,
        "nfa_microseconds_per_word": (nfa_pass / nfa_words * 1e6) if nfa_words else None,
        "dfa_microseconds_per_word": (dfa_pass / dfa_words * 1e6) if dfa_words else None,
    }


def _kernel_row(dictwalk_seconds: float, kernel_seconds: float, words: int) -> Dict[str, Any]:
    """One report row comparing the historical dict walk with the kernel."""
    return {
        "dictwalk_seconds": dictwalk_seconds,
        "kernel_seconds": kernel_seconds,
        "words": words,
        "dictwalk_microseconds_per_word": (dictwalk_seconds / words * 1e6) if words else None,
        "kernel_microseconds_per_word": (kernel_seconds / words * 1e6) if words else None,
        "speedup": (dictwalk_seconds / kernel_seconds) if kernel_seconds else float("inf"),
    }


def kernel_benchmark(requests: int = 50) -> Dict[str, Any]:
    """Per-kernel dict-walk versus dense/bitset timings, equality-checked.

    Each row times the *same* operation twice in the warm-object regime the
    solvers actually run in (automata compiled once, then queried per
    request — the regime of ``enumeration_benchmark``'s uncached row): the
    historical dict-walk implementation, kept verbatim as the reference, and
    the kernel path the public API now routes through.  Before any clock
    starts, every word list and acceptance vector is checked element-for-
    element against the reference — a mismatch raises :class:`RuntimeError`
    (a real exception, not ``assert``: the check must survive ``python -O``),
    so a regression names the guilty kernel instead of showing up as a wrong
    verdict three layers up.

    Rows:

    * ``nfa_enumeration`` — the pumped-normal-form search of Theorem 6.1
      (the dominant uncached cost: byte-lane visit counters and presorted
      int adjacency versus dict frontiers); this is the path the ≥5x
      acceptance gate covers.
    * ``dfa_enumeration`` — minimal-DFA word enumeration (dense rows with
      precomputed distance-to-final budgets versus dict rows).  Both sides
      pay the same per-word tuple materialisation — building the emitted
      ``word + (symbol,)`` tuples dominates at these automaton sizes — which
      puts a structural ceiling of roughly 3x on this row; the gate is ≥2x.
    * ``batch_acceptance`` — id-word batches through
      :meth:`DenseDFA.accepts_batch` versus a per-word dict walk.  Reported
      and parity-checked but not gated: the stdlib walk early-exits on the
      dead sink, which no batch formulation can, so the dense win here is
      modest and the numpy path only engages on very large batches.

    ``numpy`` records whether the optional accelerator was importable and
    enabled — outputs are identical either way, only timings move.
    """
    requests = max(1, requests)
    corpus = regex_corpus()
    clear_compile_memo()
    automata = [compile_regex(regex) for regex in corpus]
    nfas = [automaton.nfa for automaton in automata]
    dfas = [automaton.minimal_dfa() for automaton in automata]

    # --- equality first, clocks second ---------------------------------- #
    nfa_words = 0
    for nfa in nfas:
        reference = tuple(
            nfa._enumerate_words_dictwalk(MAX_LENGTH, MAX_STATE_REPEATS, MAX_WORDS)
        )
        kernel = tuple(
            nfa.enumerate_words(
                max_length=MAX_LENGTH,
                max_state_repeats=MAX_STATE_REPEATS,
                max_words=MAX_WORDS,
            )
        )
        if kernel != reference:
            raise RuntimeError(
                f"NFA kernel enumeration diverged from the dict walk for {nfa!r}: "
                f"{len(kernel)} kernel words vs {len(reference)} reference words"
            )
        nfa_words += len(reference)

    dfa_words = 0
    batch_words: List[Tuple[Any, List[Tuple[int, ...]]]] = []
    for dfa in dfas:
        reference = tuple(dfa._enumerate_words_dictwalk(MAX_LENGTH, MAX_WORDS))
        kernel = tuple(dfa.enumerate_words(MAX_LENGTH, MAX_WORDS))
        if kernel != reference:
            raise RuntimeError(
                f"DFA kernel enumeration diverged from the dict walk: "
                f"{len(kernel)} kernel words vs {len(reference)} reference words"
            )
        dfa_words += len(reference)
        # batch-acceptance inputs: every enumerated word (accepted), each
        # word minus its last letter (usually rejected) and one word with an
        # id the automaton has never seen (always rejected)
        ids = [tuple(dfa.table.known(symbol) for symbol in word) for word in reference]
        ids.extend(word[:-1] for word in ids[:] if word)
        unknown = (max(dfa.alphabet_ids(), default=0) + 999,)
        ids.append(unknown)
        expected = [dfa.accepts_ids(word) for word in ids]
        if dfa.dense().accepts_batch(ids) != expected:
            raise RuntimeError("DenseDFA.accepts_batch diverged from the per-word dict walk")
        batch_words.append((dfa, ids))
    batch_count = sum(len(ids) for _, ids in batch_words)

    # best-of-*rounds* timing (like compile_benchmark): per-request ratios
    # on a sub-millisecond workload are noisy, minima are stable
    rounds = 3

    def best_of(body) -> float:
        best = float("inf")
        for _ in range(rounds):
            started = time.perf_counter()
            for _ in range(requests):
                body()
            elapsed = time.perf_counter() - started
            if elapsed < best:
                best = elapsed
        return best

    def nfa_dictwalk_round() -> None:
        for nfa in nfas:
            tuple(nfa._enumerate_words_dictwalk(MAX_LENGTH, MAX_STATE_REPEATS, MAX_WORDS))

    def nfa_kernel_round() -> None:
        for nfa in nfas:
            tuple(
                nfa.enumerate_words(
                    max_length=MAX_LENGTH,
                    max_state_repeats=MAX_STATE_REPEATS,
                    max_words=MAX_WORDS,
                )
            )

    def dfa_dictwalk_round() -> None:
        for dfa in dfas:
            tuple(dfa._enumerate_words_dictwalk(MAX_LENGTH, MAX_WORDS))

    def dfa_kernel_round() -> None:
        for dfa in dfas:
            tuple(dfa.enumerate_words(MAX_LENGTH, MAX_WORDS))

    def batch_dictwalk_round() -> None:
        for dfa, ids in batch_words:
            for word in ids:
                dfa.accepts_ids(word)

    def batch_kernel_round() -> None:
        for dfa, ids in batch_words:
            dfa.dense().accepts_batch(ids)

    nfa_dictwalk = best_of(nfa_dictwalk_round)
    nfa_kernel = best_of(nfa_kernel_round)
    dfa_dictwalk = best_of(dfa_dictwalk_round)
    dfa_kernel = best_of(dfa_kernel_round)
    batch_dictwalk = best_of(batch_dictwalk_round)
    batch_kernel = best_of(batch_kernel_round)

    return {
        "requests_per_regex": requests,
        "numpy": numpy_module() is not None,
        "nfa_enumeration": _kernel_row(nfa_dictwalk, nfa_kernel, nfa_words * requests),
        "dfa_enumeration": _kernel_row(dfa_dictwalk, dfa_kernel, dfa_words * requests),
        "batch_acceptance": _kernel_row(batch_dictwalk, batch_kernel, batch_count * requests),
    }


def _sparse_witness_instance() -> Tuple[TBox, Any, SatisfiabilityConfig]:
    """An unsatisfiable sparse-witness instance where prefixes refute early.

    The TBox forbids any outgoing ``r`` edge from an ``A``-labeled node, the
    query's leading atoms force exactly that edge, and the trailing atoms
    contribute large pumped word lists — so every one of the (up to)
    ``max_patterns`` enumerated patterns is inconsistent, and the
    inconsistency is already visible on the two-atom prefix the pruner
    chases once per word.
    """
    tbox = TBox([NoExistsCI(conj("A"), forward("r"), conj())])
    query = parse_c2rpq(
        "q() := A(x), (r . (s + t)*)(x, y), ((s + t)* . u?)(y, z)"
    ).boolean()
    config = SatisfiabilityConfig(
        max_word_length=8,
        max_state_repeats=2,
        max_words_per_atom=40,
        max_patterns=5_000,
    )
    return tbox, query, config


def prefix_sharing_benchmark() -> Dict[str, Any]:
    """The witness enumeration with and without prefix sharing.

    Raises :class:`RuntimeError` if sharing changes the verdict, the regime
    or the pattern counter — the pruning must be observationally invisible
    apart from time.  (A real exception, not ``assert``: the check must
    survive ``python -O`` and CLI runs.)
    """
    tbox, query, config = _sparse_witness_instance()

    independent_config = SatisfiabilityConfig(
        max_word_length=config.max_word_length,
        max_state_repeats=config.max_state_repeats,
        max_words_per_atom=config.max_words_per_atom,
        max_patterns=config.max_patterns,
        share_prefixes=False,
    )
    started = time.perf_counter()
    independent = SatisfiabilitySolver(tbox, independent_config).is_satisfiable(query)
    independent_seconds = time.perf_counter() - started

    started = time.perf_counter()
    shared = SatisfiabilitySolver(tbox, config).is_satisfiable(query)
    shared_seconds = time.perf_counter() - started

    if (
        shared.satisfiable != independent.satisfiable
        or shared.regime != independent.regime
        or shared.patterns_checked != independent.patterns_checked
    ):
        raise RuntimeError(
            "prefix sharing changed the observable outcome: "
            f"shared=({shared.satisfiable}, {shared.regime}, {shared.patterns_checked}) "
            f"independent=({independent.satisfiable}, {independent.regime}, "
            f"{independent.patterns_checked})"
        )
    return {
        "satisfiable": shared.satisfiable,
        "regime": shared.regime,
        "patterns_checked": shared.patterns_checked,
        "independent_seconds": independent_seconds,
        "shared_seconds": shared_seconds,
        "speedup": (independent_seconds / shared_seconds) if shared_seconds else float("inf"),
    }


def run_report(repeats: int = 5, requests: int = 50) -> Dict[str, Any]:
    """The full automata-suite report for ``python -m repro bench --suite automata``."""
    return {
        "suite": "automata",
        "compile": compile_benchmark(repeats=repeats),
        "enumeration": enumeration_benchmark(requests=requests),
        "kernels": kernel_benchmark(requests=requests),
        "prefix_sharing": prefix_sharing_benchmark(),
    }


def summary(report: Dict[str, Any]) -> str:
    """A human-readable per-measurement summary of :func:`run_report`'s output."""
    compile_block = report["compile"]
    enumeration = report["enumeration"]
    kernels = report["kernels"]
    sharing = report["prefix_sharing"]
    lines: List[str] = [
        (
            f"compile: {compile_block['regexes']} regexes — cold "
            f"{compile_block['cold_seconds'] * 1000:.2f} ms, memoized "
            f"{compile_block['memoized_seconds'] * 1000:.2f} ms "
            f"({compile_block['speedup']:.1f}x)"
        ),
        (
            f"enumeration: uncached {enumeration['uncached_seconds'] * 1000:.1f} ms, "
            f"memoized {enumeration['memoized_seconds'] * 1000:.1f} ms "
            f"({enumeration['speedup']:.1f}x); minimal DFAs use "
            f"{enumeration['minimal_dfa_states']} states vs {enumeration['nfa_states']} NFA states"
        ),
        (
            "kernels ({}): nfa enumeration {:.2f} -> {:.2f} us/word ({:.1f}x), "
            "dfa enumeration {:.2f} -> {:.2f} us/word ({:.1f}x), "
            "batch acceptance {:.1f}x".format(
                "numpy" if kernels["numpy"] else "stdlib",
                kernels["nfa_enumeration"]["dictwalk_microseconds_per_word"],
                kernels["nfa_enumeration"]["kernel_microseconds_per_word"],
                kernels["nfa_enumeration"]["speedup"],
                kernels["dfa_enumeration"]["dictwalk_microseconds_per_word"],
                kernels["dfa_enumeration"]["kernel_microseconds_per_word"],
                kernels["dfa_enumeration"]["speedup"],
                kernels["batch_acceptance"]["speedup"],
            )
        ),
        (
            f"prefix sharing: {sharing['patterns_checked']} patterns — independent "
            f"{sharing['independent_seconds'] * 1000:.1f} ms, shared "
            f"{sharing['shared_seconds'] * 1000:.1f} ms ({sharing['speedup']:.1f}x)"
        ),
    ]
    return "\n".join(lines)
