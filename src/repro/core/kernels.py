"""Vectorized automaton kernels: dense transition tables and bitset state sets.

The dict-of-dict transition maps in :mod:`repro.core.dfa` are the right
*construction* representation — partial, growable, validated — but the wrong
*execution* one: every hot operation (product, emptiness, witness search,
word enumeration, batched acceptance) pays a dict lookup plus a per-step
``sorted(..., key=sort_key)`` for the canonical symbol order.  This module
re-represents the compiled automata as flat integer arrays and int bitsets
so those operations become array sweeps:

* :class:`DenseDFA` — one flat ``num_states × alphabet`` transition table in
  an ``array('i')`` (``-1`` is the dead sink).  Columns are the automaton's
  used symbol ids in **canonical-key order**, so a left-to-right sweep over
  a row *is* the canonical symbol iteration and no sorting ever happens on a
  hot path.  The backing buffer is contiguous and typed, which makes it
  zero-copy shareable: the transport's context seeds ship ``tobytes()`` of
  the table and the worker rebuilds with :meth:`DenseDFA.from_bytes`
  (see :mod:`repro.engine.transport`).
* int-bitset NFA state-set kernels — :func:`bitset_closure` (ε-closure /
  reachability over sparse edges), :func:`subset_construct` (the bitset
  subset construction behind :func:`repro.core.dfa.determinize`) and
  :func:`enumerate_nfa_words` (the pumped-normal-form enumeration of
  :meth:`repro.rpq.automaton.NFA.enumerate_words`, run over precomputed
  sorted adjacency, int-tuple partial words and byte-lane visit counters
  packed into one int, instead of per-step ``repr``-keyed sorts and dict
  copies).

Every kernel is **stdlib-only**.  When numpy is importable it is used as a
pure accelerator for the batch kernels (:meth:`DenseDFA.accepts_batch` and
the BFS sweeps); ``REPRO_NO_NUMPY=1`` — or numpy simply being absent —
falls back to the stdlib implementations with **identical outputs**: the
numpy paths compute the same reachable sets, the same distances and the
same acceptance booleans, never a reordered or approximated result.  CI
runs the differential suite under both paths and asserts fingerprint
identity, so numpy can never become a correctness dependency.
"""

from __future__ import annotations

import os
from array import array
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple

__all__ = [
    "NUMPY_DISABLE_VARIABLE",
    "DenseDFA",
    "bitset_closure",
    "enumerate_nfa_words",
    "numpy_disabled",
    "numpy_module",
    "subset_construct",
]

#: Setting this environment variable to anything but ``0``/empty forces the
#: stdlib kernels even when numpy is importable (CI runs the automata gate
#: and the differential smoke both ways and asserts fingerprint identity).
NUMPY_DISABLE_VARIABLE = "REPRO_NO_NUMPY"

_NUMPY_UNSET = object()
_numpy: Any = _NUMPY_UNSET

#: numpy pays tens of microseconds of per-operation overhead, which loses to
#: the stdlib loops on the small automata the regex corpus compiles to; the
#: vectorised paths only engage above these sizes (outputs are identical
#: either way — these are measured crossover points, not load-bearing).  The
#: distance/reachability sweeps win 2–4x above ~256 states; the batched
#: acceptance gather cannot use the stdlib walk's early dead-state exit, so
#: it only approaches parity on very large batches and the threshold is
#: deliberately conservative.
NUMPY_MIN_STATES = 256
NUMPY_MIN_BATCH = 4096


def numpy_disabled() -> bool:
    """``True`` when ``REPRO_NO_NUMPY`` forces the stdlib kernels."""
    return os.environ.get(NUMPY_DISABLE_VARIABLE, "").strip() not in ("", "0")


def numpy_module() -> Optional[Any]:
    """The numpy module when importable and not disabled, else ``None``.

    The import is attempted once per process; the environment variable is
    re-checked on every call so tests can flip the fallback at runtime.
    numpy is strictly an accelerator — every caller has a stdlib path with
    identical outputs.
    """
    global _numpy
    if numpy_disabled():
        return None
    if _numpy is _NUMPY_UNSET:
        try:
            import numpy  # noqa: PLC0415 - optional accelerator, probed lazily

            _numpy = numpy
        except Exception:  # noqa: BLE001 - any import failure means "no numpy"
            _numpy = None
    return _numpy


# --------------------------------------------------------------------------- #
# the dense DFA
# --------------------------------------------------------------------------- #
class DenseDFA:
    """A DFA's transition function as one flat ``num_states × width`` array.

    ``table[state * width + column]`` is the successor state (``-1`` for the
    dead sink); column ``k`` carries the symbol id ``alphabet[k]``, and
    ``alphabet`` is canonically ordered — sweeping a row left to right is the
    deterministic symbol iteration every core operation sorts for.

    The object is purely numeric (states and symbol ids, no symbol objects,
    no table reference), so it is safe to ship across process boundaries:
    the transport pickles ``(num_states, initial, final, alphabet,
    tobytes())`` and the worker reattaches with :meth:`from_bytes` without
    re-deriving a single transition.
    """

    __slots__ = (
        "num_states",
        "initial",
        "final",
        "alphabet",
        "width",
        "table",
        "transitions",
        "_column",
        "_final_flags",
        "_distances",
        "_numpy_views",
    )

    def __init__(
        self,
        num_states: int,
        initial: int,
        final: Iterable[int],
        alphabet: Sequence[int],
        table: array,
    ) -> None:
        self.num_states = num_states
        self.initial = initial
        self.final: Tuple[int, ...] = tuple(sorted(final))
        self.alphabet: Tuple[int, ...] = tuple(alphabet)
        self.width = len(self.alphabet)
        if len(table) != num_states * self.width:
            raise ValueError(
                f"dense table of {len(table)} entries does not match "
                f"{num_states} states x {self.width} symbols"
            )
        self.table = table
        # -1 is the only negative the constructions ever write, so the dead
        # entries can be counted at C speed instead of a Python sweep
        self.transitions = len(table) - table.count(-1)
        self._column: Dict[int, int] = {
            symbol_id: column for column, symbol_id in enumerate(self.alphabet)
        }
        final_flags = bytearray(num_states)
        for state in self.final:
            final_flags[state] = 1
        self._final_flags = bytes(final_flags)
        self._distances: Optional[Tuple[int, ...]] = None
        self._numpy_views: Optional[Tuple[Any, Any, Any]] = None

    # ------------------------------------------------------------------ #
    # construction / wire form
    # ------------------------------------------------------------------ #
    @classmethod
    def from_rows(
        cls,
        num_states: int,
        initial: int,
        final: Iterable[int],
        alphabet: Sequence[int],
        rows: Sequence[Dict[int, int]],
    ) -> "DenseDFA":
        """Build from per-state ``dict[symbol id, target]`` rows (the DFA form)."""
        width = len(alphabet)
        table = array("i", bytes(0)) if width == 0 else array("i", [-1]) * (num_states * width)
        for state, row in enumerate(rows):
            base = state * width
            for column, symbol_id in enumerate(alphabet):
                target = row.get(symbol_id)
                if target is not None:
                    table[base + column] = target
        return cls(num_states, initial, final, alphabet, table)

    @classmethod
    def from_bytes(
        cls,
        num_states: int,
        initial: int,
        final: Iterable[int],
        alphabet: Sequence[int],
        buffer: bytes,
    ) -> "DenseDFA":
        """Reattach a table shipped as :meth:`tobytes` output (the seed path)."""
        table = array("i", bytes(0))
        table.frombytes(buffer)
        return cls(num_states, initial, final, alphabet, table)

    def tobytes(self) -> bytes:
        """The flat table buffer — the transport's context-seed payload."""
        return self.table.tobytes()

    # ------------------------------------------------------------------ #
    # single-word operations
    # ------------------------------------------------------------------ #
    def column(self, symbol_id: int) -> int:
        """The table column of *symbol_id* (``-1`` when the DFA never reads it)."""
        return self._column.get(symbol_id, -1)

    def successor(self, state: int, symbol_id: int) -> int:
        """δ(state, symbol) — ``-1`` is the dead sink."""
        column = self._column.get(symbol_id)
        if column is None:
            return -1
        return self.table[state * self.width + column]

    def accepts_ids(self, ids: Sequence[int]) -> bool:
        """Run one id word through the table."""
        state = self.initial
        table, width, columns = self.table, self.width, self._column
        for symbol_id in ids:
            column = columns.get(symbol_id)
            if column is None:
                return False
            state = table[state * width + column]
            if state < 0:
                return False
        return bool(self._final_flags[state])

    # ------------------------------------------------------------------ #
    # batched word acceptance
    # ------------------------------------------------------------------ #
    def accepts_batch(self, words: Sequence[Sequence[int]]) -> List[bool]:
        """Acceptance of many id words at once.

        The numpy fast path steps every word simultaneously (one fancy-index
        gather per position); the stdlib path walks each word.  Outputs are
        identical booleans in input order.
        """
        np = numpy_module()
        if np is not None and len(words) >= NUMPY_MIN_BATCH and self.width:
            return self._accepts_batch_numpy(np, words)
        accepts = self.accepts_ids
        return [accepts(ids) for ids in words]

    def _numpy_tables(self, np: Any) -> Tuple[Any, Any, Any]:
        """Cached numpy views: 2-D table, final flags, symbol id → column LUT."""
        views = self._numpy_views
        if views is None:
            table2d = np.frombuffer(self.table.tobytes(), dtype=np.intc).reshape(
                self.num_states, self.width
            ).astype(np.int64, copy=False)
            final_flags = np.frombuffer(self._final_flags, dtype=np.uint8)
            # dense id → column lookup; ids are small interning indices, so
            # the LUT stays tiny.  The trailing -1 slot catches both unknown
            # ids and the padding marker (python-style -1 indexing).
            largest_id = max(self.alphabet, default=0)
            lut = np.full(largest_id + 2, -1, dtype=np.int64)
            for column, symbol_id in enumerate(self.alphabet):
                lut[symbol_id] = column
            views = (table2d, final_flags, lut)
            self._numpy_views = views
        return views

    def _accepts_batch_numpy(self, np: Any, words: Sequence[Sequence[int]]) -> List[bool]:
        count = len(words)
        lengths = [len(ids) for ids in words]
        longest = max(lengths, default=0)
        if longest == 0:
            flag = bool(self._final_flags[self.initial])
            return [flag] * count
        table2d, final_flags, lut = self._numpy_tables(np)
        largest_id = len(lut) - 2
        # pad with -1; the id matrix is filled row-wise by C-level slice
        # assignment and translated to columns in one vectorised LUT gather
        id_matrix = np.full((count, longest), -1, dtype=np.int64)
        for row, ids in enumerate(words):
            if ids:
                id_matrix[row, : len(ids)] = ids
        # an id beyond the LUT means "symbol unknown to this automaton":
        # fold it onto the trailing -1 slot instead of growing the LUT
        id_matrix[id_matrix > largest_id] = -1
        column_matrix = lut[id_matrix]
        length_vector = np.asarray(lengths, dtype=np.int64)
        states = np.full(count, self.initial, dtype=np.int64)
        for position in range(longest):
            active = position < length_vector
            column = column_matrix[:, position]
            stepped = np.where(
                (states >= 0) & (column >= 0),
                table2d[states.clip(min=0), column.clip(min=0)],
                -1,
            )
            states = np.where(active, stepped, states)
        accepted = (states >= 0) & (final_flags[states.clip(min=0)] == 1)
        return accepted.tolist()

    # ------------------------------------------------------------------ #
    # reachability sweeps
    # ------------------------------------------------------------------ #
    def reachable(self) -> Set[int]:
        """States reachable from the initial state (forward sweep)."""
        np = numpy_module()
        if np is not None and self.width and self.num_states >= NUMPY_MIN_STATES:
            table2d = np.frombuffer(self.table.tobytes(), dtype=np.intc).reshape(
                self.num_states, self.width
            )
            seen = np.zeros(self.num_states, dtype=bool)
            seen[self.initial] = True
            frontier = np.asarray([self.initial])
            while frontier.size:
                targets = table2d[frontier].ravel()
                targets = np.unique(targets[targets >= 0])
                fresh = targets[~seen[targets]]
                seen[fresh] = True
                frontier = fresh
            return set(np.flatnonzero(seen).tolist())
        reached = {self.initial}
        stack = [self.initial]
        table, width = self.table, self.width
        while stack:
            base = stack.pop() * width
            for target in table[base : base + width]:
                if target >= 0 and target not in reached:
                    reached.add(target)
                    stack.append(target)
        return reached

    def distance_to_final(self) -> Tuple[int, ...]:
        """Per state, the BFS distance to the nearest final state (``-1`` = never).

        This is the reverse layered sweep behind emptiness, shortest-witness
        search and the enumeration's budget pruning; it is computed once per
        dense table and memoized.
        """
        if self._distances is not None:
            return self._distances
        np = numpy_module()
        if np is not None and self.width and self.num_states >= NUMPY_MIN_STATES:
            distances = self._distance_to_final_numpy(np)
        else:
            distances = self._distance_to_final_stdlib()
        self._distances = distances
        return distances

    def _distance_to_final_stdlib(self) -> Tuple[int, ...]:
        distance = [-1] * self.num_states
        wave = []
        for state in self.final:
            distance[state] = 0
            wave.append(state)
        # reverse adjacency, built once from one pass over the flat table
        predecessors: List[List[int]] = [[] for _ in range(self.num_states)]
        table, width = self.table, self.width
        for state in range(self.num_states):
            base = state * width
            for target in table[base : base + width]:
                if target >= 0:
                    predecessors[target].append(state)
        level = 0
        while wave:
            level += 1
            next_wave: List[int] = []
            for state in wave:
                for source in predecessors[state]:
                    if distance[source] < 0:
                        distance[source] = level
                        next_wave.append(source)
            wave = next_wave
        return tuple(distance)

    def _distance_to_final_numpy(self, np: Any) -> Tuple[int, ...]:
        table2d = np.frombuffer(self.table.tobytes(), dtype=np.intc).reshape(
            self.num_states, self.width
        )
        distance = np.full(self.num_states, -1, dtype=np.int64)
        current = np.zeros(self.num_states, dtype=bool)
        for state in self.final:
            distance[state] = 0
            current[state] = True
        level = 0
        while current.any():
            level += 1
            hits = current[table2d.clip(min=0)] & (table2d >= 0)
            predecessors = hits.any(axis=1) & (distance < 0)
            distance[predecessors] = level
            current = predecessors
        return tuple(distance.tolist())

    def is_empty(self) -> bool:
        """``True`` when no final state is reachable from the initial state."""
        return self.distance_to_final()[self.initial] < 0

    def shortest_witness_ids(self) -> Optional[Tuple[int, ...]]:
        """One shortest accepted word as symbol ids (``None`` when empty).

        Layered BFS over the dense table; ties break by column order, which
        is the canonical symbol order — the exact witness the dict-walk
        search produces.
        """
        if self._final_flags[self.initial]:
            return ()
        table, width, alphabet = self.table, self.width, self.alphabet
        final_flags = self._final_flags
        parents: Dict[int, Tuple[int, int]] = {}
        visited = bytearray(self.num_states)
        visited[self.initial] = 1
        frontier = [self.initial]
        while frontier:
            next_frontier: List[int] = []
            for state in frontier:
                base = state * width
                for column in range(width):
                    target = table[base + column]
                    if target < 0 or visited[target]:
                        continue
                    visited[target] = 1
                    parents[target] = (state, alphabet[column])
                    if final_flags[target]:
                        word: List[int] = []
                        current = target
                        while current in parents:
                            current, via = parents[current]
                            word.append(via)
                        word.reverse()
                        return tuple(word)
                    next_frontier.append(target)
            frontier = next_frontier
        return None


# --------------------------------------------------------------------------- #
# int-bitset NFA kernels
# --------------------------------------------------------------------------- #
def bitset_closure(num_states: int, edges: Iterable[Tuple[int, int]]) -> List[int]:
    """Per-state reflexive-transitive closure masks over sparse *edges*.

    ``result[i]`` has bit ``j`` set iff state ``j`` is reachable from ``i``
    (every state reaches itself).  This is the ε-closure kernel: the Thompson
    builder feeds its ε-edges in and reads each state's closure off one int.
    """
    direct = [1 << state for state in range(num_states)]
    for source, target in edges:
        direct[source] |= 1 << target
    closures = list(direct)
    # iterate to fixpoint: closing over a closed row is idempotent, and each
    # pass propagates reachability one join further
    changed = True
    while changed:
        changed = False
        for state in range(num_states):
            mask = closures[state]
            union = mask
            remaining = mask
            while remaining:
                low = remaining & -remaining
                union |= closures[low.bit_length() - 1]
                remaining ^= low
            if union != mask:
                closures[state] = union
                changed = True
    return closures


def subset_construct(
    initial_mask: int,
    final_mask: int,
    moves: Sequence[Sequence[int]],
) -> Tuple[int, List[Tuple[int, int, int]], List[int]]:
    """The bitset subset construction.

    *moves* holds, per alphabet column, the per-state successor masks
    (``moves[column][state_index]``).  Subsets are int bitsets; discovery is
    BFS with columns swept in order, so the state numbering is exactly the
    one the frozenset-based construction produced — a subset and its mask
    are in bijection, and both searches expand identical frontiers in
    identical order.

    Returns ``(num_states, transitions, final_states)`` with transitions as
    ``(source, column, target)`` triples over the dense numbering.
    """
    numbering: Dict[int, int] = {initial_mask: 0}
    order: List[int] = [initial_mask]
    transitions: List[Tuple[int, int, int]] = []
    index = 0
    while index < len(order):
        mask = order[index]
        for column, move in enumerate(moves):
            successor = 0
            remaining = mask
            while remaining:
                low = remaining & -remaining
                successor |= move[low.bit_length() - 1]
                remaining ^= low
            if not successor:
                continue
            target = numbering.get(successor)
            if target is None:
                target = len(order)
                numbering[successor] = target
                order.append(successor)
            transitions.append((index, column, target))
        index += 1
    final_states = [numbering[mask] for mask in order if mask & final_mask]
    return len(order), transitions, final_states


# --------------------------------------------------------------------------- #
# pumped-normal-form NFA enumeration
# --------------------------------------------------------------------------- #
def nfa_enumeration_tables(nfa: Any):
    """Precomputed sorted adjacency for :func:`enumerate_nfa_words`.

    Returns ``(rows, symbols)``.  Per state index (states sorted ascending),
    ``rows`` holds a tuple of ``(symbol index, target index, count shift,
    count increment, target's distance to acceptance, target is final)``
    entries in the dict-walk enumeration's expansion order —
    ``(repr(symbol), target)`` — computed **once** per automaton instead of
    once per frontier expansion.  Symbols are interned into the ``symbols``
    list (by equality), so the search works on int words — hashing a partial
    word for the duplicate check never hashes a symbol object — and emitted
    words are materialised through the list.  Shift/increment address the
    target's byte lane in the int visit counter; the distance (``-1`` when
    acceptance is unreachable) feeds the length-budget pruning.
    """
    states = sorted(nfa.states)
    index_of = {state: position for position, state in enumerate(states)}
    final = nfa.final
    adjacency: List[List[Tuple[Any, int]]] = []
    for state in states:
        adjacency.append(
            sorted(nfa.transitions_from(state), key=lambda pair: (repr(pair[0]), pair[1]))
        )
    # unweighted reverse BFS from the final states: distance[i] is a lower
    # bound on the steps state i needs before any word can be accepted
    distance = [-1] * len(states)
    wave: List[int] = []
    for state in final:
        position = index_of[state]
        distance[position] = 0
        wave.append(position)
    predecessors: List[List[int]] = [[] for _ in states]
    for position, entries in enumerate(adjacency):
        for _, target in entries:
            predecessors[index_of[target]].append(position)
    level = 0
    while wave:
        level += 1
        next_wave: List[int] = []
        for position in wave:
            for source in predecessors[position]:
                if distance[source] < 0:
                    distance[source] = level
                    next_wave.append(source)
        wave = next_wave
    symbols: List[Any] = []
    symbol_index: Dict[Any, int] = {}
    rows: List[Tuple[Tuple[int, int, int, int, int, bool], ...]] = []
    for entries in adjacency:
        row = []
        for symbol, target in entries:
            interned = symbol_index.get(symbol)
            if interned is None:
                interned = len(symbols)
                symbol_index[symbol] = interned
                symbols.append(symbol)
            position = index_of[target]
            row.append(
                (
                    interned,
                    position,
                    position * 8,
                    1 << (position * 8),
                    distance[position],
                    target in final,
                )
            )
        rows.append(tuple(row))
    largest = max((entry[4] for row in rows for entry in row), default=0)
    return tuple(rows), tuple(symbols), largest


def _nfa_rows_for_budget(nfa: Any, rows_full, key: int):
    """Rows with the unreachable-within-budget entries already dropped.

    Filtering by the distance lower bound only removes expansions that could
    never contribute a word within the remaining length, so the emitted
    sequence is untouched; hoisting the comparison here keeps it out of the
    frontier loop.  Variants are cached per automaton, keyed by the budget
    capped at the largest finite distance (larger budgets filter nothing).
    """
    variants = getattr(nfa, "_enum_variants", None)
    if variants is None:
        variants = {}
        try:
            nfa._enum_variants = variants
        except AttributeError:  # pragma: no cover - exotic NFA stand-ins
            return tuple(
                tuple(entry for entry in row if 0 <= entry[4] <= key) for row in rows_full
            )
    rows = variants.get(key)
    if rows is None:
        rows = tuple(
            tuple(entry for entry in row if 0 <= entry[4] <= key) for row in rows_full
        )
        variants[key] = rows
    return rows


def enumerate_nfa_words(
    nfa: Any,
    max_length: int,
    max_state_repeats: int,
    max_words: int,
):
    """Pumped-normal-form enumeration over precomputed adjacency.

    Word-for-word identical to the dict-walk
    :meth:`~repro.rpq.automaton.NFA.enumerate_words` — same words, same
    order, same cap semantics — but the per-expansion ``repr``-keyed sort
    becomes a table lookup, the visit-count dict copies become byte lanes of
    one int, partial words are int tuples (the duplicate check hashes small
    ints, not symbol objects), and frontier entries whose state provably
    cannot reach acceptance within the remaining length budget (a pure
    lower-bound check) are never built at all.
    """
    tables = getattr(nfa, "_enum_tables", None)
    if tables is None:
        tables = nfa_enumeration_tables(nfa)
        try:
            nfa._enum_tables = tables
        except AttributeError:  # pragma: no cover - exotic NFA stand-ins
            pass
    rows_full, symbols, largest = tables
    materialise = symbols.__getitem__
    states = sorted(nfa.states)
    index_of = {state: position for position, state in enumerate(states)}

    emitted = 0
    seen: Set[Tuple[int, ...]] = set()
    if nfa.accepts_epsilon():
        seen.add(())
        emitted += 1
        yield ()
    frontier: List[Tuple[int, Tuple[int, ...], int]] = []
    for state in sorted(nfa.initial):
        position = index_of[state]
        frontier.append((position, (), 1 << (position * 8)))
    length = 0
    while frontier and length < max_length and emitted < max_words:
        length += 1
        budget = max_length - length
        rows = _nfa_rows_for_budget(nfa, rows_full, budget if budget < largest else largest)
        if budget:
            next_frontier: List[Tuple[int, Tuple[int, ...], int]] = []
            append = next_frontier.append
            for position, word, counts in frontier:
                for symbol, target, shift, increment, _, is_final in rows[position]:
                    if (counts >> shift) & 255 >= max_state_repeats:
                        continue  # one more visit would break the pumped bound
                    extended = word + (symbol,)
                    if is_final and extended not in seen:
                        seen.add(extended)
                        emitted += 1
                        yield tuple(map(materialise, extended))
                        if emitted >= max_words:
                            return
                    append((target, extended, counts + increment))
            frontier = next_frontier
        else:
            # the final level: every surviving entry steps straight into a
            # final state and nothing is extended afterwards, so no frontier
            # is built
            for position, word, counts in frontier:
                for symbol, _, shift, _, _, _ in rows[position]:
                    if (counts >> shift) & 255 >= max_state_repeats:
                        continue
                    extended = word + (symbol,)
                    if extended not in seen:
                        seen.add(extended)
                        emitted += 1
                        yield tuple(map(materialise, extended))
                        if emitted >= max_words:
                            return
            return
