"""Horn-ALCIF chase: pattern consistency and C2RPQ satisfiability modulo TBoxes.

Re-exports:

* :class:`TBoxIndex` — statements indexed by kind and role, with the label
  closure operation every chase phase consults;
* :class:`TreeChecker` / :class:`TreeOutcome` — coinductive
  tree-extendability of deferred existential requirements (Appendix E);
* :class:`ChaseEngine` / :class:`ChaseResult` — the four-phase chase over
  finite witness patterns;
* :class:`SatisfiabilitySolver` / :func:`is_satisfiable` with
  :class:`SatisfiabilityConfig` / :class:`SatisfiabilityResult` — witness
  enumeration in pumped normal form (Theorem 6.1) and its resource bounds;
* :func:`build_pattern` — materialise one witnessing word per atom as a
  labeled pattern graph.
"""

from .labelsets import TBoxIndex
from .tree import TreeChecker, TreeOutcome
from .engine import ChaseEngine, ChaseResult
from .solver import (
    SatisfiabilityConfig,
    SatisfiabilityResult,
    SatisfiabilitySolver,
    build_pattern,
    is_satisfiable,
)

__all__ = [
    "TBoxIndex",
    "TreeChecker",
    "TreeOutcome",
    "ChaseEngine",
    "ChaseResult",
    "SatisfiabilityConfig",
    "SatisfiabilityResult",
    "SatisfiabilitySolver",
    "build_pattern",
    "is_satisfiable",
]
