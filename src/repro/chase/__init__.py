"""Horn-ALCIF chase: pattern consistency and C2RPQ satisfiability modulo TBoxes."""

from .labelsets import TBoxIndex
from .tree import TreeChecker, TreeOutcome
from .engine import ChaseEngine, ChaseResult
from .solver import (
    SatisfiabilityConfig,
    SatisfiabilityResult,
    SatisfiabilitySolver,
    build_pattern,
    is_satisfiable,
)

__all__ = [
    "TBoxIndex",
    "TreeChecker",
    "TreeOutcome",
    "ChaseEngine",
    "ChaseResult",
    "SatisfiabilityConfig",
    "SatisfiabilityResult",
    "SatisfiabilitySolver",
    "build_pattern",
    "is_satisfiable",
]
