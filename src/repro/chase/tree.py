"""Tree-extendability of node contexts (the tree part of Appendix E).

After the finite witness pattern has been chased (see
:mod:`repro.chase.engine`), every node may still have *deferred* existential
requirements ``K ⊑ ∃R.K'`` that are not witnessed inside the pattern.  Such a
requirement is satisfied by attaching a fresh, possibly infinite, finitely
branching tree to the node — exactly the "attached trees" of the paper's
sparse models (Theorem 6.3).  Deciding whether such trees exist is a local,
coinductive computation over *contexts*:

    a context = (closed label set of the node,
                 signed role pointing back to its parent, or None,
                 closed label set of the parent, or None)

A context is *extendable* when all its existential requirements can be
discharged, either by the parent (when the role points back to it and the
parent already carries the required labels), or by fresh children whose
contexts are in turn extendable.  Functionality constraints may *force* a
requirement onto the parent (the cycle-reversal argument of Example 5.5 rests
on exactly this propagation); in that case the outcome reports the labels
that the parent must additionally carry, and the caller re-chases.

Cycles in the context graph are resolved coinductively (a repeated context is
assumed extendable), which is sound for *unrestricted* — finite or infinite —
models: repeating the cycle forever yields an infinite, finitely branching
tree.  This mirrors why the paper first moves from finite to unrestricted
satisfiability via cycle reversing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..dl.concepts import ConceptNames
from ..graph.labels import SignedLabel
from .labelsets import TBoxIndex

__all__ = ["TreeOutcome", "TreeChecker", "Context"]

Context = Tuple[ConceptNames, Optional[SignedLabel], Optional[ConceptNames]]


@dataclass(frozen=True)
class TreeOutcome:
    """Result of checking one context.

    ``ok`` is ``False`` when no tree can discharge the requirements;
    ``parent_needs`` lists concept names that the *parent* node must
    additionally carry for the trees below this node to exist (empty when the
    node has no parent or nothing is forced back).
    """

    ok: bool
    parent_needs: ConceptNames = frozenset()

    @staticmethod
    def failure() -> "TreeOutcome":
        return TreeOutcome(False, frozenset())

    @staticmethod
    def success(parent_needs: ConceptNames = frozenset()) -> "TreeOutcome":
        return TreeOutcome(True, frozenset(parent_needs))


class TreeChecker:
    """Decides tree-extendability of contexts for a fixed Horn TBox."""

    def __init__(self, index: TBoxIndex, max_iterations: int = 10_000) -> None:
        self.index = index
        self.max_iterations = max_iterations
        self._memo: Dict[Context, TreeOutcome] = {}

    # ------------------------------------------------------------------ #
    def check(
        self,
        labels: ConceptNames,
        parent_role: Optional[SignedLabel] = None,
        parent_labels: Optional[ConceptNames] = None,
    ) -> TreeOutcome:
        """Check the context ``(labels, parent_role, parent_labels)``.

        *parent_role* is the signed role under which the **parent** is a
        successor of this node (e.g. a node created as an ``r``-successor of
        its parent sees the parent through ``r⁻``).
        """
        return self._check((self.index.close(labels), parent_role, parent_labels), set())

    # ------------------------------------------------------------------ #
    def _check(self, context: Context, stack: Set[Context]) -> TreeOutcome:
        if context in self._memo:
            return self._memo[context]
        if context in stack:
            # coinductive assumption: unfolding the cycle forever builds an
            # infinite tree, which unrestricted models allow
            return TreeOutcome.success()
        stack.add(context)
        outcome = self._evaluate(context, stack)
        stack.discard(context)
        self._memo[context] = outcome
        return outcome

    def _evaluate(self, context: Context, stack: Set[Context]) -> TreeOutcome:
        entry_labels, parent_role, parent_labels = context
        index = self.index
        current = index.close(entry_labels)
        parent_needs: Set[str] = set()
        iterations = 0

        while True:
            iterations += 1
            if iterations > self.max_iterations:  # pragma: no cover - safety net
                return TreeOutcome.failure()
            if index.violates_bottom(current):
                return TreeOutcome.failure()

            # interactions with the parent along parent_role
            if parent_role is not None and parent_labels is not None:
                forced_on_parent = index.forall_targets(current, parent_role)
                parent_needs |= set(forced_on_parent - parent_labels)
                if index.no_exists_conflicts(current, parent_role, parent_labels):
                    return TreeOutcome.failure()

            # group the triggered existential requirements by role
            requirements = index.required_successors(current)
            pending: Dict[SignedLabel, List[ConceptNames]] = {}
            for statement in requirements:
                role, head = statement.role, statement.head
                if (
                    parent_role is not None
                    and parent_labels is not None
                    and role == parent_role
                    and head <= parent_labels
                ):
                    continue  # already witnessed by the parent
                pending.setdefault(role, []).append(head)

            grew = False
            for role, heads in sorted(pending.items(), key=lambda item: str(item[0])):
                seeds = [index.child_seed(current, role, head) for head in heads]
                seeds = self._merge_functional_seeds(current, role, seeds)
                for seed in seeds:
                    conflict = index.no_exists_conflicts(current, role, seed)
                    if conflict is not None:
                        # no fresh child may exist; only the parent could absorb it
                        if parent_role is not None and role == parent_role:
                            parent_needs |= set(seed - (parent_labels or frozenset()))
                            continue
                        return TreeOutcome.failure()
                    if self._blocked_by_parent(current, role, seed, parent_role, parent_labels):
                        # functionality forces the requirement onto the parent
                        parent_needs |= set(seed - (parent_labels or frozenset()))
                        continue
                    child_outcome = self._check((seed, role.inverse(), current), stack)
                    if not child_outcome.ok:
                        return TreeOutcome.failure()
                    new_here = child_outcome.parent_needs - current
                    if new_here:
                        current = index.close(current | new_here)
                        grew = True
                        break
                if grew:
                    break
            if not grew:
                base = parent_labels or frozenset()
                return TreeOutcome.success(frozenset(parent_needs) - base)

    # ------------------------------------------------------------------ #
    def _blocked_by_parent(
        self,
        labels: ConceptNames,
        role: SignedLabel,
        child_seed: ConceptNames,
        parent_role: Optional[SignedLabel],
        parent_labels: Optional[ConceptNames],
    ) -> bool:
        """``True`` when an applicable at-most constraint forbids creating a
        fresh *role*-child because the parent already is a matching successor."""
        if parent_role is None or parent_labels is None or role != parent_role:
            return False
        for statement in self.index.applicable_at_most(labels, role):
            if statement.head <= child_seed and statement.head <= parent_labels:
                return True
        return False

    def _merge_functional_seeds(
        self, labels: ConceptNames, role: SignedLabel, seeds: List[ConceptNames]
    ) -> List[ConceptNames]:
        """Merge fresh-child seeds that an at-most constraint forces to coincide."""
        merged = [self.index.close(seed) for seed in seeds]
        changed = True
        while changed:
            changed = False
            for statement in self.index.applicable_at_most(labels, role):
                matching = [i for i, seed in enumerate(merged) if statement.head <= seed]
                if len(matching) >= 2:
                    keep = matching[0]
                    combined = set(merged[keep])
                    for i in matching[1:]:
                        combined |= merged[i]
                    merged = [
                        seed for i, seed in enumerate(merged) if i not in matching[1:]
                    ]
                    merged[keep] = self.index.close(frozenset(combined))
                    changed = True
                    break
        # deduplicate identical seeds
        unique: List[ConceptNames] = []
        for seed in merged:
            if seed not in unique:
                unique.append(seed)
        return unique

    def cache_size(self) -> int:
        """Number of memoised contexts (exposed for benchmarks)."""
        return len(self._memo)
