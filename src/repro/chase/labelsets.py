"""Closed label sets for the Horn-ALCIF chase.

Because the TBoxes produced by the paper's reductions are Horn, the set of
concept names that a node must carry is obtained by *closing* a seed set
under the statements ``K ⊑ A``.  This module provides that closure, the
⊥-check and an index over a TBox that the chase engine and the
tree-extendability check share.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from ..dl.concepts import (
    AtMostOneCI,
    ConceptNames,
    ExistsCI,
    ForAllCI,
    NoExistsCI,
    SubclassOf,
    SubclassOfBottom,
)
from ..dl.tbox import TBox
from ..graph.labels import SignedLabel

__all__ = ["TBoxIndex"]


class TBoxIndex:
    """A view of a Horn TBox grouped by statement kind, with a closure cache.

    The index is the single object shared by the pattern chase and the
    tree-extendability procedure; it also memoises closures of label sets,
    which dominates the running time on larger inputs.
    """

    def __init__(self, tbox: TBox) -> None:
        self.tbox = tbox
        self.subclass: List[SubclassOf] = list(tbox.subclass_statements())
        self.bottoms: List[SubclassOfBottom] = list(tbox.bottom_statements())
        self.forall: List[ForAllCI] = list(tbox.forall_statements())
        self.exists: List[ExistsCI] = list(tbox.exists_statements())
        self.no_exists: List[NoExistsCI] = list(tbox.no_exists_statements())
        self.at_most: List[AtMostOneCI] = list(tbox.at_most_statements())
        self._closure_cache: Dict[ConceptNames, ConceptNames] = {}
        # group role-guarded statements by role for quick lookup
        self.forall_by_role: Dict[SignedLabel, List[ForAllCI]] = {}
        for statement in self.forall:
            self.forall_by_role.setdefault(statement.role, []).append(statement)
        self.no_exists_by_role: Dict[SignedLabel, List[NoExistsCI]] = {}
        for statement in self.no_exists:
            self.no_exists_by_role.setdefault(statement.role, []).append(statement)
        self.at_most_by_role: Dict[SignedLabel, List[AtMostOneCI]] = {}
        for statement in self.at_most:
            self.at_most_by_role.setdefault(statement.role, []).append(statement)
        self.exists_by_role: Dict[SignedLabel, List[ExistsCI]] = {}
        for statement in self.exists:
            self.exists_by_role.setdefault(statement.role, []).append(statement)

    # ------------------------------------------------------------------ #
    def close(self, labels: Iterable[str]) -> ConceptNames:
        """Close a label set under the statements ``K ⊑ A``."""
        seed = frozenset(labels)
        cached = self._closure_cache.get(seed)
        if cached is not None:
            return cached
        current = set(seed)
        changed = True
        while changed:
            changed = False
            for statement in self.subclass:
                if statement.head not in current and statement.body <= current:
                    current.add(statement.head)
                    changed = True
        result = frozenset(current)
        self._closure_cache[seed] = result
        return result

    def violates_bottom(self, labels: ConceptNames) -> bool:
        """``True`` when a closed label set triggers some ``K ⊑ ⊥``."""
        return any(statement.body <= labels for statement in self.bottoms)

    def forall_targets(self, labels: ConceptNames, role: SignedLabel) -> ConceptNames:
        """Labels forced onto every *role*-successor of a node with *labels*."""
        forced: set = set()
        for statement in self.forall_by_role.get(role, ()):
            if statement.body <= labels:
                forced |= statement.head
        return frozenset(forced)

    def no_exists_conflicts(
        self, labels: ConceptNames, role: SignedLabel, successor_labels: ConceptNames
    ) -> Optional[NoExistsCI]:
        """A ``K ⊑ ¬∃R.K'`` statement violated by the given successor, if any."""
        for statement in self.no_exists_by_role.get(role, ()):
            if statement.body <= labels and statement.head <= successor_labels:
                return statement
        return None

    def applicable_at_most(
        self, labels: ConceptNames, role: SignedLabel
    ) -> List[AtMostOneCI]:
        """The at-most constraints whose body is satisfied by *labels*."""
        return [s for s in self.at_most_by_role.get(role, ()) if s.body <= labels]

    def required_successors(self, labels: ConceptNames) -> List[ExistsCI]:
        """The ∃-statements triggered by *labels*."""
        return [s for s in self.exists if s.body <= labels]

    def child_seed(self, labels: ConceptNames, role: SignedLabel, head: ConceptNames) -> ConceptNames:
        """The (closed) minimal label set of a fresh *role*-successor created to
        witness ``labels ⊑ ∃role.head``: the head plus everything forced by the
        ∀-statements of the parent."""
        return self.close(head | self.forall_targets(labels, role))

    def statistics(self) -> Dict[str, int]:
        """Counts per statement kind (used by benchmarks and diagnostics)."""
        return {
            "subclass": len(self.subclass),
            "bottom": len(self.bottoms),
            "forall": len(self.forall),
            "exists": len(self.exists),
            "no_exists": len(self.no_exists),
            "at_most": len(self.at_most),
        }
