"""The Horn-ALCIF chase over finite witness patterns.

Given a Horn-ALCIF TBox ``T`` and a finite *pattern* — a labeled graph whose
node labels are concept names, typically obtained by materialising witnessing
words of a C2RPQ — the chase decides whether the pattern can be extended
(homomorphically) to a possibly infinite model of ``T``.  The procedure is
the canonical-model construction for Horn description logics:

1. *saturation*: close node label sets under ``K ⊑ A``; propagate
   ``K ⊑ ∀R.K'`` along existing edges; detect violations of ``K ⊑ ⊥`` and
   ``K ⊑ ¬∃R.K'`` (these can never be repaired, because labels only grow and
   edges are never removed);
2. *functionality*: when ``K ⊑ ∃≤1R.K'`` applies and two pattern successors
   match, merge them (without the unique-name assumption, merging is the
   canonical repair);
3. *forced reuse*: when ``K ⊑ ∃R.K'`` applies, no pattern successor matches
   and a functionality constraint forbids creating a fresh successor because
   an existing one already occupies the functional slot, the requirement is
   absorbed by that successor (this is the propagation that makes the
   cycle-reversal argument of Example 5.5 go through);
4. *tree-extendability*: all remaining existential requirements are
   discharged by attaching fresh trees, checked coinductively by
   :class:`repro.chase.tree.TreeChecker`; labels that the trees force back
   onto pattern nodes are added and the saturation is re-run.

The chase is deterministic (Horn) and terminates because label sets only grow
within a finite lattice and merges only decrease the number of nodes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..dl.tbox import TBox
from ..exceptions import SolverError
from ..graph.graph import Graph, NodeId
from .labelsets import TBoxIndex
from .tree import TreeChecker

__all__ = ["ChaseResult", "ChaseEngine"]


@dataclass
class ChaseResult:
    """Outcome of chasing one pattern."""

    consistent: bool
    reason: str
    pattern: Optional[Graph] = None
    assignment: Dict[str, NodeId] = field(default_factory=dict)
    merges: int = 0
    iterations: int = 0

    def __bool__(self) -> bool:
        return self.consistent


class ChaseEngine:
    """Chases finite patterns modulo a fixed Horn-ALCIF TBox."""

    def __init__(self, tbox: TBox, max_rounds: int = 100_000) -> None:
        if not tbox.is_horn():
            raise SolverError("the chase engine only accepts Horn TBoxes")
        self.index = TBoxIndex(tbox)
        self.tree = TreeChecker(self.index)
        self.max_rounds = max_rounds

    # ------------------------------------------------------------------ #
    def check_pattern(
        self,
        pattern: Graph,
        assignment: Optional[Dict[str, NodeId]] = None,
    ) -> ChaseResult:
        """Chase *pattern* and report whether it extends to a model of the TBox.

        *assignment* optionally maps query variables to pattern nodes; the
        returned result carries the assignment transported through merges.
        """
        graph = pattern.copy()
        variable_map: Dict[str, NodeId] = dict(assignment or {})
        merges = 0
        iterations = 0

        while True:
            iterations += 1
            if iterations > self.max_rounds:  # pragma: no cover - safety net
                raise SolverError("chase did not converge within the configured bound")

            verdict = self._saturate(graph, variable_map)
            if verdict is not None:
                return ChaseResult(False, verdict, None, variable_map, merges, iterations)
            merge_happened, verdict = self._apply_functionality(graph, variable_map)
            merges += merge_happened
            if verdict is not None:
                return ChaseResult(False, verdict, None, variable_map, merges, iterations)
            if merge_happened:
                continue
            absorbed, verdict = self._absorb_forced_requirements(graph)
            if verdict is not None:
                return ChaseResult(False, verdict, None, variable_map, merges, iterations)
            if absorbed:
                continue
            grew, verdict = self._check_tree_requirements(graph)
            if verdict is not None:
                return ChaseResult(False, verdict, None, variable_map, merges, iterations)
            if grew:
                continue
            return ChaseResult(True, "pattern extends to a model", graph, variable_map, merges, iterations)

    # ------------------------------------------------------------------ #
    # phase 1: saturation and unrepairable violations
    # ------------------------------------------------------------------ #
    def _saturate(self, graph: Graph, variable_map: Dict[str, NodeId]) -> Optional[str]:
        index = self.index
        changed = True
        while changed:
            changed = False
            for node in list(graph.nodes()):
                closed = index.close(graph.labels(node))
                for label in closed - graph.labels(node):
                    graph.add_label(node, label)
                    changed = True
                if index.violates_bottom(closed):
                    return f"node {node!r} violates a ⊥-statement (labels {sorted(closed)})"
            # ∀-propagation along existing edges
            for node in list(graph.nodes()):
                labels = graph.labels(node)
                for role in index.forall_by_role:
                    forced = index.forall_targets(labels, role)
                    if not forced:
                        continue
                    for successor in graph.successors(node, role):
                        missing = forced - graph.labels(successor)
                        if missing:
                            for label in missing:
                                graph.add_label(successor, label)
                            changed = True
        # ¬∃ violations are final
        for node in graph.nodes():
            labels = graph.labels(node)
            for role in index.no_exists_by_role:
                for successor in graph.successors(node, role):
                    conflict = index.no_exists_conflicts(labels, role, graph.labels(successor))
                    if conflict is not None:
                        return (
                            f"edge {node!r} -{role}-> {successor!r} violates {conflict}"
                        )
        return None

    # ------------------------------------------------------------------ #
    # phase 2: functionality merging
    # ------------------------------------------------------------------ #
    def _apply_functionality(
        self, graph: Graph, variable_map: Dict[str, NodeId]
    ) -> Tuple[int, Optional[str]]:
        index = self.index
        merges = 0
        restart = True
        while restart:
            restart = False
            for node in list(graph.nodes()):
                labels = graph.labels(node)
                for role in index.at_most_by_role:
                    for statement in index.applicable_at_most(labels, role):
                        matching = [
                            successor
                            for successor in graph.successors(node, role)
                            if statement.head <= graph.labels(successor)
                        ]
                        if len(matching) >= 2:
                            matching.sort(key=repr)
                            keep, rest = matching[0], matching[1:]
                            for drop in rest:
                                if keep == drop:
                                    continue
                                graph.merge_nodes(keep, drop)
                                for variable, target in variable_map.items():
                                    if target == drop:
                                        variable_map[variable] = keep
                                merges += 1
                            restart = True
                            break
                    if restart:
                        break
                if restart:
                    break
        return merges, None

    # ------------------------------------------------------------------ #
    # phase 3: forced reuse of existing successors
    # ------------------------------------------------------------------ #
    def _absorb_forced_requirements(self, graph: Graph) -> Tuple[bool, Optional[str]]:
        index = self.index
        changed = False
        for node in list(graph.nodes()):
            labels = graph.labels(node)
            for statement in index.required_successors(labels):
                role, head = statement.role, statement.head
                successors = graph.successors(node, role)
                if any(head <= graph.labels(successor) for successor in successors):
                    continue  # witnessed inside the pattern
                child_seed = index.child_seed(labels, role, head)
                conflict = index.no_exists_conflicts(labels, role, child_seed)
                if conflict is not None:
                    return changed, (
                        f"requirement {statement} at node {node!r} cannot be witnessed: "
                        f"any witness would violate {conflict}"
                    )
                # functionality blocking: an existing successor occupies the slot
                for at_most in index.applicable_at_most(labels, role):
                    if not at_most.head <= child_seed:
                        continue
                    witnesses = [
                        successor
                        for successor in successors
                        if at_most.head <= graph.labels(successor)
                    ]
                    if witnesses:
                        absorber = sorted(witnesses, key=repr)[0]
                        missing = head - graph.labels(absorber)
                        if missing:
                            for label in missing:
                                graph.add_label(absorber, label)
                            changed = True
                        break
        return changed, None

    # ------------------------------------------------------------------ #
    # phase 4: tree-extendability of the remaining requirements
    # ------------------------------------------------------------------ #
    def _check_tree_requirements(self, graph: Graph) -> Tuple[bool, Optional[str]]:
        index = self.index
        grew = False
        for node in list(graph.nodes()):
            labels = graph.labels(node)
            pending: Dict = {}
            for statement in index.required_successors(labels):
                role, head = statement.role, statement.head
                if any(
                    head <= graph.labels(successor)
                    for successor in graph.successors(node, role)
                ):
                    continue
                pending.setdefault(role, []).append(head)
            for role, heads in sorted(pending.items(), key=lambda item: str(item[0])):
                seeds = [index.child_seed(labels, role, head) for head in heads]
                seeds = self.tree._merge_functional_seeds(labels, role, seeds)
                for seed in seeds:
                    outcome = self.tree.check(seed, role.inverse(), labels)
                    if not outcome.ok:
                        return grew, (
                            f"node {node!r} cannot satisfy ∃{role} requirements "
                            f"(labels {sorted(labels)}): no witnessing tree exists"
                        )
                    missing = outcome.parent_needs - graph.labels(node)
                    if missing:
                        for label in missing:
                            graph.add_label(node, label)
                        grew = True
            if grew:
                return True, None
        return grew, None

    # ------------------------------------------------------------------ #
    def label_set_is_satisfiable(self, labels) -> bool:
        """``True`` when a single node with the given labels extends to a model.

        This is the building block of CI entailment (Corollary E.7): the
        triple/label-set satisfiability tests reduce to chasing tiny patterns.
        """
        graph = Graph()
        graph.add_node("n0", labels)
        return self.check_pattern(graph).consistent
