"""Polynomially space-bounded alternating Turing machines (Appendix F).

The EXPTIME lower bound of the paper (Theorem F.1) is proved by reducing the
acceptance problem of alternating Turing machines (ATMs) with a polynomial
space bound to non-containment of Boolean 2RPQs modulo schema.  This module
implements the exact ATM variant used in the reduction:

* a single initial state that is never re-entered;
* two final states ``q_yes`` and ``q_no``;
* exactly two transition functions ``δ₁`` and ``δ₂`` (every non-final state
  has precisely two applicable transitions per symbol);
* boundary symbols ``⊲`` and ``⊳`` and the blank ``□`` handled by the
  transition table.

Acceptance is evaluated directly (least fixpoint over the finite
configuration graph), which serves as the ground truth against which the
reduction of :mod:`repro.hardness.reduction` is benchmarked.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..exceptions import ReproError

__all__ = ["ATM", "Transition", "LEFT_MARKER", "RIGHT_MARKER", "BLANK", "even_ones_machine", "alternating_and_or_machine"]

LEFT_MARKER = "<"
RIGHT_MARKER = ">"
BLANK = "_"

# a transition: (next state, written symbol, head move −1/+1)
Transition = Tuple[str, str, int]

# a configuration: (state, head position, tape contents as a tuple)
Configuration = Tuple[str, int, Tuple[str, ...]]


@dataclass
class ATM:
    """An alternating Turing machine in the normal form of Appendix F."""

    alphabet: Tuple[str, ...]
    existential_states: FrozenSet[str]
    universal_states: FrozenSet[str]
    initial_state: str
    delta1: Dict[Tuple[str, str], Transition]
    delta2: Dict[Tuple[str, str], Transition]
    accept_state: str = "q_yes"
    reject_state: str = "q_no"
    name: str = "M"

    # ------------------------------------------------------------------ #
    def __post_init__(self) -> None:
        overlap = self.existential_states & self.universal_states
        if overlap:
            raise ReproError(f"states cannot be both existential and universal: {sorted(overlap)}")
        for final in (self.accept_state, self.reject_state):
            if final in self.existential_states or final in self.universal_states:
                raise ReproError(f"final state {final} must not be existential or universal")

    @property
    def states(self) -> Tuple[str, ...]:
        """All states, initial first and finals last (a stable order for the reduction)."""
        middle = sorted((self.existential_states | self.universal_states) - {self.initial_state})
        ordered: List[str] = [self.initial_state]
        ordered.extend(state for state in middle if state != self.initial_state)
        ordered.extend([self.accept_state, self.reject_state])
        # deduplicate, preserving order
        seen: Set[str] = set()
        unique = [state for state in ordered if not (state in seen or seen.add(state))]
        return tuple(unique)

    @property
    def work_alphabet(self) -> Tuple[str, ...]:
        """The tape alphabet including the blank and the boundary markers."""
        extra = [symbol for symbol in (BLANK, LEFT_MARKER, RIGHT_MARKER) if symbol not in self.alphabet]
        return tuple(self.alphabet) + tuple(extra)

    def is_final(self, state: str) -> bool:
        """``True`` for ``q_yes`` and ``q_no``."""
        return state in (self.accept_state, self.reject_state)

    # ------------------------------------------------------------------ #
    def initial_configuration(self, word: str, space: int) -> Configuration:
        """The initial configuration ``⊲ q₀ w □…□ ⊳`` with the given tape space."""
        if space < len(word):
            raise ReproError("the space bound must be at least the length of the input")
        tape = (LEFT_MARKER,) + tuple(word) + (BLANK,) * (space - len(word)) + (RIGHT_MARKER,)
        return (self.initial_state, 1, tape)

    def successors(self, configuration: Configuration) -> List[Configuration]:
        """The configurations reachable by ``δ₁`` and ``δ₂`` (empty for finals)."""
        state, head, tape = configuration
        if self.is_final(state):
            return []
        symbol = tape[head]
        results = []
        for table in (self.delta1, self.delta2):
            transition = table.get((state, symbol))
            if transition is None:
                continue
            next_state, written, move = transition
            new_tape = tape[:head] + (written,) + tape[head + 1:]
            new_head = head + move
            if not 0 <= new_head < len(tape):
                continue
            results.append((next_state, new_head, new_tape))
        return results

    # ------------------------------------------------------------------ #
    def accepts(self, word: str, space: Optional[int] = None, max_configurations: int = 200_000) -> bool:
        """Evaluate acceptance by a least fixpoint over the configuration graph.

        *space* defaults to ``len(word)`` (the reduction always makes the space
        bound explicit); *max_configurations* guards against blow-ups.
        """
        space = space if space is not None else max(1, len(word))
        initial = self.initial_configuration(word, space)

        # explore the reachable configuration graph
        reachable: Set[Configuration] = {initial}
        frontier = [initial]
        edges: Dict[Configuration, List[Configuration]] = {}
        while frontier:
            if len(reachable) > max_configurations:
                raise ReproError("configuration graph exceeds the exploration budget")
            configuration = frontier.pop()
            successors = self.successors(configuration)
            edges[configuration] = successors
            for successor in successors:
                if successor not in reachable:
                    reachable.add(successor)
                    frontier.append(successor)

        # least fixpoint of the acceptance predicate
        accepting: Set[Configuration] = {
            configuration for configuration in reachable if configuration[0] == self.accept_state
        }
        changed = True
        while changed:
            changed = False
            for configuration in reachable:
                if configuration in accepting:
                    continue
                state = configuration[0]
                if self.is_final(state):
                    continue
                successors = edges.get(configuration, [])
                if not successors:
                    continue
                if state in self.existential_states:
                    accepted = any(successor in accepting for successor in successors)
                else:
                    accepted = all(successor in accepting for successor in successors)
                if accepted:
                    accepting.add(configuration)
                    changed = True
        return initial in accepting


# --------------------------------------------------------------------------- #
# example machines used by tests and benchmarks
# --------------------------------------------------------------------------- #
def even_ones_machine() -> ATM:
    """A deterministic machine (as an ATM) accepting words over {0,1} with an
    even number of 1s.  Both transition tables coincide, so alternation is
    vacuous — a useful sanity baseline."""
    states_even, states_odd = "q_even", "q_odd"
    delta: Dict[Tuple[str, str], Transition] = {}

    def walk(state: str, symbol: str, next_state: str) -> None:
        delta[(state, symbol)] = (next_state, symbol, +1)

    for state in (states_even, states_odd):
        walk(state, "0", state)
        walk(state, LEFT_MARKER, state)
        walk(state, BLANK, state)
    walk(states_even, "1", states_odd)
    walk(states_odd, "1", states_even)
    # at the right marker, accept iff the parity is even
    delta[(states_even, RIGHT_MARKER)] = ("q_yes", RIGHT_MARKER, -1)
    delta[(states_odd, RIGHT_MARKER)] = ("q_no", RIGHT_MARKER, -1)
    start = "q_start"
    delta[(start, LEFT_MARKER)] = (states_even, LEFT_MARKER, +1)
    delta[(start, "0")] = (states_even, "0", +1)
    delta[(start, BLANK)] = (states_even, BLANK, +1)
    delta[(start, "1")] = (states_odd, "1", +1)
    delta[(start, RIGHT_MARKER)] = ("q_yes", RIGHT_MARKER, -1)
    return ATM(
        alphabet=("0", "1"),
        existential_states=frozenset({start, states_even, states_odd}),
        universal_states=frozenset(),
        initial_state=start,
        delta1=dict(delta),
        delta2=dict(delta),
        name="EvenOnes",
    )


def alternating_and_or_machine() -> ATM:
    """A tiny genuinely alternating machine.

    The input is a word over {0,1} of length ≥ 2.  The machine universally
    branches on the first cell (both branches must succeed) and existentially
    on the second; a branch succeeds iff the cell it ends up reading is ``1``.
    The machine therefore accepts exactly the words whose first symbol is 1
    and, for the universal branch that moves on, whose second symbol is 1 —
    i.e. words starting with "11".
    """
    delta1: Dict[Tuple[str, str], Transition] = {}
    delta2: Dict[Tuple[str, str], Transition] = {}
    start, universal, existential = "q_start", "q_all", "q_any"

    # the head starts on the first input symbol: reject unless it is 1
    for symbol in ("0", BLANK, RIGHT_MARKER, LEFT_MARKER):
        delta1[(start, symbol)] = ("q_no", symbol, +1)
        delta2[(start, symbol)] = ("q_no", symbol, +1)
    delta1[(start, "1")] = (universal, "1", +1)
    delta2[(start, "1")] = (universal, "1", +1)
    # universal state reads the second symbol: branch 1 tests it, branch 2
    # moves on to the existential state (which always succeeds)
    for symbol in ("0", "1", BLANK, RIGHT_MARKER, LEFT_MARKER):
        delta1[(universal, symbol)] = ("q_yes" if symbol == "1" else "q_no", symbol, +1)
        delta2[(universal, symbol)] = (existential, symbol, +1)
        delta1[(existential, symbol)] = ("q_yes", symbol, -1)
        delta2[(existential, symbol)] = ("q_no", symbol, -1)
    return ATM(
        alphabet=("0", "1"),
        existential_states=frozenset({start, existential}),
        universal_states=frozenset({universal}),
        initial_state=start,
        delta1=delta1,
        delta2=delta2,
        name="AndOr",
    )
