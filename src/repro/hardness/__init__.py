"""The EXPTIME lower bound machinery of Appendix F: alternating Turing
machines and the reduction to 2RPQ containment modulo schema.

Re-exports:

* :class:`ATM` with :func:`alternating_and_or_machine` /
  :func:`even_ones_machine` and the tape symbols :data:`BLANK`,
  :data:`LEFT_MARKER`, :data:`RIGHT_MARKER` — polynomially space-bounded
  alternating Turing machines and two worked instances;
* :func:`build_instance` / :class:`HardnessInstance` — the Appendix F
  reduction from ATM acceptance to containment modulo schema;
* :func:`tree_device_schema` / :func:`tree_device_queries` / :func:`nest` —
  the tree device and regex-nesting gadgets the reduction is built from;
* :func:`containment_to_typechecking` / :func:`containment_to_equivalence` —
  the onward reductions that transfer the lower bound to the analysis
  problems (Theorem 4.3).
"""

from .atm import ATM, BLANK, LEFT_MARKER, RIGHT_MARKER, alternating_and_or_machine, even_ones_machine
from .reduction import (
    HardnessInstance,
    build_instance,
    containment_to_equivalence,
    containment_to_typechecking,
    nest,
    tree_device_queries,
    tree_device_schema,
)

__all__ = [
    "ATM",
    "BLANK",
    "LEFT_MARKER",
    "RIGHT_MARKER",
    "alternating_and_or_machine",
    "even_ones_machine",
    "HardnessInstance",
    "build_instance",
    "containment_to_equivalence",
    "containment_to_typechecking",
    "nest",
    "tree_device_queries",
    "tree_device_schema",
]
