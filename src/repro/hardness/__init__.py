"""The EXPTIME lower bound machinery of Appendix F: alternating Turing
machines and the reduction to 2RPQ containment modulo schema."""

from .atm import ATM, BLANK, LEFT_MARKER, RIGHT_MARKER, alternating_and_or_machine, even_ones_machine
from .reduction import (
    HardnessInstance,
    build_instance,
    containment_to_equivalence,
    containment_to_typechecking,
    nest,
    tree_device_queries,
    tree_device_schema,
)

__all__ = [
    "ATM",
    "BLANK",
    "LEFT_MARKER",
    "RIGHT_MARKER",
    "alternating_and_or_machine",
    "even_ones_machine",
    "HardnessInstance",
    "build_instance",
    "containment_to_equivalence",
    "containment_to_typechecking",
    "nest",
    "tree_device_queries",
    "tree_device_schema",
]
