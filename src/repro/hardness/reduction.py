"""The EXPTIME-hardness reduction (Theorem F.1 and Lemma F.2, Appendix F).

Given an ATM ``M`` with a polynomial space bound and an input word ``w``, the
reduction produces a schema ``S`` and two Boolean 2RPQs — a *positive* query
``p`` and a *negative* query ``q`` — of polynomial size such that

    M accepts w   iff   p ⊄_S q,

the counterexample graphs being exactly the (tree-shaped) accepting runs of
``M`` on ``w``.  The construction uses three devices described in Appendix F:
nested queries ``p[q] = p·q·q⁻``, disjunction encoded with the schema plus the
positive/negative query pair, and the tree-enforcing traversal pattern of
Figure 6 (generalised in the conceptual automaton of Figure 8).

This module builds the schema and both queries faithfully; it also exposes the
devices (:func:`nest`, :func:`tree_device_schema`, …) separately because they
are reusable and independently testable.  Lemma F.2's reductions from 2RPQ
containment to type checking, equivalence and schema elicitation are provided
as :func:`containment_to_typechecking` etc.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..rpq.queries import Atom, C2RPQ
from ..rpq.regex import Regex, concat, edge, node, star, union
from ..schema.schema import Schema
from ..transform.constructors import NodeConstructor
from ..transform.rules import EdgeRule, NodeRule
from ..transform.transformation import Transformation
from .atm import ATM, BLANK

__all__ = [
    "nest",
    "HardnessInstance",
    "build_instance",
    "tree_device_schema",
    "tree_device_queries",
    "containment_to_typechecking",
    "containment_to_equivalence",
]


def nest(outer: Regex, inner: Regex) -> Regex:
    """The nesting device ``p[q] := p · q · q⁻`` (Appendix F)."""
    return concat(outer, inner, inner.reverse())


# --------------------------------------------------------------------------- #
# Figure 6: the tree-enforcing device (standalone, used in tests/benchmarks)
# --------------------------------------------------------------------------- #
def tree_device_schema() -> Schema:
    """The schema of Figure 6: inner nodes with two child edges, leaves."""
    schema = Schema(["Node", "Leaf"], ["a1", "a2"], name="TreeDevice")
    for child_edge in ("a1", "a2"):
        schema.set_edge("Node", child_edge, "Node", "?", "?")
        schema.set_edge("Node", child_edge, "Leaf", "?", "?")
    return schema


def tree_device_queries() -> Tuple[C2RPQ, C2RPQ]:
    """The positive traversal query and the negative query of Figure 6."""
    a1, a2 = edge("a1"), edge("a2")
    a1_inv, a2_inv = edge("a1-"), edge("a2-")
    node_label, leaf = node("Node"), node("Leaf")
    positive_regex = concat(
        star(
            concat(
                star(concat(nest(node_label, a1), nest(node_label, a2), a1)),
                leaf,
                star(a2_inv),
                a1_inv,
                a2,
            )
        ),
        star(concat(nest(node_label, a1), nest(node_label, a2), a1)),
        leaf,
        star(a2_inv),
    )
    positive = C2RPQ([Atom(positive_regex, "x", "x")], [], name="p_tree")
    negative_regex = union(
        nest(nest(node_label, concat(a1, node_label)), concat(a1, leaf)),
        nest(nest(node_label, concat(a2, node_label)), concat(a2, leaf)),
        nest(nest(concat(), a1_inv), a2_inv),
    )
    negative = C2RPQ([Atom(negative_regex, "y", "z")], [], name="q_tree")
    return positive, negative


# --------------------------------------------------------------------------- #
# the main reduction
# --------------------------------------------------------------------------- #
@dataclass
class HardnessInstance:
    """The output of the Theorem F.1 reduction."""

    schema: Schema
    positive: C2RPQ
    negative: C2RPQ
    atm: ATM
    word: str
    space: int

    def sizes(self) -> Dict[str, int]:
        """Size statistics (the reduction must stay polynomial)."""
        return {
            "schema_node_labels": len(self.schema.node_labels),
            "schema_edge_labels": len(self.schema.edge_labels),
            "positive_size": self.positive.size(),
            "negative_size": self.negative.size(),
        }


def _position_edges(space: int) -> List[str]:
    return [f"pos{i}" for i in range(1, space + 1)]


def _symbol_edges(atm: ATM) -> List[str]:
    return [f"sym_{symbol}" for symbol in atm.work_alphabet]


def _state_edges(atm: ATM) -> List[str]:
    return [f"st_{state}" for state in atm.states]


def build_instance(atm: ATM, word: str, space: Optional[int] = None) -> HardnessInstance:
    """Build the schema and the positive/negative queries of Theorem F.1."""
    space = space if space is not None else max(1, len(word))
    positions = list(range(1, space + 1))
    pos_edges = _position_edges(space)
    sym_edges = {symbol: f"sym_{symbol}" for symbol in atm.work_alphabet}
    state_edges = {state: f"st_{state}" for state in atm.states}
    transition_edges = ["all1", "all2", "any1", "any2"]

    # ----------------------------------------------------------------- #
    # the schema of Figure 7
    # ----------------------------------------------------------------- #
    schema = Schema(
        ["Config", "Pos", "Symb", "St"],
        pos_edges + list(sym_edges.values()) + list(state_edges.values()) + transition_edges,
        name=f"S_{atm.name}_{word or 'ε'}",
    )
    for transition_edge in transition_edges:
        schema.set_edge("Config", transition_edge, "Config", "?", "?")
    for pos_edge in pos_edges:
        schema.set_edge("Config", pos_edge, "Pos", "?", "?")
    for sym_edge in sym_edges.values():
        schema.set_edge("Pos", sym_edge, "Symb", "?", "?")
    for state_edge in state_edges.values():
        schema.set_edge("Pos", state_edge, "St", "?", "?")

    config = node("Config")

    # ----------------------------------------------------------------- #
    # the macros of Appendix F
    # ----------------------------------------------------------------- #
    def symbol_at(position: int, symbol: str) -> Regex:
        return nest(config, concat(edge(pos_edges[position - 1]), edge(sym_edges[symbol])))

    def state_at(position: int, state: str) -> Regex:
        return nest(config, concat(edge(pos_edges[position - 1]), edge(state_edges[state])))

    def state_somewhere(state: str) -> Regex:
        return nest(
            config,
            union(*(concat(edge(pos_edges[i - 1]), edge(state_edges[state])) for i in positions)),
        )

    def head_at(position: int) -> Regex:
        return nest(
            config,
            union(*(concat(edge(pos_edges[position - 1]), edge(state_edges[s])) for s in atm.states)),
        )

    forward_edges = union(*(edge(e) for e in transition_edges))
    backward_edges = union(*(edge(f"{e}-") for e in transition_edges))

    # ----------------------------------------------------------------- #
    # the negative query: structural violations of a run
    # ----------------------------------------------------------------- #
    negative_parts: List[Regex] = []
    # two different symbols at the same position
    for position in positions:
        for left_symbol in atm.work_alphabet:
            for right_symbol in atm.work_alphabet:
                if left_symbol < right_symbol:
                    negative_parts.append(
                        concat(symbol_at(position, left_symbol), symbol_at(position, right_symbol))
                    )
    # two heads (different positions or different states)
    state_list = list(atm.states)
    for position in positions:
        for other in positions:
            for left_state in state_list:
                for right_state in state_list:
                    if (position, left_state) < (other, right_state):
                        negative_parts.append(
                            concat(state_at(position, left_state), state_at(other, right_state))
                        )
    # transition edges that do not match the state kind (the state frozensets
    # are iterated sorted: union branch order decides automaton state numbering
    # and hence result fingerprints, which must not depend on the hash seed)
    for state in sorted(atm.universal_states):
        negative_parts.append(nest(state_somewhere(state), union(edge("any1"), edge("any2"))))
    for state in sorted(atm.existential_states):
        negative_parts.append(nest(state_somewhere(state), union(edge("all1"), edge("all2"))))
    for final in (atm.accept_state, atm.reject_state):
        negative_parts.append(nest(state_somewhere(final), forward_edges))
    # existential configurations with both existential edges
    for state in sorted(atm.existential_states):
        negative_parts.append(nest(nest(state_somewhere(state), edge("any1")), edge("any2")))
    # the initial configuration must be the root of the run
    negative_parts.append(nest(state_somewhere(atm.initial_state), backward_edges))
    # no configuration has two incoming transition edges
    for left_index, left_edge in enumerate(transition_edges):
        for right_edge in transition_edges[left_index + 1:]:
            negative_parts.append(
                nest(nest(config, edge(f"{left_edge}-")), edge(f"{right_edge}-"))
            )
    # no tape position, symbol or state node shared by two configurations
    shared_checks = (
        [("Pos", f"{e}-") for e in pos_edges]
        + [("Symb", f"{e}-") for e in sym_edges.values()]
        + [("St", f"{e}-") for e in state_edges.values()]
    )
    for label, inverse_edge in shared_checks:
        for other_label, other_edge in shared_checks:
            if label == other_label and inverse_edge < other_edge:
                negative_parts.append(
                    nest(nest(node(label), edge(inverse_edge)), edge(other_edge))
                )
    negative_regex = union(*negative_parts)
    negative = C2RPQ([Atom(negative_regex, "u", "v")], [], name=f"q_{atm.name}")

    # ----------------------------------------------------------------- #
    # the positive query: local correctness of every configuration
    # ----------------------------------------------------------------- #
    p_head = nest(config, union(*(head_at(i) for i in positions)))
    p_tape = concat(
        *(
            nest(config, union(*(symbol_at(i, symbol) for symbol in atm.work_alphabet)))
            for i in positions
        )
    )
    transition_parts: List[Regex] = []
    for state in sorted(atm.universal_states):
        transition_parts.append(
            nest(nest(state_somewhere(state), edge("all1")), edge("all2"))
        )
    for state in sorted(atm.existential_states):
        transition_parts.append(
            nest(state_somewhere(state), union(edge("any1"), edge("any2")))
        )
    transition_parts.append(state_somewhere(atm.accept_state))
    transition_parts.append(state_somewhere(atm.reject_state))
    p_transition = nest(config, union(*transition_parts))

    def move(position: int, state: str, symbol: str) -> Regex:
        """The Move_{i,q,a} macro: the children configurations implement δ."""
        if atm.is_final(state):
            return concat(state_somewhere(state), symbol_at(position, symbol))
        branches = []
        tables = (
            (("any1", atm.delta1), ("any2", atm.delta2))
            if state in atm.existential_states
            else (("all1", atm.delta1), ("all2", atm.delta2))
        )
        for edge_name, table in tables:
            transition = table.get((state, symbol))
            if transition is None:
                continue
            next_state, written, direction = transition
            next_position = position + direction
            if not 1 <= next_position <= space:
                continue
            branches.append(
                concat(
                    state_at(position, state),
                    symbol_at(position, symbol),
                    edge(edge_name),
                    state_at(next_position, next_state),
                    symbol_at(position, written),
                )
            )
        if not branches:
            return concat(state_at(position, state), symbol_at(position, symbol))
        if state in atm.existential_states:
            return union(*branches)
        return concat(*branches)

    p_execution = nest(
        config,
        union(
            *(
                move(i, state, symbol)
                for i in positions
                for state in atm.states
                for symbol in atm.work_alphabet
            )
        ),
    )

    def init_tape() -> Regex:
        cells = []
        padded = list(word) + [BLANK] * (space - len(word))
        for index, symbol in enumerate(padded, start=1):
            cells.append(symbol_at(index, symbol))
        return concat(*cells) if cells else concat()

    pos_copy = {
        i: nest(
            config,
            union(
                *(
                    concat(
                        symbol_at(i, symbol),
                        backward_edges,
                        symbol_at(i, symbol),
                    )
                    for symbol in atm.work_alphabet
                )
            ),
        )
        for i in positions
    }

    def tape_copy() -> Regex:
        branches = []
        for i in positions:
            others = [pos_copy[j] for j in positions if j != i]
            branches.append(
                concat(nest(config, concat(backward_edges, head_at(i))), *others)
            )
        return union(*branches) if branches else concat()

    p_tape_copy = nest(config, union(concat(state_at(1, atm.initial_state), init_tape()), tape_copy()))

    p_config = concat(p_head, p_tape, p_transition, p_execution, p_tape_copy)
    p_accept = concat(p_config, state_somewhere(atm.accept_state))
    p_start = concat(p_config, state_somewhere(atm.initial_state))

    down = union(edge("all1"), edge("any1"), edge("any2"))
    up = union(edge("all2-"), edge("any1-"), edge("any2-"))
    positive_regex = concat(
        p_start,
        star(
            concat(
                star(concat(p_config, down)),
                p_accept,
                star(up),
                edge("all1-"),
                edge("all2"),
            )
        ),
        star(concat(p_config, down)),
        p_accept,
        star(up),
        p_start,
    )
    positive = C2RPQ([Atom(positive_regex, "u", "v")], [], name=f"p_{atm.name}")

    return HardnessInstance(schema, positive, negative, atm, word, space)


# --------------------------------------------------------------------------- #
# Lemma F.2: containment reduces to the static-analysis problems
# --------------------------------------------------------------------------- #
def _as_unary(query: C2RPQ, canonical: str = "x") -> C2RPQ:
    """Rename a unary query so its single free variable is *canonical*."""
    if query.arity() != 1:
        raise ValueError(f"Lemma F.2 reductions expect unary queries, got arity {query.arity()}")
    (free,) = query.free_variables
    safe = query.with_fresh_variables("_lf2") if canonical in query.existential_variables() else query
    (free,) = safe.free_variables
    return safe.rename({free: canonical})


def containment_to_typechecking(
    schema: Schema, left: C2RPQ, right: C2RPQ
) -> Tuple[Transformation, Schema, Schema]:
    """Reduce ``p(x) ⊆_S q(x)`` to a type-checking instance (Lemma F.2).

    The transformation labels ``f_A(x)`` for witnesses of either query and
    adds an ``a``-self-loop exactly for witnesses of ``q``; the target schema
    requires every ``A``-node to have exactly one outgoing ``a``-edge, so type
    checking succeeds iff every ``p``-witness is a ``q``-witness.
    """
    constructor = NodeConstructor("fA", 1, "A")
    left_unary, right_unary = _as_unary(left), _as_unary(right)
    transformation = Transformation(name="T_containment")
    transformation.add(NodeRule("A", constructor, ("x",), left_unary))
    transformation.add(NodeRule("A", constructor, ("x",), right_unary))
    # a(f_A(x), f_A(x)) ← q(x), written with an ε-atom so the head tuples stay
    # disjoint as the paper requires
    copy_variable = "x__selfloop"
    loop_body = C2RPQ(
        list(right_unary.atoms) + [Atom(concat(), "x", copy_variable)],
        ["x", copy_variable],
        name="loop_body",
    )
    transformation.add(
        EdgeRule("a", constructor, ("x",), NodeConstructor("fA", 1, "A"), (copy_variable,), loop_body)
    )
    target = Schema(["A"], ["a"], name="S_target")
    target.set_edge("A", "a", "A", "1", "*")
    return transformation, schema, target


def containment_to_equivalence(
    schema: Schema, left: C2RPQ, right: C2RPQ
) -> Tuple[Transformation, Transformation, Schema]:
    """Reduce ``p(x) ⊆_S q(x)`` to transformation equivalence (Lemma F.2)."""
    constructor = NodeConstructor("fA", 1, "A")
    left_unary, right_unary = _as_unary(left), _as_unary(right)
    first = Transformation(name="T1_containment")
    first.add(NodeRule("A", constructor, ("x",), right_unary))
    second = Transformation(name="T2_containment")
    second.add(NodeRule("A", constructor, ("x",), right_unary))
    second.add(NodeRule("A", constructor, ("x",), left_unary))
    return first, second, schema
