"""A small textual DSL for schemas.

The syntax mirrors the graphical notation of Figure 1::

    schema S0 {
      nodes Vaccine, Antigen, Pathogen;
      edge Vaccine -designTarget-> Antigen [1, *];
      edge Antigen -crossReacting-> Antigen [*, *];
      edge Pathogen -exhibits-> Antigen [+, *];
    }

``edge A -r-> B [m, n]`` declares ``δ(A, r, B) = m`` (every ``A``-node has
``m`` outgoing ``r``-edges to ``B``-nodes) and ``δ(B, r⁻, A) = n`` (every
``B``-node has ``n`` incoming ``r``-edges from ``A``-nodes).  Additional
fine-grained constraints can be set with ``constraint A -r-> B : m;`` or
``constraint A <-r- B : m;`` for the inverse direction.
"""

from __future__ import annotations

import re
from typing import List

from ..exceptions import ParseError
from ..graph.labels import SignedLabel
from .schema import Schema

__all__ = ["parse_schema", "schema_to_text"]

_SCHEMA_RE = re.compile(r"schema\s+(?P<name>\w+)\s*\{(?P<body>.*)\}\s*$", re.S)
_NODES_RE = re.compile(r"nodes\s+(?P<labels>[^;]+);")
_EDGES_DECL_RE = re.compile(r"edges\s+(?P<labels>[^;]+);")
_EDGE_RE = re.compile(
    r"edge\s+(?P<source>\w+)\s*-\s*(?P<label>\w+)\s*->\s*(?P<target>\w+)"
    r"\s*\[\s*(?P<out>[?1+*0])\s*,\s*(?P<inc>[?1+*0])\s*\]\s*;"
)
_CONSTRAINT_RE = re.compile(
    r"constraint\s+(?P<source>\w+)\s*"
    r"(?P<arrow>-|<-)\s*(?P<label>\w+)\s*(?P<arrow2>->|-)\s*(?P<target>\w+)"
    r"\s*:\s*(?P<mult>[?1+*0])\s*;"
)
_COMMENT_RE = re.compile(r"(#|//)[^\n]*")


def parse_schema(text: str) -> Schema:
    """Parse a schema document written in the DSL described above."""
    stripped = _COMMENT_RE.sub("", text).strip()
    match = _SCHEMA_RE.match(stripped)
    if not match:
        raise ParseError("expected 'schema <name> { ... }'", text=text)
    name = match.group("name")
    body = match.group("body")

    node_labels: List[str] = []
    for nodes_match in _NODES_RE.finditer(body):
        node_labels.extend(label.strip() for label in nodes_match.group("labels").split(","))
    node_labels = [label for label in node_labels if label]
    if not node_labels:
        raise ParseError("schema must declare at least one node label", text=text)

    edge_labels: List[str] = []
    for edges_match in _EDGES_DECL_RE.finditer(body):
        edge_labels.extend(label.strip() for label in edges_match.group("labels").split(","))
    for edge_match in _EDGE_RE.finditer(body):
        edge_labels.append(edge_match.group("label"))
    for constraint_match in _CONSTRAINT_RE.finditer(body):
        edge_labels.append(constraint_match.group("label"))
    edge_labels = sorted({label for label in edge_labels if label})

    schema = Schema(node_labels, edge_labels, name=name)

    for edge_match in _EDGE_RE.finditer(body):
        schema.set_edge(
            edge_match.group("source"),
            edge_match.group("label"),
            edge_match.group("target"),
            edge_match.group("out"),
            edge_match.group("inc"),
        )

    for constraint_match in _CONSTRAINT_RE.finditer(body):
        source = constraint_match.group("source")
        target = constraint_match.group("target")
        label = constraint_match.group("label")
        arrow, arrow2 = constraint_match.group("arrow"), constraint_match.group("arrow2")
        mult = constraint_match.group("mult")
        if arrow == "-" and arrow2 == "->":
            schema.set(source, SignedLabel.parse(label), target, mult)
        elif arrow == "<-" and arrow2 == "-":
            schema.set(source, SignedLabel.parse(f"{label}-"), target, mult)
        else:
            raise ParseError(
                f"malformed constraint arrow in {constraint_match.group(0)!r}", text=text
            )

    # sanity: every residual, unparsed 'edge'/'constraint' line is an error
    residual = _EDGE_RE.sub("", _CONSTRAINT_RE.sub("", body))
    for statement in residual.split(";"):
        statement = statement.strip()
        if statement.startswith("edge ") or statement.startswith("constraint "):
            raise ParseError(f"could not parse declaration: {statement!r}", text=text)
    return schema


def schema_to_text(schema: Schema) -> str:
    """Render a schema back to the DSL (best effort, lossless for pair declarations)."""
    lines = [f"schema {schema.name} {{"]
    lines.append(f"  nodes {', '.join(sorted(schema.node_labels))};")
    if schema.edge_labels:
        lines.append(f"  edges {', '.join(sorted(schema.edge_labels))};")
    for source, signed, target, mult in schema.declared_constraints():
        if signed.is_inverse:
            lines.append(f"  constraint {source} <-{signed.label}- {target} : {mult};")
        else:
            lines.append(f"  constraint {source} -{signed.label}-> {target} : {mult};")
    lines.append("}")
    return "\n".join(lines)
