"""Graph schemas with participation constraints (Section 3 of the paper).

A schema is a triple ``S = (Γ_S, Σ_S, δ_S)`` where ``Γ_S`` is a finite set of
allowed node labels, ``Σ_S`` a finite set of allowed edge labels and
``δ_S : Γ_S × Σ±_S × Γ_S → {?, 1, +, *, 0}`` assigns a participation
constraint to every (source label, signed edge label, target label) triple.
Triples that are not mentioned are implicitly forbidden (multiplicity ``0``).

A graph conforms to ``S`` when every node carries exactly one label from
``Γ_S``, every edge label belongs to ``Σ_S`` and for every node with label
``A`` and every ``R ∈ Σ±_S``, ``B ∈ Γ_S`` the number of its ``R``-successors
labeled ``B`` satisfies ``δ_S(A, R, B)``.
"""

from __future__ import annotations

import hashlib
from enum import Enum
from typing import Dict, FrozenSet, Iterable, Iterator, Mapping, Optional, Tuple, Union

from ..exceptions import SchemaError
from ..graph.labels import SignedLabel, forward, signed_closure

__all__ = ["Multiplicity", "Schema", "ConstraintTriple"]


class Multiplicity(Enum):
    """Participation constraints: how many successors of a kind are allowed."""

    ZERO = "0"
    ONE = "1"
    OPTIONAL = "?"
    PLUS = "+"
    STAR = "*"

    # ------------------------------------------------------------------ #
    @classmethod
    def parse(cls, text: Union[str, "Multiplicity"]) -> "Multiplicity":
        """Parse the one-character textual form used in figures and the DSL."""
        if isinstance(text, Multiplicity):
            return text
        for member in cls:
            if member.value == text:
                return member
        raise SchemaError(f"unknown multiplicity symbol: {text!r}")

    def allows(self, count: int) -> bool:
        """``True`` when a node may have exactly *count* matching successors."""
        if count < 0:
            raise ValueError("count must be non-negative")
        if self is Multiplicity.ZERO:
            return count == 0
        if self is Multiplicity.ONE:
            return count == 1
        if self is Multiplicity.OPTIONAL:
            return count <= 1
        if self is Multiplicity.PLUS:
            return count >= 1
        return True  # STAR

    @property
    def requires_at_least_one(self) -> bool:
        """``True`` for ``1`` and ``+``."""
        return self in (Multiplicity.ONE, Multiplicity.PLUS)

    @property
    def requires_at_most_one(self) -> bool:
        """``True`` for ``0``, ``1`` and ``?``."""
        return self in (Multiplicity.ZERO, Multiplicity.ONE, Multiplicity.OPTIONAL)

    @property
    def forbids(self) -> bool:
        """``True`` for ``0``."""
        return self is Multiplicity.ZERO

    def allowed_counts(self) -> FrozenSet[Union[int, str]]:
        """A symbolic description of the allowed counts (used by ``is_at_most``)."""
        mapping = {
            Multiplicity.ZERO: frozenset({0}),
            Multiplicity.ONE: frozenset({1}),
            Multiplicity.OPTIONAL: frozenset({0, 1}),
            Multiplicity.PLUS: frozenset({1, "many"}),
            Multiplicity.STAR: frozenset({0, 1, "many"}),
        }
        return mapping[self]

    def is_at_most(self, other: "Multiplicity") -> bool:
        """The containment order ≼ of Proposition B.3, read semantically.

        ``m ≼ m'`` holds when every count allowed by ``m`` is allowed by
        ``m'`` (set inclusion of allowed counts).  The paper states the order
        as the closure of ``0 ≼ ?``, ``1 ≼ ?``, ``? ≼ +``, ``+ ≼ *``; the
        third generator is a typo (``{0,1} ⊄ {1,2,…}``) and the semantic
        reading used here (``? ≼ *`` instead) is the one consistent with
        Proposition B.3's proof, which argues via allowed successor counts.
        """
        return self.allowed_counts() <= other.allowed_counts()

    def __str__(self) -> str:
        return self.value


ConstraintTriple = Tuple[str, SignedLabel, str]


class Schema:
    """A graph schema ``(Γ_S, Σ_S, δ_S)`` with participation constraints."""

    def __init__(
        self,
        node_labels: Iterable[str],
        edge_labels: Iterable[str],
        constraints: Optional[Mapping[ConstraintTriple, Union[str, Multiplicity]]] = None,
        name: str = "S",
    ) -> None:
        self.name = name
        self.node_labels: FrozenSet[str] = frozenset(node_labels)
        self.edge_labels: FrozenSet[str] = frozenset(edge_labels)
        if not all(isinstance(label, str) and label for label in self.node_labels):
            raise SchemaError("node labels must be non-empty strings")
        if not all(isinstance(label, str) and label for label in self.edge_labels):
            raise SchemaError("edge labels must be non-empty strings")
        self._delta: Dict[ConstraintTriple, Multiplicity] = {}
        for (source, signed, target), mult in (constraints or {}).items():
            self.set(source, signed, target, mult)

    # ------------------------------------------------------------------ #
    # constraint table
    # ------------------------------------------------------------------ #
    def _check_triple(self, source: str, signed: SignedLabel, target: str) -> None:
        if source not in self.node_labels:
            raise SchemaError(f"unknown node label {source!r} in schema {self.name}")
        if target not in self.node_labels:
            raise SchemaError(f"unknown node label {target!r} in schema {self.name}")
        if signed.label not in self.edge_labels:
            raise SchemaError(f"unknown edge label {signed.label!r} in schema {self.name}")

    def set(
        self,
        source: str,
        signed: Union[SignedLabel, str],
        target: str,
        multiplicity: Union[str, Multiplicity],
    ) -> None:
        """Declare ``δ_S(source, signed, target) = multiplicity``."""
        if isinstance(signed, str):
            signed = SignedLabel.parse(signed)
        self._check_triple(source, signed, target)
        self._delta[(source, signed, target)] = Multiplicity.parse(multiplicity)

    def set_edge(
        self,
        source: str,
        label: str,
        target: str,
        out_multiplicity: Union[str, Multiplicity],
        in_multiplicity: Union[str, Multiplicity],
    ) -> None:
        """Declare both directions of an edge at once.

        ``out_multiplicity`` constrains how many ``label``-successors with
        label *target* each *source* node has; ``in_multiplicity`` constrains
        how many ``label⁻``-successors (i.e. predecessors) with label *source*
        each *target* node has.  This matches the graphical notation of
        Figure 1, e.g. ``A --r[* 1]--> B``.
        """
        self.set(source, forward(label), target, out_multiplicity)
        self.set(target, SignedLabel.parse(f"{label}-"), source, in_multiplicity)

    def multiplicity(
        self, source: str, signed: Union[SignedLabel, str], target: str
    ) -> Multiplicity:
        """Return ``δ_S(source, signed, target)``; unmentioned triples are ``0``."""
        if isinstance(signed, str):
            signed = SignedLabel.parse(signed)
        self._check_triple(source, signed, target)
        return self._delta.get((source, signed, target), Multiplicity.ZERO)

    def declared_constraints(self) -> Iterator[Tuple[str, SignedLabel, str, Multiplicity]]:
        """Iterate over the explicitly declared constraints."""
        for (source, signed, target), mult in sorted(self._delta.items(), key=repr):
            yield source, signed, target, mult

    def all_constraints(self) -> Iterator[Tuple[str, SignedLabel, str, Multiplicity]]:
        """Iterate over δ_S on its whole domain Γ_S × Σ±_S × Γ_S (including implicit 0)."""
        for source in sorted(self.node_labels):
            for signed in sorted(signed_closure(sorted(self.edge_labels))):
                for target in sorted(self.node_labels):
                    yield source, signed, target, self.multiplicity(source, signed, target)

    def allowed_edge_triples(self) -> Iterator[Tuple[str, str, str]]:
        """Iterate over (A, r, B) such that an r-edge from an A-node to a B-node is allowed."""
        for source in sorted(self.node_labels):
            for label in sorted(self.edge_labels):
                for target in sorted(self.node_labels):
                    if not self.multiplicity(source, forward(label), target).forbids:
                        yield source, label, target

    def forbids_edge(self, source: str, label: str, target: str) -> bool:
        """``True`` when no r-edge from an A-node to a B-node is allowed.

        An edge is allowed only when *neither* direction of the participation
        table forbids it: ``δ(A, r, B) ≠ 0`` and ``δ(B, r⁻, A) ≠ 0``.
        """
        if self.multiplicity(source, forward(label), target).forbids:
            return True
        return self.multiplicity(target, SignedLabel.parse(f"{label}-"), source).forbids

    # ------------------------------------------------------------------ #
    # misc
    # ------------------------------------------------------------------ #
    def is_empty(self) -> bool:
        """``True`` when the schema has no node labels (only the empty graph conforms)."""
        return not self.node_labels

    def restrict(self, node_labels: Iterable[str], edge_labels: Iterable[str]) -> "Schema":
        """Return the schema restricted to the given label sets."""
        node_keep = self.node_labels & frozenset(node_labels)
        edge_keep = self.edge_labels & frozenset(edge_labels)
        result = Schema(node_keep, edge_keep, name=f"{self.name}|restricted")
        for source, signed, target, mult in self.declared_constraints():
            if source in node_keep and target in node_keep and signed.label in edge_keep:
                result.set(source, signed, target, mult)
        return result

    def canonical_token(self) -> str:
        """An injective serialisation of the schema's *semantics*.

        Explicitly declared ``0`` constraints are omitted (they coincide with
        the implicit default), constraints are sorted, and the schema name is
        excluded — so two schemas compare equal exactly when their tokens
        coincide.  This is the schema component of the :mod:`repro.engine`
        cache keys.
        """
        nodes = ",".join(f"{len(l)}:{l}" for l in sorted(self.node_labels))
        edges = ",".join(f"{len(l)}:{l}" for l in sorted(self.edge_labels))
        constraints = ";".join(
            sorted(
                f"{len(s)}:{s}|{len(str(signed))}:{signed}|{len(t)}:{t}|{mult}"
                for (s, signed, t), mult in self._delta.items()
                if mult is not Multiplicity.ZERO
            )
        )
        return f"schema[{nodes}][{edges}][{constraints}]"

    def canonical_fingerprint(self) -> str:
        """SHA-256 digest of :meth:`canonical_token` (cache-key material)."""
        return hashlib.sha256(self.canonical_token().encode("utf-8")).hexdigest()

    def copy(self, name: Optional[str] = None) -> "Schema":
        """Return a copy of the schema."""
        result = Schema(self.node_labels, self.edge_labels, name=name or self.name)
        for source, signed, target, mult in self.declared_constraints():
            result.set(source, signed, target, mult)
        return result

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        if self.node_labels != other.node_labels or self.edge_labels != other.edge_labels:
            return False
        return all(
            self.multiplicity(a, r, b) == other.multiplicity(a, r, b)
            for a, r, b, _ in self.all_constraints()
        )

    def __hash__(self) -> int:
        return hash((self.node_labels, self.edge_labels))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Schema({self.name!r}, nodes={sorted(self.node_labels)}, "
            f"edges={sorted(self.edge_labels)})"
        )

    def describe(self) -> str:
        """Return a human-readable listing of the declared constraints."""
        lines = [f"schema {self.name}"]
        lines.append(f"  node labels: {', '.join(sorted(self.node_labels)) or '-'}")
        lines.append(f"  edge labels: {', '.join(sorted(self.edge_labels)) or '-'}")
        for source, signed, target, mult in self.declared_constraints():
            lines.append(f"  {source} -{signed}-> {target} : {mult}")
        return "\n".join(lines)
