"""Conformance of a graph to a schema (Section 3).

A graph conforms to a schema ``S`` when

1. every node has exactly one label, taken from ``Γ_S``, and every edge label
   belongs to ``Σ_S``;
2. for all ``A, B ∈ Γ_S`` and ``R ∈ Σ±_S``, every ``A``-node has a number of
   ``R``-successors labeled ``B`` that satisfies ``δ_S(A, R, B)``.

The checker reports precise violations so that tests and users can see *why*
a graph fails to conform.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..graph.graph import Graph, NodeId
from ..graph.labels import SignedLabel, signed_closure
from .schema import Multiplicity, Schema

__all__ = ["Violation", "ConformanceReport", "check_conformance", "conforms"]


@dataclass(frozen=True)
class Violation:
    """A single conformance violation, attached to the offending node."""

    kind: str
    node: NodeId
    message: str
    source_label: Optional[str] = None
    edge: Optional[SignedLabel] = None
    target_label: Optional[str] = None

    def __str__(self) -> str:
        return f"[{self.kind}] node {self.node!r}: {self.message}"


@dataclass
class ConformanceReport:
    """Outcome of a conformance check."""

    schema_name: str
    violations: List[Violation]

    @property
    def ok(self) -> bool:
        """``True`` when no violation was found."""
        return not self.violations

    def __bool__(self) -> bool:
        return self.ok

    def summary(self) -> str:
        """One line per violation, or a success message."""
        if self.ok:
            return f"graph conforms to schema {self.schema_name}"
        lines = [f"graph violates schema {self.schema_name}:"]
        lines.extend(f"  {violation}" for violation in self.violations)
        return "\n".join(lines)


def check_conformance(graph: Graph, schema: Schema, max_violations: Optional[int] = None) -> ConformanceReport:
    """Check conformance and return a detailed report.

    *max_violations* truncates the report (useful on large graphs); ``None``
    collects every violation.
    """
    violations: List[Violation] = []

    def add(violation: Violation) -> bool:
        violations.append(violation)
        return max_violations is not None and len(violations) >= max_violations

    # condition 1: label discipline
    for node in graph.nodes():
        labels = graph.labels(node)
        schema_labels = labels & schema.node_labels
        foreign = labels - schema.node_labels
        if foreign:
            if add(
                Violation(
                    "foreign-node-label",
                    node,
                    f"carries labels {sorted(foreign)} outside Γ_S",
                )
            ):
                return ConformanceReport(schema.name, violations)
        if len(schema_labels) == 0:
            if add(Violation("unlabeled-node", node, "has no label from Γ_S")):
                return ConformanceReport(schema.name, violations)
        elif len(schema_labels) > 1:
            if add(
                Violation(
                    "multiple-node-labels",
                    node,
                    f"has several labels from Γ_S: {sorted(schema_labels)}",
                )
            ):
                return ConformanceReport(schema.name, violations)

    for source, label, target in graph.edges():
        if label not in schema.edge_labels:
            if add(
                Violation(
                    "foreign-edge-label",
                    source,
                    f"has an outgoing {label!r}-edge but {label!r} ∉ Σ_S",
                )
            ):
                return ConformanceReport(schema.name, violations)

    # condition 2: participation constraints
    signed_labels = list(signed_closure(sorted(schema.edge_labels)))
    for node in graph.nodes():
        node_schema_labels = graph.labels(node) & schema.node_labels
        if len(node_schema_labels) != 1:
            continue  # already reported above
        (source_label,) = node_schema_labels
        for signed in signed_labels:
            successors = graph.successors(node, signed)
            for target_label in sorted(schema.node_labels):
                count = sum(1 for s in successors if graph.has_label(s, target_label))
                required: Multiplicity = schema.multiplicity(source_label, signed, target_label)
                if not required.allows(count):
                    if add(
                        Violation(
                            "participation",
                            node,
                            (
                                f"{source_label}-node has {count} {signed}-successors "
                                f"labeled {target_label}, but δ({source_label},{signed},"
                                f"{target_label}) = {required}"
                            ),
                            source_label=source_label,
                            edge=signed,
                            target_label=target_label,
                        )
                    ):
                        return ConformanceReport(schema.name, violations)
    return ConformanceReport(schema.name, violations)


def conforms(graph: Graph, schema: Schema) -> bool:
    """``True`` when *graph* conforms to *schema* (i.e. ``graph ∈ L(S)``)."""
    return check_conformance(graph, schema, max_violations=1).ok
