"""Graph schemas with participation constraints (Section 3 of the paper)."""

from .schema import Multiplicity, Schema
from .conformance import ConformanceReport, Violation, check_conformance, conforms
from .containment import (
    ContainmentCounterexample,
    schema_contained_in,
    schema_containment_counterexamples,
    schema_equivalent,
)
from .parser import parse_schema, schema_to_text

__all__ = [
    "Multiplicity",
    "Schema",
    "ConformanceReport",
    "Violation",
    "check_conformance",
    "conforms",
    "ContainmentCounterexample",
    "schema_contained_in",
    "schema_containment_counterexamples",
    "schema_equivalent",
    "parse_schema",
    "schema_to_text",
]
