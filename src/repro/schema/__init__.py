"""Graph schemas with participation constraints (Section 3 of the paper).

Re-exports:

* :class:`Schema` / :class:`Multiplicity` — the triple ``(Γ, Σ, δ)`` and the
  ``? 1 + * 0`` participation symbols;
* :func:`conforms` / :func:`check_conformance` with
  :class:`ConformanceReport` / :class:`Violation` — does a graph conform,
  and if not, why not;
* :func:`schema_contained_in` / :func:`schema_equivalent` /
  :func:`schema_containment_counterexamples` /
  :class:`ContainmentCounterexample` — the schema-level containment order of
  Proposition B.3;
* :func:`parse_schema` / :func:`schema_to_text` — the textual schema DSL.
"""

from .schema import Multiplicity, Schema
from .conformance import ConformanceReport, Violation, check_conformance, conforms
from .containment import (
    ContainmentCounterexample,
    schema_contained_in,
    schema_containment_counterexamples,
    schema_equivalent,
)
from .parser import parse_schema, schema_to_text

__all__ = [
    "Multiplicity",
    "Schema",
    "ConformanceReport",
    "Violation",
    "check_conformance",
    "conforms",
    "ContainmentCounterexample",
    "schema_contained_in",
    "schema_containment_counterexamples",
    "schema_equivalent",
    "parse_schema",
    "schema_to_text",
]
