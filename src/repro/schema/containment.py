"""Schema containment and equivalence (Proposition B.3).

For two schemas over the *same* label sets, containment ``L(S1) ⊆ L(S2)``
holds exactly when every declared multiplicity of ``S1`` is at most (in the
allowed-counts order) the corresponding multiplicity of ``S2``.  For schemas
over different label sets the comparison first checks that the label sets of
the smaller schema are included in those of the larger one and that every
triple mentioning a label missing from ``S1`` is irrelevant.

The paper notes that schema equivalence is decidable in polynomial time; the
functions here are the polynomial-time procedures used both by the schema
elicitation decision problem and by tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..graph.labels import SignedLabel, signed_closure
from .schema import Multiplicity, Schema

__all__ = [
    "ContainmentCounterexample",
    "schema_contained_in",
    "schema_containment_counterexamples",
    "schema_equivalent",
]


@dataclass(frozen=True)
class ContainmentCounterexample:
    """A triple whose multiplicities witness non-containment of schemas."""

    source: str
    edge: SignedLabel
    target: str
    left: Multiplicity
    right: Multiplicity

    def __str__(self) -> str:
        return (
            f"δ₁({self.source},{self.edge},{self.target}) = {self.left} "
            f"⋠ {self.right} = δ₂({self.source},{self.edge},{self.target})"
        )


def schema_containment_counterexamples(
    left: Schema, right: Schema, limit: Optional[int] = None
) -> List[ContainmentCounterexample]:
    """List the constraint triples that witness ``L(left) ⊄ L(right)``.

    An empty list means ``L(left) ⊆ L(right)``.
    """
    problems: List[ContainmentCounterexample] = []

    # A node label allowed by `left` but unknown to `right` breaks containment
    # as soon as `left` admits a non-empty graph using it; we conservatively
    # flag it (the caller can refine with emptiness information).
    shared_nodes = left.node_labels & right.node_labels
    shared_edges = left.edge_labels & right.edge_labels

    for source in sorted(left.node_labels):
        for signed in signed_closure(sorted(left.edge_labels)):
            for target in sorted(left.node_labels):
                left_mult = left.multiplicity(source, signed, target)
                if (
                    source in shared_nodes
                    and target in shared_nodes
                    and signed.label in shared_edges
                ):
                    right_mult = right.multiplicity(source, signed, target)
                elif left_mult is Multiplicity.ZERO:
                    continue  # forbidden on the left, trivially fine
                else:
                    right_mult = Multiplicity.ZERO
                if not left_mult.is_at_most(right_mult):
                    problems.append(
                        ContainmentCounterexample(source, signed, target, left_mult, right_mult)
                    )
                    if limit is not None and len(problems) >= limit:
                        return problems
    for source in sorted(left.node_labels - right.node_labels):
        problems.append(
            ContainmentCounterexample(
                source,
                SignedLabel.parse(next(iter(left.edge_labels), "edge")),
                source,
                Multiplicity.STAR,
                Multiplicity.ZERO,
            )
        )
        if limit is not None and len(problems) >= limit:
            return problems
    return problems


def schema_contained_in(left: Schema, right: Schema) -> bool:
    """``True`` when ``L(left) ⊆ L(right)`` (Proposition B.3).

    When the schemas share their label sets this is exact.  When ``left``
    uses node labels unknown to ``right`` the check conservatively answers
    ``False`` (such a label can typically be realised by some conforming
    graph, which then cannot conform to ``right``).
    """
    return not schema_containment_counterexamples(left, right, limit=1)


def schema_equivalent(left: Schema, right: Schema) -> bool:
    """``True`` when ``L(left) = L(right)``."""
    return schema_contained_in(left, right) and schema_contained_in(right, left)


def compare(left: Schema, right: Schema) -> Tuple[bool, bool]:
    """Return the pair ``(L(left) ⊆ L(right), L(right) ⊆ L(left))``."""
    return schema_contained_in(left, right), schema_contained_in(right, left)
