"""The HTTP transport: stdlib ``http.server``, no new dependencies.

One :class:`ContainmentHTTPServer` wraps a
:class:`~repro.service.service.ContainmentService` in a
``ThreadingHTTPServer``: every client connection gets a handler thread, the
handler threads block on coalescer futures, and the coalescer merges their
concurrent requests into micro-batches — the threading server *is* the
concurrency that makes coalescing work.

Endpoints:

* ``GET /healthz`` — liveness (status, version, backend, uptime);
* ``GET /stats`` — the full counter block (service, coalescer, engine
  caches, worker pool, persistent store);
* ``POST /contain`` — one request payload (see
  :mod:`repro.service.service`), one verdict;
* ``POST /batch`` — ``{"requests": [...]}``, answered in request order
  (the whole body is queued before the first wait, so a client-side batch
  coalesces with itself and with other clients);
* ``POST /schema-update`` — ``{"old": <schema DSL>, "new": <schema DSL>}``,
  evolves the live engine between schemas without a restart and returns
  the :class:`~repro.engine.EvolveReport` as JSON.

Malformed payloads are 400s with a JSON ``{"error": ...}`` body; an engine
failure is a 500 carrying the exception text.  Keep-alive (HTTP/1.1 with
explicit ``Content-Length``) is on so closed-loop benchmark clients do not
pay a TCP handshake per request.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Tuple

from .service import REQUEST_TIMEOUT_SECONDS, ContainmentService, ServiceError

__all__ = ["ContainmentHTTPServer", "make_server"]

#: Cap on one request body (a schema DSL text plus two queries is a few KiB;
#: megabytes means a confused or hostile client, not a bigger schema).
MAX_BODY_BYTES = 4 * 1024 * 1024


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server: "ContainmentHTTPServer"

    # -- plumbing ---------------------------------------------------------
    def _send_json(self, status: int, payload: Any) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if self.close_connection:
            # an unread/unreadable body poisoned the connection; the server
            # will drop it — say so instead of leaving the client to find out
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self) -> Any:
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            # e.g. a proxy folding duplicate headers into "67, 67" — the
            # body length is unknowable, so the connection cannot be reused
            self.close_connection = True
            raise ServiceError("invalid Content-Length header") from None
        if length <= 0 or length > MAX_BODY_BYTES:
            # the body is not going to be read, which would desync a
            # keep-alive connection (the next request line would be parsed
            # out of the unread body bytes) — drop the connection instead
            self.close_connection = True
            if length <= 0:
                raise ServiceError("request body must be a JSON document")
            raise ServiceError(f"request body exceeds {MAX_BODY_BYTES} bytes")
        try:
            return json.loads(self.rfile.read(length).decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ServiceError(f"invalid JSON body: {error}") from error

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        if self.server.verbose:
            super().log_message(format, *args)

    # -- endpoints --------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        service = self.server.service
        if self.path in ("/healthz", "/health"):
            self._send_json(200, service.healthz())
        elif self.path == "/stats":
            self._send_json(200, service.stats_report())
        else:
            self._send_json(404, {"error": f"unknown path {self.path!r}"})

    def do_POST(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        service = self.server.service
        try:
            payload = self._read_json()
            if self.path in ("/contain", "/check"):
                response: Any = service.handle(payload, timeout=REQUEST_TIMEOUT_SECONDS)
            elif self.path == "/batch":
                if not isinstance(payload, dict) or not isinstance(
                    payload.get("requests"), list
                ):
                    raise ServiceError("/batch expects {\"requests\": [...]}")
                response = {
                    "results": service.handle_many(
                        payload["requests"], timeout=REQUEST_TIMEOUT_SECONDS
                    )
                }
            elif self.path == "/schema-update":
                response = service.schema_update(payload)
            else:
                self._send_json(404, {"error": f"unknown path {self.path!r}"})
                return
        except ServiceError as error:
            self._send_json(400, {"error": str(error)})
        except Exception as error:  # noqa: BLE001 - one request, one reply
            self._send_json(500, {"error": f"{type(error).__name__}: {error}"})
        else:
            self._send_json(200, response)


class ContainmentHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one containment service.

    ``daemon_threads`` is on so a hung client connection can never block
    interpreter exit; ``close()``/context-manager exit shuts the listener
    down and then closes the service (coalescer → engine → store ordering
    inside).
    """

    daemon_threads = True

    def __init__(
        self,
        service: ContainmentService,
        address: Tuple[str, int] = ("127.0.0.1", 0),
        *,
        verbose: bool = False,
    ) -> None:
        self.service = service
        self.verbose = verbose
        self._serving = False
        super().__init__(address, _Handler)

    def serve_forever(self, poll_interval: float = 0.5) -> None:
        self._serving = True
        try:
            super().serve_forever(poll_interval)
        finally:
            self._serving = False

    @property
    def port(self) -> int:
        """The bound port (the OS's pick when constructed with port 0)."""
        return self.server_address[1]

    @property
    def url(self) -> str:
        host = self.server_address[0]
        return f"http://{host}:{self.port}"

    def close(self) -> None:
        """Stop accepting, release the socket, close the service.

        ``shutdown()`` waits on an event that only ``serve_forever`` sets,
        so it is skipped when the loop never started (an embedder that
        failed before starting the serve thread) — calling it then would
        deadlock forever.
        """
        if self._serving:
            self.shutdown()
        self.server_close()
        self.service.close()

    def __exit__(self, *exc_info) -> None:
        # socketserver's __exit__ only calls server_close(), which would
        # yank the listening socket out from under a still-running
        # serve_forever thread; route through close() for the full
        # shutdown-then-close-then-service ordering
        self.close()


def make_server(
    service: ContainmentService,
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    verbose: bool = False,
) -> ContainmentHTTPServer:
    """Bind (port ``0`` → ephemeral) and return the server, not yet serving.

    Call ``serve_forever()`` to run; ``server.port`` is the bound port and
    is printed by ``python -m repro serve`` so smoke tests can connect.
    """
    return ContainmentHTTPServer(service, (host, port), verbose=verbose)
