"""The long-running containment service: one warm engine, many clients.

A :class:`ContainmentService` owns the artefacts every single-shot caller
used to pay for per invocation — a warm
:class:`~repro.engine.ContainmentEngine` (with its four memory caches), the
optional process :class:`~repro.engine.parallel.WorkerPool`, the optional
disk-persistent :class:`~repro.store.ResultStore`, and two parse caches for
schema/query source text — and serves JSON requests through the
:class:`~repro.service.coalescer.RequestCoalescer`, so concurrent traffic
from independent clients micro-batches into ``check_many`` calls where all
of that warmth applies.

Request payloads are plain dicts (the HTTP body / one NDJSON stdio line)::

    {"schema": "schema S { ... }",       # schema DSL text, or instead:
     "workload": "medical",              # a built-in workload's source schema
     "left": "p(x) := (r)(x, y)",
     "right": "q(x) := A(x)",
     "id": "anything"}                   # optional, echoed in the response

Responses carry the verdict, the canonical ``result_fingerprint`` (so
clients — and the CI smoke check — can assert bit-identity against serial
runs), and timing.  Malformed payloads raise :class:`ServiceError`, which
the transports render as a 400/error line without touching the engine.

Lifecycle ordering on :meth:`close` (see docs/ARCHITECTURE.md, "The serving
layer"): **coalescer → engine (pool → store)** — first stop accepting and
drain in-flight batches (their merge-backs still write through the engine),
then tear the engine down, which stops the pool before closing the store so
the pool's final write-backs land.  The service is a context manager, and a
closed service rejects new requests with a clear error.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, List, Optional, Tuple

from .. import __version__
from ..engine import ContainmentEngine, result_fingerprint
from ..engine.cache import LRUCache
from ..rpq.parser import parse_c2rpq
from ..schema.parser import parse_schema
from ..workloads.batches import BUILTIN_WORKLOADS, workload_schemas
from .coalescer import RequestCoalescer

__all__ = ["REQUEST_TIMEOUT_SECONDS", "ContainmentService", "ServiceError"]

#: How long one client request may wait on its coalesced verdict before the
#: transport gives up (shared by the HTTP handlers and the stdio writer, so
#: a wedged engine turns into an error response, never a hung transport).
REQUEST_TIMEOUT_SECONDS = 300.0


class ServiceError(ValueError):
    """A malformed request (missing field, parse failure, unknown workload).

    Transports map it to a client error — HTTP 400, an ``"error"`` NDJSON
    line — without counting engine work or touching the coalescer.
    """


class ContainmentService:
    """Serves containment requests from one warm engine via the coalescer.

    ``parallel`` selects the backend flushed batches run on: ``"auto"`` (the
    default — the engine measures per-item solve and serialization cost and
    picks serial/thread/process per batch, see ``repro.engine.adaptive``),
    or a pinned ``"serial"``/``"thread"``/``"process"`` (the process pool is
    spawned eagerly so the first request does not pay for it; under
    ``"auto"`` the pool spawns only once the measured costs actually favour
    it).  ``persist`` puts the disk store behind the engine;
    ``coalesce_window``/``max_batch`` shape the micro-batching.  Pass an
    existing ``engine`` to embed the service next to other users of the same
    caches (the caller keeps ownership and the service's ``close()`` leaves
    it open).
    """

    def __init__(
        self,
        *,
        config: Optional[Any] = None,
        parallel: Any = "auto",
        workers: Optional[int] = None,
        persist: Optional[Any] = None,
        persist_mode: str = "rw",
        coalesce_window: float = 0.005,
        max_batch: int = 64,
        engine: Optional[ContainmentEngine] = None,
        parse_cache_size: int = 256,
    ) -> None:
        # validate everything that can fail *before* building the engine —
        # and close an engine this constructor created if a later step (pool
        # spawn, coalescer setup) fails, so a half-built service never leaks
        # worker processes or an open store handle
        backend = ContainmentEngine._normalise_backend(parallel)
        self._owns_engine = engine is None
        self.engine = engine if engine is not None else ContainmentEngine(
            config, max_workers=workers, persist=persist, persist_mode=persist_mode
        )
        try:
            if backend == "process":
                # pay the spawn cost now, not on the first client's request
                self.engine.process_pool(workers).start()
            self.coalescer = RequestCoalescer(
                self.engine,
                window=coalesce_window,
                max_batch=max_batch,
                parallel=backend,
                max_workers=workers,
            )
        except BaseException:
            if self._owns_engine:
                self.engine.close()
            raise
        self.backend = backend
        self.started_at = time.time()
        self._lock = threading.Lock()
        self._closed = False
        self._requests = 0
        self._failures = 0
        # the schema-evolution ledger behind POST /schema-update: how many
        # live evolves ran, and the last EvolveReport (rendered in /stats)
        self._schema_updates = 0
        self._last_evolve: Optional[Dict[str, Any]] = None
        # parse caches: service traffic repeats schema/query *text* verbatim
        # (every client ships its schema with every request), and parsing a
        # schema is pure — same text, same object — so one parsed instance
        # can serve every future request that carries the same source
        self._schemas = LRUCache("parsed-schemas", parse_cache_size)
        self._queries = LRUCache("parsed-queries", 4 * parse_cache_size)

    # ------------------------------------------------------------------ #
    # request handling
    # ------------------------------------------------------------------ #
    def _parse_schema_text(self, text: Any, field: str):
        """Parse schema DSL text through the parse cache (shared by the
        ``schema`` request field and ``/schema-update``'s old/new pair)."""
        if not isinstance(text, str):
            raise ServiceError(f"{field!r} must be schema DSL text")
        with self._lock:
            schema = self._schemas.get(text)
        if schema is None:
            try:
                schema = parse_schema(text)
            except Exception as error:  # noqa: BLE001 - reported to the client
                raise ServiceError(f"{field} schema parse error: {error}") from error
            with self._lock:
                self._schemas.put(text, schema)
        return schema

    def _parse_schema(self, payload: Dict[str, Any]):
        if "schema" in payload:
            return self._parse_schema_text(payload["schema"], "schema")
        if "workload" in payload:
            name = payload["workload"]
            if name not in BUILTIN_WORKLOADS:
                raise ServiceError(
                    f"unknown workload {name!r} (expected one of {', '.join(BUILTIN_WORKLOADS)})"
                )
            length = payload.get("length", 8)
            if type(length) is not int or not 1 <= length <= 64:
                # validated here like every other payload field, so a
                # malformed value is a 400, not a 500 from deep inside the
                # generator (or an unhashable cache key)
                raise ServiceError("'length' must be an integer between 1 and 64")
            key = (name, length)
            with self._lock:
                schema = self._schemas.get(key)
            if schema is None:
                schema = workload_schemas(name, length=length)["source"]
                with self._lock:
                    self._schemas.put(key, schema)
            return schema
        raise ServiceError("request needs a 'schema' (DSL text) or a 'workload' name")

    def _parse_query(self, payload: Dict[str, Any], field: str):
        try:
            text = payload[field]
        except KeyError:
            raise ServiceError(f"request is missing the {field!r} query") from None
        if not isinstance(text, str):
            raise ServiceError(f"{field!r} must be query source text")
        with self._lock:
            query = self._queries.get(text)
        if query is None:
            try:
                query = parse_c2rpq(text)
            except Exception as error:  # noqa: BLE001 - reported to the client
                raise ServiceError(f"{field} query parse error: {error}") from error
            with self._lock:
                self._queries.put(text, query)
        return query

    def _parse_payload(self, payload: Dict[str, Any]) -> Tuple[Any, Any, Any]:
        if self._closed:
            raise RuntimeError("the containment service has been closed")
        if not isinstance(payload, dict):
            raise ServiceError("request must be a JSON object")
        schema = self._parse_schema(payload)
        left = self._parse_query(payload, "left")
        right = self._parse_query(payload, "right")
        return left, right, schema

    def _submit_parsed(self, left: Any, right: Any, schema: Any):
        with self._lock:
            self._requests += 1
        try:
            return self.coalescer.submit(left, right, schema)
        except BaseException:
            with self._lock:
                self._failures += 1
            raise

    def submit(self, payload: Dict[str, Any]):
        """Parse one request payload and queue it; returns the future.

        Raises :class:`ServiceError` on malformed payloads *before* anything
        reaches the coalescer, so bad requests never occupy a batch slot.
        """
        left, right, schema = self._parse_payload(payload)
        return self._submit_parsed(left, right, schema)

    def render(self, result, request_id: Any = None) -> Dict[str, Any]:
        """One verdict as a JSON-ready response dict."""
        response = {
            "contained": result.contained,
            "regime": result.regime,
            "schema": result.schema_name,
            "left": result.left_name,
            "right": result.right_name,
            "fingerprint": result_fingerprint(result),
            "elapsed_seconds": result.elapsed_seconds,
        }
        if request_id is not None:
            response["id"] = request_id
        return response

    def handle(self, payload: Dict[str, Any], timeout: Optional[float] = None) -> Dict[str, Any]:
        """The blocking request→response form used by both transports."""
        future = self.submit(payload)
        result = future.result(timeout)
        return self.render(result, payload.get("id"))

    def handle_many(
        self, payloads: List[Dict[str, Any]], timeout: Optional[float] = None
    ) -> List[Dict[str, Any]]:
        """Submit a client-side batch as one coalescer wave, wait for all.

        All payloads are *parsed* before anything is queued — one malformed
        request fails the whole batch up front, without first handing the
        engine work whose answers nobody will read — and all are queued
        before the first wait, so a ``/batch`` request coalesces with itself
        even under a zero window.
        """
        parsed = [(payload, self._parse_payload(payload)) for payload in payloads]
        futures = [
            (payload, self._submit_parsed(left, right, schema))
            for payload, (left, right, schema) in parsed
        ]
        return [
            self.render(future.result(timeout), payload.get("id"))
            for payload, future in futures
        ]

    # ------------------------------------------------------------------ #
    # live schema evolution
    # ------------------------------------------------------------------ #
    def schema_update(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """``POST /schema-update``: evolve the live engine, no restart.

        The payload names the superseded and the replacement schema as DSL
        text (``{"old": "schema S {...}", "new": "schema S {...}"}``); the
        engine migrates every schema-content-independent artefact into the
        new fingerprint namespace and invalidates the rest
        (:meth:`~repro.engine.ContainmentEngine.evolve`), so in-flight and
        subsequent requests against the new schema are bit-identical to a
        cold-started service while keeping the migrated warmth.  Returns the
        :class:`~repro.engine.EvolveReport` as a JSON dict; the last report
        also shows up under ``evolve`` in :meth:`stats_report`.
        """
        if self._closed:
            raise RuntimeError("the containment service has been closed")
        if not isinstance(payload, dict):
            raise ServiceError("request must be a JSON object")
        missing = [field for field in ("old", "new") if field not in payload]
        if missing:
            raise ServiceError(
                "schema-update needs 'old' and 'new' schema DSL text "
                f"(missing: {', '.join(missing)})"
            )
        old = self._parse_schema_text(payload["old"], "old")
        new = self._parse_schema_text(payload["new"], "new")
        report = self.engine.evolve(old, new)
        rendered = report.as_dict()
        with self._lock:
            self._schema_updates += 1
            self._last_evolve = rendered
        response: Dict[str, Any] = {"evolved": True, **rendered}
        if payload.get("id") is not None:
            response["id"] = payload["id"]
        return response

    # ------------------------------------------------------------------ #
    # observability
    # ------------------------------------------------------------------ #
    def healthz(self) -> Dict[str, Any]:
        """The liveness report: cheap, lock-light, always JSON-serialisable."""
        return {
            "status": "closed" if self._closed else "ok",
            "version": __version__,
            "backend": self.backend,
            "uptime_seconds": time.time() - self.started_at,
            "requests": self._requests,
        }

    def stats_report(self) -> Dict[str, Any]:
        """The ``/stats`` block: service, coalescer, engine and store counters."""
        report: Dict[str, Any] = {
            "service": {
                **self.healthz(),
                "failures": self._failures,
                "schema_updates": self._schema_updates,
                "coalesce_window_seconds": self.coalescer.window,
                "max_batch": self.coalescer.max_batch,
                "parse_caches": {
                    cache.stats.name: cache.stats.as_dict()
                    for cache in (self._schemas, self._queries)
                },
            },
            "coalescer": self.coalescer.stats.as_dict(),
            "engine": self.engine.stats.as_dict(),
        }
        with self._lock:
            last_evolve = self._last_evolve
        if last_evolve is not None:
            # the last live schema evolution, EvolveReport.as_dict() form
            # (includes its nested InvalidationReport under "invalidation")
            report["evolve"] = last_evolve
        if self.backend in ("process", "auto"):
            process_stats = self.engine.process_stats()
            if process_stats is not None:
                report["workers"] = process_stats.as_dict()
            transport = self.engine.transport_report()
            if transport is not None:
                report["transport"] = transport
        if self.backend == "auto":
            report["adaptive"] = self.engine.adaptive_report()
        if self.engine.store is not None:
            report["store"] = self.engine.store.describe()
        return report

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Graceful shutdown in dependency order: coalescer → engine.

        The coalescer drains first (in-flight batches finish and their
        write-backs flow through the still-open engine and store); then the
        engine closes, itself ordered pool-before-store.  A borrowed engine
        is left open for its owner.  Idempotent.
        """
        if self._closed:
            return
        self._closed = True
        self.coalescer.close()
        if self._owns_engine:
            self.engine.close()

    def __enter__(self) -> "ContainmentService":
        if self._closed:
            raise RuntimeError("the containment service has been closed")
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
