"""The serving layer: a long-running containment service with coalescing.

Everything PRs 1–4 made fast is batch- and repetition-shaped — result-cache
replays, completion/automaton reuse, shard-by-schema process routing,
disk warm-starts — but a fresh process per caller pays interpreter start-up,
pool spawn and store open every time and then throws the warmth away.  This
package keeps one warm :class:`~repro.engine.ContainmentEngine` alive behind
a request coalescer and serves independent clients from it (see
docs/ARCHITECTURE.md, "The serving layer"):

* :class:`RequestCoalescer` / :class:`CoalescerStats` — micro-batches
  concurrent requests (configurable window + max batch size), deduplicates
  by the engine's canonical-fingerprint result keys, routes through
  ``check_many`` on a configurable backend, fans verdicts back out to the
  waiting futures;
* :class:`ContainmentService` / :class:`ServiceError` — owns the engine
  (+ optional worker pool and persistent store), parses and caches
  schema/query source text, renders JSON responses with
  ``result_fingerprint`` digests, reports ``/healthz`` and ``/stats``,
  closes in dependency order (coalescer → pool → store);
* :class:`ContainmentHTTPServer` / :func:`make_server` — the stdlib
  threading HTTP transport (``POST /contain``, ``POST /batch``,
  ``GET /healthz``, ``GET /stats``);
* :func:`serve_stdio` — the newline-delimited-JSON embedding transport
  (responses in input order, control ops on the same stream).

``python -m repro serve`` is the CLI entry point for both transports.
"""

from .coalescer import CoalescerStats, RequestCoalescer
from .http import ContainmentHTTPServer, make_server
from .service import ContainmentService, ServiceError
from .stdio import serve_stdio

__all__ = [
    "CoalescerStats",
    "ContainmentHTTPServer",
    "ContainmentService",
    "RequestCoalescer",
    "ServiceError",
    "make_server",
    "serve_stdio",
]
