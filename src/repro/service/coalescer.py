"""Request coalescing: micro-batching concurrent containment requests.

The serving layer's core mechanism.  Independent clients submit one request
at a time, but everything fast about this library is *batch-shaped*: the
result cache replays duplicates for free, the completion and automaton
caches amortise across requests of one schema, and the process backend's
shard-by-schema routing only pays off when a batch holds enough requests to
spread.  The :class:`RequestCoalescer` recovers the batch shape from
concurrent traffic:

1. **Collect.**  Submissions land in a queue and return a
   :class:`~concurrent.futures.Future` immediately; a single flusher thread
   waits up to ``window`` seconds (from the first queued request) for
   companions, capping the batch at ``max_batch`` — an oversized backlog is
   split into consecutive full batches, and a window that closes with one
   request just flushes that request (micro-batching never *delays past the
   window*, it only merges what was already in flight).
2. **Deduplicate.**  Requests are grouped by the same canonical-fingerprint
   key the engine's result cache uses (schema fingerprint, left/right
   canonical tokens *and names*, config), so concurrent identical requests
   from different clients are decided once and fanned back out to every
   waiting future.
3. **Route.**  The unique requests go through
   :meth:`~repro.engine.ContainmentEngine.check_many` on the configured
   backend — ``"process"`` for GIL-free parallelism across the pool, with
   all the shard-affinity and warm-start behaviour of PRs 1–4 now applying
   *across independent clients*, not just within one caller's batch.

Verdicts are bit-identical to serial calls by construction: the coalescer
only re-groups *when* requests reach the engine, never what the engine
computes (asserted by fingerprint in ``tests/test_service.py`` and
``benchmarks/bench_service_throughput.py``).
"""

from __future__ import annotations

import dataclasses
import threading
import time
from collections import deque
from concurrent.futures import Future, InvalidStateError
from dataclasses import dataclass
from typing import Any, Deque, Dict, List, Optional, Tuple

from ..containment.counterexample import Counterexample
from ..containment.solver import ContainmentConfig, _as_union
from ..engine.engine import ContainmentEngine, _result_key

__all__ = ["CoalescerStats", "RequestCoalescer"]


@dataclass
class CoalescerStats:
    """Counters of one coalescer: traffic in, batches out, duplicates merged."""

    submitted: int = 0
    unique: int = 0
    deduplicated: int = 0
    batches: int = 0
    largest_batch: int = 0

    def snapshot(self) -> "CoalescerStats":
        """An independent copy (the live object keeps counting)."""
        return CoalescerStats(
            self.submitted, self.unique, self.deduplicated, self.batches, self.largest_batch
        )

    def as_dict(self) -> Dict[str, Any]:
        """Plain-dict form for the ``/stats`` endpoint and benchmark reports."""
        return {
            "submitted": self.submitted,
            "unique": self.unique,
            "deduplicated": self.deduplicated,
            "batches": self.batches,
            "largest_batch": self.largest_batch,
            "mean_batch_size": self.submitted / self.batches if self.batches else 0.0,
        }

    def __str__(self) -> str:
        return (
            f"coalescer: {self.submitted} requests in {self.batches} batches "
            f"({self.deduplicated} deduplicated, largest {self.largest_batch})"
        )


@dataclass
class _Pending:
    """One submitted request waiting for its batch to flush."""

    key: Tuple
    left: Any
    right: Any
    schema: Any
    config: Optional[ContainmentConfig]
    future: "Future[Any]"
    enqueued_at: float


def _resolve(future: "Future[Any]", result: Any) -> None:
    try:
        future.set_result(result)
    except InvalidStateError:  # pragma: no cover - client cancelled the future
        pass


def _reject(future: "Future[Any]", error: BaseException) -> None:
    try:
        future.set_exception(error)
    except InvalidStateError:  # pragma: no cover - client cancelled the future
        pass


def _independent_copy(result: Any) -> Any:
    """A result whose witness payloads the client may freely mutate.

    The same copy discipline as the engine's cache-replay path: the graphs
    are copied, the bookkeeping ``completion`` stays shared (read-only by
    contract), and ``result_fingerprint`` is unchanged.
    """
    witness = result.witness_pattern.copy() if result.witness_pattern is not None else None
    counterexample = result.finite_counterexample
    if counterexample is not None:
        counterexample = Counterexample(counterexample.graph.copy(), counterexample.answer)
    return dataclasses.replace(
        result, witness_pattern=witness, finite_counterexample=counterexample
    )


class RequestCoalescer:
    """Micro-batches concurrent containment requests into ``check_many``.

    ``window`` is the coalescing window in **seconds** measured from the
    first request of a batch (``0`` disables waiting: each flush takes
    whatever is queued at that instant); ``max_batch`` caps one flush, with
    the overflow flushed immediately after; ``parallel`` is the
    ``check_many`` backend the flushed batches run on.  One flusher thread
    serialises all engine traffic, so the coalescer composes with any
    backend — including ``"process"``, where the pool lock would otherwise
    serialise competing batches anyway.

    :meth:`submit` never blocks on the engine; :meth:`check` is the
    convenience blocking form.  :meth:`close` drains the queue (every
    accepted future is resolved) and stops the flusher.
    """

    def __init__(
        self,
        engine: ContainmentEngine,
        *,
        window: float = 0.005,
        max_batch: int = 64,
        parallel: Any = "serial",
        max_workers: Optional[int] = None,
    ) -> None:
        if window < 0:
            raise ValueError("coalescing window must be >= 0 seconds")
        if max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        self.engine = engine
        self.window = window
        self.max_batch = max_batch
        self.parallel = parallel
        self.max_workers = max_workers
        self.stats = CoalescerStats()
        self._cond = threading.Condition()
        self._queue: Deque[_Pending] = deque()
        self._closed = False
        self._flusher = threading.Thread(
            target=self._run, name="repro-service-coalescer", daemon=True
        )
        self._flusher.start()

    # ------------------------------------------------------------------ #
    # the client side
    # ------------------------------------------------------------------ #
    def _request_key(self, left: Any, right: Any, schema: Any, config) -> Tuple:
        """The dedup key — exactly the engine's result-cache key.

        Two requests coalesce into one engine call precisely when a serial
        engine would have served the second from the first's cache entry, so
        deduplication can never merge requests whose verdicts could differ
        (names included: they surface in result fields).
        """
        return _result_key(
            schema,
            _as_union(left, "P"),
            _as_union(right, "Q"),
            config or self.engine.default_config,
        )

    def submit(
        self,
        left: Any,
        right: Any,
        schema: Any,
        config: Optional[ContainmentConfig] = None,
    ) -> "Future[Any]":
        """Queue one containment request; returns its future immediately."""
        pending = _Pending(
            self._request_key(left, right, schema, config),
            left,
            right,
            schema,
            config,
            Future(),
            time.monotonic(),
        )
        with self._cond:
            if self._closed:
                raise RuntimeError("the request coalescer has been closed")
            self._queue.append(pending)
            self.stats.submitted += 1
            self._cond.notify_all()
        return pending.future

    def check(
        self,
        left: Any,
        right: Any,
        schema: Any,
        config: Optional[ContainmentConfig] = None,
        timeout: Optional[float] = None,
    ) -> Any:
        """Submit and wait: the blocking single-request form."""
        return self.submit(left, right, schema, config).result(timeout)

    # ------------------------------------------------------------------ #
    # the flusher
    # ------------------------------------------------------------------ #
    def _run(self) -> None:
        overflow = False  # items left behind by a full batch flush next, no new window
        while True:
            with self._cond:
                while not self._queue and not self._closed:
                    self._cond.wait()
                if not self._queue:  # closed and drained
                    return
                if (
                    self.window > 0
                    and len(self._queue) < self.max_batch
                    and not self._closed
                    and not overflow
                ):
                    # the window is anchored at the *head request's* arrival
                    # (not at this thread's wake-up): a request that already
                    # aged past the window while a previous batch was
                    # flushing is taken immediately
                    deadline = self._queue[0].enqueued_at + self.window
                    while len(self._queue) < self.max_batch and not self._closed:
                        remaining = deadline - time.monotonic()
                        if remaining <= 0:
                            break
                        self._cond.wait(remaining)
                batch = [
                    self._queue.popleft()
                    for _ in range(min(self.max_batch, len(self._queue)))
                ]
                overflow = bool(self._queue)
            self._flush(batch)

    def _flush(self, batch: List[_Pending]) -> None:
        """Dedup one batch, run it through the engine, fan results back out."""
        if not batch:  # pragma: no cover - the loop never takes an empty batch
            return
        leaders: List[_Pending] = []
        groups: Dict[Tuple, List[_Pending]] = {}
        for pending in batch:
            group = groups.get(pending.key)
            if group is None:
                groups[pending.key] = [pending]
                leaders.append(pending)
            else:
                group.append(pending)
        with self._cond:
            self.stats.batches += 1
            self.stats.unique += len(leaders)
            self.stats.deduplicated += len(batch) - len(leaders)
            self.stats.largest_batch = max(self.stats.largest_batch, len(batch))
        try:
            results = self.engine.check_many(
                [(p.left, p.right, p.schema, p.config) for p in leaders],
                parallel=self.parallel,
                max_workers=self.max_workers,
            )
        except BaseException as error:  # noqa: BLE001 - relayed to every waiter
            for pending in batch:
                _reject(pending.future, error)
            return
        for leader, result in zip(leaders, results):
            # one decision per key, but each *duplicate* waiter gets an
            # independent witness copy — same discipline as the engine's
            # cache-replay path, so no client can mutate another's result
            # (or the engine's cached object) through a shared graph
            waiters = groups[leader.key]
            _resolve(waiters[0].future, result)
            for pending in waiters[1:]:
                _resolve(pending.future, _independent_copy(result))

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    @property
    def closed(self) -> bool:
        return self._closed

    def close(self, timeout: Optional[float] = None) -> bool:
        """Drain the queue, resolve every accepted future, stop the flusher.

        Idempotent; new submissions are rejected as soon as the close begins,
        but everything accepted before it completes normally — a shutting
        service answers its in-flight requests.  By default this blocks until
        the drain finishes (so a caller tearing down the engine next can
        never pull it out from under a running batch); pass *timeout* for a
        bounded wait instead and check the return value — ``True`` means the
        flusher is fully stopped, ``False`` that a batch is still in flight
        and the engine must stay open.
        """
        with self._cond:
            self._closed = True
            self._cond.notify_all()
        if self._flusher.is_alive():
            self._flusher.join(timeout)
        return not self._flusher.is_alive()

    def __enter__(self) -> "RequestCoalescer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
