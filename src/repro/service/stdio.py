"""The stdio transport: newline-delimited JSON for embedding.

``python -m repro serve --stdio`` reads one JSON request per input line and
writes one JSON response per line, **in input order** — the contract an
embedding parent process (a test harness, a language server-style wrapper, a
shell pipeline) can rely on without request ids.  Coalescing still applies:
the reader submits every line to the service as fast as input arrives while
a writer thread resolves futures in submission order, so a burst of piped
lines micro-batches exactly like concurrent HTTP clients.

Control lines ride the same stream: ``{"op": "healthz"}`` and
``{"op": "stats"}`` answer with the corresponding report (in order, like
any other line), and ``{"op": "shutdown"}`` answers ``{"ok": true}`` and
ends the loop after draining everything before it.  Lines that fail to
parse produce an ``{"error": ...}`` response in their slot rather than
killing the stream.
"""

from __future__ import annotations

import json
import queue
import threading
from typing import Any, Callable, Dict, Optional, TextIO

from .service import REQUEST_TIMEOUT_SECONDS, ContainmentService, ServiceError

__all__ = ["serve_stdio"]

_DONE = object()


def serve_stdio(
    service: ContainmentService,
    input_stream: Optional[TextIO] = None,
    output_stream: Optional[TextIO] = None,
) -> Dict[str, int]:
    """Serve NDJSON requests until EOF or a shutdown line; returns counts.

    The reader (this thread) parses and submits; a writer thread emits
    responses in submission order, flushing per line so the embedding
    process can stream.  On EOF the queue drains before returning — every
    accepted request is answered.
    """
    import sys

    stdin = input_stream if input_stream is not None else sys.stdin
    stdout = output_stream if output_stream is not None else sys.stdout

    pending: "queue.Queue[Any]" = queue.Queue()
    counts = {"requests": 0, "responses": 0, "errors": 0}
    counts_lock = threading.Lock()

    def writer() -> None:
        while True:
            item = pending.get()
            if item is _DONE:
                return
            response: Callable[[], Dict[str, Any]] = item
            try:
                rendered = response()
            except ServiceError as error:
                rendered = {"error": str(error)}
            except Exception as error:  # noqa: BLE001 - one line, one reply
                rendered = {"error": f"{type(error).__name__}: {error}"}
            if "error" in rendered:
                with counts_lock:
                    counts["errors"] += 1
            print(json.dumps(rendered), file=stdout, flush=True)
            with counts_lock:
                counts["responses"] += 1

    thread = threading.Thread(target=writer, name="repro-service-stdio-writer", daemon=True)
    thread.start()
    try:
        for line in stdin:
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as error:
                pending.put(lambda error=error: {"error": f"invalid JSON line: {error}"})
                continue
            if not isinstance(payload, dict):
                pending.put(lambda: {"error": "each line must be a JSON object"})
                continue
            op = payload.get("op", "check")
            if op == "healthz":
                pending.put(service.healthz)
            elif op == "stats":
                pending.put(service.stats_report)
            elif op == "shutdown":
                pending.put(lambda: {"ok": True})
                break
            elif op == "check":
                with counts_lock:
                    counts["requests"] += 1
                try:
                    future = service.submit(payload)
                except ServiceError as error:
                    pending.put(lambda error=error: {"error": str(error)})
                else:
                    request_id = payload.get("id")
                    pending.put(
                        lambda future=future, request_id=request_id: service.render(
                            future.result(REQUEST_TIMEOUT_SECONDS), request_id
                        )
                    )
            else:
                pending.put(lambda op=op: {"error": f"unknown op {op!r}"})
    finally:
        pending.put(_DONE)
        thread.join()
    return counts
