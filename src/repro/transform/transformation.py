"""Graph transformations and their application semantics (Section 4).

A transformation is a finite set of node rules and edge rules.  Applying a
transformation ``T`` to a graph ``G`` yields the graph ``T(G)`` whose

* ``A``-nodes are the terms ``f_A(t̄)`` for every node rule
  ``A(f_A(x̄)) ← q(x̄)`` and every answer ``t̄ ∈ [q(x̄)]_G``;
* ``r``-edges are the pairs ``(f(t̄), f'(t̄'))`` for every edge rule
  ``r(f(x̄), f'(ȳ)) ← q(x̄, ȳ)`` and every answer ``(t̄, t̄') ∈ [q]_G``.

Note that edge rules may create nodes that no node rule labels; such nodes
are unlabeled in ``T(G)`` (they make type checking fail and schema
elicitation report an error, exactly as discussed in the paper).
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List, Optional, Sequence, Set, Union

from ..exceptions import TransformationError
from ..graph.graph import Graph
from ..rpq.evaluation import eval_c2rpq
from .constructors import ConstructorRegistry, NodeConstructor
from .rules import EdgeRule, NodeRule

__all__ = ["Transformation"]

Rule = Union[NodeRule, EdgeRule]


class Transformation:
    """A finite set of node and edge rules."""

    def __init__(self, rules: Iterable[Rule] = (), name: str = "T") -> None:
        self.name = name
        self.node_rules: List[NodeRule] = []
        self.edge_rules: List[EdgeRule] = []
        self.registry = ConstructorRegistry()
        for rule in rules:
            self.add(rule)

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def add(self, rule: Rule) -> None:
        """Add a rule, enforcing the constructor discipline of the paper."""
        if isinstance(rule, NodeRule):
            registered = self.registry.register(
                NodeConstructor(rule.constructor.name, rule.constructor.arity, rule.label)
            )
            self.node_rules.append(
                NodeRule(rule.label, registered, rule.variables, rule.body)
            )
        elif isinstance(rule, EdgeRule):
            self.registry.register(rule.source_constructor)
            self.registry.register(rule.target_constructor)
            self.edge_rules.append(rule)
        else:
            raise TransformationError(f"not a rule: {rule!r}")

    def rules(self) -> List[Rule]:
        """All rules (node rules first)."""
        return list(self.node_rules) + list(self.edge_rules)

    # ------------------------------------------------------------------ #
    # the signature of the transformation
    # ------------------------------------------------------------------ #
    def node_labels(self) -> FrozenSet[str]:
        """Γ_T — node labels used in rule heads."""
        return frozenset(rule.label for rule in self.node_rules)

    def edge_labels(self) -> FrozenSet[str]:
        """Σ_T — edge labels used in rule heads."""
        return frozenset(rule.edge_label for rule in self.edge_rules)

    def constructor_for_label(self, label: str) -> Optional[NodeConstructor]:
        """The dedicated constructor f_A of a node label, if any rule defines it."""
        return self.registry.for_label(label)

    def label_of_constructor(self, name: str) -> Optional[str]:
        """The node label associated with a constructor name, if any."""
        constructor = self.registry.by_name(name)
        return constructor.label if constructor else None

    def input_node_labels(self) -> FrozenSet[str]:
        """Node labels mentioned in rule bodies (over the *input* signature)."""
        labels: Set[str] = set()
        for rule in self.rules():
            labels |= rule.body.node_labels()
        return frozenset(labels)

    def input_edge_labels(self) -> FrozenSet[str]:
        """Edge labels mentioned in rule bodies (over the *input* signature)."""
        labels: Set[str] = set()
        for rule in self.rules():
            labels |= rule.body.edge_labels()
        return frozenset(labels)

    def size(self) -> int:
        """Total size of the rule bodies (complexity parameter |T|)."""
        return sum(rule.body.size() for rule in self.rules())

    def is_empty(self) -> bool:
        """``True`` when the transformation has no rule."""
        return not self.node_rules and not self.edge_rules

    # ------------------------------------------------------------------ #
    # application semantics
    # ------------------------------------------------------------------ #
    def apply(self, graph: Graph) -> Graph:
        """Compute ``T(G)``."""
        output = Graph()
        for rule in self.node_rules:
            query = rule.projected_body()
            for answer in eval_c2rpq(query, graph):
                node = rule.constructor(*answer)
                output.add_node(node, [rule.label])
        for rule in self.edge_rules:
            query = rule.projected_body()
            split = len(rule.source_variables)
            for answer in eval_c2rpq(query, graph):
                source = rule.source_constructor(*answer[:split])
                target = rule.target_constructor(*answer[split:])
                output.add_node(source)
                output.add_node(target)
                output.add_edge(source, rule.edge_label, target)
        return output

    def __call__(self, graph: Graph) -> Graph:
        return self.apply(graph)

    # ------------------------------------------------------------------ #
    def restricted_to(self, rules: Sequence[Rule], name: Optional[str] = None) -> "Transformation":
        """A new transformation containing only the given rules."""
        return Transformation(rules, name=name or self.name)

    def describe(self) -> str:
        """Human-readable listing of the rules."""
        lines = [f"transformation {self.name} ({len(self.node_rules)} node rules, "
                 f"{len(self.edge_rules)} edge rules)"]
        lines.extend(f"  {rule}" for rule in self.rules())
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Transformation({self.name!r}, node_rules={len(self.node_rules)}, "
            f"edge_rules={len(self.edge_rules)})"
        )
