"""Node rules and edge rules of graph transformations (Section 4).

A *node rule* has the form ``A(f_A(x̄)) ← q(x̄)`` and a *edge rule* the form
``r(f(x̄), f'(ȳ)) ← q(x̄, ȳ)``, where the bodies are **acyclic** C2RPQs and
``f``, ``f'`` are node constructors.  Variable equalities can always be
expressed with ``ε``-atoms, so the argument tuples ``x̄`` and ``ȳ`` are
assumed to consist of distinct variables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..exceptions import TransformationError
from ..rpq.queries import C2RPQ
from .constructors import NodeConstructor

__all__ = ["NodeRule", "EdgeRule"]


def _check_body(body: C2RPQ, variables: Tuple[str, ...], rule: str) -> None:
    if not body.is_acyclic():
        raise TransformationError(f"{rule}: rule bodies must be acyclic C2RPQs")
    missing = [v for v in variables if v not in body.variables() and body.atoms]
    if missing:
        raise TransformationError(f"{rule}: head variables {missing} do not occur in the body")
    if len(set(variables)) != len(variables):
        raise TransformationError(
            f"{rule}: head variables must be distinct (use ε-atoms for equalities)"
        )


@dataclass(frozen=True)
class NodeRule:
    """``label(constructor(variables)) ← body``."""

    label: str
    constructor: NodeConstructor
    variables: Tuple[str, ...]
    body: C2RPQ

    def __post_init__(self) -> None:
        if len(self.variables) != self.constructor.arity:
            raise TransformationError(
                f"node rule for {self.label}: constructor {self.constructor.name} has arity "
                f"{self.constructor.arity} but {len(self.variables)} variables were given"
            )
        _check_body(self.body, self.variables, f"node rule for {self.label}")

    def head_str(self) -> str:
        """The textual head of the rule."""
        inner = ", ".join(self.variables)
        return f"{self.label}({self.constructor.name}({inner}))"

    def projected_body(self) -> C2RPQ:
        """The body with exactly the head variables free (in head order)."""
        return self.body.project(list(self.variables))

    def __str__(self) -> str:
        return f"{self.head_str()} <- {', '.join(str(a) for a in self.body.atoms)}"


@dataclass(frozen=True)
class EdgeRule:
    """``edge_label(source_constructor(x̄), target_constructor(ȳ)) ← body``."""

    edge_label: str
    source_constructor: NodeConstructor
    source_variables: Tuple[str, ...]
    target_constructor: NodeConstructor
    target_variables: Tuple[str, ...]
    body: C2RPQ

    def __post_init__(self) -> None:
        if len(self.source_variables) != self.source_constructor.arity:
            raise TransformationError(
                f"edge rule for {self.edge_label}: source constructor arity mismatch"
            )
        if len(self.target_variables) != self.target_constructor.arity:
            raise TransformationError(
                f"edge rule for {self.edge_label}: target constructor arity mismatch"
            )
        overlap = set(self.source_variables) & set(self.target_variables)
        if overlap:
            raise TransformationError(
                f"edge rule for {self.edge_label}: head variable tuples overlap on {sorted(overlap)}; "
                f"use ε-atoms to express equalities"
            )
        _check_body(
            self.body,
            self.source_variables + self.target_variables,
            f"edge rule for {self.edge_label}",
        )

    def head_str(self) -> str:
        """The textual head of the rule."""
        source = ", ".join(self.source_variables)
        target = ", ".join(self.target_variables)
        return (
            f"{self.edge_label}({self.source_constructor.name}({source}), "
            f"{self.target_constructor.name}({target}))"
        )

    def projected_body(self) -> C2RPQ:
        """The body with exactly the head variables free (source then target)."""
        return self.body.project(list(self.source_variables + self.target_variables))

    def __str__(self) -> str:
        return f"{self.head_str()} <- {', '.join(str(a) for a in self.body.atoms)}"
