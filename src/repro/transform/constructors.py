"""Node constructors — the Skolem functions of transformation rules (Section 4).

A *k*-ary node constructor is an injective function from ``k``-tuples of node
identifiers to node identifiers.  The paper assumes that

* for every node label ``A`` there is exactly one dedicated constructor
  ``f_A``;
* all constructors are injective;
* their ranges are pairwise disjoint.

The implementation realises constructed nodes as immutable
:class:`ConstructedNode` terms ``f_A(t₁,…,t_k)``; injectivity and disjoint
ranges then hold by construction (two terms are equal iff they have the same
constructor name and arguments).  A :class:`ConstructorRegistry` enforces the
"one constructor per label" discipline for a transformation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Optional, Tuple

from ..exceptions import ConstructorError

__all__ = ["ConstructedNode", "NodeConstructor", "ConstructorRegistry"]


@dataclass(frozen=True)
class ConstructedNode:
    """A node identifier of the form ``f(t₁, …, t_k)``."""

    constructor: str
    arguments: Tuple[Hashable, ...]

    def __str__(self) -> str:
        inner = ", ".join(str(argument) for argument in self.arguments)
        return f"{self.constructor}({inner})"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ConstructedNode({self})"


@dataclass(frozen=True)
class NodeConstructor:
    """A named node constructor of fixed arity, dedicated to a node label."""

    name: str
    arity: int
    label: Optional[str] = None

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name:
            raise ConstructorError(f"invalid constructor name: {self.name!r}")
        if self.arity < 0:
            raise ConstructorError("constructor arity must be non-negative")

    def __call__(self, *arguments: Hashable) -> ConstructedNode:
        """Apply the constructor to node identifiers, producing a fresh term."""
        if len(arguments) != self.arity:
            raise ConstructorError(
                f"constructor {self.name} expects {self.arity} arguments, got {len(arguments)}"
            )
        return ConstructedNode(self.name, tuple(arguments))

    def __str__(self) -> str:
        return self.name


class ConstructorRegistry:
    """Keeps track of the constructors of a transformation.

    The registry guarantees the paper's assumption that every node label has a
    single dedicated constructor and that the same constructor name is never
    reused with different arities or for different labels.
    """

    def __init__(self) -> None:
        self._by_name: Dict[str, NodeConstructor] = {}
        self._by_label: Dict[str, NodeConstructor] = {}

    def register(self, constructor: NodeConstructor) -> NodeConstructor:
        """Register a constructor, checking consistency with earlier uses."""
        existing = self._by_name.get(constructor.name)
        if existing is not None:
            if existing.arity != constructor.arity:
                raise ConstructorError(
                    f"constructor {constructor.name} used with arities "
                    f"{existing.arity} and {constructor.arity}"
                )
            if constructor.label and existing.label and constructor.label != existing.label:
                raise ConstructorError(
                    f"constructor {constructor.name} used for labels "
                    f"{existing.label!r} and {constructor.label!r}"
                )
            if constructor.label and not existing.label:
                merged = NodeConstructor(constructor.name, constructor.arity, constructor.label)
                self._by_name[constructor.name] = merged
                self._by_label[constructor.label] = merged
                return merged
            return existing
        if constructor.label:
            for_label = self._by_label.get(constructor.label)
            if for_label is not None and for_label.name != constructor.name:
                raise ConstructorError(
                    f"label {constructor.label!r} already has constructor {for_label.name}; "
                    f"the paper requires a single dedicated constructor per label"
                )
            self._by_label[constructor.label] = constructor
        self._by_name[constructor.name] = constructor
        return constructor

    def for_label(self, label: str) -> Optional[NodeConstructor]:
        """The constructor dedicated to *label*, if any."""
        return self._by_label.get(label)

    def by_name(self, name: str) -> Optional[NodeConstructor]:
        """The constructor with the given name, if registered."""
        return self._by_name.get(name)

    def __len__(self) -> int:
        return len(self._by_name)

    def __iter__(self):
        return iter(self._by_name.values())
