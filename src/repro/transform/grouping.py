"""Grouping the rule bodies of a transformation into the queries Q_A and
Q_{A,R,B} (Section 4), plus trimming.

For a transformation ``T``, a node label ``A``, an edge label ``r`` and node
labels ``A, B``:

* ``Q^T_A(x̄)`` is the union of the bodies of the ``A``-node rules — the
  tuples of the input graph that yield an ``A``-labeled node ``f_A(x̄)``;
* ``Q^T_{A,r,B}(x̄, ȳ)`` is the union of the bodies of the edge rules
  ``r(f_A(x̄), f_B(ȳ)) ← q``;
* ``Q^T_{A,r⁻,B}(x̄, ȳ)`` reads the edge rules ``r(f_B(ȳ), f_A(x̄)) ← q`` in
  the other direction.

All groupings use the canonical free-variable names ``x1,…,xk`` (and
``y1,…,ym``), so queries of different rules can be combined and compared.
The module also provides the variable-capture-safe conjunction of such
unions, needed for the entailment tests of Lemma B.7, and trimming modulo a
schema (Appendix B).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..exceptions import TransformationError
from ..graph.labels import SignedLabel
from ..rpq.queries import Atom, C2RPQ, UC2RPQ, equality_atom
from ..schema.schema import Schema
from .transformation import Transformation

__all__ = [
    "canonical_variables",
    "node_query",
    "edge_query",
    "conjoin_unions",
    "equality_query",
    "unsatisfiable_query",
    "trim",
]


def canonical_variables(prefix: str, arity: int) -> Tuple[str, ...]:
    """The canonical variable tuple ``(prefix1, …, prefix_arity)``."""
    return tuple(f"{prefix}{index + 1}" for index in range(arity))


def _canonicalise(body: C2RPQ, head_variables: Sequence[str], canonical: Sequence[str], tag: str) -> C2RPQ:
    """Rename *body* so its free variables are exactly *canonical* (in order)
    and its existential variables cannot clash with other rules' variables."""
    projected = body.project(list(head_variables))
    mapping: Dict[str, str] = {}
    for variable in projected.variables():
        mapping[variable] = f"_{tag}_{variable}"
    for head_variable, canonical_variable in zip(head_variables, canonical):
        mapping[head_variable] = canonical_variable
    return projected.rename(mapping)


def node_query(transformation: Transformation, label: str) -> UC2RPQ:
    """``Q^T_A(x̄)`` — the union of the bodies of the ``A``-node rules."""
    rules = [rule for rule in transformation.node_rules if rule.label == label]
    if not rules:
        return UC2RPQ([], name=f"Q_{label}")
    arity = rules[0].constructor.arity
    canonical = canonical_variables("x", arity)
    disjuncts = [
        _canonicalise(rule.body, rule.variables, canonical, f"n{index}")
        for index, rule in enumerate(rules)
    ]
    return UC2RPQ(disjuncts, name=f"Q_{label}")


def edge_query(
    transformation: Transformation, source_label: str, role: SignedLabel, target_label: str
) -> UC2RPQ:
    """``Q^T_{A,R,B}(x̄, ȳ)`` for ``R ∈ Σ±`` (Section 4)."""
    source_constructor = transformation.constructor_for_label(source_label)
    target_constructor = transformation.constructor_for_label(target_label)
    name = f"Q_{source_label},{role},{target_label}"
    if source_constructor is None or target_constructor is None:
        return UC2RPQ([], name=name)
    x_vars = canonical_variables("x", source_constructor.arity)
    y_vars = canonical_variables("y", target_constructor.arity)
    disjuncts: List[C2RPQ] = []
    for index, rule in enumerate(transformation.edge_rules):
        if rule.edge_label != role.label:
            continue
        if not role.is_inverse:
            if (
                rule.source_constructor.name == source_constructor.name
                and rule.target_constructor.name == target_constructor.name
            ):
                disjuncts.append(
                    _canonicalise(
                        rule.body,
                        rule.source_variables + rule.target_variables,
                        x_vars + y_vars,
                        f"e{index}",
                    )
                )
        else:
            if (
                rule.source_constructor.name == target_constructor.name
                and rule.target_constructor.name == source_constructor.name
            ):
                # r(f_B(ȳ), f_A(x̄)) ← q(ȳ, x̄): the A-side is the rule's target
                disjuncts.append(
                    _canonicalise(
                        rule.body,
                        rule.target_variables + rule.source_variables,
                        x_vars + y_vars,
                        f"e{index}",
                    )
                )
    return UC2RPQ(disjuncts, name=name)


def conjoin_unions(left: UC2RPQ, right: UC2RPQ, name: Optional[str] = None) -> UC2RPQ:
    """The conjunction of two unions, distributed into a union of conjunctions.

    Shared free-variable names are shared variables; existential variables of
    the right disjuncts are renamed so they cannot capture variables of the
    left disjuncts.
    """
    if left.is_empty() or right.is_empty():
        return UC2RPQ([], name=name or f"{left.name}∧{right.name}")
    disjuncts: List[C2RPQ] = []
    for left_index, left_disjunct in enumerate(left.disjuncts):
        for right_index, right_disjunct in enumerate(right.disjuncts):
            safe_right = right_disjunct.rename(
                {
                    variable: f"_c{left_index}_{right_index}_{variable}"
                    for variable in right_disjunct.existential_variables()
                }
            )
            disjuncts.append(
                left_disjunct.conjoin(safe_right, name=f"{left_disjunct.name}&{safe_right.name}")
            )
    return UC2RPQ(disjuncts, name=name or f"{left.name}∧{right.name}")


def equality_query(
    left_variables: Sequence[str], right_variables: Sequence[str], name: str = "Eq"
) -> UC2RPQ:
    """The query ``⋀ᵢ ε(leftᵢ, rightᵢ)`` used in the at-most test of Lemma B.7."""
    if len(left_variables) != len(right_variables):
        raise TransformationError("equality query requires tuples of equal length")
    atoms = [
        equality_atom(left, right) for left, right in zip(left_variables, right_variables)
    ]
    free = list(left_variables) + list(right_variables)
    return UC2RPQ([C2RPQ(atoms, free, name=name)], name=name)


def unsatisfiable_query(variables: Sequence[str], name: str = "∅") -> UC2RPQ:
    """The query ``⋀ᵢ ∅(xᵢ)`` (always false) used in the ¬∃ test of Lemma B.7."""
    from ..rpq.regex import EMPTY

    atoms = [Atom(EMPTY, variable, variable) for variable in variables]
    return UC2RPQ([C2RPQ(atoms, list(variables), name=name)], name=name)


def trim(
    transformation: Transformation,
    schema: Schema,
    containment_solver=None,
) -> Transformation:
    """Remove the rules whose bodies are unsatisfiable modulo *schema*.

    A rule ``ρ ← q(x̄)`` is *productive* modulo ``S`` when ``q`` is satisfiable
    on some graph conforming to ``S``; trimming removes unproductive rules and
    (implicitly) the head labels that no longer occur (Appendix B).
    """
    from ..containment.solver import ContainmentSolver

    solver = containment_solver or ContainmentSolver(schema)
    productive = []
    for rule in transformation.rules():
        body = UC2RPQ.from_query(rule.projected_body().boolean(), name="body")
        if not solver.satisfiable(body).contained:
            productive.append(rule)
    return transformation.restricted_to(productive, name=f"trim({transformation.name})")
