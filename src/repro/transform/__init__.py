"""Graph transformations: node constructors, rules, application, grouping.

Re-exports:

* :class:`Transformation` with :class:`NodeRule` / :class:`EdgeRule` — the
  Datalog-like transformation language of Section 4 and its two rule kinds;
* :class:`NodeConstructor` / :class:`ConstructedNode` /
  :class:`ConstructorRegistry` — the Skolem terms ``f_A(x̄)`` naming output
  nodes;
* :func:`node_query` / :func:`edge_query` / :func:`canonical_variables` —
  the grouped queries ``Q_A`` and ``Q_{A,R,B}`` over canonical variables;
* :func:`conjoin_unions` / :func:`equality_query` /
  :func:`unsatisfiable_query` — capture-safe query combinators for the
  Lemma B.7 entailment tests;
* :func:`trim` — drop rules whose bodies are unsatisfiable modulo the source
  schema (Appendix B);
* :func:`parse_transformation` — the textual transformation DSL.
"""

from .constructors import ConstructedNode, ConstructorRegistry, NodeConstructor
from .rules import EdgeRule, NodeRule
from .transformation import Transformation
from .grouping import (
    canonical_variables,
    conjoin_unions,
    edge_query,
    equality_query,
    node_query,
    trim,
    unsatisfiable_query,
)
from .parser import parse_transformation

__all__ = [
    "ConstructedNode",
    "ConstructorRegistry",
    "NodeConstructor",
    "EdgeRule",
    "NodeRule",
    "Transformation",
    "canonical_variables",
    "conjoin_unions",
    "edge_query",
    "equality_query",
    "node_query",
    "trim",
    "unsatisfiable_query",
    "parse_transformation",
]
