"""Graph transformations: node constructors, rules, application, grouping."""

from .constructors import ConstructedNode, ConstructorRegistry, NodeConstructor
from .rules import EdgeRule, NodeRule
from .transformation import Transformation
from .grouping import (
    canonical_variables,
    conjoin_unions,
    edge_query,
    equality_query,
    node_query,
    trim,
    unsatisfiable_query,
)
from .parser import parse_transformation

__all__ = [
    "ConstructedNode",
    "ConstructorRegistry",
    "NodeConstructor",
    "EdgeRule",
    "NodeRule",
    "Transformation",
    "canonical_variables",
    "conjoin_unions",
    "edge_query",
    "equality_query",
    "node_query",
    "trim",
    "unsatisfiable_query",
    "parse_transformation",
]
