"""Textual DSL for transformations.

The syntax follows the paper's rule notation::

    transformation T0 {
      Vaccine(fV(x))            <- (Vaccine)(x);
      Antigen(fA(x))            <- (Antigen)(x);
      designTarget(fV(x), fA(y)) <- (designTarget)(x, y);
      targets(fV(x), fA(y))      <- (designTarget . crossReacting*)(x, y);
      Pathogen(fP(x))           <- (Pathogen)(x);
      exhibits(fP(x), fA(y))     <- (exhibits)(x, y);
    }

A head with a single constructor term is a node rule (the head symbol is a
node label); a head with two constructor terms is an edge rule (the head
symbol is an edge label).  Bodies are comma-separated C2RPQ atoms using the
regular-expression syntax of :mod:`repro.rpq.parser`; variables not occurring
in the head are existentially quantified.
"""

from __future__ import annotations

import re
from typing import List, Tuple

from ..exceptions import ParseError
from ..rpq.parser import _split_atoms, parse_regex
from ..rpq.queries import Atom, C2RPQ
from .constructors import NodeConstructor
from .rules import EdgeRule, NodeRule
from .transformation import Transformation

__all__ = ["parse_transformation"]

_TRANSFORMATION_RE = re.compile(r"transformation\s+(?P<name>\w+)\s*\{(?P<body>.*)\}\s*$", re.S)
_RULE_RE = re.compile(r"^(?P<head>[^<]+?)\s*<-\s*(?P<body>.+)$", re.S)
_HEAD_RE = re.compile(
    r"^(?P<symbol>\w+)\s*\(\s*(?P<terms>.*)\)\s*$",
    re.S,
)
_TERM_RE = re.compile(r"(?P<ctor>\w+)\s*\(\s*(?P<args>[^)]*)\)")
_COMMENT_RE = re.compile(r"(#|//)[^\n]*")
_ATOM_RE = re.compile(
    r"^\s*(?:\(\s*(?P<regex>.+?)\s*\)|(?P<label>[A-Za-z_][A-Za-z0-9_]*-?))"
    r"\s*\(\s*(?P<args>[^)]*)\)\s*$",
    re.S,
)


def _parse_body(body_text: str, text: str) -> List[Atom]:
    atoms: List[Atom] = []
    for atom_text in _split_atoms(body_text):
        match = _ATOM_RE.match(atom_text)
        if not match:
            raise ParseError(f"could not parse body atom {atom_text!r}", text=text)
        regex_text = match.group("regex") or match.group("label")
        expr = parse_regex(regex_text)
        args = [argument.strip() for argument in match.group("args").split(",") if argument.strip()]
        if len(args) == 1:
            atoms.append(Atom(expr, args[0], args[0]))
        elif len(args) == 2:
            atoms.append(Atom(expr, args[0], args[1]))
        else:
            raise ParseError(f"body atoms take one or two variables: {atom_text!r}", text=text)
    return atoms


def _parse_terms(terms_text: str, text: str) -> List[Tuple[str, Tuple[str, ...]]]:
    terms = []
    for match in _TERM_RE.finditer(terms_text):
        arguments = tuple(
            argument.strip() for argument in match.group("args").split(",") if argument.strip()
        )
        terms.append((match.group("ctor"), arguments))
    if not terms:
        raise ParseError(f"rule head has no constructor term: {terms_text!r}", text=text)
    return terms


def parse_transformation(text: str) -> Transformation:
    """Parse a transformation document written in the DSL described above."""
    stripped = _COMMENT_RE.sub("", text).strip()
    match = _TRANSFORMATION_RE.match(stripped)
    if not match:
        raise ParseError("expected 'transformation <name> { ... }'", text=text)
    transformation = Transformation(name=match.group("name"))
    body = match.group("body")
    for rule_text in body.split(";"):
        rule_text = rule_text.strip()
        if not rule_text:
            continue
        rule_match = _RULE_RE.match(rule_text)
        if not rule_match:
            raise ParseError(f"could not parse rule {rule_text!r}", text=text)
        head_match = _HEAD_RE.match(rule_match.group("head").strip())
        if not head_match:
            raise ParseError(f"could not parse rule head {rule_match.group('head')!r}", text=text)
        symbol = head_match.group("symbol")
        terms = _parse_terms(head_match.group("terms"), text)
        atoms = _parse_body(rule_match.group("body"), text)
        if len(terms) == 1:
            constructor_name, variables = terms[0]
            constructor = NodeConstructor(constructor_name, len(variables), symbol)
            rule_body = C2RPQ(atoms, list(variables), name=f"{symbol}_body")
            transformation.add(NodeRule(symbol, constructor, variables, rule_body))
        elif len(terms) == 2:
            (source_name, source_vars), (target_name, target_vars) = terms
            source_constructor = NodeConstructor(source_name, len(source_vars))
            target_constructor = NodeConstructor(target_name, len(target_vars))
            # the paper assumes the head tuples are disjoint, expressing any
            # repetition with ε-atoms; the parser performs that desugaring so
            # heads like who(fM(x,y), fP(x)) can be written naturally
            from ..rpq.regex import EPSILON

            seen = list(source_vars)
            desugared_target = []
            for variable in target_vars:
                if variable in seen or variable in desugared_target:
                    fresh = f"{variable}__eq{len(desugared_target)}"
                    atoms.append(Atom(EPSILON, variable, fresh))
                    desugared_target.append(fresh)
                else:
                    desugared_target.append(variable)
            target_vars = tuple(desugared_target)
            rule_body = C2RPQ(
                atoms, list(source_vars) + list(target_vars), name=f"{symbol}_body"
            )
            transformation.add(
                EdgeRule(
                    symbol,
                    source_constructor,
                    source_vars,
                    target_constructor,
                    target_vars,
                    rule_body,
                )
            )
        else:
            raise ParseError(
                f"rule heads take one constructor term (node rule) or two (edge rule); "
                f"got {len(terms)} in {rule_text!r}",
                text=text,
            )
    return transformation
