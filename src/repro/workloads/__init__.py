"""Ready-made workloads: the paper's medical example, FHIR-style migrations,
a social-network evolution scenario and synthetic generators for scaling
benchmarks.

Re-exports (submodules):

* :mod:`repro.workloads.medical` — the running example of Figure 1
  (vaccines, antigens, pathogens) with source/target schemas and migration;
* :mod:`repro.workloads.fhir` — a healthcare-interchange-style v3 → v4
  schema migration;
* :mod:`repro.workloads.social` — a social-network reification scenario;
* :mod:`repro.workloads.synthetic` — parametric schema/query/transformation
  families for scaling benchmarks;
* :mod:`repro.workloads.batches` — ready-made containment batches over all
  of the above (the input format of ``check_many``, the CLI and the
  parallel-scaling benchmark), plus :data:`~repro.workloads.batches.BUILTIN_WORKLOADS`;
* :mod:`repro.workloads.streams` — deterministic mixed-schema request
  streams with hot repeats (service traffic replays for the serving layer,
  its benchmark and the CI smoke check).
"""

from . import batches, fhir, medical, social, streams, synthetic
from .batches import BUILTIN_WORKLOADS, containment_batch
from .streams import request_payloads, request_stream

__all__ = [
    "batches",
    "fhir",
    "medical",
    "social",
    "streams",
    "synthetic",
    "BUILTIN_WORKLOADS",
    "containment_batch",
    "request_payloads",
    "request_stream",
]
