"""Ready-made workloads: the paper's medical example, FHIR-style migrations,
a social-network evolution scenario and synthetic generators for scaling
benchmarks.

Re-exports (submodules):

* :mod:`repro.workloads.medical` — the running example of Figure 1
  (vaccines, antigens, pathogens) with source/target schemas and migration;
* :mod:`repro.workloads.fhir` — a healthcare-interchange-style v3 → v4
  schema migration;
* :mod:`repro.workloads.social` — a social-network reification scenario;
* :mod:`repro.workloads.synthetic` — parametric schema/query/transformation
  families for scaling benchmarks.
"""

from . import fhir, medical, social, synthetic

__all__ = ["fhir", "medical", "social", "synthetic"]
