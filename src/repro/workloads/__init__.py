"""Ready-made workloads: the paper's medical example, FHIR-style migrations,
a social-network evolution scenario and synthetic generators for scaling
benchmarks."""

from . import fhir, medical, social, synthetic

__all__ = ["fhir", "medical", "social", "synthetic"]
