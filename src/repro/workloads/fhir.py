"""A FHIR-style healthcare data-migration workload.

The paper motivates acyclic C2RPQ transformations with graph data migration
between consecutive versions of the FHIR healthcare interchange format.  The
real FHIR artefacts are large specification documents; this module provides a
*synthetic* but structurally faithful miniature: two consecutive versions of a
patient-record schema and the migration between them, exercising the same
code paths (schema evolution with edge re-routing, label renaming, derived
relationships via concatenated paths, and literal-value nodes encoded with
dedicated labels as suggested in Section 7 of the paper).

Version 3 ("STU3-like")
    Patient --generalPractitioner--> Practitioner
    Patient --managingOrganization--> Organization
    Practitioner --worksFor--> Organization
    Encounter --subject--> Patient, Encounter --performer--> Practitioner
    Patient --name--> HumanName (literal node)

Version 4 ("R4-like")
    Patient --primaryCare--> Practitioner         (renamed edge)
    Patient --organization--> Organization        (derived: GP's employer or
                                                   the managing organization)
    Encounter --subject--> Patient, Encounter --participant--> Practitioner
    Patient --name--> HumanName
"""

from __future__ import annotations

import random
from typing import Optional

from ..graph.graph import Graph
from ..schema.schema import Schema
from ..transform.parser import parse_transformation
from ..transform.transformation import Transformation

__all__ = [
    "schema_v3",
    "schema_v4",
    "migration_v3_to_v4",
    "broken_migration_v3_to_v4",
    "random_instance",
]


def schema_v3() -> Schema:
    """The source (version 3) patient-record schema."""
    schema = Schema(
        ["Patient", "Practitioner", "Organization", "Encounter", "HumanName"],
        ["generalPractitioner", "managingOrganization", "worksFor", "subject", "performer", "name"],
        name="FHIRv3",
    )
    schema.set_edge("Patient", "generalPractitioner", "Practitioner", "1", "*")
    schema.set_edge("Patient", "managingOrganization", "Organization", "1", "*")
    schema.set_edge("Practitioner", "worksFor", "Organization", "1", "*")
    schema.set_edge("Encounter", "subject", "Patient", "1", "*")
    schema.set_edge("Encounter", "performer", "Practitioner", "+", "*")
    schema.set_edge("Patient", "name", "HumanName", "1", "?")
    return schema


def schema_v4() -> Schema:
    """The target (version 4) patient-record schema."""
    schema = Schema(
        ["Patient", "Practitioner", "Organization", "Encounter", "HumanName"],
        ["primaryCare", "organization", "worksFor", "subject", "participant", "name"],
        name="FHIRv4",
    )
    schema.set_edge("Patient", "primaryCare", "Practitioner", "1", "*")
    schema.set_edge("Patient", "organization", "Organization", "+", "*")
    schema.set_edge("Practitioner", "worksFor", "Organization", "1", "*")
    schema.set_edge("Encounter", "subject", "Patient", "1", "*")
    schema.set_edge("Encounter", "participant", "Practitioner", "+", "*")
    schema.set_edge("Patient", "name", "HumanName", "1", "?")
    return schema


_MIGRATION_TEXT = """
transformation FhirV3toV4 {
  Patient(fPat(x))              <- (Patient)(x);
  Practitioner(fPra(x))         <- (Practitioner)(x);
  Organization(fOrg(x))         <- (Organization)(x);
  Encounter(fEnc(x))            <- (Encounter)(x);
  HumanName(fNam(x))            <- (HumanName)(x);
  primaryCare(fPat(x), fPra(y)) <- (generalPractitioner)(x, y);
  organization(fPat(x), fOrg(y)) <- (managingOrganization)(x, y);
  organization(fPat(x), fOrg(y)) <- (generalPractitioner . worksFor)(x, y);
  worksFor(fPra(x), fOrg(y))    <- (worksFor)(x, y);
  subject(fEnc(x), fPat(y))     <- (subject)(x, y);
  participant(fEnc(x), fPra(y)) <- (performer)(x, y);
  name(fPat(x), fNam(y))        <- (name)(x, y);
}
"""

# The broken variant derives `organization` only through the practitioner,
# forgetting the managing organization — still well-typed — but it also drops
# the `participant` rule, so encounters lose their required participant.
_BROKEN_MIGRATION_TEXT = """
transformation FhirV3toV4Broken {
  Patient(fPat(x))              <- (Patient)(x);
  Practitioner(fPra(x))         <- (Practitioner)(x);
  Organization(fOrg(x))         <- (Organization)(x);
  Encounter(fEnc(x))            <- (Encounter)(x);
  HumanName(fNam(x))            <- (HumanName)(x);
  primaryCare(fPat(x), fPra(y)) <- (generalPractitioner)(x, y);
  organization(fPat(x), fOrg(y)) <- (generalPractitioner . worksFor)(x, y);
  worksFor(fPra(x), fOrg(y))    <- (worksFor)(x, y);
  subject(fEnc(x), fPat(y))     <- (subject)(x, y);
  name(fPat(x), fNam(y))        <- (name)(x, y);
}
"""


def migration_v3_to_v4() -> Transformation:
    """The v3 → v4 migration (well-typed against :func:`schema_v4`)."""
    return parse_transformation(_MIGRATION_TEXT)


def broken_migration_v3_to_v4() -> Transformation:
    """A faulty migration: encounters lose their required participant edge."""
    return parse_transformation(_BROKEN_MIGRATION_TEXT)


def random_instance(
    patients: int = 6,
    practitioners: int = 3,
    organizations: int = 2,
    encounters: int = 5,
    seed: Optional[int] = None,
) -> Graph:
    """A random patient-record graph conforming to :func:`schema_v3`."""
    rng = random.Random(seed)
    graph = Graph()
    organization_ids = [f"org{i}" for i in range(max(1, organizations))]
    practitioner_ids = [f"doc{i}" for i in range(max(1, practitioners))]
    patient_ids = [f"pat{i}" for i in range(patients)]
    for organization in organization_ids:
        graph.add_node(organization, ["Organization"])
    for practitioner in practitioner_ids:
        graph.add_node(practitioner, ["Practitioner"])
        graph.add_edge(practitioner, "worksFor", rng.choice(organization_ids))
    for patient in patient_ids:
        graph.add_node(patient, ["Patient"])
        graph.add_edge(patient, "generalPractitioner", rng.choice(practitioner_ids))
        graph.add_edge(patient, "managingOrganization", rng.choice(organization_ids))
        name_node = f"name-of-{patient}"
        graph.add_node(name_node, ["HumanName"])
        graph.add_edge(patient, "name", name_node)
    for index in range(encounters):
        encounter = f"enc{index}"
        graph.add_node(encounter, ["Encounter"])
        if patient_ids:
            graph.add_edge(encounter, "subject", rng.choice(patient_ids))
        graph.add_edge(encounter, "performer", rng.choice(practitioner_ids))
    return graph
