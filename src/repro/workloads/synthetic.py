"""Synthetic generators for scaling benchmarks.

The paper's complexity results are stated in terms of the sizes of the
schema, the queries and the transformation; these generators produce families
of inputs whose sizes grow along one dimension at a time, so that the
benchmarks can chart how the implemented procedures scale (the E7/E8
experiments under ``benchmarks/``; see the benchmark section of README.md).
"""

from __future__ import annotations

import random
from typing import Optional

from ..graph.graph import Graph
from ..rpq.queries import Atom, C2RPQ
from ..rpq.regex import concat, edge, node, plus, star
from ..schema.schema import Schema
from ..transform.constructors import NodeConstructor
from ..transform.rules import EdgeRule, NodeRule
from ..transform.transformation import Transformation

__all__ = [
    "chain_schema",
    "chain_copy_transformation",
    "chain_collapse_transformation",
    "chain_instance",
    "path_query",
    "star_query",
    "cycle_schema",
]


def chain_schema(length: int, name: Optional[str] = None) -> Schema:
    """A "chain" schema ``L0 --e0(1,*)--> L1 --e1--> … --> L_length``.

    Every ``Li``-node has exactly one outgoing ``ei``-edge to an ``L(i+1)``
    node, which makes longer and longer derived paths available to
    transformations and queries.
    """
    labels = [f"L{i}" for i in range(length + 1)]
    edges = [f"e{i}" for i in range(length)]
    schema = Schema(labels, edges, name=name or f"Chain{length}")
    for index in range(length):
        schema.set_edge(labels[index], edges[index], labels[index + 1], "1", "*")
    return schema


def chain_copy_transformation(length: int) -> Transformation:
    """The identity-style transformation copying a chain schema instance."""
    transformation = Transformation(name=f"CopyChain{length}")
    for index in range(length + 1):
        label = f"L{index}"
        constructor = NodeConstructor(f"f{label}", 1, label)
        body = C2RPQ([Atom(node(label), "x", "x")], ["x"], name=f"{label}_body")
        transformation.add(NodeRule(label, constructor, ("x",), body))
    for index in range(length):
        source, target = f"L{index}", f"L{index + 1}"
        body = C2RPQ([Atom(edge(f"e{index}"), "x", "y")], ["x", "y"], name=f"e{index}_body")
        transformation.add(
            EdgeRule(
                f"e{index}",
                NodeConstructor(f"f{source}", 1, source),
                ("x",),
                NodeConstructor(f"f{target}", 1, target),
                ("y",),
                body,
            )
        )
    return transformation


def chain_collapse_transformation(length: int) -> Transformation:
    """A transformation that shortcuts the whole chain with one derived edge.

    It keeps the endpoint labels only and adds a ``shortcut`` edge defined by
    the concatenation ``e0·e1·…·e(length-1)`` — the derived-path pattern that
    makes the static analysis queries grow with the schema.
    """
    transformation = Transformation(name=f"CollapseChain{length}")
    first, last = "L0", f"L{length}"
    for label in (first, last):
        constructor = NodeConstructor(f"f{label}", 1, label)
        body = C2RPQ([Atom(node(label), "x", "x")], ["x"], name=f"{label}_body")
        transformation.add(NodeRule(label, constructor, ("x",), body))
    path = concat(*(edge(f"e{i}") for i in range(length)))
    body = C2RPQ([Atom(path, "x", "y")], ["x", "y"], name="shortcut_body")
    transformation.add(
        EdgeRule(
            "shortcut",
            NodeConstructor(f"f{first}", 1, first),
            ("x",),
            NodeConstructor(f"f{last}", 1, last),
            ("y",),
            body,
        )
    )
    return transformation


def chain_instance(length: int, rows: int, seed: Optional[int] = None) -> Graph:
    """A conforming instance of :func:`chain_schema`: *rows* parallel chains."""
    rng = random.Random(seed)
    graph = Graph()
    for row in range(rows):
        previous = None
        for index in range(length + 1):
            identifier = (row, index)
            graph.add_node(identifier, [f"L{index}"])
            if previous is not None:
                graph.add_edge(previous, f"e{index - 1}", identifier)
            previous = identifier
    # a few random extra chains sharing suffixes keep the instance interesting
    for row in range(rows):
        if rng.random() < 0.3 and rows > 1:
            graph.add_edge((row, 0), "e0", (rng.randrange(rows), 1))
    return graph


def path_query(length: int, edge_prefix: str = "e", with_star: bool = False) -> C2RPQ:
    """A Boolean path query ``∃x,y.(e0·e1·…)(x, y)`` of the given length."""
    steps = [edge(f"{edge_prefix}{i}") for i in range(length)]
    if with_star and steps:
        steps[-1] = star(steps[-1])
    return C2RPQ([Atom(concat(*steps), "x", "y")], [], name=f"path{length}")


def star_query(branches: int, edge_prefix: str = "e") -> C2RPQ:
    """A Boolean star-shaped query with *branches* atoms sharing the centre."""
    atoms = [
        Atom(plus(edge(f"{edge_prefix}{i}")), "centre", f"leaf{i}") for i in range(branches)
    ]
    return C2RPQ(atoms, [], name=f"star{branches}")


def cycle_schema(size: int, name: Optional[str] = None) -> Schema:
    """A schema whose single edge label forms a finmod cycle of *size* labels.

    Every ``Li`` has exactly one outgoing ``next``-edge to ``L(i+1 mod size)``
    and at most one incoming one, so finite instances are unions of cycles —
    the schema family that exercises cycle reversing (Example 5.2 generalised).
    """
    labels = [f"L{i}" for i in range(size)]
    schema = Schema(labels, ["next", "r"], name=name or f"Cycle{size}")
    for index in range(size):
        schema.set_edge(labels[index], "next", labels[(index + 1) % size], "1", "?")
    for label in labels:
        schema.set_edge(label, "r", label, "*", "*")
    return schema
