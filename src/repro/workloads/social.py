"""A social-network schema-evolution workload.

A miniature of the schema-evolution scenarios studied for property-graph
databases (Bonifati et al., cited in the paper): a social network refactors
its "member of group" modelling into explicit membership nodes, which
requires a *binary* node constructor — exercising the constructors of arity
greater than one that the paper highlights (nodes of the target graph that
represent edges of the source graph).

Version 1
    Person --friend--> Person
    Person --memberOf--> Group     (a person belongs to at least one group)
    Group  --moderatedBy--> Person (every group has exactly one moderator)

Version 2
    Person --friend--> Person
    Membership --who--> Person, Membership --inGroup--> Group
    Group --moderatedBy--> Person
"""

from __future__ import annotations

import random
from typing import Optional

from ..graph.graph import Graph
from ..schema.schema import Schema
from ..transform.parser import parse_transformation
from ..transform.transformation import Transformation

__all__ = [
    "schema_v1",
    "schema_v2",
    "reification",
    "broken_reification",
    "random_instance",
]


def schema_v1() -> Schema:
    """The original social-network schema."""
    schema = Schema(["Person", "Group"], ["friend", "memberOf", "moderatedBy"], name="SocialV1")
    schema.set_edge("Person", "friend", "Person", "*", "*")
    schema.set_edge("Person", "memberOf", "Group", "+", "*")
    schema.set_edge("Group", "moderatedBy", "Person", "1", "*")
    return schema


def schema_v2() -> Schema:
    """The evolved schema with reified memberships."""
    schema = Schema(
        ["Person", "Group", "Membership"],
        ["friend", "who", "inGroup", "moderatedBy"],
        name="SocialV2",
    )
    schema.set_edge("Person", "friend", "Person", "*", "*")
    schema.set_edge("Membership", "who", "Person", "1", "*")
    schema.set_edge("Membership", "inGroup", "Group", "1", "*")
    schema.set_edge("Group", "moderatedBy", "Person", "1", "*")
    return schema


_REIFICATION_TEXT = """
transformation SocialReify {
  Person(fPerson(x))                <- (Person)(x);
  Group(fGroup(x))                  <- (Group)(x);
  Membership(fMember(x, y))         <- (Person . memberOf . Group)(x, y);
  friend(fPerson(x), fPerson(y))    <- (friend)(x, y);
  who(fMember(x, y), fPerson(x))    <- (Person . memberOf . Group)(x, y);
  inGroup(fMember(x, y), fGroup(y)) <- (Person . memberOf . Group)(x, y);
  moderatedBy(fGroup(x), fPerson(y)) <- (moderatedBy)(x, y);
}
"""

# The broken variant creates memberships for *every* pair of a person and a
# group reachable through a friend (not just direct memberships), so a single
# membership node may end up with several `who` witnesses required... it also
# forgets the `inGroup` rule for half of the memberships it creates, which
# breaks the `1` constraint of Membership --inGroup--> Group.
_BROKEN_REIFICATION_TEXT = """
transformation SocialReifyBroken {
  Person(fPerson(x))                <- (Person)(x);
  Group(fGroup(x))                  <- (Group)(x);
  Membership(fMember(x, y))         <- (Person . friend* . memberOf . Group)(x, y);
  friend(fPerson(x), fPerson(y))    <- (friend)(x, y);
  who(fMember(x, y), fPerson(x))    <- (Person . friend* . memberOf . Group)(x, y);
  inGroup(fMember(x, y), fGroup(y)) <- (Person . memberOf . Group)(x, y);
  moderatedBy(fGroup(x), fPerson(y)) <- (moderatedBy)(x, y);
}
"""


def reification() -> Transformation:
    """The v1 → v2 reification transformation (binary constructor ``fMember``)."""
    return parse_transformation(_REIFICATION_TEXT)


def broken_reification() -> Transformation:
    """A faulty variant: some memberships lack their required ``inGroup`` edge."""
    return parse_transformation(_BROKEN_REIFICATION_TEXT)


def random_instance(
    people: int = 8,
    groups: int = 3,
    friendship_probability: float = 0.25,
    seed: Optional[int] = None,
) -> Graph:
    """A random social network conforming to :func:`schema_v1`."""
    rng = random.Random(seed)
    graph = Graph()
    person_ids = [f"person{i}" for i in range(max(1, people))]
    group_ids = [f"group{i}" for i in range(max(1, groups))]
    for person in person_ids:
        graph.add_node(person, ["Person"])
    for group in group_ids:
        graph.add_node(group, ["Group"])
        graph.add_edge(group, "moderatedBy", rng.choice(person_ids))
    for person in person_ids:
        graph.add_edge(person, "memberOf", rng.choice(group_ids))
        for other in person_ids:
            if person != other and rng.random() < friendship_probability:
                graph.add_edge(person, "friend", other)
    return graph
