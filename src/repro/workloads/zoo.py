"""The workload zoo: property-based random instances and adversarial suites.

The packaged batches (:mod:`repro.workloads.batches`) are friendly: four
hand-written schemas whose containment tests the paper's examples were built
around.  The complexity story says the system's worst case looks nothing
like them — containment modulo schema is EXPTIME-hard (Theorem F.1, via the
ATM reduction of Appendix F) — and the cache tiers, the coalescer and the
parallel backend are only honest if they are also measured on inputs that
*miss*: thousands of distinct fingerprints, deeply nested regexes, and the
hardness construction's own query shapes.  This module grows both ends of
that spectrum:

* **Property-based generation** (:func:`property_corpus`) — a seeded random
  schema/query generator with size knobs.  Every schema renders losslessly
  through the :mod:`repro.schema.parser` DSL and every query through its
  source text, so generated corpora travel over the service wire format and
  through replay traces (:mod:`repro.workloads.replay`) bit-identically.
  With default knobs a corpus is cheap enough for tier-1 differential tests;
  with ``schemas=200, queries_per_schema=10`` it produces thousands of
  distinct request fingerprints to stress cache eviction and store growth.

* **Adversarial families** (:func:`tree_device_suite`,
  :func:`atm_fragment_suite`, :data:`ZOO_FAMILIES`) — named, reusable
  instances scaled down from the EXPTIME-hardness machinery of
  :mod:`repro.hardness`: the Figure 6 tree-enforcing device, and
  fragment-vs-union pairs sliced out of the Theorem F.1 reduction's negative
  query (the structural-violation union), whose nesting device ``p[q] =
  p·q·q⁻`` and inverse-edge unions are exactly the shapes the friendly
  workloads never produce.  The full reduction instance is deliberately not
  in the suite — deciding it takes tens of seconds even at ``space=2`` —
  but every fragment exercises the same macros over the same Figure 7
  schema.

:func:`zoo_corpus` concatenates the families into the ``(left, right,
schema)`` triple format of :meth:`~repro.engine.ContainmentEngine.check_many`
— the input shape shared by ``python -m repro bench --suite zoo``, the
differential test layer (``tests/test_differential.py``) and the replay
trace generator.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..rpq.queries import Atom, C2RPQ
from ..rpq.regex import Regex, Union, concat, edge, node, star, union
from ..schema.schema import Schema

__all__ = [
    "ZOO_SEED",
    "ZOO_FAMILIES",
    "ZooPair",
    "random_schema",
    "random_regex",
    "random_pair",
    "property_corpus",
    "single_axiom_edit",
    "evolution_corpus",
    "HEAVY_EVOLUTION_WORD_CAP",
    "heavy_evolution_corpus",
    "tree_device_suite",
    "atm_fragment_suite",
    "zoo_corpus",
]

#: The fixed seed behind every zoo default — tests, benchmarks and traces
#: built without an explicit seed are reproducible against each other.
ZOO_SEED = 20230808

#: One containment request: ``(left, right, schema)``.
ZooPair = Tuple[Any, Any, Schema]

#: Multiplicity alphabet for random constraints.  Repetition is the bias:
#: ``?``/``*`` keep the chase cheap, the single ``1`` admits schemas whose
#: completions force real pattern extension without dominating the runtime.
_DEFAULT_MULTIPLICITIES = "??**1"


# --------------------------------------------------------------------------- #
# property-based generation
# --------------------------------------------------------------------------- #
def random_schema(
    rng: random.Random,
    index: int = 0,
    *,
    node_labels: int = 3,
    edge_labels: int = 3,
    constraints_per_edge: Tuple[int, int] = (1, 3),
    multiplicities: str = _DEFAULT_MULTIPLICITIES,
) -> Schema:
    """One seeded random schema; distinct *index* values never collide.

    Labels are namespaced by *index* (``N7x0`` … / ``r7x0`` …) so corpora
    of many schemas have pairwise disjoint label sets — and therefore
    pairwise distinct canonical fingerprints, the property the cache- and
    store-growth scenarios rely on.  Node labels start upper-case and edge
    labels lower-case, matching the case convention the regex parser uses to
    tell Γ from Σ, so the schema and every query over it round-trip through
    the textual DSL (asserted in ``tests/test_workloads.py``).
    """
    if node_labels < 1 or edge_labels < 1:
        raise ValueError("random_schema needs at least one node and one edge label")
    labels = [f"N{index}x{j}" for j in range(node_labels)]
    edges = [f"r{index}x{j}" for j in range(edge_labels)]
    schema = Schema(labels, edges, name=f"Zoo{index}")
    low, high = constraints_per_edge
    for edge_label in edges:
        for _ in range(rng.randint(low, high)):
            schema.set_edge(
                rng.choice(labels),
                edge_label,
                rng.choice(labels),
                rng.choice(multiplicities),
                rng.choice("?*"),
            )
    return schema


def random_regex(
    rng: random.Random,
    edge_labels: Sequence[str],
    *,
    depth: int = 2,
    inverse_probability: float = 0.25,
    star_probability: float = 0.3,
) -> Regex:
    """A seeded random two-way regex over *edge_labels*.

    *depth* bounds the operator-tree height; each level picks concatenation,
    union or (with *star_probability*) Kleene star, bottoming out in edge
    labels that are inverted with *inverse_probability*.  The shapes mirror
    what the hardness reduction composes by hand — nested unions over signed
    labels under stars — at sizes the solver decides in milliseconds.
    """
    if depth <= 0 or rng.random() < 0.45:
        label = rng.choice(list(edge_labels))
        if rng.random() < inverse_probability:
            return edge(f"{label}-")
        return edge(label)
    roll = rng.random()
    if roll < 0.45:
        return concat(
            random_regex(rng, edge_labels, depth=depth - 1,
                         inverse_probability=inverse_probability,
                         star_probability=star_probability),
            random_regex(rng, edge_labels, depth=depth - 1,
                         inverse_probability=inverse_probability,
                         star_probability=star_probability),
        )
    inner = random_regex(rng, edge_labels, depth=depth - 1,
                         inverse_probability=inverse_probability,
                         star_probability=star_probability)
    if roll < 0.8:
        other = random_regex(rng, edge_labels, depth=depth - 1,
                             inverse_probability=inverse_probability,
                             star_probability=star_probability)
        return union(inner, other)
    if rng.random() < star_probability:
        return star(inner)
    return concat(inner, random_regex(rng, edge_labels, depth=depth - 1,
                                      inverse_probability=inverse_probability,
                                      star_probability=star_probability))


def random_pair(
    rng: random.Random,
    schema: Schema,
    tag: str,
    *,
    depth: int = 2,
    inverse_probability: float = 0.25,
    star_probability: float = 0.3,
) -> Tuple[C2RPQ, C2RPQ]:
    """One random ``(left, right)`` containment pair over *schema*.

    The left query is a unary single-atom C2RPQ over a random regex; the
    right is a node-label test — the acyclic right-hand shape the decision
    procedure requires, and the same shape the packaged batches use, so
    verdicts split between contained and not contained rather than
    collapsing to one answer.

    Both queries are normalised through one ``str`` → ``parse_c2rpq``
    round-trip before being returned: the regex printer flattens nested
    unions while the parser re-associates them to the left, so a freshly
    built right-nested union would not be token-identical to its own source
    text.  One round-trip reaches the printer/parser fixpoint, making the
    textual form canonical — the property replay traces and the service
    wire format depend on.
    """
    from ..rpq.parser import parse_c2rpq

    edges = sorted(schema.edge_labels)
    labels = sorted(schema.node_labels)
    regex = random_regex(
        rng, edges, depth=depth,
        inverse_probability=inverse_probability, star_probability=star_probability,
    )
    left = C2RPQ([Atom(regex, "x", "y")], ["x"], name=f"p{tag}")
    right = C2RPQ([Atom(node(rng.choice(labels)), "x", "x")], ["x"], name=f"q{tag}")
    return parse_c2rpq(str(left)), parse_c2rpq(str(right))


def property_corpus(
    seed: int = ZOO_SEED,
    *,
    schemas: int = 10,
    queries_per_schema: int = 20,
    node_labels: int = 3,
    edge_labels: int = 3,
    depth: int = 2,
    inverse_probability: float = 0.25,
    star_probability: float = 0.3,
    multiplicities: str = _DEFAULT_MULTIPLICITIES,
) -> List[ZooPair]:
    """The seeded property-based corpus: ``schemas × queries_per_schema`` pairs.

    Identical arguments produce the identical corpus (same objects in the
    same order, same canonical tokens), which is the contract the
    differential tests and the replay trace generator build on.  Every
    request is fingerprint-distinct from every other with overwhelming
    probability at the default knobs; the size knobs scale the corpus from
    a tier-1 test fixture to a cache-eviction stress load.
    """
    if schemas < 1 or queries_per_schema < 1:
        raise ValueError("property_corpus needs schemas >= 1 and queries_per_schema >= 1")
    rng = random.Random(seed)
    corpus: List[ZooPair] = []
    for i in range(schemas):
        schema = random_schema(
            rng, i,
            node_labels=node_labels, edge_labels=edge_labels,
            multiplicities=multiplicities,
        )
        for k in range(queries_per_schema):
            left, right = random_pair(
                rng, schema, f"{i}x{k}",
                depth=depth,
                inverse_probability=inverse_probability,
                star_probability=star_probability,
            )
            corpus.append((left, right, schema))
    return corpus


# --------------------------------------------------------------------------- #
# schema evolution scenarios
# --------------------------------------------------------------------------- #
#: How a single-axiom edit rewrites one multiplicity: each symbol maps to a
#: different one, so the edited schema always fingerprints differently, and
#: no edit introduces a ZERO (the edit stays "small" — it never forbids an
#: edge the queries may traverse).
_EDIT_CYCLE = {"?": "*", "*": "?", "1": "+", "+": "1", "0": "?"}


def single_axiom_edit(
    schema: Schema, *, seed: int = ZOO_SEED, name: Optional[str] = None
) -> Schema:
    """A copy of *schema* with exactly one multiplicity axiom changed.

    The "one constraint changed, re-check everything" scenario behind
    :meth:`~repro.engine.ContainmentEngine.evolve`: same node and edge
    labels (so compiled automata migrate), one declared constraint's
    multiplicity rewritten via a fixed non-identity cycle (so the canonical
    fingerprint always changes).  Deterministic in *seed*.
    """
    rng = random.Random(seed)
    constraints = list(schema.declared_constraints())
    edited = schema.copy(name=name or f"{schema.name}v2")
    if not constraints:
        # a constraint-free schema: declaring one optional edge is the
        # smallest semantic edit available
        label = sorted(schema.node_labels)[0]
        edited.set_edge(label, sorted(schema.edge_labels)[0], label, "?", "?")
        return edited
    source, signed, target, mult = rng.choice(constraints)
    edited.set(source, signed, target, _EDIT_CYCLE.get(str(mult), "?"))
    return edited


def evolution_corpus(
    seed: int = ZOO_SEED,
    *,
    queries: int = 32,
    node_labels: int = 3,
    edge_labels: int = 3,
    depth: int = 3,
    inverse_probability: float = 0.25,
    star_probability: float = 0.45,
) -> Tuple[Schema, Schema, List[Tuple[C2RPQ, C2RPQ]]]:
    """One zoo schema, its single-axiom edit, and shared query pairs.

    Returns ``(old_schema, new_schema, pairs)`` where every ``(left,
    right)`` pair is well-formed over both schemas (the edit preserves the
    label sets).  This is the fixture behind ``bench --suite evolve``,
    ``benchmarks/bench_schema_evolution.py`` and the evolve smoke check:
    deep, star-heavy left regexes make automaton compilation and the pumped
    enumeration the dominant per-pair cost — exactly the artefacts
    :meth:`~repro.engine.ContainmentEngine.evolve` migrates.
    """
    if queries < 1:
        raise ValueError("evolution_corpus needs queries >= 1")
    rng = random.Random(seed)
    old_schema = random_schema(rng, 0, node_labels=node_labels, edge_labels=edge_labels)
    new_schema = single_axiom_edit(old_schema, seed=seed)
    pairs = [
        random_pair(
            rng, old_schema, f"e{k}",
            depth=depth,
            inverse_probability=inverse_probability,
            star_probability=star_probability,
        )
        for k in range(queries)
    ]
    return old_schema, new_schema, pairs


#: Word cap for the heavy evolution corpus: every consumer (the ≥2x bench
#: gate, ``bench --suite evolve``) must pass
#: ``SatisfiabilityConfig(max_words_per_atom=HEAVY_EVOLUTION_WORD_CAP)`` so
#: the chase stays bounded while the automata stay big — and so their
#: fingerprints agree.
HEAVY_EVOLUTION_WORD_CAP = 24


def _balanced_union(parts: List[Regex]) -> Regex:
    # left-nested unions of width ≥ ~400 overflow the recursion limit in
    # canonical_token; a balanced tree keeps depth logarithmic
    while len(parts) > 1:
        parts = [
            union(parts[i], parts[i + 1]) if i + 1 < len(parts) else parts[i]
            for i in range(0, len(parts), 2)
        ]
    return parts[0]


def heavy_evolution_corpus(
    seed: int = ZOO_SEED,
    *,
    queries: int = 8,
    union_width: int = 128,
    word_length: int = 6,
) -> Tuple[Schema, Schema, List[Tuple[C2RPQ, C2RPQ]]]:
    """The compilation-dominated variant of :func:`evolution_corpus`.

    Each left query is one atom over a balanced union of *union_width*
    random length-*word_length* edge walks, so building (and trimming) its
    NFA dwarfs the chase — provided callers cap enumeration at
    :data:`HEAVY_EVOLUTION_WORD_CAP` words per atom.  This is the shape
    where :meth:`~repro.engine.ContainmentEngine.evolve`'s automaton
    migration pays: the ≥2x warm-vs-cold gate of
    ``benchmarks/bench_schema_evolution.py`` runs exactly this corpus.
    """
    if queries < 1:
        raise ValueError("heavy_evolution_corpus needs queries >= 1")
    rng = random.Random(seed)
    old_schema = random_schema(rng, 0)
    new_schema = single_axiom_edit(old_schema, seed=seed)
    labels = sorted(old_schema.edge_labels)
    anchor = sorted(old_schema.node_labels)[0]
    pairs: List[Tuple[C2RPQ, C2RPQ]] = []
    for k in range(queries):
        left_regex = _balanced_union(
            [
                _concat_walk([rng.choice(labels) for _ in range(word_length)])
                for _ in range(union_width)
            ]
        )
        left = C2RPQ([Atom(left_regex, "x", "y")], ["x"], name=f"hp{k}")
        right = C2RPQ([Atom(node(anchor), "x", "x")], ["x"], name="hq")
        pairs.append((left, right))
    return old_schema, new_schema, pairs


def _concat_walk(walk_labels: Sequence[str]) -> Regex:
    result = edge(walk_labels[0])
    for label in walk_labels[1:]:
        result = concat(result, edge(label))
    return result


# --------------------------------------------------------------------------- #
# adversarial families from the hardness machinery
# --------------------------------------------------------------------------- #
def _union_parts(regex: Regex) -> List[Regex]:
    """Flatten nested unions into their leaf alternatives."""
    if isinstance(regex, Union):
        parts: List[Regex] = []
        for child in regex.children():
            parts.extend(_union_parts(child))
        return parts
    return [regex]


def tree_device_suite() -> List[ZooPair]:
    """The Figure 6 tree-enforcing device as containment pairs.

    The positive traversal query and the negative structural-violation query
    over the two-label tree schema, paired in both directions and against
    plain label tests — small queries whose nesting device ``p[q] = p·q·q⁻``
    and inverse-edge stars drive the automaton pipeline much harder than
    their size suggests.
    """
    from ..hardness.reduction import tree_device_queries, tree_device_schema

    schema = tree_device_schema()
    positive, negative = tree_device_queries()
    leaf = C2RPQ([Atom(node("Leaf"), "u", "u")], [], name="q_leaf")
    inner = C2RPQ([Atom(node("Node"), "u", "u")], [], name="q_node")
    return [
        (positive, negative, schema),
        (negative, negative, schema),
        (positive, leaf, schema),
        (negative, inner, schema),
        (leaf, negative, schema),
    ]


def atm_fragment_suite(
    *,
    words: Sequence[str] = ("11", "10"),
    space: int = 2,
    max_fragments_per_instance: int = 8,
) -> List[ZooPair]:
    """Scaled-down Theorem F.1 instances: negative-query fragments.

    For each input word, the full reduction instance is built from the tiny
    alternating AND/OR machine (:func:`repro.hardness.atm.alternating_and_or_machine`)
    — its Figure 7 schema and the negative query ``q``, a union of
    structural-violation patterns ("two symbols at one position", "two
    heads", "a universal state with an existential transition edge", …).
    The suite pairs individual violation fragments against the full union:
    each fragment is contained in ``q`` by construction, while ``q`` itself
    is *not* contained in any single fragment, so both verdict shapes appear
    and every pair forces the solver through the reduction's nesting macros
    and wide signed-label unions.  Deciding a fragment pair costs fractions
    of a second where the full positive-vs-negative instance costs tens —
    the "scaled down from hardness" trade the zoo is for.
    """
    from ..hardness.atm import alternating_and_or_machine
    from ..hardness.reduction import build_instance

    machine = alternating_and_or_machine()
    suite: List[ZooPair] = []
    for word in words:
        instance = build_instance(machine, word, space=space)
        fragments = _union_parts(instance.negative.atoms[0].regex)
        step = max(1, len(fragments) // max_fragments_per_instance)
        chosen = fragments[::step][:max_fragments_per_instance]
        for position, fragment in enumerate(chosen):
            left = C2RPQ(
                [Atom(fragment, "u", "v")], [],
                name=f"frag_{machine.name}_{word}_{position}",
            )
            suite.append((left, instance.negative, instance.schema))
        # the reverse direction: the union is not inside its first fragment
        if chosen:
            head = C2RPQ(
                [Atom(chosen[0], "u", "v")], [],
                name=f"fraghead_{machine.name}_{word}",
            )
            suite.append((instance.negative, head, instance.schema))
    return suite


#: The named adversarial families: ``name -> zero-argument builder``.
#: ``property`` is parameterised separately (it has size knobs); these are
#: the fixed worst-case suites.
ZOO_FAMILIES: Dict[str, Callable[[], List[ZooPair]]] = {
    "tree-device": tree_device_suite,
    "atm-fragments": atm_fragment_suite,
}


def zoo_corpus(
    seed: int = ZOO_SEED,
    *,
    schemas: int = 10,
    queries_per_schema: int = 12,
    families: Optional[Sequence[str]] = None,
    **knobs: Any,
) -> Dict[str, List[ZooPair]]:
    """Every requested family, keyed by name (``property`` first).

    *families* defaults to ``("property", *ZOO_FAMILIES)``; extra keyword
    arguments are forwarded to :func:`property_corpus`.  The return shape is
    per-family so callers (the zoo bench suite, the differential tests) can
    time and report each family separately while still flattening into one
    ``check_many`` batch.
    """
    selected = tuple(families) if families is not None else ("property", *ZOO_FAMILIES)
    corpus: Dict[str, List[ZooPair]] = {}
    for name in selected:
        if name == "property":
            corpus[name] = property_corpus(
                seed, schemas=schemas, queries_per_schema=queries_per_schema, **knobs
            )
        elif name in ZOO_FAMILIES:
            corpus[name] = ZOO_FAMILIES[name]()
        else:
            known = ", ".join(("property", *ZOO_FAMILIES))
            raise ValueError(f"unknown zoo family {name!r} (expected one of {known})")
    return corpus
