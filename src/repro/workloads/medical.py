"""The medical knowledge-graph workload of Example 1.1 / Figure 1 / Example 4.1.

The workload packages:

* the source schema ``S0`` (vaccines, antigens, pathogens, cross-reactivity);
* the evolved target schema ``S1`` (explicit ``targets`` edges, no
  ``crossReacting`` edges);
* the transformation ``T0`` of Example 4.1, which migrates a knowledge graph
  from ``S0`` to ``S1`` by materialising the cross-reactivity rule;
* a deliberately broken variant of ``T0`` (used to exercise negative cases of
  type checking and equivalence);
* generators of conforming instance graphs of configurable size.
"""

from __future__ import annotations

import random
from typing import Optional

from ..graph.graph import Graph
from ..schema.schema import Schema
from ..transform.parser import parse_transformation
from ..transform.transformation import Transformation

__all__ = [
    "source_schema",
    "target_schema",
    "migration",
    "broken_migration",
    "redundant_migration",
    "sample_graph",
    "random_instance",
]


def source_schema() -> Schema:
    """The schema ``S0`` of Figure 1."""
    schema = Schema(
        ["Vaccine", "Antigen", "Pathogen"],
        ["designTarget", "crossReacting", "exhibits"],
        name="S0",
    )
    schema.set_edge("Vaccine", "designTarget", "Antigen", "1", "*")
    schema.set_edge("Antigen", "crossReacting", "Antigen", "*", "*")
    schema.set_edge("Pathogen", "exhibits", "Antigen", "+", "*")
    return schema


def target_schema() -> Schema:
    """The evolved schema ``S1`` of Figure 1 (explicit ``targets`` edges)."""
    schema = Schema(
        ["Vaccine", "Antigen", "Pathogen"],
        ["designTarget", "targets", "exhibits"],
        name="S1",
    )
    schema.set_edge("Vaccine", "designTarget", "Antigen", "1", "*")
    schema.set_edge("Vaccine", "targets", "Antigen", "+", "*")
    schema.set_edge("Pathogen", "exhibits", "Antigen", "+", "*")
    return schema


_MIGRATION_TEXT = """
transformation T0 {
  Vaccine(fV(x))              <- (Vaccine)(x);
  Antigen(fA(x))              <- (Antigen)(x);
  Pathogen(fP(x))             <- (Pathogen)(x);
  designTarget(fV(x), fA(y))  <- (designTarget)(x, y);
  targets(fV(x), fA(y))       <- (designTarget . crossReacting*)(x, y);
  exhibits(fP(x), fA(y))      <- (exhibits)(x, y);
}
"""

# The broken variant forgets that the design target itself is targeted: it only
# materialises *strict* cross-reactions, so a vaccine whose antigen has no
# cross-reacting partner ends up with no `targets` edge — violating the `+`
# participation constraint of S1.
_BROKEN_MIGRATION_TEXT = """
transformation Tbroken {
  Vaccine(fV(x))              <- (Vaccine)(x);
  Antigen(fA(x))              <- (Antigen)(x);
  Pathogen(fP(x))             <- (Pathogen)(x);
  designTarget(fV(x), fA(y))  <- (designTarget)(x, y);
  targets(fV(x), fA(y))       <- (designTarget . crossReacting . crossReacting*)(x, y);
  exhibits(fP(x), fA(y))      <- (exhibits)(x, y);
}
"""

# A rule-level redundant variant: semantically equivalent to T0 (the extra
# `targets` rule is subsumed by the general one), used for equivalence tests.
_REDUNDANT_MIGRATION_TEXT = """
transformation Tredundant {
  Vaccine(fV(x))              <- (Vaccine)(x);
  Antigen(fA(x))              <- (Antigen)(x);
  Pathogen(fP(x))             <- (Pathogen)(x);
  designTarget(fV(x), fA(y))  <- (designTarget)(x, y);
  targets(fV(x), fA(y))       <- (designTarget)(x, y);
  targets(fV(x), fA(y))       <- (designTarget . crossReacting*)(x, y);
  exhibits(fP(x), fA(y))      <- (exhibits)(x, y);
}
"""


def migration() -> Transformation:
    """The transformation ``T0`` of Example 4.1."""
    return parse_transformation(_MIGRATION_TEXT)


def broken_migration() -> Transformation:
    """A variant of ``T0`` that fails type checking against ``S1``."""
    return parse_transformation(_BROKEN_MIGRATION_TEXT)


def redundant_migration() -> Transformation:
    """A variant of ``T0`` with a redundant rule; equivalent to ``T0`` modulo ``S0``."""
    return parse_transformation(_REDUNDANT_MIGRATION_TEXT)


def sample_graph() -> Graph:
    """A small hand-written knowledge graph conforming to ``S0``."""
    graph = Graph()
    graph.add_node("measles-vaccine", ["Vaccine"])
    graph.add_node("mumps-vaccine", ["Vaccine"])
    graph.add_node("H-protein", ["Antigen"])
    graph.add_node("F-protein", ["Antigen"])
    graph.add_node("HN-protein", ["Antigen"])
    graph.add_node("measles-virus", ["Pathogen"])
    graph.add_node("mumps-virus", ["Pathogen"])
    graph.add_edge("measles-vaccine", "designTarget", "H-protein")
    graph.add_edge("mumps-vaccine", "designTarget", "HN-protein")
    graph.add_edge("H-protein", "crossReacting", "F-protein")
    graph.add_edge("measles-virus", "exhibits", "H-protein")
    graph.add_edge("measles-virus", "exhibits", "F-protein")
    graph.add_edge("mumps-virus", "exhibits", "HN-protein")
    return graph


def random_instance(
    vaccines: int = 5,
    antigens: int = 8,
    pathogens: int = 4,
    cross_reaction_probability: float = 0.2,
    seed: Optional[int] = None,
) -> Graph:
    """A random knowledge graph conforming to ``S0``.

    Every vaccine receives exactly one design target, every pathogen exhibits
    at least one antigen, and cross-reactions are sampled independently.
    """
    rng = random.Random(seed)
    graph = Graph()
    antigen_ids = [f"antigen{i}" for i in range(antigens)]
    for antigen in antigen_ids:
        graph.add_node(antigen, ["Antigen"])
    for index in range(vaccines):
        vaccine = f"vaccine{index}"
        graph.add_node(vaccine, ["Vaccine"])
        graph.add_edge(vaccine, "designTarget", rng.choice(antigen_ids))
    for index in range(pathogens):
        pathogen = f"pathogen{index}"
        graph.add_node(pathogen, ["Pathogen"])
        exhibited = rng.sample(antigen_ids, k=rng.randint(1, max(1, min(3, antigens))))
        for antigen in exhibited:
            graph.add_edge(pathogen, "exhibits", antigen)
    for source in antigen_ids:
        for target in antigen_ids:
            if source != target and rng.random() < cross_reaction_probability:
                graph.add_edge(source, "crossReacting", target)
    return graph
