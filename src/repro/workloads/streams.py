"""Request streams: service traffic replayed over the packaged workloads.

The batch builders of :mod:`repro.workloads.batches` produce *pairwise
distinct* requests — the right shape for measuring cold decision-procedure
work, and the wrong shape for exercising a serving layer, where real traffic
from independent clients repeats hot requests, interleaves schemas and
arrives in no useful order.  :func:`request_stream` replays exactly that:
a deterministic, seeded sequence of ``(left, right, schema)`` triples drawn
from the mixed multi-schema batch, with a configurable fraction of
*repeats* biased toward recently seen requests (hot keys), so a coalescing
service sees both deduplicable duplicates and genuinely fresh work in the
same window.

:func:`request_payloads` renders the same stream as JSON-ready dicts (the
schema as :func:`repro.schema.parser.schema_to_text` DSL text, queries as
their source strings) — the wire format of ``python -m repro serve`` — for
HTTP-level tests and the CI service smoke check.
"""

from __future__ import annotations

import random
import threading
from typing import Any, Callable, Dict, List, Sequence, Tuple

from ..schema.parser import schema_to_text
from ..schema.schema import Schema
from .batches import mixed_batch

__all__ = ["closed_loop", "request_payloads", "request_stream"]


def request_stream(
    requests: int = 120,
    *,
    seed: int = 1729,
    repeat_fraction: float = 0.4,
    hot_window: int = 16,
    length: int = 4,
) -> List[Tuple[Any, Any, Schema]]:
    """A deterministic mixed-schema traffic replay of *requests* triples.

    Drawn round-robin-free from :func:`~repro.workloads.batches.mixed_batch`
    (medical + FHIR + social + ``synthetic(length)``) in a seeded shuffle;
    with probability *repeat_fraction* the next request instead repeats one
    of the last *hot_window* requests — the service-side duplicate/cache-hit
    traffic shape.  Identical arguments produce the identical stream, so a
    stream replayed through different serving modes is comparable
    request-for-request (the benchmarks assert fingerprint identity on it).
    """
    if requests < 1:
        raise ValueError("request_stream needs at least one request")
    if not 0.0 <= repeat_fraction < 1.0:
        raise ValueError("repeat_fraction must be in [0, 1)")
    rng = random.Random(seed)
    corpus = mixed_batch(length=length)
    order = list(range(len(corpus)))
    rng.shuffle(order)
    stream: List[Tuple[Any, Any, Schema]] = []
    cursor = 0
    while len(stream) < requests:
        if stream and rng.random() < repeat_fraction:
            window = stream[-hot_window:]
            stream.append(window[rng.randrange(len(window))])
        else:
            stream.append(corpus[order[cursor % len(order)]])
            cursor += 1
    return stream


def request_payloads(
    requests: int = 120,
    *,
    seed: int = 1729,
    repeat_fraction: float = 0.4,
    hot_window: int = 16,
    length: int = 4,
) -> List[Dict[str, str]]:
    """The same stream as JSON-ready ``{"schema", "left", "right"}`` dicts.

    Schema objects are rendered to DSL text once per distinct schema (the
    texts repeat verbatim across the stream, so a service's parse cache sees
    realistic hit rates).
    """
    stream = request_stream(
        requests,
        seed=seed,
        repeat_fraction=repeat_fraction,
        hot_window=hot_window,
        length=length,
    )
    texts: Dict[int, str] = {}
    payloads: List[Dict[str, str]] = []
    for left, right, schema in stream:
        text = texts.get(id(schema))
        if text is None:
            text = schema_to_text(schema)
            texts[id(schema)] = text
        payloads.append({"schema": text, "left": str(left), "right": str(right)})
    return payloads


def closed_loop(
    items: Sequence[Any], call: Callable[[Any], Any], clients: int = 8
) -> List[Any]:
    """Drive ``call(item)`` over *items* from closed-loop client threads.

    The load-generator shape shared by the service throughput benchmark,
    the CLI's ``bench --suite service``, the service tests and the CI smoke
    check: *clients* threads each keep exactly **one** request outstanding,
    pulling the next item off a shared cursor until the stream is
    exhausted.  Returns the results in item order.  A failing call stops
    its client (the others finish the stream) and the first failure — in
    item order — is re-raised afterwards, so errors surface instead of
    leaving silent ``None`` holes in the results.
    """
    if clients < 1:
        raise ValueError("closed_loop needs at least one client")
    results: List[Any] = [None] * len(items)
    failures: List[Tuple[int, BaseException]] = []
    cursor = [0]
    lock = threading.Lock()

    def client() -> None:
        while True:
            with lock:
                index = cursor[0]
                cursor[0] += 1
            if index >= len(items):
                return
            try:
                results[index] = call(items[index])
            except BaseException as error:  # noqa: BLE001 - re-raised below
                with lock:
                    failures.append((index, error))
                return

    threads = [threading.Thread(target=client) for _ in range(clients)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if failures:
        index, error = min(failures, key=lambda failure: failure[0])
        raise RuntimeError(f"closed-loop client failed on item {index}") from error
    return results
