"""Record/replay traces: multi-tenant service traffic as NDJSON files.

:mod:`repro.workloads.streams` replays one deterministic request stream; a
*trace* is the durable, shareable form of that idea — a production-ish
traffic recording that any box can re-run bit-identically through the
serving layer.  One JSON object per line::

    {"trace_format": 1, "seed": 20230808, "requests": 120, ...}   # header
    {"tenant": "hot0", "offset": 0.0041,
     "request": {"schema": "schema Zoo0 {...}", "left": "p0x1(x) := ...",
                 "right": "q0x1(x) := N0x2(x)"},
     "result_fingerprint": "3f2a..."}                              # request

``request`` is exactly the wire payload of ``python -m repro serve`` (schema
DSL text plus two query source strings), so a trace line can be POSTed to
``/contain``, piped into ``serve --stdio``, or replayed in-process through a
:class:`~repro.service.service.ContainmentService` — all three see the same
bytes.  ``result_fingerprint`` is the expected canonical verdict digest
(:func:`repro.engine.result_fingerprint`), stamped by
:func:`stamp_expected` from a serial baseline run; a replay that produces a
different fingerprint for any line is a determinism violation, which
:func:`replay_trace` reports per line and ``python -m repro replay`` turns
into a non-zero exit.

:func:`generate_trace` synthesises the traffic mixes ROADMAP item 4 calls
for — hot/cold tenants over a mixed built-in + zoo corpus, burst arrival
(offset gaps collapse for a run of requests), and duplicate storms (one
payload repeated back-to-back, the coalescer's best case and the cache's
worst-case thundering herd) — all driven by one seed, so the same arguments
always emit byte-identical traces (asserted across separate OS processes in
``tests/test_replay.py``).
"""

from __future__ import annotations

import json
import math
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..schema.parser import schema_to_text
from .batches import mixed_batch
from .streams import closed_loop
from .zoo import ZOO_SEED, property_corpus

__all__ = [
    "TRACE_FORMAT_VERSION",
    "Trace",
    "TraceRequest",
    "ReplayReport",
    "generate_trace",
    "latency_percentiles",
    "read_trace",
    "replay_trace",
    "stamp_expected",
    "write_trace",
]

#: Bumped when a line's meaning changes; readers reject newer formats loudly
#: instead of replaying a trace they would misinterpret.
TRACE_FORMAT_VERSION = 1


@dataclass(frozen=True)
class TraceRequest:
    """One recorded request: who sent it, when, what, and what came back."""

    tenant: str
    offset: float  # seconds since the start of the trace
    payload: Dict[str, str]  # the service wire payload (schema/left/right)
    expected: Optional[str] = None  # expected result_fingerprint, if stamped


@dataclass
class Trace:
    """A parsed trace: the header metadata plus the request lines in order."""

    requests: List[TraceRequest]
    meta: Dict[str, Any] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.requests)

    def unique_payloads(self) -> int:
        """Distinct request payloads (the coalescer/cache dedup ceiling)."""
        return len({json.dumps(request.payload, sort_keys=True) for request in self.requests})


# --------------------------------------------------------------------------- #
# generation: multi-tenant mixes over the built-in + zoo corpora
# --------------------------------------------------------------------------- #
def _payload_corpus(length: int, zoo_schemas: int, zoo_queries_per_schema: int,
                    seed: int) -> List[Dict[str, str]]:
    """The base payload corpus: every built-in workload plus a zoo slice.

    Schema objects render to DSL text once per distinct schema, so repeated
    requests carry byte-identical schema strings — the service's parse cache
    sees realistic hit rates and byte-level trace comparison is meaningful.
    """
    triples = list(mixed_batch(length=length))
    if zoo_schemas > 0 and zoo_queries_per_schema > 0:
        triples.extend(
            property_corpus(seed, schemas=zoo_schemas,
                            queries_per_schema=zoo_queries_per_schema)
        )
    texts: Dict[int, str] = {}
    payloads = []
    for left, right, schema in triples:
        text = texts.get(id(schema))
        if text is None:
            text = schema_to_text(schema)
            texts[id(schema)] = text
        payloads.append({"schema": text, "left": str(left), "right": str(right)})
    return payloads


def generate_trace(
    requests: int = 120,
    *,
    seed: int = ZOO_SEED,
    tenants: int = 6,
    hot_tenants: int = 2,
    hot_corpus_size: int = 8,
    repeat_fraction: float = 0.35,
    burst_every: int = 16,
    burst_size: int = 4,
    duplicate_storms: int = 2,
    storm_size: int = 6,
    length: int = 4,
    zoo_schemas: int = 4,
    zoo_queries_per_schema: int = 4,
) -> Trace:
    """A seeded multi-tenant traffic trace of exactly *requests* lines.

    Traffic model (every choice drawn from one ``random.Random(seed)``, so
    identical arguments emit byte-identical traces):

    * **hot/cold tenants** — the first *hot_tenants* tenants draw from a
      shared *hot_corpus_size*-payload working set (high duplicate and
      cache-hit rates, also *across* tenants); cold tenants walk the full
      corpus (mostly fresh fingerprints).
    * **burst arrival** — every *burst_every* requests, the next
      *burst_size* arrivals collapse to near-zero offset gaps, the
      coalescer's window-filling shape.
    * **duplicate storms** — *duplicate_storms* times, spread evenly, one
      payload repeats *storm_size* times back-to-back from one tenant: the
      thundering-herd shape where a coalescing service must decide once and
      fan out (asserted via the ``/stats`` dedup counters in
      ``tests/test_replay.py``).
    """
    import random

    if requests < 1:
        raise ValueError("generate_trace needs at least one request")
    if not 1 <= hot_tenants <= tenants:
        raise ValueError("hot_tenants must be between 1 and tenants")
    rng = random.Random(seed)
    corpus = _payload_corpus(length, zoo_schemas, zoo_queries_per_schema, seed)
    order = list(range(len(corpus)))
    rng.shuffle(order)
    hot_set = [corpus[i] for i in order[:max(1, hot_corpus_size)]]
    cold_cursor = 0

    tenant_names = [
        (f"hot{i}" if i < hot_tenants else f"cold{i - hot_tenants}") for i in range(tenants)
    ]
    storm_positions = {
        (k + 1) * requests // (duplicate_storms + 1) for k in range(duplicate_storms)
    } if duplicate_storms > 0 else set()

    lines: List[TraceRequest] = []
    offset = 0.0
    burst_remaining = 0
    while len(lines) < requests:
        position = len(lines)
        if burst_every > 0 and position > 0 and position % burst_every == 0:
            burst_remaining = burst_size
        if burst_remaining > 0:
            offset += rng.uniform(0.0001, 0.0005)
            burst_remaining -= 1
        else:
            offset += rng.uniform(0.002, 0.012)

        tenant_index = rng.randrange(tenants)
        tenant = tenant_names[tenant_index]
        if tenant_index < hot_tenants:
            payload = rng.choice(hot_set)
        elif lines and rng.random() < repeat_fraction:
            payload = rng.choice(lines[-8:]).payload
        else:
            payload = corpus[order[cold_cursor % len(order)]]
            cold_cursor += 1
        lines.append(TraceRequest(tenant, round(offset, 6), payload))

        if position in storm_positions:
            # the storm: the same payload, the same tenant, back to back
            for _ in range(storm_size - 1):
                if len(lines) >= requests:
                    break
                offset += rng.uniform(0.0001, 0.0004)
                lines.append(TraceRequest(tenant, round(offset, 6), payload))

    meta = {
        "trace_format": TRACE_FORMAT_VERSION,
        "seed": seed,
        "requests": requests,
        "tenants": tenants,
        "hot_tenants": hot_tenants,
        "hot_corpus_size": hot_corpus_size,
        "repeat_fraction": repeat_fraction,
        "burst_every": burst_every,
        "burst_size": burst_size,
        "duplicate_storms": duplicate_storms,
        "storm_size": storm_size,
        "length": length,
        "zoo_schemas": zoo_schemas,
        "zoo_queries_per_schema": zoo_queries_per_schema,
    }
    return Trace(lines, meta)


# --------------------------------------------------------------------------- #
# the NDJSON file format
# --------------------------------------------------------------------------- #
def write_trace(trace: Trace, path: Any) -> None:
    """Write *trace* as NDJSON: one header line, then one line per request.

    Keys are sorted and separators fixed, so two traces are equal exactly
    when their files are byte-identical — the property the cross-process
    determinism test hashes.
    """
    meta = {**trace.meta, "trace_format": TRACE_FORMAT_VERSION, "requests": len(trace.requests)}
    lines = [json.dumps(meta, sort_keys=True, separators=(",", ":"))]
    for request in trace.requests:
        record: Dict[str, Any] = {
            "tenant": request.tenant,
            "offset": request.offset,
            "request": request.payload,
        }
        if request.expected is not None:
            record["result_fingerprint"] = request.expected
        lines.append(json.dumps(record, sort_keys=True, separators=(",", ":")))
    Path(path).write_text("\n".join(lines) + "\n", encoding="utf-8")


def read_trace(path: Any) -> Trace:
    """Parse an NDJSON trace file (header line optional, blank lines ignored)."""
    meta: Dict[str, Any] = {}
    requests: List[TraceRequest] = []
    for number, line in enumerate(Path(path).read_text(encoding="utf-8").splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as error:
            raise ValueError(f"{path}: line {number} is not valid JSON: {error}") from error
        if not isinstance(record, dict):
            raise ValueError(f"{path}: line {number} must be a JSON object")
        if "trace_format" in record and "request" not in record:
            version = record["trace_format"]
            if not isinstance(version, int) or version > TRACE_FORMAT_VERSION:
                raise ValueError(
                    f"{path}: trace format {version!r} is newer than the supported "
                    f"version {TRACE_FORMAT_VERSION}"
                )
            meta = record
            continue
        payload = record.get("request")
        if not isinstance(payload, dict):
            raise ValueError(f"{path}: line {number} is missing the 'request' object")
        requests.append(
            TraceRequest(
                str(record.get("tenant", "t0")),
                float(record.get("offset", 0.0)),
                payload,
                record.get("result_fingerprint"),
            )
        )
    return Trace(requests, meta)


# --------------------------------------------------------------------------- #
# stamping and replaying
# --------------------------------------------------------------------------- #
def stamp_expected(trace: Trace, config: Optional[Any] = None) -> Trace:
    """Stamp every line's ``result_fingerprint`` from a serial baseline.

    The payloads are parsed exactly like the service parses them (schema DSL
    text, query source strings — one parse per distinct text) and decided
    serially on a fresh engine, so the stamped fingerprints are the ground
    truth any serving mode must reproduce bit-for-bit.
    """
    from ..engine import ContainmentEngine, result_fingerprint
    from ..rpq.parser import parse_c2rpq
    from ..schema.parser import parse_schema

    schemas: Dict[str, Any] = {}
    queries: Dict[str, Any] = {}

    def parse(payload: Dict[str, str]) -> Tuple[Any, Any, Any]:
        schema_text = payload["schema"]
        if schema_text not in schemas:
            schemas[schema_text] = parse_schema(schema_text)
        for text in (payload["left"], payload["right"]):
            if text not in queries:
                queries[text] = parse_c2rpq(text)
        return queries[payload["left"]], queries[payload["right"]], schemas[schema_text]

    parsed = [parse(request.payload) for request in trace.requests]
    with ContainmentEngine(config) as engine:
        results = engine.check_many(parsed)
    stamped = [
        replace(request, expected=result_fingerprint(result))
        for request, result in zip(trace.requests, results)
    ]
    return Trace(stamped, dict(trace.meta))


@dataclass
class ReplayReport:
    """The outcome of one trace replay through a service."""

    fingerprints: List[str]
    expected: List[Optional[str]]
    mismatches: List[int]  # indices whose fingerprint differs from expected
    latencies: List[float]  # per-request wall-clock seconds, trace order
    elapsed_seconds: float
    clients: int

    @property
    def matches(self) -> bool:
        """``True`` when every stamped line replayed bit-identically."""
        return not self.mismatches

    def percentiles(self) -> Dict[str, float]:
        return latency_percentiles(self.latencies)

    def as_dict(self) -> Dict[str, Any]:
        stamped = sum(1 for expected in self.expected if expected is not None)
        return {
            "requests": len(self.fingerprints),
            "stamped": stamped,
            "mismatches": self.mismatches,
            "matches": self.matches,
            "elapsed_seconds": self.elapsed_seconds,
            "throughput_per_second": (
                len(self.fingerprints) / self.elapsed_seconds if self.elapsed_seconds else None
            ),
            "clients": self.clients,
            "latency": self.percentiles(),
        }


def latency_percentiles(latencies: Sequence[float]) -> Dict[str, float]:
    """Nearest-rank p50/p95/p99, keyed ``p50_seconds`` etc.

    The ``_seconds`` suffix is load-bearing: it is what
    ``tools/bench_trend.py`` walks for, so percentile fields join the trend
    comparison the first time both sides carry them.
    """
    if not latencies:
        return {"p50_seconds": 0.0, "p95_seconds": 0.0, "p99_seconds": 0.0}
    ordered = sorted(latencies)
    count = len(ordered)

    def rank(quantile: float) -> float:
        index = min(count - 1, max(0, math.ceil(quantile * count) - 1))
        return ordered[index]

    return {
        "p50_seconds": rank(0.50),
        "p95_seconds": rank(0.95),
        "p99_seconds": rank(0.99),
    }


def replay_trace(
    service: Any,
    trace: Trace,
    *,
    clients: int = 8,
    pace: Optional[float] = None,
    timeout: Optional[float] = None,
) -> ReplayReport:
    """Replay *trace* through a :class:`ContainmentService`, in trace order.

    Closed-loop client threads drive :meth:`service.handle` over the lines
    (the same load-generator shape as the benchmarks); results land in trace
    order regardless of completion order.  With *pace* set, each request
    additionally waits until ``offset / pace`` seconds after the replay
    started before submitting — ``pace=1.0`` reproduces recorded arrival
    times, larger values replay faster; ``None`` (the default) replays as
    fast as the closed loop allows, which is the right mode for determinism
    testing and throughput measurement.

    Latency is measured around each ``handle`` call (after any pacing wait),
    so percentiles reflect service time, not trace-schedule idleness.
    """
    from ..service.service import REQUEST_TIMEOUT_SECONDS

    wait = REQUEST_TIMEOUT_SECONDS if timeout is None else timeout
    latencies: List[float] = [0.0] * len(trace.requests)
    started = time.perf_counter()

    def call(indexed: Tuple[int, TraceRequest]) -> str:
        index, request = indexed
        if pace is not None and pace > 0:
            due = started + request.offset / pace
            delay = due - time.perf_counter()
            if delay > 0:
                time.sleep(delay)
        begun = time.perf_counter()
        response = service.handle(dict(request.payload), timeout=wait)
        latencies[index] = time.perf_counter() - begun
        return response["fingerprint"]

    fingerprints = closed_loop(list(enumerate(trace.requests)), call, clients=clients)
    elapsed = time.perf_counter() - started
    expected = [request.expected for request in trace.requests]
    mismatches = [
        index
        for index, (fingerprint, stamped) in enumerate(zip(fingerprints, expected))
        if stamped is not None and fingerprint != stamped
    ]
    return ReplayReport(fingerprints, expected, mismatches, latencies, elapsed, clients)
