"""Ready-made containment batches over the packaged workloads.

Every batch is a ``(schema, [(left, right), ...])`` pair suitable for
:meth:`repro.engine.ContainmentEngine.check_many` — the shared input format
of the CLI (``python -m repro batch``/``bench``), the parallel-backend tests
and ``benchmarks/bench_parallel_scaling.py``.  The pairs are pairwise
distinct (no request is a fingerprint-duplicate of another), so a cold run
measures real decision-procedure work rather than result-cache replays, and
they mix contained and non-contained instances so determinism checks cover
both verdict shapes, witness patterns included.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from ..rpq.parser import parse_c2rpq
from ..rpq.queries import Atom, C2RPQ
from ..rpq.regex import concat, edge, star
from ..schema.schema import Schema
from . import fhir, medical, social, synthetic

__all__ = [
    "BUILTIN_WORKLOADS",
    "containment_batch",
    "fhir_batch",
    "medical_batch",
    "mixed_batch",
    "social_batch",
    "synthetic_batch",
    "workload_schemas",
]

Pair = Tuple[Any, Any]

#: The workload names the CLI and benchmarks accept.
BUILTIN_WORKLOADS = ("medical", "fhir", "social", "synthetic")


def medical_batch() -> Tuple[Schema, List[Pair]]:
    """Derived-path queries over the Figure 1 schema ``S0``."""
    schema = medical.source_schema()
    rights = [
        parse_c2rpq("qV(x) := Vaccine(x)"),
        parse_c2rpq("qA(x) := Antigen(x)"),
        parse_c2rpq("qP(x) := Pathogen(x)"),
    ]
    lefts = []
    for stars in (0, 1, 2):
        tail = concat(*([edge("crossReacting")] * stars)) if stars else concat()
        regex = concat(edge("designTarget"), tail, star(edge("crossReacting")))
        lefts.append(C2RPQ([Atom(regex, "x", "y")], ["x"], name=f"p{stars}"))
    lefts.append(parse_c2rpq("px(x) := (exhibits . crossReacting*)(x, y)"))
    lefts.append(parse_c2rpq("pb(x) := (designTarget . crossReacting- )(x, y)"))
    return schema, [(left, right) for left in lefts for right in rights]


def fhir_batch() -> Tuple[Schema, List[Pair]]:
    """Care-path queries over the FHIR v3 patient-record schema."""
    schema = fhir.schema_v3()
    rights = [
        parse_c2rpq("qPat(x) := Patient(x)"),
        parse_c2rpq("qEnc(x) := Encounter(x)"),
        parse_c2rpq("qPra(x) := Practitioner(x)"),
    ]
    lefts = [
        parse_c2rpq("gp(x) := (generalPractitioner)(x, y)"),
        parse_c2rpq("org(x) := (generalPractitioner . worksFor)(x, y)"),
        parse_c2rpq("care(x) := (subject . generalPractitioner)(x, y)"),
        parse_c2rpq("named(x) := (name)(x, y)"),
        parse_c2rpq("visited(x) := (subject- . performer)(x, y)"),
    ]
    return schema, [(left, right) for left in lefts for right in rights]


def social_batch() -> Tuple[Schema, List[Pair]]:
    """Friendship/membership queries over the social-network v1 schema."""
    schema = social.schema_v1()
    rights = [
        parse_c2rpq("qPer(x) := Person(x)"),
        parse_c2rpq("qGrp(x) := Group(x)"),
    ]
    lefts = [
        parse_c2rpq("friends(x) := (friend . friend*)(x, y)"),
        parse_c2rpq("member(x) := (memberOf)(x, y)"),
        parse_c2rpq("mods(x) := (memberOf . moderatedBy)(x, y)"),
        parse_c2rpq("peer(x) := (memberOf . memberOf-)(x, y)"),
        parse_c2rpq("reach(x) := (friend* . memberOf)(x, y)"),
    ]
    return schema, [(left, right) for left in lefts for right in rights]


def synthetic_batch(length: int = 8) -> Tuple[Schema, List[Pair]]:
    """The scaling batch: path queries of every prefix length × many rights.

    Over :func:`repro.workloads.synthetic.chain_schema`\\ ``(length)`` the
    lefts are the paths ``e0``, ``e0·e1``, …, ``e0·…·e(length-1)`` and the
    rights assert the start label ``Lj`` for ``j ∈ {0, …, length}``, giving
    ``length × (length + 1)`` distinct requests (contained exactly when
    ``j = 0``).  Distinct right queries make the batch spread across worker
    ranges under right-token sub-sharding while every request still shares
    the one schema — the worst case for schema-major routing and hence the
    scaling benchmark's workload.
    """
    if length < 1:
        raise ValueError("synthetic_batch needs length >= 1")
    schema = synthetic.chain_schema(length)
    rights = [parse_c2rpq(f"q{j}(x) := L{j}(x)") for j in range(length + 1)]
    pairs: List[Pair] = []
    for prefix in range(1, length + 1):
        path = concat(*(edge(f"e{i}") for i in range(prefix)))
        left = C2RPQ([Atom(path, "x", "y")], ["x"], name=f"p{prefix}")
        pairs.extend((left, right) for right in rights)
    return schema, pairs


def mixed_batch(length: int = 6) -> List[Tuple[Any, Any, Schema]]:
    """Every built-in workload in one multi-schema batch.

    Returns ``(left, right, schema)`` triples — the per-request-schema form
    of :meth:`~repro.engine.ContainmentEngine.check_many` — concatenating
    the medical, FHIR, social and ``synthetic(length)`` batches.  This is
    the persistent-store benchmark's workload: four schemas with disjoint
    fingerprints exercise every cache tier (results, schema TBoxes,
    completions, automata) rather than letting one hot schema mask the
    cold-start cost of the others.
    """
    requests: List[Tuple[Any, Any, Schema]] = []
    for name in ("medical", "fhir", "social"):
        schema, pairs = containment_batch(name)
        requests.extend((left, right, schema) for left, right in pairs)
    schema, pairs = synthetic_batch(length)
    requests.extend((left, right, schema) for left, right in pairs)
    return requests


def containment_batch(name: str, *, length: int = 8) -> Tuple[Schema, List[Pair]]:
    """The named built-in batch; *length* only applies to ``synthetic``."""
    if name == "medical":
        return medical_batch()
    if name == "fhir":
        return fhir_batch()
    if name == "social":
        return social_batch()
    if name == "synthetic":
        return synthetic_batch(length)
    raise ValueError(f"unknown workload {name!r} (expected one of {', '.join(BUILTIN_WORKLOADS)})")


def workload_schemas(name: str, *, length: int = 8) -> Dict[str, Schema]:
    """The named workload's schemas, keyed by role (``source``/``target``)."""
    if name == "medical":
        return {"source": medical.source_schema(), "target": medical.target_schema()}
    if name == "fhir":
        return {"source": fhir.schema_v3(), "target": fhir.schema_v4()}
    if name == "social":
        return {"source": social.schema_v1(), "target": social.schema_v2()}
    if name == "synthetic":
        return {"source": synthetic.chain_schema(length)}
    raise ValueError(f"unknown workload {name!r} (expected one of {', '.join(BUILTIN_WORKLOADS)})")
