"""E11 — throughput of applying transformations to instance graphs.

Not a decision procedure, but the executable semantics of Section 4: measures
T(G) for graphs of growing size for the three packaged workloads, so that the
cost of the *dynamic* route (run and validate) can be compared against the
*static* route (type checking) benchmarked in E1/E10.
"""

import pytest

from repro.schema import conforms
from repro.workloads import fhir, medical, social


@pytest.mark.parametrize("scale", [10, 40, 160])
def test_medical_migration_throughput(benchmark, scale):
    instance = medical.random_instance(
        vaccines=scale, antigens=scale, pathogens=scale // 2, seed=scale
    )
    migration = medical.migration()
    output = benchmark(lambda: migration.apply(instance))
    assert output.node_count() >= instance.node_count()


@pytest.mark.parametrize("scale", [10, 40])
def test_fhir_migration_throughput(benchmark, scale):
    instance = fhir.random_instance(patients=scale, practitioners=scale // 2, encounters=scale, seed=scale)
    migration = fhir.migration_v3_to_v4()
    output = benchmark(lambda: migration.apply(instance))
    assert conforms(output, fhir.schema_v4())


@pytest.mark.parametrize("scale", [10, 30])
def test_social_reification_throughput(benchmark, scale):
    instance = social.random_instance(people=scale, groups=max(2, scale // 5), seed=scale)
    reify = social.reification()
    output = benchmark(lambda: reify.apply(instance))
    assert conforms(output, social.schema_v2())


def test_validation_after_migration(benchmark):
    instance = medical.random_instance(vaccines=40, antigens=40, pathogens=20, seed=7)
    output = medical.migration().apply(instance)
    ok = benchmark(lambda: conforms(output, medical.target_schema()))
    assert ok
