"""Parallel-scaling benchmark: the process backend versus the serial path.

Two claims are checked on the synthetic scaling workload
(:func:`repro.workloads.batches.synthetic_batch` — one chain schema, every
prefix-path left × every start-label right, all requests distinct):

1. **determinism** — serial, thread and process backends return
   fingerprint-identical `ContainmentResult`s (always asserted, any machine);
2. **speedup** — on a machine with ≥ 4 cores, a cold process batch over one
   worker per core is **≥ 2× faster** than the cold serial batch (the
   acceptance gate; skipped, with a diagnostic line, on smaller machines
   where the GIL-free workers have no cores to run on).

Worker start-up (interpreter spawn + import) is excluded from the timing by
starting the pool before the clock; that cost is amortised over a pool's
lifetime by design — the pool is persistent.
"""

import os
import time

import pytest

from repro.engine import ContainmentEngine, result_fingerprint
from repro.workloads.batches import synthetic_batch

GATE_MIN_CORES = 4
GATE_SPEEDUP = 2.0
GATE_CHAIN_LENGTH = 12


def _fingerprints(results):
    return [result_fingerprint(result) for result in results]


def _run_serial(schema, pairs):
    engine = ContainmentEngine()
    started = time.perf_counter()
    results = engine.check_many(pairs, schema=schema)
    return results, time.perf_counter() - started


def _run_process(schema, pairs, workers):
    engine = ContainmentEngine(max_workers=workers)
    try:
        engine.process_pool().start()  # spawn cost excluded from the timing
        started = time.perf_counter()
        results = engine.check_many(pairs, schema=schema, parallel="process")
        return results, time.perf_counter() - started
    finally:
        engine.shutdown()


def test_process_backend_is_deterministic_on_scaling_workload():
    """Fingerprint-identical verdicts, independent of machine size."""
    schema, pairs = synthetic_batch(5)
    serial_results, _ = _run_serial(schema, pairs)
    process_results, _ = _run_process(schema, pairs, workers=2)
    thread_results = ContainmentEngine().check_many(pairs, schema=schema, parallel="thread")
    assert _fingerprints(process_results) == _fingerprints(serial_results)
    assert _fingerprints(thread_results) == _fingerprints(serial_results)


def test_process_backend_speedup_gate():
    """≥ 2× over serial on a ≥ 4-core machine (the acceptance criterion)."""
    cores = os.cpu_count() or 1
    schema, pairs = synthetic_batch(GATE_CHAIN_LENGTH)

    serial_results, serial_seconds = _run_serial(schema, pairs)
    workers = min(cores, 8)
    process_results, process_seconds = _run_process(schema, pairs, workers)

    assert _fingerprints(process_results) == _fingerprints(serial_results)

    speedup = serial_seconds / process_seconds if process_seconds else float("inf")
    print(
        f"\nparallel scaling: {len(pairs)} tasks, {workers} workers on {cores} cores — "
        f"serial {serial_seconds * 1000:.0f} ms, process {process_seconds * 1000:.0f} ms, "
        f"speedup {speedup:.2f}x"
    )
    if cores < GATE_MIN_CORES:
        # the ::notice makes the skipped gate visible on the CI run page —
        # a silently missing gate reads as a passing one otherwise
        print(
            f"::notice title=Parallel scaling gate skipped::speedup gate needs "
            f">= {GATE_MIN_CORES} cores, this runner has {cores}; determinism "
            "was still asserted"
        )
        pytest.skip(
            f"speedup gate needs >= {GATE_MIN_CORES} cores (found {cores}); "
            "determinism was still asserted above"
        )
    assert speedup >= GATE_SPEEDUP, (
        f"process backend speedup {speedup:.2f}x < required {GATE_SPEEDUP}x "
        f"({workers} workers, {cores} cores)"
    )


def test_worker_scaling_profile():
    """Informational: batch time at 1, 2, … workers (no gate)."""
    cores = os.cpu_count() or 1
    if cores < 2:
        pytest.skip(f"scaling profile needs >= 2 cores (found {cores})")
    schema, pairs = synthetic_batch(8)
    _, serial_seconds = _run_serial(schema, pairs)
    print(f"\nworker scaling on {len(pairs)} tasks: serial {serial_seconds * 1000:.0f} ms")
    workers = 1
    while workers <= min(cores, 8):
        _, seconds = _run_process(schema, pairs, workers)
        print(f"  {workers} workers: {seconds * 1000:.0f} ms ({serial_seconds / seconds:.2f}x)")
        workers *= 2
