"""E1 — Figure 1 / Examples 1.1, 4.1, 4.3–4.5: the medical knowledge graph.

Regenerates the paper's running example as an executable experiment: the
containment tests of Examples 4.4/4.5, type checking of the migration T0
against the evolved schema S1 of Figure 1 and elicitation of S1 from T0.
The qualitative outcomes asserted here are the "expected results" recorded in
EXPERIMENTS.md; the benchmark numbers chart their cost.
"""


from repro.analysis import check_equivalence, elicit_schema, type_check
from repro.containment import ContainmentSolver
from repro.rpq import parse_c2rpq
from repro.schema import schema_equivalent
from repro.workloads import medical


def test_example_45_containment(benchmark, medical_schemas):
    source, _ = medical_schemas
    solver = ContainmentSolver(source)
    left = parse_c2rpq("p(x) := Vaccine(x)")
    right = parse_c2rpq("q(x) := (designTarget . crossReacting*)(x, y)")
    result = benchmark(lambda: solver.contains(left, right))
    assert result.contained  # Example 4.5: every vaccine targets some antigen


def test_example_44_containment(benchmark, medical_schemas):
    source, _ = medical_schemas
    solver = ContainmentSolver(source)
    left = parse_c2rpq("p(x) := (designTarget . crossReacting*)(x, y)")
    right = parse_c2rpq("q(x) := Vaccine(x)")
    result = benchmark(lambda: solver.contains(left, right))
    assert result.contained  # Example 4.4: only vaccines start such paths


def test_type_check_t0_against_s1(benchmark, medical_schemas, medical_migration):
    source, target = medical_schemas
    result = benchmark.pedantic(
        lambda: type_check(medical_migration, source, target), rounds=3, iterations=1
    )
    assert result.well_typed


def test_type_check_broken_variant(benchmark, medical_schemas):
    source, target = medical_schemas
    broken = medical.broken_migration()
    result = benchmark.pedantic(
        lambda: type_check(broken, source, target), rounds=3, iterations=1
    )
    assert not result.well_typed


def test_elicitation_recovers_s1(benchmark, medical_schemas, medical_migration):
    source, target = medical_schemas
    result = benchmark.pedantic(
        lambda: elicit_schema(medical_migration, source), rounds=3, iterations=1
    )
    assert schema_equivalent(result.schema, target)


def test_equivalence_of_t0_and_redundant_variant(benchmark, medical_schemas, medical_migration):
    source, _ = medical_schemas
    redundant = medical.redundant_migration()
    result = benchmark.pedantic(
        lambda: check_equivalence(medical_migration, redundant, source), rounds=3, iterations=1
    )
    assert result.equivalent
