"""Shared fixtures for the benchmark harness (see the benchmark section of README.md)."""

import pytest

from repro.workloads import medical


@pytest.fixture(scope="session")
def medical_schemas():
    return medical.source_schema(), medical.target_schema()


@pytest.fixture(scope="session")
def medical_migration():
    return medical.migration()
