"""E2 — Figure 2/3, Examples 5.2/5.3/5.5: finite vs. unrestricted containment.

The containment P = ∃x.r(x,x) ⊆_S Q = ∃x,y.(r·s⁺·r)(x,y) holds over finite
graphs but not over unrestricted ones; cycle reversing makes the decision
procedure report it correctly, and the ablation (completion disabled) shows
the answer flips — exactly the paper's point.
"""

import pytest

from repro.containment import ContainmentConfig, ContainmentSolver, complete, schema_has_finmod_cycle
from repro.dl import schema_to_extended_tbox
from repro.rpq import parse_c2rpq
from repro.schema import Schema


@pytest.fixture(scope="module")
def schema52():
    schema = Schema(["A"], ["s", "r"], name="S52")
    schema.set_edge("A", "s", "A", "+", "?")
    schema.set_edge("A", "r", "A", "*", "*")
    return schema


LEFT = parse_c2rpq("p() := (r)(x, x)")
RIGHT = parse_c2rpq("q() := (r . s+ . r)(x, y)")


def test_finite_containment_with_cycle_reversal(benchmark, schema52):
    solver = ContainmentSolver(schema52)
    result = benchmark.pedantic(lambda: solver.contains(LEFT, RIGHT), rounds=3, iterations=1)
    assert result.contained  # Example 5.2: holds over finite graphs


def test_unrestricted_containment_ablation(benchmark, schema52):
    solver = ContainmentSolver(schema52, ContainmentConfig(apply_completion=False))
    result = benchmark.pedantic(lambda: solver.contains(LEFT, RIGHT), rounds=3, iterations=1)
    assert not result.contained  # Example 5.3: fails over unrestricted graphs


def test_completion_cost(benchmark, schema52):
    assert schema_has_finmod_cycle(schema52)
    tbox = schema_to_extended_tbox(schema52)
    result = benchmark.pedantic(lambda: complete(tbox, schema52), rounds=3, iterations=1)
    assert result.reversed_cycles >= 1
