"""E4 — Figure 5 / Example C.1: the rolling-up construction.

Measures building T_¬Q (automata construction plus TBox assembly) for the
example query of Appendix C and for queries of growing size, verifying the
polynomial-size guarantee of Lemma C.2.
"""

import pytest

from repro.containment import roll_up
from repro.rpq import build_nfa, parse_regex, parse_uc2rpq
from repro.workloads.synthetic import path_query, star_query
from repro.rpq import UC2RPQ


EXAMPLE_C1 = parse_uc2rpq(["q() := (a . b* . c)(x2, x1), (A)(x3, x1), (a-)(x1, x0)"])


def test_roll_up_example_c1(benchmark):
    rolled = benchmark(lambda: roll_up(EXAMPLE_C1))
    assert rolled.tbox.is_horn()
    assert rolled.tbox.size() >= 9  # the example's TBox has 9 statements


def test_nfa_construction_example_32(benchmark):
    regex = parse_regex("Vaccine . designTarget . crossReacting* . Antigen")
    nfa = benchmark(lambda: build_nfa(regex))
    assert nfa.state_count() <= 2 * regex.size()


@pytest.mark.parametrize("length", [2, 4, 8, 16])
def test_roll_up_scaling_with_path_length(benchmark, length):
    union = UC2RPQ.from_query(path_query(length, edge_prefix="e"))
    rolled = benchmark(lambda: roll_up(union))
    # linear-size automata ⇒ the TBox grows linearly in the query size
    assert rolled.tbox.size() <= 12 * union.size() + 20


@pytest.mark.parametrize("branches", [2, 4, 8])
def test_roll_up_scaling_with_star_branches(benchmark, branches):
    union = UC2RPQ.from_query(star_query(branches))
    rolled = benchmark(lambda: roll_up(union))
    assert rolled.tbox.size() <= 12 * union.size() + 20
