"""E6 — Figures 7/8, Theorem F.1: the EXPTIME-hardness reduction.

Measures (a) direct ATM acceptance checking, (b) the construction of the
reduction instance (schema + positive + negative query) as the input word and
space bound grow, and records the polynomial growth of the instance sizes —
the property the lower bound needs.
"""

import pytest

from repro.hardness import alternating_and_or_machine, build_instance, even_ones_machine


@pytest.mark.parametrize("word", ["11", "1100", "110010"])
def test_atm_acceptance(benchmark, word):
    machine = even_ones_machine()
    accepted = benchmark(lambda: machine.accepts(word))
    assert accepted == (word.count("1") % 2 == 0)


def test_alternating_machine_acceptance(benchmark):
    machine = alternating_and_or_machine()
    accepted = benchmark(lambda: machine.accepts("110"))
    assert accepted


@pytest.mark.parametrize("space", [2, 3, 4])
def test_reduction_construction_scaling(benchmark, space):
    machine = alternating_and_or_machine()
    instance = benchmark.pedantic(
        lambda: build_instance(machine, "11", space=space), rounds=3, iterations=1
    )
    sizes = instance.sizes()
    assert sizes["schema_node_labels"] == 4
    assert instance.positive.is_acyclic() and instance.negative.is_acyclic()


def test_reduction_sizes_grow_polynomially():
    machine = alternating_and_or_machine()
    sizes = [build_instance(machine, "11", space=space).sizes()["positive_size"] for space in (2, 3, 4)]
    # cubic-ish growth at worst for this construction: ratios stay bounded
    assert sizes[1] / sizes[0] < 8
    assert sizes[2] / sizes[1] < 8
