"""E10 — cost breakdown of the analysis pipeline (Lemmas B.2, B.5–B.8).

For each packaged workload, counts how many containment tests the three
static-analysis problems issue (the polynomial Turing reduction of Theorem
4.2) and measures the end-to-end cost of each stage — including how much of
it the cached containment engine amortises on cold vs warm runs.
"""

import time

import pytest

from repro.analysis import check_equivalence, check_label_coverage, elicit_schema, type_check
from repro.engine import ContainmentEngine
from repro.workloads import fhir, medical, social


WORKLOADS = {
    "medical": (medical.source_schema, medical.target_schema, medical.migration),
    "fhir": (fhir.schema_v3, fhir.schema_v4, fhir.migration_v3_to_v4),
    "social": (social.schema_v1, social.schema_v2, social.reification),
}


@pytest.mark.parametrize("workload", sorted(WORKLOADS))
def test_type_check_breakdown(benchmark, workload):
    source_fn, target_fn, transformation_fn = WORKLOADS[workload]
    source, target, transformation = source_fn(), target_fn(), transformation_fn()
    result = benchmark.pedantic(
        lambda: type_check(transformation, source, target), rounds=2, iterations=1
    )
    assert result.well_typed
    # the Turing reduction issues polynomially many containment calls
    upper_bound = 4 * (len(transformation.rules()) + len(source.node_labels) ** 2 * 2 * len(target.edge_labels) ** 1 + 50)
    assert result.containment_calls <= upper_bound


@pytest.mark.parametrize("workload", sorted(WORKLOADS))
def test_coverage_breakdown(benchmark, workload):
    source_fn, _, transformation_fn = WORKLOADS[workload]
    source, transformation = source_fn(), transformation_fn()
    result = benchmark.pedantic(
        lambda: check_label_coverage(transformation, source), rounds=2, iterations=1
    )
    assert result.covered


def test_elicitation_breakdown_medical(benchmark):
    result = benchmark.pedantic(
        lambda: elicit_schema(medical.migration(), medical.source_schema()),
        rounds=2,
        iterations=1,
    )
    assert result.containment_calls > 0


def test_equivalence_breakdown_medical(benchmark):
    result = benchmark.pedantic(
        lambda: check_equivalence(
            medical.migration(), medical.redundant_migration(), medical.source_schema()
        ),
        rounds=2,
        iterations=1,
    )
    assert result.equivalent


# --------------------------------------------------------------------------- #
# E10b — cold vs warm analysis runs through the cached containment engine
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("workload", sorted(WORKLOADS))
def test_type_check_cold_vs_warm(workload):
    """Re-running type checking on a warm engine reuses the per-schema caches;
    the verdict and the number of issued containment calls are unchanged."""
    source_fn, target_fn, transformation_fn = WORKLOADS[workload]
    source, target, transformation = source_fn(), target_fn(), transformation_fn()

    engine = ContainmentEngine()
    started = time.perf_counter()
    cold = type_check(transformation, source, target, engine=engine)
    cold_seconds = time.perf_counter() - started
    started = time.perf_counter()
    warm = type_check(transformation, source, target, engine=engine)
    warm_seconds = time.perf_counter() - started

    assert cold.well_typed and warm.well_typed
    assert cold.containment_calls == warm.containment_calls
    stats = engine.stats
    assert stats.results.hits >= warm.containment_calls
    print(
        f"\n{workload}: type check cold {cold_seconds * 1000:.1f} ms "
        f"({cold.containment_calls} containment calls), warm {warm_seconds * 1000:.1f} ms; "
        f"result cache {stats.results.hits} hits / {stats.results.misses} misses"
    )


@pytest.mark.parametrize("mode", ["cold", "warm"])
def test_elicitation_engine_timing(benchmark, mode):
    """Schema elicitation is the densest containment batch; the warm engine
    serves the entire statement sweep out of the result cache."""
    transformation, source = medical.migration(), medical.source_schema()
    if mode == "cold":
        run = lambda: elicit_schema(transformation, source, engine=ContainmentEngine())
    else:
        engine = ContainmentEngine()
        elicit_schema(transformation, source, engine=engine)
        run = lambda: elicit_schema(transformation, source, engine=engine)
    result = benchmark.pedantic(run, rounds=2, iterations=1)
    assert result.containment_calls > 0
