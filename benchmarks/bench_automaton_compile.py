"""Compiled automaton core benchmark: cold vs memoized compilation.

Three claims are checked (harness in :mod:`repro.core.benchmarks`, the same
code behind ``python -m repro bench --suite automata``):

1. **compile memoization** — replaying the corpus against the warm
   :func:`repro.core.compile_regex` memo is **≥ 2× faster** than cold
   compilation (NFA + minimal DFA + cycle flag + pumped enumeration);
2. **enumeration memoization** — serving the pumped word list from the
   compiled automaton's tuple is **≥ 2× faster** than re-running
   ``NFA.enumerate_words`` per request, and the minimal DFAs are no larger
   than the NFAs they canonicalise;
3. **prefix sharing** — on a sparse-witness instance (every pattern refuted,
   the refutation visible on a two-atom prefix) the
   :class:`repro.core.PrefixPruner` enumeration is **≥ 2× faster** than
   chasing every combination independently, with verdict, regime and
   pattern counter asserted bit-identical inside the harness.

The 2× figures are the acceptance gates; measured speedups are typically two
to three orders of magnitude (see the printed report lines).
"""

from repro.core import benchmarks

GATE_SPEEDUP = 2.0


def test_compile_memoization_speedup():
    report = benchmarks.compile_benchmark()
    print(
        f"\ncompile: cold {report['cold_seconds'] * 1000:.2f} ms, "
        f"memoized {report['memoized_seconds'] * 1000:.2f} ms "
        f"({report['speedup']:.1f}x over {report['regexes']} regexes)"
    )
    assert report["speedup"] >= GATE_SPEEDUP, (
        f"memoized compilation speedup {report['speedup']:.2f}x < required {GATE_SPEEDUP}x"
    )


def test_enumeration_memoization_speedup():
    report = benchmarks.enumeration_benchmark()
    print(
        f"\nenumeration: uncached {report['uncached_seconds'] * 1000:.1f} ms, "
        f"memoized {report['memoized_seconds'] * 1000:.1f} ms ({report['speedup']:.1f}x); "
        f"single pass {report['nfa_microseconds_per_word']:.1f} us/word (NFA) vs "
        f"{report['dfa_microseconds_per_word']:.1f} us/word (minimal DFA)"
    )
    assert report["speedup"] >= GATE_SPEEDUP, (
        f"memoized enumeration speedup {report['speedup']:.2f}x < required {GATE_SPEEDUP}x"
    )
    # corpus-specific expectation, not an invariant: subset construction can
    # blow up exponentially in general, but on this fixed corpus the minimal
    # DFAs come out smaller than the NFAs they canonicalise
    assert report["minimal_dfa_states"] <= report["nfa_states"]
    # deterministic enumeration is cheaper per emitted word (one run per
    # word); 2x slack so scheduler noise on a shared runner cannot flip a
    # few-millisecond measurement (typical margin is ~4x)
    assert report["dfa_microseconds_per_word"] <= 2.0 * report["nfa_microseconds_per_word"]


def test_prefix_sharing_speedup():
    # the harness itself asserts verdict/regime/pattern-counter identity
    report = benchmarks.prefix_sharing_benchmark()
    print(
        f"\nprefix sharing: {report['patterns_checked']} patterns — independent "
        f"{report['independent_seconds'] * 1000:.1f} ms, shared "
        f"{report['shared_seconds'] * 1000:.1f} ms ({report['speedup']:.1f}x)"
    )
    assert not report["satisfiable"] and report["regime"] in ("exact", "pumped")
    assert report["speedup"] >= GATE_SPEEDUP, (
        f"prefix-sharing speedup {report['speedup']:.2f}x < required {GATE_SPEEDUP}x"
    )
