"""Compiled automaton core benchmark: cold vs memoized compilation.

Four claims are checked (harness in :mod:`repro.core.benchmarks`, the same
code behind ``python -m repro bench --suite automata``):

1. **compile memoization** — replaying the corpus against the warm
   :func:`repro.core.compile_regex` memo is **≥ 2× faster** than cold
   compilation (NFA + minimal DFA + cycle flag + pumped enumeration);
2. **enumeration memoization** — serving the pumped word list from the
   compiled automaton's tuple is **≥ 2× faster** than re-running
   ``NFA.enumerate_words`` per request, and the minimal DFAs are no larger
   than the NFAs they canonicalise;
3. **dense kernels** — the uncached per-word enumeration cost drops against
   the historical dict-walk implementations: **≥ 5×** on the NFA's pumped
   search (the dominant Theorem 6.1 cost) and **≥ 2×** on minimal-DFA
   enumeration, word lists checked identical inside the harness;
4. **prefix sharing** — on a sparse-witness instance (every pattern refuted,
   the refutation visible on a two-atom prefix) the
   :class:`repro.core.PrefixPruner` enumeration is **≥ 2× faster** than
   chasing every combination independently, with verdict, regime and
   pattern counter asserted bit-identical inside the harness.

The gate figures are acceptance thresholds below the typical measurement
(see the printed report lines).  The DFA enumeration gate is 2× rather than
5× deliberately: both implementations pay the same per-word tuple
materialisation for every emitted word, which caps the reachable ratio at
roughly 3× on this corpus (measured ~2.9×) — the 5× claim belongs to the
NFA row, where the dict walk's per-expansion dict copies dominate.
"""

from repro.core import benchmarks

GATE_SPEEDUP = 2.0
GATE_NFA_KERNEL_SPEEDUP = 5.0


def test_compile_memoization_speedup():
    report = benchmarks.compile_benchmark()
    print(
        f"\ncompile: cold {report['cold_seconds'] * 1000:.2f} ms, "
        f"memoized {report['memoized_seconds'] * 1000:.2f} ms "
        f"({report['speedup']:.1f}x over {report['regexes']} regexes)"
    )
    assert report["speedup"] >= GATE_SPEEDUP, (
        f"memoized compilation speedup {report['speedup']:.2f}x < required {GATE_SPEEDUP}x"
    )


def test_enumeration_memoization_speedup():
    report = benchmarks.enumeration_benchmark()
    print(
        f"\nenumeration: uncached {report['uncached_seconds'] * 1000:.1f} ms, "
        f"memoized {report['memoized_seconds'] * 1000:.1f} ms ({report['speedup']:.1f}x); "
        f"single pass {report['nfa_microseconds_per_word']:.1f} us/word (NFA) vs "
        f"{report['dfa_microseconds_per_word']:.1f} us/word (minimal DFA)"
    )
    assert report["speedup"] >= GATE_SPEEDUP, (
        f"memoized enumeration speedup {report['speedup']:.2f}x < required {GATE_SPEEDUP}x"
    )
    # corpus-specific expectation, not an invariant: subset construction can
    # blow up exponentially in general, but on this fixed corpus the minimal
    # DFAs come out smaller than the NFAs they canonicalise
    assert report["minimal_dfa_states"] <= report["nfa_states"]
    # deterministic enumeration is cheaper per emitted word (one run per
    # word); 2x slack so scheduler noise on a shared runner cannot flip a
    # few-millisecond measurement (typical margin is ~4x)
    assert report["dfa_microseconds_per_word"] <= 2.0 * report["nfa_microseconds_per_word"]


def test_kernel_speedups():
    # the harness itself asserts word-for-word enumeration identity and
    # batch-acceptance parity before any clock starts
    report = benchmarks.kernel_benchmark()
    nfa = report["nfa_enumeration"]
    dfa = report["dfa_enumeration"]
    batch = report["batch_acceptance"]
    print(
        f"\nkernels ({'numpy' if report['numpy'] else 'stdlib'}): "
        f"nfa {nfa['dictwalk_microseconds_per_word']:.2f} -> "
        f"{nfa['kernel_microseconds_per_word']:.2f} us/word ({nfa['speedup']:.1f}x), "
        f"dfa {dfa['dictwalk_microseconds_per_word']:.2f} -> "
        f"{dfa['kernel_microseconds_per_word']:.2f} us/word ({dfa['speedup']:.1f}x), "
        f"batch acceptance {batch['speedup']:.1f}x over {batch['words']} words"
    )
    assert nfa["speedup"] >= GATE_NFA_KERNEL_SPEEDUP, (
        f"NFA enumeration kernel speedup {nfa['speedup']:.2f}x "
        f"< required {GATE_NFA_KERNEL_SPEEDUP}x"
    )
    assert dfa["speedup"] >= GATE_SPEEDUP, (
        f"DFA enumeration kernel speedup {dfa['speedup']:.2f}x < required {GATE_SPEEDUP}x"
    )
    # batch acceptance is reported, parity-checked, but not speed-gated: the
    # stdlib per-word walk early-exits on the dead sink, so the dense win is
    # modest (~2x) and can dip under scheduler noise
    assert batch["words"] > 0


def test_prefix_sharing_speedup():
    # the harness itself asserts verdict/regime/pattern-counter identity
    report = benchmarks.prefix_sharing_benchmark()
    print(
        f"\nprefix sharing: {report['patterns_checked']} patterns — independent "
        f"{report['independent_seconds'] * 1000:.1f} ms, shared "
        f"{report['shared_seconds'] * 1000:.1f} ms ({report['speedup']:.1f}x)"
    )
    assert not report["satisfiable"] and report["regime"] in ("exact", "pumped")
    assert report["speedup"] >= GATE_SPEEDUP, (
        f"prefix-sharing speedup {report['speedup']:.2f}x < required {GATE_SPEEDUP}x"
    )
