"""Persistent-store benchmark: warm-start from disk versus a cold engine.

Two claims are checked on the mixed workload
(:func:`repro.workloads.batches.mixed_batch` — medical + FHIR + social +
synthetic, four schemas, every request distinct):

1. **determinism** — verdicts are fingerprint-identical with the store off,
   cold, and warm, and across the serial/thread/process backends with the
   store behind the engine (always asserted, any machine);
2. **speedup** — a second run of the batch against the now-populated store
   file, from a fresh engine with the process-wide compile memo cleared
   (everything a brand-new process would not have), is **≥ 2× faster** than
   the cold run that had to solve everything (the acceptance gate; measured
   ~20–40× here, disk replay versus the chase).

Unlike the parallel-scaling gate this one needs no cores: the contrast is
compute versus disk, so it holds on a one-core CI runner.
"""

import time

import pytest

from repro.core import clear_compile_memo
from repro.engine import ContainmentEngine, result_fingerprint
from repro.workloads.batches import mixed_batch

GATE_SPEEDUP = 2.0
MIX_LENGTH = 6


@pytest.fixture()
def store_path(tmp_path):
    return tmp_path / "store.db"


def _run(persist):
    """One batch on a fresh engine over freshly built request objects.

    Rebuilding the batch drops every warm in-process artefact a new process
    would lack — cached canonical tokens on the query objects included — so
    the warm measurement credits the store, not leftover heat.
    """
    requests = mixed_batch(length=MIX_LENGTH)
    clear_compile_memo()
    with ContainmentEngine(persist=persist) as engine:
        started = time.perf_counter()
        results = engine.check_many(requests)
        elapsed = time.perf_counter() - started
        return [result_fingerprint(result) for result in results], elapsed, engine.stats


def test_warm_store_speedup_gate(store_path):
    """≥ 2× for the persistent-warm rerun (the acceptance criterion)."""
    baseline_fps, _, _ = _run(None)
    cold_fps, cold_seconds, cold_stats = _run(store_path)
    warm_fps, warm_seconds, warm_stats = _run(store_path)

    assert cold_fps == baseline_fps, "persist-on cold run changed verdicts"
    assert warm_fps == baseline_fps, "disk-replayed verdicts differ"
    assert cold_stats.store.writes >= len(baseline_fps)
    assert warm_stats.store.hits == len(baseline_fps)
    assert warm_stats.store.errors == 0

    speedup = cold_seconds / warm_seconds if warm_seconds else float("inf")
    print(
        f"\npersistent store: {len(baseline_fps)} mixed tasks — "
        f"cold {cold_seconds * 1000:.0f} ms, warm {warm_seconds * 1000:.0f} ms, "
        f"speedup {speedup:.1f}x"
    )
    assert speedup >= GATE_SPEEDUP, (
        f"warm-store rerun speedup {speedup:.1f}x < required {GATE_SPEEDUP}x"
    )


def test_fingerprints_identical_across_backends_with_store(store_path):
    """persist-off / persist-on × serial / thread / process all agree."""
    requests = mixed_batch(length=3)
    baseline = ContainmentEngine().check_many(requests)
    fingerprints = [result_fingerprint(result) for result in baseline]

    for backend in ("serial", "thread", "process"):
        engine = ContainmentEngine(persist=store_path, max_workers=2)
        try:
            results = engine.check_many(requests, parallel=backend)
            assert [result_fingerprint(result) for result in results] == fingerprints, (
                f"{backend} backend with the store diverged from the bare serial run"
            )
        finally:
            engine.close()

    # and once more entirely from disk, on a fresh engine
    engine = ContainmentEngine(persist=store_path)
    try:
        replayed = engine.check_many(requests)
        assert [result_fingerprint(result) for result in replayed] == fingerprints
        assert engine.stats.store.hits == len(requests)
    finally:
        engine.close()
