"""Service-throughput benchmark: coalesced versus per-request serving.

Closed-loop client threads (each with exactly one outstanding request —
the textbook load-generator shape) replay the deterministic mixed-schema
request stream of :func:`repro.workloads.streams.request_stream` through
two freshly started services:

* **per-request** — coalescing disabled (zero window, batch size 1),
  serial backend: every request is one engine call, the shape a single-shot
  caller pays today;
* **coalesced** — a real window and the process backend: concurrent client
  requests micro-batch into ``check_many`` waves, deduplicate by canonical
  fingerprint, and spread across the worker pool.

Two claims:

1. **determinism** — every response of both modes is fingerprint-identical
   to a serial ``check_many`` baseline over the same stream (always
   asserted, any machine; duplicates included — a deduplicated verdict must
   be bit-equal to deciding the duplicate independently);
2. **speedup** — on ≥ 4 cores the coalesced service clears **≥ 2×** the
   per-request throughput (the acceptance gate; skipped with a diagnostic
   on smaller machines, where the pool has no cores to spread over).

Worker spawn is excluded from the timing (the service starts its pool
eagerly, before the clock), matching every other backend benchmark; the
coalescing *window* is deliberately **not** excluded — waiting is part of
the serving design being measured.
"""

import os
import time

import pytest

from repro.core import clear_compile_memo
from repro.engine import ContainmentEngine, result_fingerprint
from repro.service import ContainmentService
from repro.workloads.replay import latency_percentiles
from repro.workloads.streams import closed_loop, request_stream

GATE_MIN_CORES = 4
GATE_SPEEDUP = 2.0
REQUESTS = 120
CLIENTS = 16
STREAM_LENGTH = 10  # synthetic chain length inside the mixed corpus
WINDOW_SECONDS = 0.02
MAX_BATCH = 64


def _stream():
    return request_stream(REQUESTS, length=STREAM_LENGTH)


def _serial_baseline():
    stream = _stream()
    with ContainmentEngine() as engine:
        results = engine.check_many([(left, right, schema) for left, right, schema in stream])
    return [result_fingerprint(result) for result in results]


def _run_service(window, max_batch, parallel, workers):
    """One closed-loop run; returns (fingerprints, elapsed, stats, percentiles).

    Per-request latency is timed around each coalescer call, so the
    p50/p95/p99 report reflects what one client waits — window included,
    by design — not just the aggregate wall clock.
    """
    stream = _stream()
    clear_compile_memo()
    latencies = [0.0] * len(stream)
    with ContainmentService(
        parallel=parallel, workers=workers, coalesce_window=window, max_batch=max_batch
    ) as service:

        def call(indexed):
            index, (left, right, schema) = indexed
            begun = time.perf_counter()
            result = service.coalescer.check(left, right, schema)
            latencies[index] = time.perf_counter() - begun
            return result

        started = time.perf_counter()
        results = closed_loop(list(enumerate(stream)), call, clients=CLIENTS)
        elapsed = time.perf_counter() - started
        fingerprints = [result_fingerprint(result) for result in results]
        return fingerprints, elapsed, service.coalescer.stats.snapshot(), latency_percentiles(latencies)


def test_coalesced_service_is_deterministic_and_actually_batches():
    """Fingerprint identity + the coalescer visibly merging concurrent load
    (independent of machine size)."""
    baseline = _serial_baseline()
    fingerprints, _, stats, _ = _run_service(WINDOW_SECONDS, MAX_BATCH, "serial", None)
    assert fingerprints == baseline, "coalesced service changed verdicts"
    assert stats.submitted == REQUESTS
    # closed-loop concurrency means real batches, not one request at a time
    assert stats.batches < REQUESTS
    assert stats.largest_batch > 1
    # the stream's hot repeats coalesce into shared decisions
    assert stats.deduplicated > 0


def test_coalesced_throughput_gate():
    """≥ 2× the per-request service on a ≥ 4-core machine (the acceptance
    criterion)."""
    cores = os.cpu_count() or 1
    baseline = _serial_baseline()
    workers = min(cores, 8)

    per_request_fps, per_request_seconds, per_request_stats, per_request_latency = _run_service(
        0.0, 1, "serial", None
    )
    coalesced_fps, coalesced_seconds, coalesced_stats, coalesced_latency = _run_service(
        WINDOW_SECONDS, MAX_BATCH, "process", workers
    )

    assert per_request_fps == baseline, "per-request service changed verdicts"
    assert coalesced_fps == baseline, "coalesced+process service changed verdicts"
    assert per_request_stats.largest_batch == 1  # coalescing really was off

    speedup = per_request_seconds / coalesced_seconds if coalesced_seconds else float("inf")
    print(
        f"\nservice throughput: {REQUESTS} requests from {CLIENTS} closed-loop clients, "
        f"{workers} workers on {cores} cores — "
        f"per-request {per_request_seconds * 1000:.0f} ms "
        f"({REQUESTS / per_request_seconds:.0f} req/s), "
        f"coalesced {coalesced_seconds * 1000:.0f} ms "
        f"({REQUESTS / coalesced_seconds:.0f} req/s), speedup {speedup:.2f}x "
        f"({coalesced_stats.batches} batches, {coalesced_stats.deduplicated} deduplicated)\n"
        f"  per-request latency p50/p95/p99: "
        f"{per_request_latency['p50_seconds'] * 1000:.1f} / "
        f"{per_request_latency['p95_seconds'] * 1000:.1f} / "
        f"{per_request_latency['p99_seconds'] * 1000:.1f} ms; "
        f"coalesced: {coalesced_latency['p50_seconds'] * 1000:.1f} / "
        f"{coalesced_latency['p95_seconds'] * 1000:.1f} / "
        f"{coalesced_latency['p99_seconds'] * 1000:.1f} ms"
    )
    if cores < GATE_MIN_CORES:
        # the ::notice makes the skipped gate visible on the CI run page —
        # a silently missing gate reads as a passing one otherwise
        print(
            f"::notice title=Service throughput gate skipped::throughput gate "
            f"needs >= {GATE_MIN_CORES} cores, this runner has {cores}; "
            "determinism was still asserted"
        )
        pytest.skip(
            f"throughput gate needs >= {GATE_MIN_CORES} cores (found {cores}); "
            "determinism was still asserted above"
        )
    assert speedup >= GATE_SPEEDUP, (
        f"coalesced throughput speedup {speedup:.2f}x < required {GATE_SPEEDUP}x "
        f"({workers} workers, {cores} cores)"
    )
