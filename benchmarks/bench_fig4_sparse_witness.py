"""E3 — Figure 4 / Example 6.2: sparse witnesses and skeletons.

Builds conforming witnesses for the (cyclic) query of Example 6.2, measures
witness-graph construction plus the sparsity/skeleton computations of
Section 6, and checks the (2c,3c)-skeleton bound of Lemma E.1.
"""

import pytest

from repro.graph import Graph, is_c_sparse, skeleton, sparsity_constant
from repro.rpq import eval_c2rpq, parse_c2rpq
from repro.schema import Schema


@pytest.fixture(scope="module")
def figure4_schema():
    # two node types (the blue square 'Sq' and red circle 'Ci' of Figure 4)
    schema = Schema(["Sq", "Ci"], ["a", "b", "c", "d"], name="Fig4")
    schema.set_edge("Sq", "a", "Ci", "?", "?")
    schema.set_edge("Ci", "a", "Sq", "?", "?")
    schema.set_edge("Sq", "b", "Sq", "*", "*")
    schema.set_edge("Sq", "c", "Sq", "*", "*")
    schema.set_edge("Sq", "d", "Sq", "*", "*")
    return schema


QUERY = parse_c2rpq(
    "p(x, y) := (a . b . c+ . d . a)(x, y), (a*)(x, y), (a* . b . d . a*)(x, y)"
)


def test_query_of_example_62_is_cyclic():
    assert not QUERY.is_acyclic()


def test_witness_sparsity_and_skeleton(benchmark):
    # the query seen as a graph is c-sparse with c = atoms - variables
    c = len(QUERY.atoms) - len(QUERY.variables())

    def build_and_analyse():
        graph = Graph()
        # three witnessing paths joined at their endpoints x and y
        graph.add_node("x", ["Sq"])
        graph.add_node("y", ["Sq"])
        previous = "x"
        for index, label in enumerate(["a", "b", "c", "d"]):
            node = f"p1_{index}"
            graph.add_node(node, ["Ci" if index % 2 == 0 else "Sq"])
            graph.add_edge(previous, label, node)
            previous = node
        graph.add_edge(previous, "a", "y")
        graph.add_edge("x", "a", "y")
        previous = "x"
        for index, label in enumerate(["b", "d"]):
            node = f"p3_{index}"
            graph.add_node(node, ["Sq"])
            graph.add_edge(previous, label, node)
            previous = node
        graph.add_edge(previous, "a", "y")
        return graph, skeleton(graph), sparsity_constant(graph)

    graph, core, constant = benchmark(build_and_analyse)
    assert is_c_sparse(graph, max(constant, c, 1))
    assert core.is_within(2 * max(constant, 1), 3 * max(constant, 1))


def test_witness_evaluation(benchmark, figure4_schema):
    witness = Graph()
    witness.add_node("x", ["Sq"])
    witness.add_node("u", ["Ci"])
    witness.add_edge("x", "a", "u")
    witness.add_edge("u", "a", "x")
    answers = benchmark(lambda: eval_c2rpq(parse_c2rpq("p(x, y) := (a*)(x, y)"), witness))
    assert ("x", "u") in answers
