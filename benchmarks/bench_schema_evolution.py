"""Schema-evolution benchmark: warm ``evolve()`` versus a cold re-run.

The claim behind the incremental containment subsystem
(:mod:`repro.engine.delta`): after a **single-axiom edit** to a zoo schema,
an engine that migrated its unaffected artefacts through
:meth:`~repro.engine.ContainmentEngine.evolve` re-decides the workload
**≥ 2× faster** than a cold engine that recompiles everything — without
changing a single verdict bit.

The workload is :func:`repro.workloads.zoo.heavy_evolution_corpus`: wide
balanced-union left regexes whose NFA construction dominates the chase once
enumeration is capped at :data:`~repro.workloads.zoo.HEAVY_EVOLUTION_WORD_CAP`
words per atom.  That is the honest shape for this gate — compiled automata
are regex-only artefacts and the *only* expensive tier a multiplicity edit
leaves intact (completed TBoxes embed the edited axioms, so they must be
rebuilt on both sides of the comparison).

Fingerprint identity is asserted **before** any timing claim: a fast wrong
answer is not a speedup.  The cold run happens on a fresh engine after
:func:`~repro.core.clear_compile_memo`, so it holds nothing a brand-new
process would lack; measured ~10–20× here.
"""

import time

from repro.chase.solver import SatisfiabilityConfig
from repro.containment.solver import ContainmentConfig
from repro.core import clear_compile_memo
from repro.engine import ContainmentEngine, result_fingerprint
from repro.workloads.zoo import HEAVY_EVOLUTION_WORD_CAP, heavy_evolution_corpus

GATE_SPEEDUP = 2.0
QUERIES = 8

CONFIG = ContainmentConfig(
    satisfiability=SatisfiabilityConfig(max_words_per_atom=HEAVY_EVOLUTION_WORD_CAP)
)


def _run(engine, schema, pairs):
    started = time.perf_counter()
    results = [engine.contains(left, right, schema, CONFIG) for left, right in pairs]
    elapsed = time.perf_counter() - started
    return [result_fingerprint(result) for result in results], elapsed


def test_warm_evolve_speedup_gate():
    """≥ 2× for the post-evolve re-run (the acceptance criterion)."""
    old_schema, new_schema, pairs = heavy_evolution_corpus(queries=QUERIES)

    clear_compile_memo()
    engine = ContainmentEngine()
    try:
        _run(engine, old_schema, pairs)  # warm the old namespace
        report = engine.evolve(old_schema, new_schema)
        warm_fps, warm_seconds = _run(engine, new_schema, pairs)
    finally:
        engine.close()

    clear_compile_memo()
    cold_engine = ContainmentEngine()
    try:
        cold_fps, cold_seconds = _run(cold_engine, new_schema, pairs)
    finally:
        cold_engine.close()

    # identity first: the speedup claim is void if a single bit moved
    assert warm_fps == cold_fps, "post-evolve verdicts diverged from cold start"
    assert not report.trivial
    assert report.migrated["automata"] > 0, "nothing migrated — the warm run is not warm"

    speedup = cold_seconds / warm_seconds if warm_seconds else float("inf")
    print(
        f"\nschema evolution: {len(pairs)} heavy containment tests — "
        f"post-evolve {warm_seconds * 1000:.0f} ms, cold {cold_seconds * 1000:.0f} ms, "
        f"speedup {speedup:.1f}x (migrated automata: {report.migrated['automata']})"
    )
    assert speedup >= GATE_SPEEDUP, (
        f"warm evolve speedup {speedup:.1f}x < required {GATE_SPEEDUP}x"
    )


def test_trivial_evolve_costs_nothing_and_keeps_everything():
    """The degenerate edit (a rename) must not thrash any cache tier."""
    old_schema, _, pairs = heavy_evolution_corpus(queries=2)
    renamed = old_schema.copy(name="renamed")
    with ContainmentEngine() as cold_engine:
        baseline_fps, _ = _run(cold_engine, renamed, pairs)
    with ContainmentEngine() as engine:
        _run(engine, old_schema, pairs)
        report = engine.evolve(old_schema, renamed)
        assert report.trivial
        assert sum(report.invalidated.values()) == 0
        hits_before = engine.stats.results.hits
        renamed_fps, _ = _run(engine, renamed, pairs)
        assert engine.stats.results.hits == hits_before + len(pairs)
    assert renamed_fps == baseline_fps
