"""E7 — Theorem 4.2: scaling of the static-analysis procedures.

Charts how type checking, equivalence and elicitation scale with the size of
the schema and of the transformation, using the synthetic chain family (the
derived-path transformations make the underlying containment tests grow).
"""

import pytest

from repro.analysis import check_equivalence, elicit_schema, type_check
from repro.workloads import synthetic


@pytest.mark.parametrize("length", [1, 2, 4, 6])
def test_type_check_chain_copy(benchmark, length):
    schema = synthetic.chain_schema(length)
    transformation = synthetic.chain_copy_transformation(length)
    result = benchmark.pedantic(
        lambda: type_check(transformation, schema, schema), rounds=2, iterations=1
    )
    assert result.well_typed


@pytest.mark.parametrize("length", [1, 2, 4])
def test_elicit_chain_collapse(benchmark, length):
    schema = synthetic.chain_schema(length)
    transformation = synthetic.chain_collapse_transformation(length)
    result = benchmark.pedantic(
        lambda: elicit_schema(transformation, schema), rounds=2, iterations=1
    )
    # the shortcut edge is guaranteed exactly once per L0 node
    assert str(result.schema.multiplicity("L0", "shortcut", f"L{length}")) == "1"


@pytest.mark.parametrize("length", [1, 2, 4])
def test_equivalence_chain_copy_vs_itself(benchmark, length):
    schema = synthetic.chain_schema(length)
    transformation = synthetic.chain_copy_transformation(length)
    other = synthetic.chain_copy_transformation(length)
    result = benchmark.pedantic(
        lambda: check_equivalence(transformation, other, schema), rounds=2, iterations=1
    )
    assert result.equivalent
