"""E9 — Lemma 5.7 / D.5 ablation: the S-driven simplification.

Measures the effect of the S-driven simplification on the number of at-most
constraints after cycle reversing, over the cycle-schema family, and the cost
of the completion with and without additional candidate budget.
"""

import pytest

from repro.containment import complete, simplify_s_driven
from repro.containment.cycle_reversal import CompletionConfig
from repro.dl import AtMostOneCI, TBox, conj, schema_to_extended_tbox
from repro.graph import forward
from repro.workloads import synthetic


@pytest.mark.parametrize("size", [2, 3])
def test_completion_on_cycle_schemas(benchmark, size):
    schema = synthetic.cycle_schema(size)
    tbox = schema_to_extended_tbox(schema)
    result = benchmark.pedantic(
        lambda: complete(tbox, schema, config=CompletionConfig(max_candidates=16, max_rounds=2)),
        rounds=2,
        iterations=1,
    )
    assert result.reversed_cycles >= 1
    bound = 2 * len(schema.edge_labels) * len(schema.node_labels) ** 2
    single_label = [
        s
        for s in result.tbox.at_most_statements()
        if len(s.body) == 1 and len(s.head) == 1
        and s.body <= schema.node_labels and s.head <= schema.node_labels
    ]
    assert len(single_label) <= bound


def test_simplification_drops_subsumed_constraints(benchmark):
    schema = synthetic.cycle_schema(3)
    statements = [AtMostOneCI(conj("L0"), forward("next"), conj("L1"))]
    statements += [
        AtMostOneCI(conj("L0", f"X{i}"), forward("next"), conj("L1", f"Y{i}")) for i in range(20)
    ]

    def run():
        tbox = TBox(statements)
        simplify_s_driven(tbox, schema)
        return tbox

    tbox = benchmark(run)
    assert tbox.at_most_count() == 1
