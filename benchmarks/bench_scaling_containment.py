"""E8 — Theorems 5.1/6.1: scaling of containment and satisfiability.

Charts the cost of containment modulo schema as the left query grows (longer
derived paths, more star nesting) and the cost of the underlying chase-based
satisfiability check, on the medical schema and the synthetic chain family.
"""

import pytest

from repro.chase import is_satisfiable
from repro.containment import ContainmentSolver
from repro.dl import schema_to_extended_tbox
from repro.rpq import C2RPQ, Atom, parse_c2rpq
from repro.rpq.regex import concat, edge, node, star
from repro.workloads import medical, synthetic


@pytest.mark.parametrize("stars", [0, 1, 2])
def test_containment_with_growing_star_nesting(benchmark, stars):
    source = medical.source_schema()
    solver = ContainmentSolver(source)
    tail = concat(*([edge("crossReacting")] * stars)) if stars else concat()
    left_regex = concat(edge("designTarget"), tail, star(edge("crossReacting")))
    left = C2RPQ([Atom(left_regex, "x", "y")], ["x"], name="p")
    right = parse_c2rpq("q(x) := Vaccine(x)")
    result = benchmark.pedantic(lambda: solver.contains(left, right), rounds=3, iterations=1)
    assert result.contained


@pytest.mark.parametrize("length", [2, 4, 6, 8])
def test_containment_with_growing_path_length(benchmark, length):
    schema = synthetic.chain_schema(length)
    solver = ContainmentSolver(schema)
    path = concat(*(edge(f"e{i}") for i in range(length)))
    left = C2RPQ([Atom(path, "x", "y")], ["x"], name="p")
    right = parse_c2rpq("q(x) := L0(x)")
    result = benchmark.pedantic(lambda: solver.contains(left, right), rounds=3, iterations=1)
    assert result.contained


@pytest.mark.parametrize("length", [2, 4, 8])
def test_satisfiability_scaling(benchmark, length):
    schema = synthetic.chain_schema(length)
    tbox = schema_to_extended_tbox(schema)
    path = concat(*(edge(f"e{i}") for i in range(length)))
    query = C2RPQ([Atom(path, "x", "y"), Atom(node("L0"), "x", "x")], [], name="sat")
    result = benchmark(lambda: is_satisfiable(query, tbox))
    assert result.satisfiable
