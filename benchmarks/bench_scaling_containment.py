"""E8 — Theorems 5.1/6.1: scaling of containment and satisfiability.

Charts the cost of containment modulo schema as the left query grows (longer
derived paths, more star nesting) and the cost of the underlying chase-based
satisfiability check, on the medical schema and the synthetic chain family —
plus the cold-vs-warm behaviour of the cached containment engine on repeated
same-schema batches (the serving scenario of docs/ARCHITECTURE.md).
"""

import time

import pytest

from repro.chase import is_satisfiable
from repro.containment import ContainmentSolver
from repro.dl import schema_to_extended_tbox
from repro.engine import ContainmentEngine
from repro.rpq import C2RPQ, Atom, parse_c2rpq
from repro.rpq.regex import concat, edge, node, star
from repro.workloads import medical, synthetic


@pytest.mark.parametrize("stars", [0, 1, 2])
def test_containment_with_growing_star_nesting(benchmark, stars):
    source = medical.source_schema()
    solver = ContainmentSolver(source)
    tail = concat(*([edge("crossReacting")] * stars)) if stars else concat()
    left_regex = concat(edge("designTarget"), tail, star(edge("crossReacting")))
    left = C2RPQ([Atom(left_regex, "x", "y")], ["x"], name="p")
    right = parse_c2rpq("q(x) := Vaccine(x)")
    result = benchmark.pedantic(lambda: solver.contains(left, right), rounds=3, iterations=1)
    assert result.contained


@pytest.mark.parametrize("length", [2, 4, 6, 8])
def test_containment_with_growing_path_length(benchmark, length):
    schema = synthetic.chain_schema(length)
    solver = ContainmentSolver(schema)
    path = concat(*(edge(f"e{i}") for i in range(length)))
    left = C2RPQ([Atom(path, "x", "y")], ["x"], name="p")
    right = parse_c2rpq("q(x) := L0(x)")
    result = benchmark.pedantic(lambda: solver.contains(left, right), rounds=3, iterations=1)
    assert result.contained


@pytest.mark.parametrize("length", [2, 4, 8])
def test_satisfiability_scaling(benchmark, length):
    schema = synthetic.chain_schema(length)
    tbox = schema_to_extended_tbox(schema)
    path = concat(*(edge(f"e{i}") for i in range(length)))
    query = C2RPQ([Atom(path, "x", "y"), Atom(node("L0"), "x", "x")], [], name="sat")
    result = benchmark(lambda: is_satisfiable(query, tbox))
    assert result.satisfiable


# --------------------------------------------------------------------------- #
# E8b — cold vs warm batches through the cached containment engine
# --------------------------------------------------------------------------- #
def _medical_batch():
    """A same-schema batch mixing path shapes and right-hand sides."""
    schema = medical.source_schema()
    rights = [
        parse_c2rpq("q(x) := Vaccine(x)"),
        parse_c2rpq("q2(x) := Antigen(x)"),
    ]
    batch = []
    for stars in (0, 1, 2):
        tail = concat(*([edge("crossReacting")] * stars)) if stars else concat()
        regex = concat(edge("designTarget"), tail, star(edge("crossReacting")))
        left = C2RPQ([Atom(regex, "x", "y")], ["x"], name=f"p{stars}")
        for right in rights:
            batch.append((left, right))
    batch.append((parse_c2rpq("pv(x) := Vaccine(x)"), rights[0]))
    batch.append((parse_c2rpq("pa(x) := (exhibits)(x, y)"), rights[1]))
    return schema, batch


def _verdict(result):
    """The observable outcome of one containment test (wall-clock excluded)."""
    return (result.contained, result.regime, result.tbox_size, result.patterns_checked, result.reason)


def test_batch_warm_over_cold_speedup():
    """Repeating a same-schema batch on a warm engine must be ≥ 2× faster,
    with verdicts bit-identical to a cache-free solver run."""
    schema, batch = _medical_batch()

    baseline = [ContainmentSolver(schema).contains(left, right) for left, right in batch]

    engine = ContainmentEngine()
    started = time.perf_counter()
    cold = engine.check_many(batch, schema=schema)
    cold_seconds = time.perf_counter() - started
    started = time.perf_counter()
    warm = engine.check_many(batch, schema=schema)
    warm_seconds = time.perf_counter() - started

    assert [_verdict(r) for r in cold] == [_verdict(r) for r in baseline]
    assert [_verdict(r) for r in warm] == [_verdict(r) for r in baseline]
    # the completed TBoxes behind the verdicts are bit-identical as well
    for served, fresh in zip(warm, baseline):
        assert (
            served.completion.tbox.canonical_fingerprint()
            == fresh.completion.tbox.canonical_fingerprint()
        )

    stats = engine.stats
    assert stats.results.hits >= len(batch)  # the whole second pass was served warm
    speedup = cold_seconds / warm_seconds if warm_seconds else float("inf")
    print(
        f"\nbatch of {len(batch)}: cold {cold_seconds * 1000:.1f} ms, "
        f"warm {warm_seconds * 1000:.1f} ms, speedup {speedup:.0f}x"
    )
    print(stats.summary())
    assert speedup >= 2.0


def test_warm_schema_accelerates_novel_queries():
    """Fresh left-hand sides against an already-seen (schema, right) pair skip
    the roll-up/completion stages via the completion cache."""
    schema, batch = _medical_batch()
    engine = ContainmentEngine()
    engine.check_many(batch, schema=schema)

    novel = [
        (parse_c2rpq("n1(x) := (designTarget . crossReacting)(x, y)"), parse_c2rpq("q(x) := Vaccine(x)")),
        (parse_c2rpq("n2(x) := (exhibits . crossReacting*)(x, y)"), parse_c2rpq("q2(x) := Antigen(x)")),
    ]
    before = engine.stats
    results = engine.check_many(novel, schema=schema)
    after = engine.stats

    baseline = [ContainmentSolver(schema).contains(left, right) for left, right in novel]
    assert [_verdict(r) for r in results] == [_verdict(r) for r in baseline]
    assert after.results.hits == before.results.hits  # genuinely novel instances
    assert after.completions.hits > before.completions.hits


@pytest.mark.parametrize("mode", ["cold", "warm"])
def test_containment_engine_batch_timing(benchmark, mode):
    """pytest-benchmark view of the same cold/warm contrast."""
    schema, batch = _medical_batch()
    if mode == "cold":
        run = lambda: ContainmentEngine().check_many(batch, schema=schema)
    else:
        engine = ContainmentEngine()
        engine.check_many(batch, schema=schema)
        run = lambda: engine.check_many(batch, schema=schema)
    results = benchmark.pedantic(run, rounds=3, iterations=1)
    # the batch mixes contained and non-contained instances by construction
    assert results[0].contained and not results[1].contained
