"""E5 — Figure 6: the tree-enforcing device of the hardness proof.

Evaluates the positive traversal query and the negative violation query of
Figure 6 over complete binary trees of growing size and over corrupted trees,
confirming that the device distinguishes them and measuring evaluation cost.
"""

import pytest

from repro.graph import Graph
from repro.hardness import tree_device_queries, tree_device_schema
from repro.rpq import satisfies
from repro.schema import conforms


def complete_tree(depth: int) -> Graph:
    graph = Graph()
    graph.add_node("", ["Node"] if depth > 0 else ["Leaf"])
    frontier = [("", 0)]
    while frontier:
        path, level = frontier.pop()
        if level == depth:
            continue
        for index, edge_label in enumerate(("a1", "a2")):
            child = f"{path}{index}"
            graph.add_node(child, ["Leaf" if level + 1 == depth else "Node"])
            graph.add_edge(path, edge_label, child)
            frontier.append((child, level + 1))
    return graph


@pytest.mark.parametrize("depth", [2, 3, 4])
def test_positive_query_on_complete_trees(benchmark, depth):
    positive, negative = tree_device_queries()
    tree = complete_tree(depth)
    assert conforms(tree, tree_device_schema())
    holds = benchmark(lambda: satisfies(tree, positive.boolean()))
    assert holds
    assert not satisfies(tree, negative.boolean())


def test_negative_query_flags_corruption(benchmark):
    positive, negative = tree_device_queries()
    corrupted = complete_tree(3)
    # give an inner node a second parent: the [a1⁻][a2⁻] disjunct of the
    # negative query (no node has two incoming edges) must fire
    corrupted.add_edge("", "a2", "10")
    holds = benchmark(lambda: satisfies(corrupted, negative.boolean()))
    assert holds
