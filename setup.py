"""Setuptools entry point.

Kept as a classic ``setup.py`` (rather than PEP 517 metadata only) so that
``pip install -e .`` works in offline environments that ship setuptools but
not the ``wheel`` package.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Static analysis of graph database transformations "
        "(reproduction of Boneva et al., PODS 2023)"
    ),
    long_description=open("README.md").read() if __import__("os").path.exists("README.md") else "",
    long_description_content_type="text/markdown",
    author="Graph Transformation Analysis contributors",
    license="MIT",
    python_requires=">=3.9",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    install_requires=[],
    extras_require={"test": ["pytest", "pytest-benchmark", "hypothesis"]},
    classifiers=[
        "Development Status :: 4 - Beta",
        "Intended Audience :: Science/Research",
        "Programming Language :: Python :: 3",
        "Topic :: Database",
        "Topic :: Scientific/Engineering",
    ],
)
