#!/usr/bin/env python
"""Benchmark trend tracking (the CI ``bench-trend`` step).

Two modes:

``collect``
    Run the five ``python -m repro bench`` suites in-process — the backend
    comparison, the automata suite, the persistent-store suite, the
    service-throughput suite (with p50/p95/p99 latency percentiles) and the
    workload-zoo suite — and
    write one combined JSON report (``BENCH_<pr>.json`` shape).  Every
    embedded suite report carries the CLI's ``context`` block (CPU count,
    Python version, platform, fixed RNG seed), so a reader can judge
    whether two reports are comparable at all.

``compare``
    Diff a freshly collected report against the latest committed baseline
    (``benchmarks/trend/BENCH_*.json``, highest number wins; or an explicit
    ``--baseline``).  Every numeric leaf whose key ends in ``_seconds`` is
    compared; anything more than ``--threshold`` (default 30%) slower is a
    regression.  Regressions in a **blocking** suite (``--blocking``,
    default ``backends,service`` — the two suites that caught the parallel
    path losing to serial) emit GitHub ``::error`` annotations and fail the
    step with exit code 1; every other suite stays warn-only
    (``::warning``), because shared-runner timing noise in the secondary
    suites must not gate merges.  When ``$GITHUB_STEP_SUMMARY`` is set, a
    per-suite markdown table of all shared timings is appended to it.

Typical CI usage::

    python tools/bench_trend.py collect --output BENCH_current.json
    python tools/bench_trend.py compare --current BENCH_current.json

To record a new baseline, commit the collected file as
``benchmarks/trend/BENCH_<pr>.json``.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys
import tempfile
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple

ROOT = Path(__file__).resolve().parent.parent
TREND_DIR = ROOT / "benchmarks" / "trend"
BASELINE_PATTERN = re.compile(r"BENCH_(\d+)\.json$")

#: (suite name, repro CLI argv) — kept small enough for a CI smoke run.
SUITES = (
    ("backends", ["bench", "--workload", "synthetic", "--length", "10"]),
    ("automata", ["bench", "--suite", "automata", "--repeats", "3", "--requests", "20"]),
    ("store", ["bench", "--suite", "store", "--length", "6"]),
    ("service", ["bench", "--suite", "service", "--requests", "48", "--length", "4"]),
    ("zoo", ["bench", "--suite", "zoo", "--requests", "24", "--backends", "serial,thread"]),
    ("evolve", ["bench", "--suite", "evolve", "--requests", "4"]),
)

#: Suites whose regressions fail the CI step instead of merely annotating it.
DEFAULT_BLOCKING = ("backends", "service")


def collect(output: Path) -> int:
    sys.path.insert(0, str(ROOT / "src"))
    from repro.cli import main as repro_main

    combined: Dict[str, object] = {}
    failures: List[str] = []
    with tempfile.TemporaryDirectory(prefix="bench-trend-") as scratch:
        for name, argv in SUITES:
            report_path = Path(scratch) / f"{name}.json"
            print(f"bench-trend: running suite {name!r}: python -m repro {' '.join(argv)}")
            code = repro_main([*argv, "--json", str(report_path)])
            if code != 0 or not report_path.exists():
                failures.append(name)
                continue
            combined[name] = json.loads(report_path.read_text(encoding="utf-8"))
    output.write_text(json.dumps(combined, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    print(f"bench-trend: wrote {output} ({', '.join(combined) or 'no suites'})")
    if failures:
        print(f"::warning title=bench-trend::suite(s) failed to collect: {', '.join(failures)}")
    return 0


def timing_leaves(report: object, prefix: str = "") -> Iterator[Tuple[str, float]]:
    """Every numeric leaf whose key ends in ``_seconds``, as (path, value).

    Walking the tree instead of naming fields keeps the comparison in step
    with report-shape growth: a new suite or a new timing key participates
    the first time both sides carry it, with no tool change.
    """
    if isinstance(report, dict):
        for key, value in report.items():
            path = f"{prefix}.{key}" if prefix else str(key)
            if isinstance(value, (int, float)) and key.endswith("_seconds"):
                yield path, float(value)
            else:
                yield from timing_leaves(value, path)
    elif isinstance(report, list):
        for index, value in enumerate(report):
            yield from timing_leaves(value, f"{prefix}[{index}]")


def latest_baseline() -> Optional[Path]:
    candidates: List[Tuple[int, Path]] = []
    if TREND_DIR.is_dir():
        for path in TREND_DIR.iterdir():
            match = BASELINE_PATTERN.search(path.name)
            if match:
                candidates.append((int(match.group(1)), path))
    return max(candidates)[1] if candidates else None


def write_step_summary(
    rows_by_suite: Dict[str, List[Tuple[str, float, float, float, str]]],
    blocking: frozenset,
    threshold: float,
) -> None:
    """Append one markdown table per suite to ``$GITHUB_STEP_SUMMARY``."""
    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if not summary_path:
        return
    lines = [f"## Benchmark trend (threshold +{threshold:.0%})", ""]
    for suite in sorted(rows_by_suite):
        gate = "blocking" if suite in blocking else "warn-only"
        lines += [f"### `{suite}` ({gate})", ""]
        lines += ["| timing | baseline | current | ratio | status |", "|---|---|---|---|---|"]
        for path, before, after, ratio, status in rows_by_suite[suite]:
            lines.append(
                f"| `{path}` | {before * 1000:.1f} ms | {after * 1000:.1f} ms "
                f"| {ratio:.2f}x | {status} |"
            )
        lines.append("")
    with open(summary_path, "a", encoding="utf-8") as handle:
        handle.write("\n".join(lines) + "\n")


def compare(
    current_path: Path,
    baseline_path: Optional[Path],
    threshold: float,
    blocking: frozenset = frozenset(DEFAULT_BLOCKING),
) -> int:
    if baseline_path is None:
        baseline_path = latest_baseline()
    if baseline_path is None:
        print("bench-trend: no committed baseline (benchmarks/trend/BENCH_*.json); skipping")
        return 0
    current = json.loads(current_path.read_text(encoding="utf-8"))
    baseline = json.loads(baseline_path.read_text(encoding="utf-8"))

    current_timings = dict(timing_leaves(current))
    baseline_timings = dict(timing_leaves(baseline))
    shared = sorted(set(current_timings) & set(baseline_timings))
    print(
        f"bench-trend: comparing {current_path.name} against {baseline_path.name} "
        f"({len(shared)} shared timings, threshold +{threshold:.0%}, "
        f"blocking: {', '.join(sorted(blocking)) or 'none'})"
    )
    for suite in sorted(set(current) & set(baseline)):
        here = current[suite].get("context", {}) if isinstance(current[suite], dict) else {}
        there = baseline[suite].get("context", {}) if isinstance(baseline[suite], dict) else {}
        if here and there and here != there:
            print(
                f"bench-trend: note — {suite} context differs from the baseline's "
                f"(current: {here.get('cpu_count')} cpus, {here.get('platform')}; "
                f"baseline: {there.get('cpu_count')} cpus, {there.get('platform')})"
            )

    warnings = 0
    failures = 0
    rows_by_suite: Dict[str, List[Tuple[str, float, float, float, str]]] = {}
    for path in shared:
        before, after = baseline_timings[path], current_timings[path]
        if before <= 0:
            continue
        suite = path.split(".", 1)[0]
        ratio = after / before
        status = "ok"
        marker = ""
        if ratio > 1 + threshold and after - before > 0.001:  # ignore sub-ms jitter
            if suite in blocking:
                failures += 1
                status = "regression (blocking)"
                marker = "  <-- regression (blocking)"
                print(
                    f"::error title=Benchmark regression::{path} is {ratio:.2f}x the "
                    f"baseline ({before * 1000:.1f} ms -> {after * 1000:.1f} ms); "
                    f"the {suite!r} suite gates merges — see the context blocks "
                    f"in {current_path.name}"
                )
            else:
                warnings += 1
                status = "regression (warn-only)"
                marker = "  <-- regression"
                print(
                    f"::warning title=Benchmark regression::{path} is {ratio:.2f}x the "
                    f"baseline ({before * 1000:.1f} ms -> {after * 1000:.1f} ms); "
                    f"informational only — see the context blocks in {current_path.name}"
                )
        print(f"  {path}: {before * 1000:9.1f} ms -> {after * 1000:9.1f} ms ({ratio:5.2f}x){marker}")
        rows_by_suite.setdefault(suite, []).append((path, before, after, ratio, status))

    write_step_summary(rows_by_suite, blocking, threshold)
    print(
        f"bench-trend: {failures} blocking and {warnings} warn-only regression(s) "
        f"beyond +{threshold:.0%} across {len(shared)} timings"
    )
    if failures:
        print(
            f"bench-trend: FAILED — {failures} regression(s) in blocking suite(s) "
            f"({', '.join(sorted(blocking))}); re-run to rule out runner noise or "
            "commit a new baseline with a justification"
        )
        return 1
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    commands = parser.add_subparsers(dest="command", required=True)

    collect_parser = commands.add_parser("collect", help="run the bench suites, write one report")
    collect_parser.add_argument(
        "--output", type=Path, default=Path("BENCH_current.json"), help="combined report path"
    )

    compare_parser = commands.add_parser("compare", help="diff a report against the baseline")
    compare_parser.add_argument("--current", type=Path, required=True, help="freshly collected report")
    compare_parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="baseline report (default: highest-numbered benchmarks/trend/BENCH_*.json)",
    )
    compare_parser.add_argument(
        "--threshold", type=float, default=0.30, help="warn beyond this slowdown (default: 0.30)"
    )
    compare_parser.add_argument(
        "--blocking",
        default=",".join(DEFAULT_BLOCKING),
        help="comma-separated suites whose regressions fail the step "
        f"(default: {','.join(DEFAULT_BLOCKING)}; pass '' for warn-only everywhere)",
    )

    args = parser.parse_args(argv)
    if args.command == "collect":
        return collect(args.output)
    blocking = frozenset(name.strip() for name in args.blocking.split(",") if name.strip())
    return compare(args.current, args.baseline, args.threshold, blocking)


if __name__ == "__main__":
    raise SystemExit(main())
