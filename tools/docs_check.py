#!/usr/bin/env python
"""Documentation checker (the ``make docs-check`` target).

Four validations over the repo's markdown:

1. every fenced ``python`` code block in README.md and docs/*.md executes
   (blocks within one file share a namespace, so later blocks may reuse
   earlier imports);
2. every markdown link ``[text](target)`` to a repo-relative path resolves
   to an existing file or directory;
3. every backtick span that looks like a repo path (``src/...``,
   ``docs/...``, …) — e.g. the README's paper-to-module map — points at
   something that exists;
4. no fenced ``python`` block reaches for a non-public name: a
   single-underscore attribute (``engine._results``) or an
   underscore-prefixed import (``from repro.x import _helper``) in an
   example teaches readers to depend on internals the ``__all__`` contract
   deliberately excludes.  Dunders (``__version__``) are exempt.

Exits non-zero, listing every failure, when any check fails.
"""

from __future__ import annotations

import re
import sys
import traceback
from pathlib import Path
from typing import List

ROOT = Path(__file__).resolve().parent.parent
SRC = ROOT / "src"

PYTHON_BLOCK = re.compile(r"```python\n(.*?)```", re.DOTALL)
MARKDOWN_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
PATH_SPAN = re.compile(r"`((?:src|tests|benchmarks|examples|docs|tools)/[^`\s]*)`")


def markdown_files() -> List[Path]:
    files = [ROOT / "README.md"]
    files.extend(sorted((ROOT / "docs").glob("*.md")))
    return [path for path in files if path.exists()]


def run_python_blocks(path: Path, failures: List[str]) -> int:
    """Execute the fenced python blocks of one file in a shared namespace."""
    blocks = PYTHON_BLOCK.findall(path.read_text(encoding="utf-8"))
    namespace: dict = {"__name__": f"docs_check:{path.name}"}
    for index, block in enumerate(blocks, start=1):
        label = f"{path.relative_to(ROOT)} python block #{index}"
        try:
            exec(compile(block, label, "exec"), namespace)  # noqa: S102 - the point of the check
        except Exception:
            failures.append(f"{label} raised:\n{traceback.format_exc(limit=3)}")
    return len(blocks)


#: A protected attribute access: ``.foo._bar`` but not ``.__dunder__``.
PRIVATE_ATTRIBUTE = re.compile(r"\._(?!_)\w+")
#: An underscore-led name inside an import statement (module path or name).
PRIVATE_IMPORT = re.compile(
    r"^\s*(?:from\s+[\w.]*\b_(?!_)\w+[\w.]*\s+import\b"  # from x._y import ...
    r"|from\s+[\w.]+\s+import\s+[^\n]*(?<![\w.])_(?!_)\w+"  # from x import _y
    r"|import\s+[^\n]*(?<![\w.])_(?!_)\w+)",  # import x._y / import _y
    re.MULTILINE,
)


def check_public_names(path: Path, failures: List[str]) -> int:
    """Fail when an example uses a non-public (underscore-prefixed) name."""
    blocks = PYTHON_BLOCK.findall(path.read_text(encoding="utf-8"))
    for index, block in enumerate(blocks, start=1):
        label = f"{path.relative_to(ROOT)} python block #{index}"
        for match in PRIVATE_ATTRIBUTE.finditer(block):
            line = block[: match.start()].count("\n") + 1
            failures.append(
                f"{label} line {line}: non-public attribute {match.group(0)!r} — "
                "examples must stick to __all__ names"
            )
        for match in PRIVATE_IMPORT.finditer(block):
            line = block[: match.start()].count("\n") + 1
            failures.append(
                f"{label} line {line}: non-public import {match.group(0).strip()!r} — "
                "examples must stick to __all__ names"
            )
    return len(blocks)


def check_links(path: Path, failures: List[str]) -> int:
    """Verify repo-relative markdown links and path-looking backtick spans."""
    text = path.read_text(encoding="utf-8")
    checked = 0
    for match in MARKDOWN_LINK.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        relative = target.split("#", 1)[0]
        if not relative:
            continue
        checked += 1
        if not (path.parent / relative).exists():
            failures.append(f"{path.relative_to(ROOT)}: broken link -> {target}")
    for match in PATH_SPAN.finditer(text):
        checked += 1
        if not (ROOT / match.group(1)).exists():
            failures.append(f"{path.relative_to(ROOT)}: dangling path reference `{match.group(1)}`")
    return checked


def main() -> int:
    sys.path.insert(0, str(SRC))
    failures: List[str] = []
    blocks = links = 0
    for path in markdown_files():
        blocks += run_python_blocks(path, failures)
        links += check_links(path, failures)
        check_public_names(path, failures)
    if failures:
        print(f"docs-check: {len(failures)} failure(s)", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(f"docs-check: OK ({blocks} python blocks executed, {links} references resolved)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
