#!/usr/bin/env python
"""Schema-evolution smoke check (the CI ``evolve-smoke`` step).

End-to-end, over a real socket, against the real CLI:

1. start ``python -m repro serve --port 0`` and warm it with ``POST
   /contain`` requests against the *old* zoo evolution schema;
2. ``POST /schema-update`` the single-axiom edit mid-stream and require a
   200 whose report says the evolve was non-trivial and kept compiled
   automata;
3. replay the workload against the *new* schema on the evolved server and
   record every verdict fingerprint;
4. SIGINT the server, start a **fresh** one (the cold-restarted baseline —
   nothing survives the process boundary), replay the new-schema workload
   again, and require the two fingerprint sequences to be identical:
   migration must never change a verdict bit;
5. require ``GET /stats`` on the evolved server to carry the evolve report,
   and both shutdowns to be clean (SIGINT → exit 0).

Exits non-zero with a diagnostic on any failure.  Runs in a few seconds; no
dependencies beyond the repo and the standard library.
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import urllib.error
import urllib.request
from pathlib import Path
from typing import List, Optional, Tuple

ROOT = Path(__file__).resolve().parent.parent
QUERIES = 6
BANNER = re.compile(r"listening on (http://[^\s]+)")


def fail(message: str) -> None:
    print(f"evolve-smoke: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def start_server() -> Tuple[subprocess.Popen, str]:
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0"],
        cwd=ROOT,
        env={**os.environ, "PYTHONPATH": str(ROOT / "src")},
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    banner = process.stdout.readline()
    match = BANNER.search(banner or "")
    if match is None:
        process.kill()
        fail(f"no listening banner (got {banner!r})")
    return process, match.group(1)


def stop_server(process: subprocess.Popen) -> None:
    process.send_signal(signal.SIGINT)
    try:
        code = process.wait(timeout=30)
    except subprocess.TimeoutExpired:
        process.kill()
        fail("server did not shut down within 30 s of SIGINT")
    if code != 0:
        fail(f"server exited with code {code} on SIGINT")


def post(url: str, path: str, payload) -> Tuple[int, dict]:
    request = urllib.request.Request(
        url + path,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=120) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read() or b"{}")


def replay(url: str, payloads: List[dict]) -> List[str]:
    fingerprints = []
    for index, payload in enumerate(payloads):
        status, body = post(url, "/contain", payload)
        if status != 200:
            fail(f"/contain request {index} returned {status}: {body.get('error')}")
        fingerprints.append(body["fingerprint"])
    return fingerprints


def main() -> int:
    sys.path.insert(0, str(ROOT / "src"))
    from repro.schema.parser import schema_to_text
    from repro.workloads.zoo import evolution_corpus

    old_schema, new_schema, pairs = evolution_corpus(queries=QUERIES)
    old_text = schema_to_text(old_schema)
    new_text = schema_to_text(new_schema)
    old_payloads = [
        {"schema": old_text, "left": str(left), "right": str(right)} for left, right in pairs
    ]
    new_payloads = [
        {"schema": new_text, "left": str(left), "right": str(right)} for left, right in pairs
    ]

    process, url = start_server()
    evolved_fps: Optional[List[str]] = None
    try:
        print(f"evolve-smoke: server up at {url}")
        replay(url, old_payloads)  # warm the old namespace mid-stream

        status, report = post(url, "/schema-update", {"old": old_text, "new": new_text})
        if status != 200 or not report.get("evolved"):
            fail(f"/schema-update returned {status}: {report}")
        if report.get("trivial"):
            fail(f"the single-axiom edit evolved as trivial: {report['delta']}")
        if report["kept"]["automata"] < 1:
            fail(f"evolve kept no automata on a multiplicity edit: {report['kept']}")
        print(
            "evolve-smoke: /schema-update OK "
            f"(kept automata: {report['kept']['automata']}, "
            f"invalidated results: {report['invalidated']['results']})"
        )

        evolved_fps = replay(url, new_payloads)

        with urllib.request.urlopen(url + "/stats", timeout=30) as response:
            stats = json.loads(response.read())
        if stats["service"].get("schema_updates") != 1:
            fail(f"stats do not count the schema update: {stats['service']}")
        if "evolve" not in stats:
            fail("stats carry no evolve report after /schema-update")
        stop_server(process)
        print("evolve-smoke: evolved server replayed and shut down cleanly")
    finally:
        if process.poll() is None:
            process.kill()

    # the cold-restarted baseline: a fresh process, nothing migrated
    process, url = start_server()
    try:
        print(f"evolve-smoke: cold-restarted server up at {url}")
        cold_fps = replay(url, new_payloads)
        stop_server(process)
    finally:
        if process.poll() is None:
            process.kill()

    if evolved_fps != cold_fps:
        mismatches = sum(1 for a, b in zip(evolved_fps, cold_fps) if a != b)
        fail(f"{mismatches} fingerprint mismatch(es) between evolved and cold-restarted runs")
    print(
        f"evolve-smoke: {len(new_payloads)} post-evolve fingerprints identical "
        "to the cold-restarted baseline — PASS"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
