#!/usr/bin/env python
"""Service smoke check (the CI ``service-smoke`` step).

End-to-end, over a real socket, against the real CLI:

1. start ``python -m repro serve --port 0`` as a subprocess and parse the
   ephemeral port from its banner line;
2. fire N concurrent ``POST /contain`` requests (closed-loop client
   threads replaying :func:`repro.workloads.streams.request_payloads`) and
   require every response to be a 200 whose ``fingerprint`` matches the
   serial in-process baseline for the same request — the serving stack must
   not change a single verdict bit;
3. check ``GET /healthz`` and ``GET /stats`` answer sensibly;
4. send SIGINT and require a clean, prompt exit (the lifecycle ordering
   under test: coalescer drains, pool terminates, store closes, no zombie
   children, exit code 0).

Exits non-zero with a diagnostic on any failure.  Runs in ~15 s; no
dependencies beyond the repo and the standard library.
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request
from pathlib import Path
from typing import List, Tuple

ROOT = Path(__file__).resolve().parent.parent
REQUESTS = 24
CLIENTS = 6
STREAM_LENGTH = 3
BANNER = re.compile(r"listening on (http://[^\s]+)")


def fail(message: str) -> None:
    print(f"service-smoke: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def serial_fingerprints(payloads) -> List[str]:
    from repro.engine import ContainmentEngine, result_fingerprint
    from repro.workloads.streams import request_stream

    stream = request_stream(len(payloads), length=STREAM_LENGTH)
    with ContainmentEngine() as engine:
        results = engine.check_many([(left, right, schema) for left, right, schema in stream])
    return [result_fingerprint(result) for result in results]


def main() -> int:
    sys.path.insert(0, str(ROOT / "src"))
    from repro.workloads.streams import request_payloads

    payloads = request_payloads(REQUESTS, length=STREAM_LENGTH)
    baseline = serial_fingerprints(payloads)

    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0", "--coalesce-window", "5"],
        cwd=ROOT,
        env={**os.environ, "PYTHONPATH": str(ROOT / "src")},
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    try:
        banner = process.stdout.readline()
        match = BANNER.search(banner or "")
        if match is None:
            process.kill()
            fail(f"no listening banner (got {banner!r})")
        url = match.group(1)
        print(f"service-smoke: server up at {url}")

        def post(payload) -> Tuple[int, str]:
            request = urllib.request.Request(
                url + "/contain",
                data=json.dumps(payload).encode("utf-8"),
                headers={"Content-Type": "application/json"},
            )
            try:
                with urllib.request.urlopen(request, timeout=120) as response:
                    return response.status, json.loads(response.read())["fingerprint"]
            except urllib.error.HTTPError as error:
                # keep the per-status diagnostic below reachable: a 4xx/5xx
                # is a recorded status, not a crashed client thread
                return error.code, ""

        from repro.workloads.streams import closed_loop

        started = time.perf_counter()
        try:
            responses = closed_loop(payloads, post, clients=CLIENTS)
        except RuntimeError as error:
            fail(f"concurrent requests failed: {error} ({error.__cause__})")
        elapsed = time.perf_counter() - started
        statuses = [status for status, _ in responses]
        fingerprints = [fingerprint for _, fingerprint in responses]

        if statuses != [200] * len(payloads):
            fail(f"non-200 responses: {[s for s in statuses if s != 200]}")
        if fingerprints != baseline:
            mismatches = sum(1 for a, b in zip(fingerprints, baseline) if a != b)
            fail(f"{mismatches} fingerprint mismatch(es) against the serial baseline")
        print(
            f"service-smoke: {len(payloads)} concurrent requests OK in {elapsed * 1000:.0f} ms, "
            "all fingerprints match the serial baseline"
        )

        with urllib.request.urlopen(url + "/healthz", timeout=30) as response:
            health = json.loads(response.read())
        if health.get("status") != "ok":
            fail(f"unhealthy: {health}")
        with urllib.request.urlopen(url + "/stats", timeout=30) as response:
            stats = json.loads(response.read())
        if stats["coalescer"]["submitted"] < len(payloads):
            fail(f"stats undercount traffic: {stats['coalescer']}")
        print(
            f"service-smoke: healthz/stats OK "
            f"({stats['coalescer']['batches']} batches, "
            f"{stats['coalescer']['deduplicated']} deduplicated)"
        )

        process.send_signal(signal.SIGINT)
        try:
            code = process.wait(timeout=30)
        except subprocess.TimeoutExpired:
            process.kill()
            fail("server did not shut down within 30 s of SIGINT")
        if code != 0:
            fail(f"server exited with code {code} on SIGINT")
        print("service-smoke: clean shutdown on SIGINT — PASS")
        return 0
    finally:
        if process.poll() is None:
            process.kill()


if __name__ == "__main__":
    raise SystemExit(main())
