"""Incremental containment across schema edits: ``ContainmentEngine.evolve``.

The contract under test is bit-identity: after ``evolve(old, new)``, every
verdict and every ``result_fingerprint`` against the new schema must equal
what a cold-started engine computes — across the serial/thread/process
backends crossed with the persistence axis, on the seeded zoo evolution
corpus.  The migration is only worth shipping if it is *also* non-trivial,
so a small edit must actually keep entries (compiled automata survive a
multiplicity change; completed TBoxes must not).
"""

import pytest

from repro.engine import (
    ContainmentEngine,
    EvolveReport,
    InvalidationReport,
    SchemaDelta,
    result_fingerprint,
)
from repro.rpq.queries import UC2RPQ
from repro.workloads import medical
from repro.workloads.zoo import evolution_corpus, single_axiom_edit

BACKENDS = ("serial", "thread", "process")
QUERIES = 16


@pytest.fixture(scope="module")
def corpus():
    return evolution_corpus(queries=QUERIES)


@pytest.fixture(scope="module")
def cold_baseline(corpus):
    """Ground truth on the *new* schema: a cold serial store-less engine."""
    _, new_schema, pairs = corpus
    with ContainmentEngine() as engine:
        results = [engine.contains(left, right, new_schema) for left, right in pairs]
    return [result_fingerprint(result) for result in results]


# --------------------------------------------------------------------------- #
# the delta layer
# --------------------------------------------------------------------------- #
def test_delta_classifies_the_single_axiom_edit(corpus):
    old_schema, new_schema, _ = corpus
    delta = SchemaDelta.between(old_schema, new_schema)
    assert not delta.is_empty
    assert not delta.added_node_labels and not delta.removed_node_labels
    assert not delta.added_edge_labels and not delta.removed_edge_labels
    assert len(delta.constraint_changes) == 1
    change = delta.constraint_changes[0]
    assert change.old != change.new


def test_delta_of_a_rename_is_empty(corpus):
    old_schema, _, _ = corpus
    renamed = old_schema.copy(name="renamed")
    delta = SchemaDelta.between(old_schema, renamed)
    assert delta.is_empty
    assert delta.old_fingerprint == delta.new_fingerprint
    assert not delta.constraint_changes


# --------------------------------------------------------------------------- #
# bit-identity with a cold start
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("persist", [False, True], ids=["no-store", "store"])
def test_post_evolve_matches_cold_start(corpus, cold_baseline, backend, persist, tmp_path):
    old_schema, new_schema, pairs = corpus
    path = tmp_path / "evolve.db" if persist else None
    with ContainmentEngine(persist=path) as engine:
        engine.check_many(pairs, schema=old_schema)  # warm the old namespace
        report = engine.evolve(old_schema, new_schema)
        assert isinstance(report, EvolveReport)
        results = engine.check_many(pairs, schema=new_schema, parallel=backend)
    assert [result_fingerprint(result) for result in results] == cold_baseline, (
        f"post-evolve {backend} run (persist={persist}) diverged from cold start"
    )


def test_evolved_store_replays_identically(corpus, cold_baseline, tmp_path):
    """A fresh engine over the evolved store file reproduces the baseline."""
    old_schema, new_schema, pairs = corpus
    path = tmp_path / "evolve.db"
    with ContainmentEngine(persist=path) as engine:
        engine.check_many(pairs, schema=old_schema)
        engine.evolve(old_schema, new_schema)
        engine.check_many(pairs, schema=new_schema)
    with ContainmentEngine(persist=path) as replay:
        results = replay.check_many(pairs, schema=new_schema)
        assert [result_fingerprint(result) for result in results] == cold_baseline
        assert replay.stats.store.hits == len(pairs)


# --------------------------------------------------------------------------- #
# the migration must be non-trivial — and honestly reported
# --------------------------------------------------------------------------- #
def test_small_edit_keeps_compiled_automata(corpus):
    old_schema, new_schema, pairs = corpus
    with ContainmentEngine() as engine:
        engine.check_many(pairs, schema=old_schema)
        report = engine.evolve(old_schema, new_schema)
    assert not report.trivial
    assert report.kept["automata"] > 0, "a multiplicity edit must keep compiled automata"
    assert report.kept == report.migrated
    # completed TBoxes embed the edited axioms: never migrated
    assert report.migrated["schema-tboxes"] == 0
    assert report.migrated["completions"] == 0
    assert isinstance(report.invalidation, InvalidationReport)
    assert report.invalidation.schema_fingerprint == old_schema.canonical_fingerprint()
    rendered = report.as_dict()
    assert rendered["delta"]["old_fingerprint"] == old_schema.canonical_fingerprint()
    assert rendered["invalidation"]["schema_fingerprint"] == old_schema.canonical_fingerprint()


def test_trivial_evolve_keeps_everything(corpus):
    """A fingerprint-equal edit (a rename) is a full-keep no-op."""
    old_schema, _, pairs = corpus
    renamed = old_schema.copy(name="renamed")
    with ContainmentEngine() as engine:
        engine.check_many(pairs[:4], schema=old_schema)
        report = engine.evolve(old_schema, renamed)
    assert report.trivial
    assert report.delta.is_empty
    assert report.invalidation is None
    assert report.kept["results"] == 4
    assert sum(report.invalidated.values()) == 0


def test_evolve_deletes_the_old_namespace_from_the_store(corpus, tmp_path):
    old_schema, new_schema, pairs = corpus
    path = tmp_path / "evolve.db"
    with ContainmentEngine(persist=path) as engine:
        engine.check_many(pairs, schema=old_schema)
        report = engine.evolve(old_schema, new_schema)
        assert report.store_deleted >= len(pairs), (
            "the old schema's persisted result rows must be dropped"
        )
        assert report.store_written >= 1  # at least the new schema row


def test_empty_left_verdicts_migrate(corpus):
    """The one schema-blind verdict class survives the edit bit-identically."""
    old_schema, new_schema, pairs = corpus
    empty_left = UC2RPQ([], name="nothing")
    _, right = pairs[0]
    with ContainmentEngine() as engine:
        engine.contains(empty_left, right, old_schema)
        report = engine.evolve(old_schema, new_schema)
        assert report.migrated["results"] == 1
        hits_before = engine.stats.results.hits
        migrated = engine.contains(empty_left, right, new_schema)
        assert engine.stats.results.hits == hits_before + 1
    with ContainmentEngine() as cold:
        fresh = cold.contains(empty_left, right, new_schema)
    assert result_fingerprint(migrated) == result_fingerprint(fresh)
    assert migrated.schema_name == new_schema.name


def test_worker_pool_is_reseeded_after_evolve(corpus, cold_baseline):
    """An already-started process pool answers post-evolve requests correctly."""
    old_schema, new_schema, pairs = corpus
    with ContainmentEngine(max_workers=2) as engine:
        engine.check_many(pairs, schema=old_schema, parallel="process")
        report = engine.evolve(old_schema, new_schema)
        assert report.seeded_contexts >= 0
        results = engine.check_many(pairs, schema=new_schema, parallel="process")
    assert [result_fingerprint(result) for result in results] == cold_baseline


def test_evolve_report_renders(corpus):
    old_schema, new_schema, pairs = corpus
    with ContainmentEngine() as engine:
        engine.check_many(pairs[:2], schema=old_schema)
        report = engine.evolve(old_schema, new_schema)
    text = report.summary()
    assert old_schema.canonical_fingerprint()[:12] in text
    assert new_schema.canonical_fingerprint()[:12] in text
    assert "migrated" in text and "invalidated" in text
    assert report.elapsed_seconds >= 0.0


def test_single_axiom_edit_changes_exactly_one_declared_constraint():
    schema = medical.source_schema()
    edited = single_axiom_edit(schema)
    before = dict(
        ((source, str(signed), target), str(mult))
        for source, signed, target, mult in schema.declared_constraints()
    )
    after = dict(
        ((source, str(signed), target), str(mult))
        for source, signed, target, mult in edited.declared_constraints()
    )
    assert set(before) == set(after)
    changed = [key for key in before if before[key] != after[key]]
    assert len(changed) == 1
