"""Tests for schema containment (Proposition B.3) and the schema DSL."""

import pytest

from repro.exceptions import ParseError
from repro.schema import (
    Multiplicity,
    Schema,
    parse_schema,
    schema_contained_in,
    schema_containment_counterexamples,
    schema_equivalent,
    schema_to_text,
)


def loose_and_tight():
    tight = Schema(["A", "B"], ["r"], name="tight")
    tight.set_edge("A", "r", "B", "1", "?")
    loose = Schema(["A", "B"], ["r"], name="loose")
    loose.set_edge("A", "r", "B", "+", "*")
    return tight, loose


class TestContainment:
    def test_tight_contained_in_loose(self):
        tight, loose = loose_and_tight()
        assert schema_contained_in(tight, loose)

    def test_loose_not_contained_in_tight(self):
        tight, loose = loose_and_tight()
        assert not schema_contained_in(loose, tight)

    def test_counterexample_triple_reported(self):
        tight, loose = loose_and_tight()
        examples = schema_containment_counterexamples(loose, tight)
        assert examples
        assert any(example.left is Multiplicity.PLUS for example in examples)

    def test_reflexive(self, medical_source_schema):
        assert schema_contained_in(medical_source_schema, medical_source_schema)

    def test_equivalence_of_copies(self, medical_source_schema):
        assert schema_equivalent(medical_source_schema, medical_source_schema.copy("other"))

    def test_extra_node_label_breaks_containment(self):
        small = Schema(["A"], ["r"], name="small")
        big = Schema(["A", "B"], ["r"], name="big")
        assert schema_contained_in(small, big)
        assert not schema_contained_in(big, small)

    def test_implicit_zero_versus_star(self):
        forbids = Schema(["A", "B"], ["r"], name="forbids")  # r implicitly forbidden
        allows = Schema(["A", "B"], ["r"], name="allows")
        allows.set_edge("A", "r", "B", "*", "*")
        assert schema_contained_in(forbids, allows)
        assert not schema_contained_in(allows, forbids)

    def test_medical_source_not_contained_in_target(self, medical_source_schema, medical_target_schema):
        # S0 allows crossReacting edges that S1 forbids (different edge alphabets)
        assert not schema_contained_in(medical_source_schema, medical_target_schema)


SCHEMA_TEXT = """
schema S0 {
  nodes Vaccine, Antigen, Pathogen;
  edge Vaccine -designTarget-> Antigen [1, *];
  edge Antigen -crossReacting-> Antigen [*, *];
  edge Pathogen -exhibits-> Antigen [+, *];
}
"""


class TestParser:
    def test_parse_matches_programmatic_schema(self, medical_source_schema):
        parsed = parse_schema(SCHEMA_TEXT)
        assert parsed == medical_source_schema

    def test_round_trip_through_text(self, medical_source_schema):
        text = schema_to_text(medical_source_schema)
        assert parse_schema(text) == medical_source_schema

    def test_comments_are_ignored(self):
        parsed = parse_schema("schema S { nodes A; # comment\n edge A -r-> A [*, *]; }")
        assert parsed.node_labels == {"A"}

    def test_fine_grained_constraint(self):
        parsed = parse_schema(
            "schema S { nodes A, B; edges r; constraint A -r-> B : 1; constraint B <-r- A : ?; }"
        )
        assert parsed.multiplicity("A", "r", "B") is Multiplicity.ONE
        assert parsed.multiplicity("B", "r-", "A") is Multiplicity.OPTIONAL

    def test_missing_header_rejected(self):
        with pytest.raises(ParseError):
            parse_schema("nodes A;")

    def test_missing_nodes_rejected(self):
        with pytest.raises(ParseError):
            parse_schema("schema S { edges r; }")

    def test_malformed_edge_rejected(self):
        with pytest.raises(ParseError):
            parse_schema("schema S { nodes A; edge A -r- A [*, *]; }")

    def test_name_is_kept(self):
        assert parse_schema("schema Demo { nodes A; }").name == "Demo"
