"""Tests for the static-analysis layer: label coverage (Lemma B.6), statement
entailment (Lemma B.7), type checking (Lemma B.2), schema elicitation
(Lemma B.5) and equivalence (Lemma B.8) — exercised on the paper's medical
example and on the FHIR and social workloads."""

import pytest

from repro.analysis import (
    StatementChecker,
    check_equivalence,
    check_label_coverage,
    elicit_schema,
    type_check,
)
from repro.exceptions import ElicitationError
from repro.graph import forward
from repro.schema import conforms, schema_equivalent
from repro.transform.parser import parse_transformation
from repro.workloads import fhir, medical, social


class TestLabelCoverage:
    def test_migration_is_covering(self, medical_source_schema):
        result = check_label_coverage(medical.migration(), medical_source_schema)
        assert result.covered
        assert not result.failures()

    def test_missing_node_rule_breaks_coverage(self, medical_source_schema):
        # no Antigen node rule: targets edges point at unlabeled nodes
        transformation = parse_transformation(
            """
            transformation T {
              Vaccine(fV(x)) <- (Vaccine)(x);
              targets(fV(x), fA(y)) <- (designTarget)(x, y);
            }
            """
        )
        result = check_label_coverage(transformation, medical_source_schema)
        assert not result.covered
        assert result.unassociated_constructors == ["fA"]

    def test_edge_rule_wider_than_node_rule_breaks_coverage(self, medical_source_schema):
        transformation = parse_transformation(
            """
            transformation T {
              Vaccine(fV(x)) <- (Vaccine)(x);
              Antigen(fA(x)) <- (Antigen)(x);
              Pathogen(fP(x)) <- (Pathogen)(x);
              targets(fV(x), fA(y)) <- (designTarget . crossReacting*)(x, y);
              Vaccine(fV(x)) <- (designTarget)(x, y);
              exhibits(fP(x), fA(y)) <- (exhibits- . exhibits)(x, y);
            }
            """
        )
        # the last edge rule creates exhibits edges whose source constructor is
        # fP applied to *antigen* identifiers, never labeled by a node rule
        result = check_label_coverage(transformation, medical_source_schema)
        assert not result.covered
        assert any(check.source_label == "Pathogen" for check in result.failures())

    def test_coverage_summary_readable(self, medical_source_schema):
        result = check_label_coverage(medical.migration(), medical_source_schema)
        assert "label" in result.summary()


class TestStatementEntailment:
    @pytest.fixture(scope="class")
    def checker(self, medical_source_schema):
        return StatementChecker(medical.migration(), medical_source_schema)

    def test_example_45_exists(self, checker):
        assert checker.entails_exists("Vaccine", forward("targets"), "Antigen").entailed

    def test_design_target_exactly_one(self, checker):
        assert checker.entails_exists("Vaccine", forward("designTarget"), "Antigen").entailed
        assert checker.entails_at_most("Vaccine", forward("designTarget"), "Antigen").entailed

    def test_targets_not_functional(self, checker):
        assert not checker.entails_at_most("Vaccine", forward("targets"), "Antigen").entailed

    def test_no_exists_for_unproduced_edges(self, checker):
        assert checker.entails_no_exists("Antigen", forward("targets"), "Antigen").entailed
        assert checker.entails_no_exists("Pathogen", forward("designTarget"), "Antigen").entailed

    def test_exhibits_at_least_one(self, checker):
        assert checker.entails_exists("Pathogen", forward("exhibits"), "Antigen").entailed

    def test_exists_not_entailed_for_optional_edges(self, checker):
        # not every antigen is exhibited by a pathogen... actually S0 requires
        # antigens to be exhibited?  No: the constraint is on pathogens.  An
        # antigen with no pathogen is allowed, so ∃exhibits⁻ is not entailed.
        from repro.graph import inverse

        assert not checker.entails_exists("Antigen", inverse("exhibits"), "Pathogen").entailed

    def test_dispatch_on_statement(self, checker, medical_target_schema):
        from repro.dl import schema_to_l0

        for statement in schema_to_l0(medical_target_schema):
            outcome = checker.entails(statement)
            assert outcome.entailed or not outcome.entailed  # just exercises dispatch


class TestTypeChecking:
    def test_migration_well_typed(self, medical_source_schema, medical_target_schema):
        result = type_check(medical.migration(), medical_source_schema, medical_target_schema)
        assert result.well_typed
        assert result.containment_calls > 0
        assert "WELL-TYPED" in result.summary()

    def test_broken_migration_rejected(self, medical_source_schema, medical_target_schema):
        result = type_check(
            medical.broken_migration(), medical_source_schema, medical_target_schema
        )
        assert not result.well_typed
        assert any("targets" in str(e.statement) for e in result.failed_statements())

    def test_type_checking_matches_runtime_behaviour(
        self, medical_source_schema, medical_target_schema
    ):
        # dynamic cross-validation: the well-typed transformation's outputs
        # conform, and the broken one has a non-conforming output
        good, bad = medical.migration(), medical.broken_migration()
        saw_bad_output = False
        for seed in range(6):
            instance = medical.random_instance(seed=seed, cross_reaction_probability=0.05)
            assert conforms(good.apply(instance), medical_target_schema)
            if not conforms(bad.apply(instance), medical_target_schema):
                saw_bad_output = True
        assert saw_bad_output

    def test_foreign_output_label_rejected(self, medical_source_schema, medical_target_schema):
        transformation = parse_transformation(
            """
            transformation T {
              Vaccine(fV(x)) <- (Vaccine)(x);
              Alien(fX(x))   <- (Pathogen)(x);
            }
            """
        )
        result = type_check(transformation, medical_source_schema, medical_target_schema)
        assert not result.well_typed
        assert result.signature_errors

    def test_coverage_failure_blocks_typechecking(self, medical_source_schema, medical_target_schema):
        transformation = parse_transformation(
            """
            transformation T {
              Vaccine(fV(x)) <- (Vaccine)(x);
              targets(fV(x), fA(y)) <- (designTarget)(x, y);
            }
            """
        )
        result = type_check(transformation, medical_source_schema, medical_target_schema)
        assert not result.well_typed
        assert result.coverage is not None and not result.coverage.covered

    def test_fhir_migration_well_typed(self, fhir_schemas):
        source, target = fhir_schemas
        assert type_check(fhir.migration_v3_to_v4(), source, target).well_typed

    def test_fhir_broken_migration_rejected(self, fhir_schemas):
        source, target = fhir_schemas
        result = type_check(fhir.broken_migration_v3_to_v4(), source, target)
        assert not result.well_typed

    def test_social_reification_well_typed(self, social_schemas):
        source, target = social_schemas
        assert type_check(social.reification(), source, target).well_typed

    def test_social_broken_reification_rejected(self, social_schemas):
        source, target = social_schemas
        assert not type_check(social.broken_reification(), source, target).well_typed


class TestElicitation:
    def test_elicited_schema_matches_figure_1_target(self, medical_source_schema):
        result = elicit_schema(medical.migration(), medical_source_schema)
        elicited = result.schema
        assert elicited.node_labels == {"Vaccine", "Antigen", "Pathogen"}
        assert elicited.edge_labels == {"designTarget", "targets", "exhibits"}
        assert str(elicited.multiplicity("Vaccine", "designTarget", "Antigen")) == "1"
        assert str(elicited.multiplicity("Vaccine", "targets", "Antigen")) == "+"
        assert str(elicited.multiplicity("Pathogen", "exhibits", "Antigen")) == "+"
        assert str(elicited.multiplicity("Antigen", "targets", "Antigen")) == "0"

    def test_elicited_schema_accepts_all_outputs(self, medical_source_schema):
        result = elicit_schema(medical.migration(), medical_source_schema)
        for seed in range(5):
            output = medical.migration().apply(medical.random_instance(seed=seed))
            assert conforms(output, result.schema)

    def test_elicited_schema_is_minimal_for_broken_variant(self, medical_source_schema):
        # the broken migration only creates targets edges via strict cross
        # reactions, so 'targets' is not guaranteed any more: elicitation must
        # weaken the constraint from + to *
        result = elicit_schema(medical.broken_migration(), medical_source_schema)
        assert str(result.schema.multiplicity("Vaccine", "targets", "Antigen")) == "*"

    def test_elicitation_fails_without_coverage(self, medical_source_schema):
        transformation = parse_transformation(
            """
            transformation T {
              Vaccine(fV(x)) <- (Vaccine)(x);
              targets(fV(x), fA(y)) <- (designTarget)(x, y);
            }
            """
        )
        with pytest.raises(ElicitationError):
            elicit_schema(transformation, medical_source_schema)

    def test_elicitation_decision_problem(self, medical_source_schema, medical_target_schema):
        # deciding "is the elicited schema equivalent to a given one" — the
        # decision problem the paper proves EXPTIME-complete
        result = elicit_schema(medical.migration(), medical_source_schema)
        target = medical_target_schema.copy()
        assert schema_equivalent(result.schema, target)


class TestEquivalence:
    def test_redundant_rule_is_harmless(self, medical_source_schema):
        result = check_equivalence(
            medical.migration(), medical.redundant_migration(), medical_source_schema
        )
        assert result.equivalent

    def test_broken_variant_not_equivalent(self, medical_source_schema):
        result = check_equivalence(
            medical.migration(), medical.broken_migration(), medical_source_schema
        )
        assert not result.equivalent
        assert any(difference.kind == "edge-rule" for difference in result.differences)

    def test_signature_difference_detected(self, medical_source_schema):
        smaller = parse_transformation(
            "transformation T { Vaccine(fV(x)) <- (Vaccine)(x); }"
        )
        result = check_equivalence(medical.migration(), smaller, medical_source_schema)
        assert not result.equivalent
        assert any(difference.kind == "signature" for difference in result.differences)

    def test_equivalence_is_symmetric(self, medical_source_schema):
        forward_result = check_equivalence(
            medical.migration(), medical.redundant_migration(), medical_source_schema
        )
        backward_result = check_equivalence(
            medical.redundant_migration(), medical.migration(), medical_source_schema
        )
        assert forward_result.equivalent == backward_result.equivalent

    def test_equivalence_modulo_schema_only(self, medical_source_schema):
        # designTarget and designTarget·crossReacting* differ in general but the
        # difference requires cross-reacting edges; with a schema forbidding
        # them the two transformations coincide
        variant = parse_transformation(
            """
            transformation T {
              Vaccine(fV(x)) <- (Vaccine)(x);
              Antigen(fA(x)) <- (Antigen)(x);
              Pathogen(fP(x)) <- (Pathogen)(x);
              designTarget(fV(x), fA(y)) <- (designTarget)(x, y);
              targets(fV(x), fA(y)) <- (designTarget)(x, y);
              exhibits(fP(x), fA(y)) <- (exhibits)(x, y);
            }
            """
        )
        assert not check_equivalence(medical.migration(), variant, medical_source_schema).equivalent
        no_cross = medical_source_schema.copy(name="S0NoCross")
        no_cross.set_edge("Antigen", "crossReacting", "Antigen", "0", "0")
        assert check_equivalence(medical.migration(), variant, no_cross).equivalent

    def test_runtime_cross_validation(self, medical_source_schema):
        # equivalent transformations produce identical outputs on instances
        left, right = medical.migration(), medical.redundant_migration()
        for seed in range(4):
            instance = medical.random_instance(seed=seed)
            assert left.apply(instance) == right.apply(instance)
