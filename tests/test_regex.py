"""Tests for two-way regular expressions and their parser."""

import pytest

from repro.exceptions import ParseError, QueryError
from repro.rpq import (
    EMPTY,
    EPSILON,
    Concat,
    Star,
    Union,
    concat,
    edge,
    node,
    optional,
    parse_regex,
    plus,
    star,
    union,
    word,
)
from repro.rpq.regex import EdgeStep, NodeTest


class TestConstruction:
    def test_node_test_requires_label(self):
        with pytest.raises(QueryError):
            NodeTest("")

    def test_edge_step_from_string(self):
        assert edge("r").signed.label == "r"
        assert edge("r-").signed.is_inverse

    def test_concat_of_nothing_is_epsilon(self):
        assert concat() == EPSILON

    def test_union_of_nothing_is_empty(self):
        assert union() == EMPTY

    def test_plus_desugars_to_concat_star(self):
        expr = plus(edge("r"))
        assert isinstance(expr, Concat)
        assert isinstance(expr.right, Star)

    def test_optional_desugars_to_union_epsilon(self):
        expr = optional(edge("r"))
        assert isinstance(expr, Union)
        assert EPSILON in (expr.left, expr.right)

    def test_word_uses_case_convention(self):
        expr = word("Vaccine", "designTarget", "Antigen")
        symbols = list(expr.symbols())
        assert isinstance(symbols[0], NodeTest)
        assert isinstance(symbols[1], EdgeStep)
        assert isinstance(symbols[2], NodeTest)

    def test_operator_sugar(self):
        expr = node("A") * edge("r") + node("B")
        assert isinstance(expr, Union)


class TestProperties:
    def test_alphabets(self):
        expr = concat(node("A"), edge("r"), star(edge("s-")))
        assert expr.node_labels() == {"A"}
        assert expr.edge_labels() == {"r", "s"}

    def test_size_counts_ast_nodes(self):
        assert node("A").size() == 1
        assert concat(node("A"), edge("r")).size() == 3

    def test_nullable(self):
        assert star(edge("r")).nullable()
        assert EPSILON.nullable()
        assert not edge("r").nullable()
        assert union(edge("r"), EPSILON).nullable()
        assert not concat(edge("r"), star(edge("s"))).nullable()

    def test_empty_language_detection(self):
        assert EMPTY.is_empty_language()
        assert concat(edge("r"), EMPTY).is_empty_language()
        assert not union(EMPTY, edge("r")).is_empty_language()

    def test_reverse_inverts_edges_and_order(self):
        expr = concat(edge("r"), edge("s"))
        assert str(expr.reverse()) == "s- . r-"

    def test_reverse_is_involutive(self):
        expr = concat(node("A"), star(union(edge("r"), edge("s-"))))
        assert expr.reverse().reverse() == expr

    def test_reverse_keeps_node_tests(self):
        assert node("A").reverse() == node("A")

    def test_equality_and_hashing(self):
        assert concat(edge("r"), edge("s")) == concat(edge("r"), edge("s"))
        assert len({star(edge("r")), star(edge("r"))}) == 1


class TestParser:
    def test_example_32_query(self):
        expr = parse_regex("Vaccine . designTarget . crossReacting* . Antigen")
        assert expr.node_labels() == {"Vaccine", "Antigen"}
        assert expr.edge_labels() == {"designTarget", "crossReacting"}

    def test_plus_postfix_versus_union(self):
        postfix = parse_regex("r . s+ . r")
        assert postfix.edge_labels() == {"r", "s"}
        union_expr = parse_regex("a + b")
        assert isinstance(union_expr, Union)

    def test_example_52_query(self):
        expr = parse_regex("r . s+ . r")
        # s+ unfolds to s·s*
        assert "s" in str(expr)

    def test_inverse_edges(self):
        expr = parse_regex("a-")
        assert isinstance(expr, EdgeStep) and expr.signed.is_inverse

    def test_epsilon_and_empty(self):
        assert parse_regex("<eps>") == EPSILON
        assert parse_regex("<empty>") == EMPTY

    def test_parentheses_and_nesting(self):
        expr = parse_regex("(a . b)* + c?")
        assert isinstance(expr, Union)

    def test_juxtaposition_is_concatenation(self):
        assert parse_regex("A r B") == parse_regex("A . r . B")

    def test_case_convention(self):
        expr = parse_regex("Antigen . crossReacting")
        symbols = list(expr.symbols())
        assert isinstance(symbols[0], NodeTest) and isinstance(symbols[1], EdgeStep)

    def test_round_trip_via_str(self):
        expr = parse_regex("(Vaccine . designTarget . crossReacting*) + exhibits-")
        assert parse_regex(str(expr)) == expr

    def test_unbalanced_parenthesis_rejected(self):
        with pytest.raises(ParseError):
            parse_regex("(a . b")

    def test_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_regex("a ..")

    def test_unexpected_character_rejected(self):
        with pytest.raises(ParseError):
            parse_regex("a ; b")


class TestStructuralHashCaching:
    """The cached structural hash that replaced the forbidden __eq__/__hash__."""

    def test_hash_agrees_with_equality(self):
        assert hash(concat(edge("r"), edge("s"))) == hash(concat(edge("r"), edge("s")))
        assert hash(star(edge("r"))) != hash(plus(edge("r")))

    def test_hash_is_computed_once_and_cached(self):
        expr = star(union(edge("r"), concat(node("A"), edge("s"))))
        assert "_structural_hash" not in expr.__dict__
        first = hash(expr)
        assert expr.__dict__["_structural_hash"] == first
        assert hash(expr) == first

    def test_subexpressions_cache_independently(self):
        inner = concat(edge("r"), edge("s"))
        outer = star(inner)
        hash(outer)
        # hashing the tree populated the child's cache too (dataclass field
        # hashing recurses through it exactly once)
        assert "_structural_hash" in inner.__dict__

    def test_canonical_token_is_cached(self):
        from repro.rpq.regex import canonical_token

        expr = union(edge("r"), star(node("A")))
        token = canonical_token(expr)
        assert expr.__dict__["_canonical_token"] == token
        assert canonical_token(expr) is token

    def test_pickling_drops_the_caches(self):
        import pickle

        from repro.rpq.regex import canonical_token

        expr = star(concat(edge("r"), node("A")))
        hash(expr)
        canonical_token(expr)
        clone = pickle.loads(pickle.dumps(expr))
        assert "_structural_hash" not in clone.__dict__
        assert "_canonical_token" not in clone.__dict__
        assert clone == expr
        assert hash(clone) == hash(expr)  # same process: same seed
        assert canonical_token(clone) == canonical_token(expr)

    def test_all_node_kinds_hash(self):
        for expr in (
            EMPTY,
            EPSILON,
            node("A"),
            edge("r"),
            concat(edge("r"), edge("s")),
            union(edge("r"), edge("s")),
            star(edge("r")),
        ):
            assert isinstance(hash(expr), int)
            assert expr in {expr}
