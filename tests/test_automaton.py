"""Tests for the Glushkov/Thompson NFAs over Γ ∪ Σ±."""

import pytest

from repro.rpq import build_nfa, concat, edge, parse_regex, plus, star, union
from repro.rpq.regex import EMPTY, EPSILON, EdgeStep, NodeTest


def w(text):
    """Build a word (tuple of symbols) from a whitespace-separated string."""
    from repro.graph.labels import SignedLabel

    result = []
    for token in text.split():
        if token[:1].isupper():
            result.append(NodeTest(token))
        else:
            result.append(EdgeStep(SignedLabel.parse(token)))
    return tuple(result)


class TestAcceptance:
    def test_single_edge(self):
        nfa = build_nfa(edge("r"))
        assert nfa.accepts(w("r"))
        assert not nfa.accepts(w("s"))
        assert not nfa.accepts(())

    def test_concatenation(self):
        nfa = build_nfa(parse_regex("a . b"))
        assert nfa.accepts(w("a b"))
        assert not nfa.accepts(w("a"))
        assert not nfa.accepts(w("b a"))

    def test_union(self):
        nfa = build_nfa(parse_regex("a + b"))
        assert nfa.accepts(w("a")) and nfa.accepts(w("b"))
        assert not nfa.accepts(w("a b"))

    def test_star_accepts_empty_and_repeats(self):
        nfa = build_nfa(star(edge("a")))
        assert nfa.accepts(())
        assert nfa.accepts(w("a a a"))

    def test_plus_requires_one(self):
        nfa = build_nfa(plus(edge("a")))
        assert not nfa.accepts(())
        assert nfa.accepts(w("a"))

    def test_node_tests_and_inverse_edges(self):
        nfa = build_nfa(parse_regex("Vaccine . designTarget . crossReacting* . Antigen"))
        assert nfa.accepts(w("Vaccine designTarget Antigen"))
        assert nfa.accepts(w("Vaccine designTarget crossReacting Antigen"))
        assert not nfa.accepts(w("Vaccine designTarget"))
        inverse_nfa = build_nfa(edge("r-"))
        assert inverse_nfa.accepts(w("r-"))

    def test_epsilon_and_empty(self):
        assert build_nfa(EPSILON).accepts(())
        assert build_nfa(EMPTY).is_empty_language()
        assert not build_nfa(EMPTY).accepts(())

    def test_empty_in_concat_kills_language(self):
        assert build_nfa(concat(edge("a"), EMPTY)).is_empty_language()


class TestStructure:
    def test_linear_size(self):
        expr = parse_regex("a . (b + c)* . d . Antigen")
        nfa = build_nfa(expr)
        assert nfa.state_count() <= 2 * expr.size() + 2

    def test_trim_removes_dead_states(self):
        nfa = build_nfa(union(edge("a"), concat(edge("b"), EMPTY)))
        # the b-branch cannot reach a final state and must have been trimmed
        assert all(
            any(nfa.accepts(word) for word in [w("a")])
            for _ in [None]
        )
        assert nfa.state_count() <= 4

    def test_alphabet(self):
        nfa = build_nfa(parse_regex("A . r . s-"))
        assert len(nfa.alphabet()) == 3

    def test_reverse_language(self):
        nfa = build_nfa(parse_regex("a . b")).reverse()
        assert nfa.accepts(w("b- a-"))
        assert not nfa.accepts(w("a b"))

    def test_accepts_epsilon_flag(self):
        assert build_nfa(star(edge("a"))).accepts_epsilon()
        assert not build_nfa(edge("a")).accepts_epsilon()


class TestWordEnumeration:
    def test_words_are_accepted_and_deduplicated(self):
        nfa = build_nfa(parse_regex("a . b* . c"))
        words = list(nfa.enumerate_words(max_length=6))
        assert len(words) == len(set(words))
        assert all(nfa.accepts(word) for word in words)

    def test_words_in_nondecreasing_length(self):
        nfa = build_nfa(parse_regex("a*"))
        lengths = [len(word) for word in nfa.enumerate_words(max_length=5, max_state_repeats=3)]
        assert lengths == sorted(lengths)

    def test_state_repeat_bound_limits_unrolling(self):
        nfa = build_nfa(star(edge("a")))
        words = list(nfa.enumerate_words(max_length=10, max_state_repeats=2))
        assert max(len(word) for word in words) <= 4

    def test_max_words_cap(self):
        nfa = build_nfa(star(union(edge("a"), edge("b"))))
        words = list(nfa.enumerate_words(max_length=10, max_state_repeats=3, max_words=5))
        assert len(words) == 5

    def test_finite_language_enumerated_exactly(self):
        nfa = build_nfa(parse_regex("a . (b + c)"))
        words = set(nfa.enumerate_words(max_length=5))
        assert words == {w("a b"), w("a c")}

    def test_shortest_word(self):
        nfa = build_nfa(parse_regex("a . b* . c"))
        assert nfa.shortest_word() == w("a c")

    def test_shortest_word_of_empty_language_raises(self):
        with pytest.raises(ValueError):
            build_nfa(EMPTY).shortest_word()


class TestTrim:
    def test_trim_is_a_method(self):
        from repro.rpq.automaton import NFA

        nfa = NFA(
            {0, 1, 2, 3},
            {0},
            {1},
            [(0, w("a")[0], 1), (1, w("b")[0], 2), (3, w("c")[0], 1)],
        )
        trimmed = nfa.trim()
        # state 2 cannot reach a final state, state 3 is unreachable
        assert trimmed.state_count() == 2
        assert trimmed.accepts(w("a"))
        assert not trimmed.accepts(w("a b"))

    def test_trim_of_empty_language_stays_valid(self):
        from repro.rpq.automaton import NFA

        trimmed = NFA({0, 1}, {0}, set(), [(0, w("a")[0], 1)]).trim()
        assert trimmed.state_count() == 1
        assert not trimmed.accepts(w("a"))
        assert not trimmed.accepts(())

    def test_module_level_alias_is_gone(self):
        # the deprecated free-function alias finished its removal cycle
        import repro.rpq.automaton as automaton_module

        assert not hasattr(automaton_module, "trim")
        assert "trim" not in automaton_module.__all__


class TestEnumerationDeterminism:
    """Lock in enumerate_words ordering before/after the core refactor."""

    SPECS = ["(a + b)* . c", "a . b* . c", "(a . b)+ + a . b . a . b", "A . (a . b-)*"]

    def test_two_builds_enumerate_identically(self):
        for spec in self.SPECS:
            one = list(
                build_nfa(parse_regex(spec)).enumerate_words(max_length=6, max_state_repeats=2)
            )
            two = list(
                build_nfa(parse_regex(spec)).enumerate_words(max_length=6, max_state_repeats=2)
            )
            assert one == two, spec

    def test_repeated_calls_on_one_nfa_are_identical(self):
        nfa = build_nfa(parse_regex("(a + b)* . (c + d)"))
        first = list(nfa.enumerate_words(max_length=5, max_state_repeats=2))
        second = list(nfa.enumerate_words(max_length=5, max_state_repeats=2))
        assert first == second

    def test_order_is_length_then_transition_sort(self):
        # words of equal length appear in the sorted-transition exploration
        # order: the enumerator visits transitions sorted by (repr, target)
        nfa = build_nfa(parse_regex("b + a + c"))
        assert list(nfa.enumerate_words(max_length=2)) == [w("a"), w("b"), w("c")]

    def test_compiled_words_match_direct_enumeration(self):
        from repro.core import compile_regex

        for spec in self.SPECS:
            regex = parse_regex(spec)
            direct = tuple(
                build_nfa(regex).enumerate_words(max_length=6, max_state_repeats=2, max_words=50)
            )
            assert compile_regex(regex).words(6, 2, 50) == direct, spec
