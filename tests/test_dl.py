"""Tests for the description-logic layer: concepts, TBoxes, the schema↔L0
correspondence (Prop. B.1/B.4) and finite model checking."""

import pytest

from repro.dl import (
    AtMostOneCI,
    DisjunctionCI,
    ExistsCI,
    ForAllCI,
    NoExistsCI,
    SubclassOf,
    SubclassOfBottom,
    TBox,
    conj,
    conformance_tbox,
    disjointness_statements,
    is_coherent_l0,
    is_l0_statement,
    label_coverage_statement,
    schema_from_l0,
    schema_to_extended_tbox,
    schema_to_l0,
)
from repro.exceptions import TBoxError
from repro.graph import GraphBuilder, forward, inverse
from repro.schema import Schema, conforms
from repro.workloads import medical


@pytest.fixture(scope="module")
def graph():
    return medical.sample_graph()


class TestConceptInclusions:
    def test_subclass_holds(self, graph):
        assert SubclassOf(conj("Vaccine"), "Vaccine").holds_in(graph)
        assert not SubclassOf(conj("Vaccine"), "Antigen").holds_in(graph)

    def test_bottom(self, graph):
        assert SubclassOfBottom(conj("Vaccine", "Antigen")).holds_in(graph)
        assert not SubclassOfBottom(conj("Vaccine")).holds_in(graph)

    def test_forall(self, graph):
        assert ForAllCI(conj("Vaccine"), forward("designTarget"), conj("Antigen")).holds_in(graph)
        assert not ForAllCI(conj("Pathogen"), forward("exhibits"), conj("Vaccine")).holds_in(graph)

    def test_exists_example_33(self, graph):
        # Pathogen ⊑ ∃exhibits.Antigen (Example 3.3)
        assert ExistsCI(conj("Pathogen"), forward("exhibits"), conj("Antigen")).holds_in(graph)
        assert not ExistsCI(conj("Antigen"), forward("crossReacting"), conj("Antigen")).holds_in(graph)

    def test_no_exists_example_33(self, graph):
        # Vaccine ⊑ ¬∃exhibits.Antigen (Example 3.3)
        assert NoExistsCI(conj("Vaccine"), forward("exhibits"), conj("Antigen")).holds_in(graph)
        assert not NoExistsCI(conj("Vaccine"), forward("designTarget"), conj("Antigen")).holds_in(graph)

    def test_at_most_one(self, graph):
        assert AtMostOneCI(conj("Vaccine"), forward("designTarget"), conj("Antigen")).holds_in(graph)
        assert not AtMostOneCI(conj("Pathogen"), forward("exhibits"), conj("Antigen")).holds_in(graph)

    def test_inverse_roles(self, graph):
        assert AtMostOneCI(conj("Antigen"), inverse("designTarget"), conj("Vaccine")).holds_in(graph)

    def test_disjunction(self, graph):
        assert DisjunctionCI(conj(), ("Vaccine", "Antigen", "Pathogen")).holds_in(graph)
        assert not DisjunctionCI(conj(), ("Vaccine",)).holds_in(graph)

    def test_empty_body_is_top(self):
        graph = GraphBuilder().node("x", "A").build()
        assert SubclassOf(conj(), "A").holds_in(graph)

    def test_statement_rendering(self):
        statement = ExistsCI(conj("Vaccine"), forward("targets"), conj("Antigen"))
        assert "Vaccine" in str(statement) and "∃" in str(statement)


class TestTBox:
    def test_deduplication(self):
        tbox = TBox()
        statement = SubclassOf(conj("A"), "B")
        assert tbox.add(statement)
        assert not tbox.add(statement)
        assert len(tbox) == 1

    def test_kind_iterators_and_counts(self, medical_source_schema):
        tbox = schema_to_l0(medical_source_schema)
        assert all(isinstance(s, (ExistsCI, NoExistsCI, AtMostOneCI)) for s in tbox)
        assert tbox.at_most_count() == sum(1 for _ in tbox.at_most_statements())
        assert tbox.is_horn()

    def test_union_and_copy(self):
        left = TBox([SubclassOf(conj("A"), "B")])
        right = TBox([SubclassOfBottom(conj("C"))])
        union = left.union(right)
        assert len(union) == 2
        assert len(left.copy()) == 1

    def test_concept_and_role_names(self):
        tbox = TBox([ForAllCI(conj("A"), forward("r"), conj("B"))])
        assert tbox.concept_names() == {"A", "B"}
        assert tbox.role_names() == {"r"}

    def test_holds_in_and_violations(self, graph, medical_source_schema):
        tbox = schema_to_l0(medical_source_schema)
        assert tbox.holds_in(graph)
        bad = GraphBuilder().node("v", "Vaccine").build()
        assert not tbox.holds_in(bad)
        assert tbox.violated_statements(bad)

    def test_rejects_non_statement(self):
        with pytest.raises(TBoxError):
            TBox(["not a statement"])


class TestSchemaTBoxCorrespondence:
    def test_example_33_statements_present(self, medical_source_schema):
        tbox = schema_to_l0(medical_source_schema)
        assert ExistsCI(conj("Pathogen"), forward("exhibits"), conj("Antigen")) in tbox
        assert NoExistsCI(conj("Vaccine"), forward("exhibits"), conj("Antigen")) in tbox
        assert AtMostOneCI(conj("Vaccine"), forward("designTarget"), conj("Antigen")) in tbox

    def test_star_constraint_needs_no_statement(self, medical_source_schema):
        tbox = schema_to_l0(medical_source_schema)
        assert ExistsCI(conj("Antigen"), forward("crossReacting"), conj("Antigen")) not in tbox
        assert AtMostOneCI(conj("Antigen"), forward("crossReacting"), conj("Antigen")) not in tbox

    def test_l0_statement_recognition(self):
        assert is_l0_statement(ExistsCI(conj("A"), forward("r"), conj("B")))
        assert not is_l0_statement(ExistsCI(conj("A", "B"), forward("r"), conj("B")))
        assert not is_l0_statement(SubclassOf(conj("A"), "B"))

    def test_coherence(self, medical_source_schema):
        assert is_coherent_l0(schema_to_l0(medical_source_schema))
        incoherent = [
            ExistsCI(conj("A"), forward("r"), conj("B")),
            NoExistsCI(conj("A"), forward("r"), conj("B")),
        ]
        assert not is_coherent_l0(incoherent)

    def test_round_trip_schema_l0_schema(self, medical_source_schema):
        tbox = schema_to_l0(medical_source_schema)
        rebuilt = schema_from_l0(
            tbox, medical_source_schema.node_labels, medical_source_schema.edge_labels
        )
        assert rebuilt == medical_source_schema

    def test_round_trip_for_all_multiplicities(self):
        schema = Schema(["A", "B"], ["r", "s"], name="M")
        schema.set_edge("A", "r", "B", "1", "?")
        schema.set_edge("A", "s", "B", "+", "*")
        rebuilt = schema_from_l0(schema_to_l0(schema), schema.node_labels, schema.edge_labels)
        assert rebuilt == schema

    def test_schema_from_incoherent_l0_rejected(self):
        with pytest.raises(TBoxError):
            schema_from_l0(
                [
                    ExistsCI(conj("A"), forward("r"), conj("A")),
                    NoExistsCI(conj("A"), forward("r"), conj("A")),
                ],
                ["A"],
                ["r"],
            )

    def test_extended_tbox_adds_disjointness(self, medical_source_schema):
        extended = schema_to_extended_tbox(medical_source_schema)
        assert SubclassOfBottom(conj("Antigen", "Vaccine")) in extended
        assert len(list(disjointness_statements(["A", "B", "C"]))) == 3

    def test_label_coverage_statement(self):
        statement = label_coverage_statement(["A", "B"])
        assert set(statement.alternatives) == {"A", "B"}


class TestPropositionB1:
    """Conformance and the DL characterisation agree (Proposition B.1)."""

    def test_conforming_graph_satisfies_all(self, graph, medical_source_schema):
        assert conformance_tbox(medical_source_schema).holds_in(graph)
        assert conforms(graph, medical_source_schema)

    def test_violating_graph_fails_both(self, medical_source_schema):
        bad = GraphBuilder().node("v", "Vaccine").build()  # missing design target
        assert not conformance_tbox(medical_source_schema).holds_in(bad)
        assert not conforms(bad, medical_source_schema)

    def test_unlabeled_node_fails_both(self, medical_source_schema):
        bad = GraphBuilder().node("x").build()
        assert not conformance_tbox(medical_source_schema).holds_in(bad)
        assert not conforms(bad, medical_source_schema)

    def test_agreement_on_random_instances(self, medical_source_schema):
        for seed in range(5):
            instance = medical.random_instance(seed=seed)
            assert conforms(instance, medical_source_schema)
            assert conformance_tbox(medical_source_schema).holds_in(instance)
